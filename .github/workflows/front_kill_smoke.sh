#!/usr/bin/env bash
# Kill-a-worker-under-load smoke for the sharded front (docs/FRONT.md).
#
#   front_kill_smoke.sh [WORKDIR_PREFIX]
#
# Drives irlt-front --shards 3 with the worker-kill fault armed: a
# marker request crashes its shard's worker mid-corpus while a dozen
# requests are pipelined behind it. Asserts, in order:
#   1. zero hangs - every request gets a framed response (the client
#      timeout would fail the run otherwise);
#   2. structured rejects only - every non-ok record carries a
#      retryable error.kind (shard_down / overloaded / draining);
#   3. a client retry loop (irlt-servectl send --retry-overloaded)
#      converges to output byte-identical to a fault-free run;
#   4. a clean aggregated drain (front exit 0, restarts >= 1,
#      write_failures == 0).
set -eu

PREFIX="${1:-/tmp/irlt-front-smoke}"
mkdir -p "$PREFIX"
CORPUS="$PREFIX/corpus.ndjson"
SOCK_BASE="$PREFIX/base.sock"
SOCK_KILL="$PREFIX/kill.sock"
FRONT=./build/tools/irlt-front
SERVECTL=./build/tools/irlt-servectl

# One nest shared by every request: identical fingerprints route to one
# shard, so the kill marker is guaranteed to strand the requests behind
# it on the same worker.
python3 - "$CORPUS" <<'EOF'
import json, sys
nest = ("arrays B, C\ndo i = 1, n\n  do j = 1, n\n    do k = 1, n\n"
        "      A(i, j) += B(i, k) * C(k, j)\n    enddo\n  enddo\nenddo\n")
lines = [{"id": "a", "nest": nest, "script": "block 1 3 8 8 8"}]
lines.append({"id": "kill-mid", "nest": nest, "script": "interchange 1 2"})
for i in range(12):
    lines.append({"id": f"q{i}", "nest": nest, "script": "reverse 3"})
with open(sys.argv[1], "w") as f:
    for l in lines:
        f.write(json.dumps(l) + "\n")
EOF

# Fault-free baseline through the front.
"$FRONT" --socket "$SOCK_BASE" --shards 3 > "$PREFIX/base_front.ndjson" &
BASE_PID=$!
"$SERVECTL" --socket "$SOCK_BASE" --timeout-ms 60000 ping --retry 300
"$SERVECTL" --socket "$SOCK_BASE" --timeout-ms 60000 \
  send "$CORPUS" > "$PREFIX/baseline.ndjson"
kill -TERM "$BASE_PID" && wait "$BASE_PID"   # clean drain: exit 0

# The same corpus with the kill fault armed.
"$FRONT" --socket "$SOCK_KILL" --shards 3 --fault worker-kill \
  --backoff-ms 50 > "$PREFIX/kill_front.ndjson" &
KILL_PID=$!
"$SERVECTL" --socket "$SOCK_KILL" --timeout-ms 60000 ping --retry 300

# Pass 1, no retries: must terminate (no hangs) with one response per
# request, and every failure must be a structured retryable reject.
"$SERVECTL" --socket "$SOCK_KILL" --timeout-ms 60000 \
  send "$CORPUS" > "$PREFIX/noretry.ndjson" || true
python3 - "$PREFIX/noretry.ndjson" "$CORPUS" <<'EOF'
import json, sys
resps = [json.loads(l) for l in open(sys.argv[1])]
want = sum(1 for _ in open(sys.argv[2]))
assert len(resps) == want, f"{len(resps)} responses for {want} requests"
retryable = {"shard_down", "overloaded", "draining"}
for r in resps:
    if not r.get("ok"):
        kind = r.get("error", {}).get("kind")
        assert kind in retryable, f"non-retryable reject: {r}"
EOF

# Pass 2, with retries: the marker keeps killing its worker, but every
# stranded request converges after the warm respawn. Byte-identical to
# the fault-free baseline, exit 0.
"$SERVECTL" --socket "$SOCK_KILL" --timeout-ms 60000 \
  send "$CORPUS" --retry-overloaded > "$PREFIX/retried.ndjson"
cmp "$PREFIX/baseline.ndjson" "$PREFIX/retried.ndjson"

kill -TERM "$KILL_PID" && wait "$KILL_PID"   # clean drain: exit 0
python3 - "$PREFIX/kill_front.ndjson" <<'EOF'
import json, sys
drained = [json.loads(l) for l in open(sys.argv[1])
           if '"record":"drained"' in l or '"record": "drained"' in l]
assert drained, "no aggregated drained record"
d = drained[-1]
assert d["restarts"] >= 1, d
assert d["write_failures"] == 0, d
EOF
echo "front kill-worker smoke: ok"
