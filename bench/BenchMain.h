//===- bench/BenchMain.h - Shared benchmark entry point -------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bench_* binary uses IRLT_BENCHMARK_MAIN() instead of google
/// benchmark's BENCHMARK_MAIN() so the suite can be machine-read:
///
///   bench_fig7_matmul                 # human console output, as before
///   bench_fig7_matmul --json          # one JSON object per line to stdout
///   bench_fig7_matmul --json=FILE     # same, appended to FILE
///
/// Each line carries the benchmark name, iteration count, wall time per
/// iteration in nanoseconds, and every user counter the benchmark set
/// (miss ratios, tile counts, parallelism scores...). bench/run_all.sh
/// aggregates the whole suite into BENCH_search.json.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_BENCH_BENCHMAIN_H
#define IRLT_BENCH_BENCHMAIN_H

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace irlt {
namespace bench {

/// Reports each finished run as a single JSON object on its own line
/// (JSON-lines: trivially concatenable across binaries).
class JsonLineReporter : public benchmark::BenchmarkReporter {
public:
  explicit JsonLineReporter(std::ostream &OS) : OS(OS) {}

  bool ReportContext(const Context &) override { return true; }

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      OS << "{\"name\":\"" << escaped(R.benchmark_name()) << "\"";
      if (R.error_occurred) {
        OS << ",\"error\":\"" << escaped(R.error_message) << "\"}\n";
        continue;
      }
      double Iters = R.iterations ? static_cast<double>(R.iterations) : 1.0;
      OS << ",\"iterations\":" << R.iterations << ",\"ns_per_iter\":"
         << R.real_accumulated_time / Iters * 1e9;
      for (const auto &[Name, Counter] : R.counters)
        OS << ",\"" << escaped(Name) << "\":" << Counter.value;
      OS << "}\n";
    }
  }

private:
  static std::string escaped(const std::string &S) {
    std::string Out;
    Out.reserve(S.size());
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out.push_back('\\');
      if (static_cast<unsigned char>(C) < 0x20)
        C = ' ';
      Out.push_back(C);
    }
    return Out;
  }

  std::ostream &OS;
};

/// The shared main: peels --json[=FILE] off argv, hands the rest to
/// google benchmark, and picks the reporter accordingly.
inline int benchmarkMain(int argc, char **argv) {
  bool Json = false;
  std::string JsonFile;
  std::vector<char *> Args;
  Args.reserve(static_cast<size_t>(argc));
  for (int I = 0; I < argc; ++I) {
    if (std::strcmp(argv[I], "--json") == 0) {
      Json = true;
    } else if (std::strncmp(argv[I], "--json=", 7) == 0) {
      Json = true;
      JsonFile = argv[I] + 7;
    } else {
      Args.push_back(argv[I]);
    }
  }
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;

  if (!Json) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  std::ofstream File;
  if (!JsonFile.empty()) {
    File.open(JsonFile, std::ios::app);
    if (!File) {
      std::cerr << "error: cannot open " << JsonFile << " for writing\n";
      return 1;
    }
  }
  JsonLineReporter Reporter(JsonFile.empty() ? std::cout : File);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  benchmark::Shutdown();
  return 0;
}

} // namespace bench
} // namespace irlt

#define IRLT_BENCHMARK_MAIN()                                                  \
  int main(int argc, char **argv) {                                            \
    return irlt::bench::benchmarkMain(argc, argv);                             \
  }

#endif // IRLT_BENCH_BENCHMAIN_H
