//===- bench/BenchNests.h - Shared workloads for the benchmarks ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop nests and transformation sequences shared by the benchmark
/// binaries: the paper's Figure 1 stencil, Figure 6 matrix multiply,
/// the Figure 4 triangular nest, plus generated deep rectangular nests
/// used for scaling sweeps.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_BENCH_BENCHNESTS_H
#define IRLT_BENCH_BENCHNESTS_H

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <cassert>
#include <string>

namespace irlt::bench {

inline LoopNest parseOrDie(const std::string &Src) {
  ErrorOr<LoopNest> N = parseLoopNest(Src);
  assert(N && "benchmark nest failed to parse");
  return *N;
}

/// Figure 1(a): the 5-point stencil.
inline LoopNest stencilNest() {
  return parseOrDie(
      "do i = 2, n - 1\n"
      "  do j = 2, n - 1\n"
      "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + "
      "a(i, j + 1)) / 5\n"
      "  enddo\n"
      "enddo\n");
}

/// Figure 6: matrix multiply.
inline LoopNest matmulNest() {
  return parseOrDie("arrays B, C\n"
                    "do i = 1, n\n"
                    "  do j = 1, n\n"
                    "    do k = 1, n\n"
                    "      A(i, j) += B(i, k) * C(k, j)\n"
                    "    enddo\n"
                    "  enddo\n"
                    "enddo\n");
}

/// Figure 4(a)-style triangular nest (trapezoidal iteration space).
inline LoopNest triangularNest() {
  return parseOrDie("do i = 1, n\n"
                    "  do j = 1, i\n"
                    "    a(i, j) = a(i, j) + 1\n"
                    "  enddo\n"
                    "enddo\n");
}

/// A rectangular nest of the given depth with a carried dependence at
/// every level, for scaling sweeps.
inline LoopNest deepNest(unsigned Depth) {
  static const char *Names[] = {"i1", "i2", "i3", "i4", "i5", "i6"};
  assert(Depth >= 1 && Depth <= 6);
  std::string Src;
  for (unsigned K = 0; K < Depth; ++K)
    Src += std::string(2 * K, ' ') + "do " + Names[K] + " = 2, n\n";
  std::string Subs, SubsM1;
  for (unsigned K = 0; K < Depth; ++K) {
    Subs += (K ? ", " : "") + std::string(Names[K]);
    SubsM1 += (K ? ", " : "") + std::string(Names[K]) + " - 1";
  }
  Src += std::string(2 * Depth, ' ') + "a(" + Subs + ") = a(" + SubsM1 +
         ") + 1\n";
  for (unsigned K = Depth; K-- > 0;)
    Src += std::string(2 * K, ' ') + "enddo\n";
  return parseOrDie(Src);
}

/// The Appendix A / Figure 7 transformation sequence for matmul.
inline TransformSequence figure7Sequence() {
  return TransformSequence::of({
      makeReversePermute(3, {false, false, false}, {2, 0, 1}),
      makeBlock(3, 1, 3,
                {Expr::var("bj"), Expr::var("bk"), Expr::var("bi")}),
      makeParallelize(6, {true, false, true, false, false, false}),
      makeReversePermute(6, {false, false, false, false, false, false},
                         {0, 2, 1, 3, 4, 5}),
      makeCoalesce(6, 1, 2, std::string("jic")),
  });
}

/// Figure 1's skew+interchange, reduced to one matrix.
inline TransformSequence figure1Sequence() {
  return TransformSequence::of(
             {makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 1)),
              makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1))})
      .reduced();
}

} // namespace irlt::bench

#endif // IRLT_BENCH_BENCHNESTS_H
