//===- bench/bench_analyze.cpp - Static analyzer throughput ---------------===//
//
// Experiment A1: the static diagnostic engine (src/analysis/,
// docs/ANALYSIS.md) sweeping a mixed corpus of legal, illegal, and
// lint-heavy (nest, script) pairs. Records analyzed nests/s plus the
// error/warning finding mix, so BENCH_analyze.json tracks analyzer
// throughput across commits; the engine must stay cheap enough to run
// on every request of a batch workload.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "analysis/Analysis.h"
#include "driver/Script.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

struct Case {
  LoopNest Nest;
  DepSet Deps;
  TransformSequence Seq;
};

std::vector<Case> corpus() {
  struct Spec {
    LoopNest Nest;
    const char *Script;
  };
  const Spec Specs[] = {
      // Legal scripts: the common fast path.
      {bench::matmulNest(), "block 1 3 8 8 8"},
      {bench::stencilNest(), "unimodular 1 1 / 1 0"},
      {bench::matmulNest(), "interchange 1 2\nparallelize 2"},
      {bench::deepNest(4), "stripmine 2 16\ninterchange 1 2"},
      // Error-class findings: precondition and lex-negative rejections.
      {bench::triangularNest(), "interchange 1 2"},
      {bench::triangularNest(), "coalesce 1 2"},
      {bench::stencilNest(), "reverse 1"},
      // Lint-heavy: reducible pairs, identity stages, fix-it synthesis.
      {bench::matmulNest(),
       "interchange 1 2\ninterchange 1 2\nparallelize 3"},
      {bench::deepNest(4), "reverse 1\nreverse 1\nreverse 2\nreverse 2"},
  };
  std::vector<Case> Out;
  for (const Spec &S : Specs) {
    Case C{S.Nest, analyzeDependences(S.Nest), TransformSequence()};
    ErrorOr<TransformSequence> Seq =
        parseTransformScript(S.Script, S.Nest.numLoops());
    assert(Seq && "benchmark script failed to parse");
    C.Seq = Seq.take();
    Out.push_back(std::move(C));
  }
  return Out;
}

void BM_AnalyzeCorpus(benchmark::State &State) {
  std::vector<Case> Cases = corpus();
  bool Lint = State.range(0) != 0;
  analysis::AnalysisOptions AO;
  AO.Lint = Lint;
  uint64_t Analyzed = 0, Errors = 0, Warnings = 0;
  for (auto _ : State) {
    for (const Case &C : Cases) {
      analysis::AnalysisReport R =
          analysis::analyzeSequence(C.Seq, C.Nest, C.Deps, AO);
      benchmark::DoNotOptimize(R);
      ++Analyzed;
      Errors += R.errorCount();
      Warnings += R.warningCount();
    }
  }
  State.counters["lint"] = Lint ? 1 : 0;
  State.counters["nests_per_sec"] = benchmark::Counter(
      static_cast<double>(Analyzed), benchmark::Counter::kIsRate);
  State.counters["error_findings"] = static_cast<double>(Errors);
  State.counters["warning_findings"] = static_cast<double>(Warnings);
}
BENCHMARK(BM_AnalyzeCorpus)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Analyzer cost as sequences grow: a chain of K reducible interchange
/// pairs exercises the pairwise W200 scan and the fix-it fixed point.
void BM_AnalyzeChainLength(benchmark::State &State) {
  LoopNest Nest = bench::matmulNest();
  DepSet D = analyzeDependences(Nest);
  std::string Script;
  for (int64_t K = 0; K < State.range(0); ++K)
    Script += "interchange 1 2\ninterchange 1 2\n";
  ErrorOr<TransformSequence> Seq =
      parseTransformScript(Script, Nest.numLoops());
  assert(Seq && "benchmark chain failed to parse");
  uint64_t Analyzed = 0;
  for (auto _ : State) {
    analysis::AnalysisReport R = analysis::analyzeSequence(*Seq, Nest, D);
    benchmark::DoNotOptimize(R);
    ++Analyzed;
  }
  State.counters["stages"] = static_cast<double>(2 * State.range(0));
  State.counters["nests_per_sec"] = benchmark::Counter(
      static_cast<double>(Analyzed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeChainLength)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

} // namespace

IRLT_BENCHMARK_MAIN();
