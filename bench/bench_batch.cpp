//===- bench/bench_batch.cpp - Batch engine throughput --------------------===//
//
// Experiment B1: the irlt-batch engine (docs/API.md) replaying a corpus
// built from the paper's bench nests at 1, 4, and 8 worker threads.
// Records requests/s, the shared-cache hit rates, and the p50/p95
// whole-request latency, so BENCH_batch.json tracks both scaling and
// cache effectiveness. The result stream is byte-identical across the
// thread counts by contract; only throughput may differ.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "engine/Engine.h"
#include "support/Json.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

std::string requestLine(const std::string &Id, const LoopNest &Nest,
                        const std::string &Fields) {
  std::string Out = "{\"id\": \"";
  Out += Id;
  Out += "\", \"nest\": \"";
  Out += json::escape(Nest.str());
  Out += "\", ";
  Out += Fields;
  Out += '}';
  return Out;
}

/// The replayed corpus: every bench nest under both a fixed script and
/// the search planner, repeated so the memoization caches see the
/// repeated-nest profile batch workloads actually have.
std::vector<std::string> corpus(unsigned Repeats) {
  std::vector<std::string> Lines;
  for (unsigned R = 0; R < Repeats; ++R) {
    std::string Tag = std::to_string(R);
    Lines.push_back(requestLine(
        "stencil-" + Tag, bench::stencilNest(),
        "\"script\": \"skew 1 2 1\\ninterchange 1 2\", \"reduce\": true"));
    Lines.push_back(requestLine("matmul-block-" + Tag, bench::matmulNest(),
                                "\"script\": \"block 1 3 8 8 8\""));
    Lines.push_back(requestLine("matmul-auto-" + Tag, bench::matmulNest(),
                                "\"auto\": \"locality\", \"beam\": 2, "
                                "\"depth\": 1"));
    Lines.push_back(requestLine("triangular-" + Tag, bench::triangularNest(),
                                "\"script\": \"interchange 1 2\""));
    Lines.push_back(requestLine("deep-par-" + Tag, bench::deepNest(4),
                                "\"auto\": \"par\", \"beam\": 2, "
                                "\"depth\": 1"));
  }
  return Lines;
}

void BM_BatchEngineThreads(benchmark::State &State) {
  std::vector<std::string> Lines = corpus(/*Repeats=*/20);
  engine::EngineOptions O;
  O.Jobs = static_cast<unsigned>(State.range(0));
  engine::EngineMetrics M;
  for (auto _ : State) {
    engine::BatchEngine E(O); // cold caches each iteration
    std::string Out = E.runToString(Lines, &M);
    benchmark::DoNotOptimize(Out);
  }
  double WallSec = static_cast<double>(M.WallNs) * 1e-9;
  State.counters["requests"] = static_cast<double>(M.Requests);
  State.counters["requests_per_sec"] =
      WallSec > 0 ? static_cast<double>(M.Requests) / WallSec : 0;
  State.counters["dep_cache_hit_rate"] = M.Cache.depHitRate();
  State.counters["legality_cache_hit_rate"] = M.Cache.legalityHitRate();
  State.counters["worker_utilization"] = M.workerUtilization();
  const engine::StageMetrics &Total =
      M.Stages[static_cast<unsigned>(engine::Stage::Total)];
  State.counters["p50_total_us"] = static_cast<double>(Total.P50Ns) * 1e-3;
  State.counters["p95_total_us"] = static_cast<double>(Total.P95Ns) * 1e-3;
}
BENCHMARK(BM_BatchEngineThreads)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// Cache contribution in isolation: the same corpus, one worker, caches
/// on vs off.
void BM_BatchEngineCache(benchmark::State &State) {
  std::vector<std::string> Lines = corpus(/*Repeats=*/20);
  engine::EngineOptions O;
  O.Jobs = 1;
  O.EnableCache = State.range(0) != 0;
  engine::EngineMetrics M;
  for (auto _ : State) {
    engine::BatchEngine E(O);
    std::string Out = E.runToString(Lines, &M);
    benchmark::DoNotOptimize(Out);
  }
  double WallSec = static_cast<double>(M.WallNs) * 1e-9;
  State.counters["cache_enabled"] = O.EnableCache ? 1 : 0;
  State.counters["requests_per_sec"] =
      WallSec > 0 ? static_cast<double>(M.Requests) / WallSec : 0;
  State.counters["dep_cache_hit_rate"] = M.Cache.depHitRate();
}
BENCHMARK(BM_BatchEngineCache)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

IRLT_BENCHMARK_MAIN();
