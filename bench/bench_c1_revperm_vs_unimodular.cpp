//===- bench/bench_c1_revperm_vs_unimodular.cpp - Section 4.2/5 claim ----===//
//
// Experiment C1 (DESIGN.md): "For cases in which ReversePermute and
// Unimodular can achieve the same result, it is preferable to use
// ReversePermute because a) step expressions are not normalized to +1,
// b) index variable names are reused without creating initialization
// statements, and c) matrix computations are avoided on dependence
// vectors." This bench quantifies all three: dependence-mapping cost,
// codegen cost, and the init-statement/step overhead of the generated
// code, for the same reversal+permutation expressed both ways.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "eval/Evaluator.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

/// The same transformation both ways: reverse loop 2 and rotate the three
/// loops (i j k) -> (j k i)... expressed as perm/rev and as a matrix.
TemplateRef asReversePermute() {
  return makeReversePermute(3, {false, true, false}, {2, 0, 1});
}

TemplateRef asUnimodular() {
  // Row form: y_{perm[k]} = +-x_k.
  UnimodularMatrix M(3);
  M.set(2, 0, 1);  // i -> position 3
  M.set(0, 1, -1); // j reversed -> position 1
  M.set(1, 2, 1);  // k -> position 2
  return makeUnimodular(3, M);
}

DepSet sampleDeps(unsigned Count) {
  DepSet D;
  for (unsigned I = 0; I < Count; ++I) {
    int64_t A = 1 + static_cast<int64_t>(I % 3);
    D.insert(DepVector({DepElem::distance(A), DepElem::distance(-1),
                        (I % 2) ? DepElem::pos() : DepElem::zeroNeg()}));
  }
  return D;
}

void BM_DepMapReversePermute(benchmark::State &State) {
  TemplateRef T = asReversePermute();
  DepSet D = sampleDeps(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    DepSet Out = T->mapDependences(D);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_DepMapReversePermute)->Arg(8)->Arg(64)->Arg(512);

void BM_DepMapUnimodular(benchmark::State &State) {
  TemplateRef T = asUnimodular();
  DepSet D = sampleDeps(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    DepSet Out = T->mapDependences(D);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_DepMapUnimodular)->Arg(8)->Arg(64)->Arg(512);

void BM_CodegenReversePermute(benchmark::State &State) {
  // Strided rectangular nest: RP handles the strides natively.
  LoopNest N = bench::parseOrDie("do i = 1, n, 2\n  do j = 1, m, 4\n"
                                 "    do k = 1, p\n      a(i, j, k) = 1\n"
                                 "    enddo\n  enddo\nenddo\n");
  TemplateRef T = asReversePermute();
  uint64_t Inits = 0;
  for (auto _ : State) {
    ErrorOr<LoopNest> Out = T->apply(N);
    Inits = Out->Inits.size();
    benchmark::DoNotOptimize(Out);
  }
  State.counters["init_stmts"] = static_cast<double>(Inits);
}
BENCHMARK(BM_CodegenReversePermute);

void BM_CodegenUnimodular(benchmark::State &State) {
  LoopNest N = bench::parseOrDie("do i = 1, n, 2\n  do j = 1, m, 4\n"
                                 "    do k = 1, p\n      a(i, j, k) = 1\n"
                                 "    enddo\n  enddo\nenddo\n");
  TemplateRef T = asUnimodular();
  uint64_t Inits = 0;
  for (auto _ : State) {
    ErrorOr<LoopNest> Out = T->apply(N);
    Inits = Out->Inits.size();
    benchmark::DoNotOptimize(Out);
  }
  State.counters["init_stmts"] = static_cast<double>(Inits);
}
BENCHMARK(BM_CodegenUnimodular);

void BM_GeneratedOverheadPerIteration(benchmark::State &State) {
  // Execute both generated nests: the Unimodular version pays init
  // statements and step-normalization arithmetic per body instance.
  bool UseUnimodular = State.range(0) != 0;
  LoopNest N = bench::parseOrDie("do i = 1, n, 2\n  do j = 1, m, 4\n"
                                 "    do k = 1, p\n      a(i, j, k) = 1\n"
                                 "    enddo\n  enddo\nenddo\n");
  TemplateRef T = UseUnimodular ? asUnimodular() : asReversePermute();
  ErrorOr<LoopNest> Out = T->apply(N);
  assert(Out);
  EvalConfig C;
  C.Params = {{"n", 40}, {"m", 40}, {"p", 20}};
  for (auto _ : State) {
    ArrayStore S;
    EvalResult R = evaluate(*Out, C, S);
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(UseUnimodular ? "unimodular" : "reversepermute");
}
BENCHMARK(BM_GeneratedOverheadPerIteration)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

} // namespace

IRLT_BENCHMARK_MAIN();
