//===- bench/bench_c2_trapezoid_tiles.cpp - Trapezoid blocking claim -----===//
//
// Experiment C2 (DESIGN.md): "Generation of efficient code when blocking
// trapezoidal loops" (Section 6). On the triangular nest, the framework's
// Block template (Table 4's xmin/xmax bounds) visits only tiles with
// work; the Wolf-Lam-style rectangular bounding-box baseline walks ~2x
// the tiles on a triangle. Reported counters: tiles entered, tiles with
// work, and the tile overhead ratio, swept over problem size and block
// size.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "baseline/RectangularTile.h"
#include "eval/Evaluator.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <set>

using namespace irlt;

namespace {

struct TileCounts {
  uint64_t Entered;
  uint64_t WithWork;
};

TileCounts countTiles(const LoopNest &Transformed, int64_t Size) {
  EvalConfig C;
  C.Params["n"] = Size;
  ArrayStore S;
  EvalResult R = evaluate(Transformed, C, S);
  std::set<std::pair<int64_t, int64_t>> Blocks;
  for (const std::vector<int64_t> &T : R.LoopTuples)
    Blocks.insert({T[0], T[1]});
  return TileCounts{R.LevelCounts[1], static_cast<uint64_t>(Blocks.size())};
}

void BM_FrameworkBlockTiles(benchmark::State &State) {
  int64_t Size = State.range(0);
  int64_t B = State.range(1);
  LoopNest N = bench::triangularNest();
  ErrorOr<LoopNest> Out = applySequence(
      TransformSequence::of(
          {makeBlock(2, 1, 2, {Expr::intConst(B), Expr::intConst(B)})}),
      N);
  assert(Out);
  TileCounts T{0, 0};
  for (auto _ : State)
    T = countTiles(*Out, Size);
  State.counters["tiles_entered"] = static_cast<double>(T.Entered);
  State.counters["tiles_with_work"] = static_cast<double>(T.WithWork);
  State.counters["overhead_ratio"] =
      static_cast<double>(T.Entered) / static_cast<double>(T.WithWork);
}
BENCHMARK(BM_FrameworkBlockTiles)
    ->Args({64, 8})
    ->Args({128, 8})
    ->Args({128, 16})
    ->Unit(benchmark::kMillisecond);

void BM_BoundingBoxTiles(benchmark::State &State) {
  int64_t Size = State.range(0);
  int64_t B = State.range(1);
  LoopNest N = bench::triangularNest();
  ErrorOr<LoopNest> Out = applySequence(
      TransformSequence::of({makeRectangularTile(
          2, 1, 2, {Expr::intConst(B), Expr::intConst(B)},
          {Expr::intConst(1), Expr::intConst(1)},
          {Expr::var("n"), Expr::var("n")})}),
      N);
  assert(Out);
  TileCounts T{0, 0};
  for (auto _ : State)
    T = countTiles(*Out, Size);
  State.counters["tiles_entered"] = static_cast<double>(T.Entered);
  State.counters["tiles_with_work"] = static_cast<double>(T.WithWork);
  State.counters["overhead_ratio"] =
      static_cast<double>(T.Entered) / static_cast<double>(T.WithWork);
}
BENCHMARK(BM_BoundingBoxTiles)
    ->Args({64, 8})
    ->Args({128, 8})
    ->Args({128, 16})
    ->Unit(benchmark::kMillisecond);

void BM_TileSweepBlockSize(benchmark::State &State) {
  // Overhead ratio of the baseline as block size grows (the paper's
  // "many tiles with no work" worsens for small blocks).
  int64_t B = State.range(0);
  int64_t Size = 96;
  LoopNest N = bench::triangularNest();
  ErrorOr<LoopNest> Ours = applySequence(
      TransformSequence::of(
          {makeBlock(2, 1, 2, {Expr::intConst(B), Expr::intConst(B)})}),
      N);
  ErrorOr<LoopNest> Box = applySequence(
      TransformSequence::of({makeRectangularTile(
          2, 1, 2, {Expr::intConst(B), Expr::intConst(B)},
          {Expr::intConst(1), Expr::intConst(1)},
          {Expr::var("n"), Expr::var("n")})}),
      N);
  assert(Ours && Box);
  TileCounts TO{0, 0}, TB{0, 0};
  for (auto _ : State) {
    TO = countTiles(*Ours, Size);
    TB = countTiles(*Box, Size);
  }
  State.counters["ours_entered"] = static_cast<double>(TO.Entered);
  State.counters["box_entered"] = static_cast<double>(TB.Entered);
  State.counters["saved_tiles"] =
      static_cast<double>(TB.Entered - TO.Entered);
}
BENCHMARK(BM_TileSweepBlockSize)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

} // namespace

IRLT_BENCHMARK_MAIN();
