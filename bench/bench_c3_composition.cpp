//===- bench/bench_c3_composition.cpp - Composition & reduction cost -----===//
//
// Experiment C3 (DESIGN.md): sequences compose by concatenation (Section
// 2) and reduce() fuses compatible neighbors into single instantiations.
// Measures concatenation cost, reduction cost, and the payoff: mapping a
// dependence set through a k-long unimodular chain vs its 1-long
// reduction.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

TransformSequence unimodularChain(unsigned Len) {
  TransformSequence S;
  for (unsigned I = 0; I < Len; ++I) {
    switch (I % 3) {
    case 0:
      S.append(makeUnimodular(3, UnimodularMatrix::skew(3, 0, 2, 1)));
      break;
    case 1:
      S.append(makeUnimodular(3, UnimodularMatrix::interchange(3, 0, 1)));
      break;
    default:
      S.append(makeUnimodular(3, UnimodularMatrix::reversal(3, 2)));
      break;
    }
  }
  return S;
}

void BM_Concatenate(benchmark::State &State) {
  TransformSequence A = unimodularChain(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    TransformSequence C = A.composedWith(A);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_Concatenate)->Arg(4)->Arg(16)->Arg(64);

void BM_Reduce(benchmark::State &State) {
  TransformSequence A = unimodularChain(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    TransformSequence R = A.reduced();
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Reduce)->Arg(4)->Arg(16)->Arg(64);

void BM_MapThroughChain(benchmark::State &State) {
  unsigned Len = static_cast<unsigned>(State.range(0));
  bool Reduced = State.range(1) != 0;
  TransformSequence S = unimodularChain(Len);
  if (Reduced)
    S = S.reduced();
  DepSet D;
  for (int I = 1; I <= 16; ++I)
    D.insert(DepVector::distances({I % 4, (I * 3) % 5, 1 + I % 2}));
  for (auto _ : State) {
    DepSet Out = mapDependences(S, D);
    benchmark::DoNotOptimize(Out);
  }
  State.counters["stages"] = static_cast<double>(S.size());
}
BENCHMARK(BM_MapThroughChain)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_CodegenThroughChain(benchmark::State &State) {
  unsigned Len = static_cast<unsigned>(State.range(0));
  bool Reduced = State.range(1) != 0;
  TransformSequence S = unimodularChain(Len);
  if (Reduced)
    S = S.reduced();
  LoopNest N = bench::deepNest(3);
  for (auto _ : State) {
    ErrorOr<LoopNest> Out = applySequence(S, N);
    benchmark::DoNotOptimize(Out);
  }
  State.counters["stages"] = static_cast<double>(S.size());
}
BENCHMARK(BM_CodegenThroughChain)->Args({8, 0})->Args({8, 1});

} // namespace

IRLT_BENCHMARK_MAIN();
