//===- bench/bench_c4_fanout.cpp - Matrix non-representability -----------===//
//
// Experiment C4 (DESIGN.md): "the Block and Interleave transformations
// may map d in D into as many as 2^(j-i+1) dependence vectors in D' (this
// is one reason why they cannot be represented by a matrix)" (Section 3.2).
// Measures the dependence-set growth under repeated Block/Interleave and
// contrasts it with the always-1:1 matrix-based templates.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

DepSet denseDeps(unsigned N, unsigned Count) {
  DepSet D;
  for (unsigned I = 0; I < Count; ++I) {
    std::vector<DepElem> Elems;
    Elems.push_back(DepElem::distance(1 + static_cast<int64_t>(I % 3)));
    for (unsigned K = 1; K < N; ++K)
      Elems.push_back(DepElem::distance(2 + static_cast<int64_t>((I + K) % 3)));
    D.insert(DepVector(std::move(Elems)));
  }
  return D;
}

void BM_FanOutBlock(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  std::vector<ExprRef> Bs(Depth, Expr::intConst(8));
  TemplateRef T = makeBlock(Depth, 1, Depth, Bs);
  DepSet D = denseDeps(Depth, 8);
  uint64_t Out = 0;
  for (auto _ : State) {
    DepSet M = T->mapDependences(D);
    Out = M.size();
    benchmark::DoNotOptimize(M);
  }
  State.counters["in"] = 8;
  State.counters["out"] = static_cast<double>(Out);
  State.counters["fanout_bound"] = static_cast<double>(1u << Depth);
}
BENCHMARK(BM_FanOutBlock)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_FanOutInterleave(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  std::vector<ExprRef> Is(Depth, Expr::intConst(4));
  TemplateRef T = makeInterleave(Depth, 1, Depth, Is);
  DepSet D = denseDeps(Depth, 8);
  uint64_t Out = 0;
  for (auto _ : State) {
    DepSet M = T->mapDependences(D);
    Out = M.size();
    benchmark::DoNotOptimize(M);
  }
  State.counters["out"] = static_cast<double>(Out);
}
BENCHMARK(BM_FanOutInterleave)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_FanOutMatrixTemplatesStayOneToOne(benchmark::State &State) {
  unsigned Depth = 4;
  UnimodularMatrix M = UnimodularMatrix::skew(Depth, 0, 3, 1) *
                       UnimodularMatrix::interchange(Depth, 1, 2);
  TemplateRef T = makeUnimodular(Depth, M);
  DepSet D = denseDeps(Depth, 8);
  uint64_t Out = 0;
  for (auto _ : State) {
    DepSet Mp = T->mapDependences(D);
    Out = Mp.size();
    benchmark::DoNotOptimize(Mp);
  }
  State.counters["out"] = static_cast<double>(Out); // == in (1:1)
}
BENCHMARK(BM_FanOutMatrixTemplatesStayOneToOne);

void BM_RepeatedBlockingGrowth(benchmark::State &State) {
  // Two levels of blocking (hierarchical tiling): the fan-outs compose.
  DepSet D = denseDeps(2, 4);
  TemplateRef T1 =
      makeBlock(2, 1, 2, {Expr::intConst(64), Expr::intConst(64)});
  TemplateRef T2 = makeBlock(4, 3, 4, {Expr::intConst(8), Expr::intConst(8)});
  uint64_t Out = 0;
  for (auto _ : State) {
    DepSet M = T2->mapDependences(T1->mapDependences(D));
    Out = M.size();
    benchmark::DoNotOptimize(M);
  }
  State.counters["out"] = static_cast<double>(Out);
}
BENCHMARK(BM_RepeatedBlockingGrowth);

} // namespace

IRLT_BENCHMARK_MAIN();
