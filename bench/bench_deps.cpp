//===- bench/bench_deps.cpp - Dependence oracle throughput ----------------===//
//
// Experiment D1: the two DepOracle backends (src/deps/,
// docs/DEPENDENCE.md) over a mixed corpus of unit-stride, strided, and
// conservative-fallback nests. Records nests/s per backend plus the
// differential cross-check rate, so BENCH_deps.json tracks both the
// production analyzer's throughput and the cost multiplier of the
// first-principles fm-exact backend across commits. The exact backend
// is the fuzzer's soundness referee; it may be slow, but its slowdown
// factor should stay visible.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "deps/CrossCheck.h"
#include "deps/DepOracle.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

std::vector<LoopNest> corpus() {
  std::vector<LoopNest> Out;
  // The paper's workhorse nests: stencil, matmul, triangular.
  Out.push_back(bench::stencilNest());
  Out.push_back(bench::matmulNest());
  Out.push_back(bench::triangularNest());
  Out.push_back(bench::deepNest(4));
  // Strided nests exercise the trip-counter d-space.
  Out.push_back(bench::parseOrDie("do i = 1, 100, 2\n"
                                  "  do j = 1, 50\n"
                                  "    a(i, j) = a(i - 2, j) + a(i, j - 1)\n"
                                  "  enddo\n"
                                  "enddo\n"));
  // GCD/parity independence: rational solutions, no integer ones.
  Out.push_back(bench::parseOrDie("do i = 1, 100\n"
                                  "  a(2 * i) = a(2 * i + 1)\n"
                                  "enddo\n"));
  // Conservative fallback: non-affine in every subscript dimension.
  Out.push_back(bench::parseOrDie("do i = 1, 10\n"
                                  "  do j = 1, 10\n"
                                  "    a(i * i, j * j) = a(i, j)\n"
                                  "  enddo\n"
                                  "enddo\n"));
  return Out;
}

void runOracle(benchmark::State &State, const deps::DepOracle &O) {
  std::vector<LoopNest> Nests = corpus();
  uint64_t Analyzed = 0, Vectors = 0;
  for (auto _ : State) {
    for (const LoopNest &N : Nests) {
      deps::DepResult R = O.analyze(N);
      benchmark::DoNotOptimize(R);
      ++Analyzed;
      Vectors += R.Deps.vectors().size();
    }
  }
  State.counters["nests_per_sec"] = benchmark::Counter(
      static_cast<double>(Analyzed), benchmark::Counter::kIsRate);
  State.counters["vectors_per_nest"] =
      Analyzed ? static_cast<double>(Vectors) / static_cast<double>(Analyzed)
               : 0.0;
}

void BM_DepsPipelineOracle(benchmark::State &State) {
  runOracle(State, deps::pipelineOracle());
}
BENCHMARK(BM_DepsPipelineOracle);

void BM_DepsFMExactOracle(benchmark::State &State) {
  runOracle(State, deps::fmExactOracle());
}
BENCHMARK(BM_DepsFMExactOracle);

void BM_DepsCrossCheck(benchmark::State &State) {
  // The full differential path the fuzzer's --deps mode runs per case:
  // both backends plus the coverage comparison.
  std::vector<LoopNest> Nests = corpus();
  uint64_t Checked = 0, Agreements = 0;
  for (auto _ : State) {
    for (const LoopNest &N : Nests) {
      deps::DepResult Fast = deps::pipelineOracle().analyze(N);
      deps::DepResult Exact = deps::fmExactOracle().analyze(N);
      deps::CrossCheckResult CC = deps::crossCheckDeps(Fast, Exact);
      benchmark::DoNotOptimize(CC);
      ++Checked;
      if (CC.Stat == deps::CrossCheckResult::Status::Agree)
        ++Agreements;
    }
  }
  State.counters["checks_per_sec"] = benchmark::Counter(
      static_cast<double>(Checked), benchmark::Counter::kIsRate);
  State.counters["agree_ratio"] =
      Checked ? static_cast<double>(Agreements) / static_cast<double>(Checked)
              : 0.0;
}
BENCHMARK(BM_DepsCrossCheck);

} // namespace

IRLT_BENCHMARK_MAIN()
