//===- bench/bench_fig1_stencil.cpp - Figure 1 end to end ----------------===//
//
// Experiment F1 (DESIGN.md): the Figure 1 stencil under skew+interchange.
// Measures (a) the full pipeline cost - analysis, legality, codegen - and
// (b) the *effect* of the transformation: the skewed nest's inner loop is
// parallelizable; we report the wavefront parallelism the evaluator
// observes, the paper's motivation for the example.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "eval/Evaluator.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

static void BM_Fig1FullPipeline(benchmark::State &State) {
  LoopNest N = bench::stencilNest();
  for (auto _ : State) {
    DepSet D = analyzeDependences(N);
    TransformSequence Seq = bench::figure1Sequence();
    LegalityResult L = isLegal(Seq, N, D);
    benchmark::DoNotOptimize(L);
    ErrorOr<LoopNest> Out = applySequence(Seq, N);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_Fig1FullPipeline);

static void BM_Fig1LegalityOnly(benchmark::State &State) {
  LoopNest N = bench::stencilNest();
  DepSet D = analyzeDependences(N);
  TransformSequence Seq = bench::figure1Sequence();
  for (auto _ : State) {
    LegalityResult L = isLegal(Seq, N, D);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_Fig1LegalityOnly);

static void BM_Fig1WavefrontParallelism(benchmark::State &State) {
  // Execute original vs transformed+parallelized; report avg parallelism.
  int64_t Size = State.range(0);
  LoopNest N = bench::stencilNest();
  TransformSequence Seq = bench::figure1Sequence().composedWith(
      TransformSequence::of({makeParallelize(2, {false, true})}));
  ErrorOr<LoopNest> Out = applySequence(Seq, N);
  assert(Out);
  EvalConfig C;
  C.Params["n"] = Size;
  double Par = 0;
  uint64_t Steps = 0;
  for (auto _ : State) {
    ArrayStore S;
    EvalResult R = evaluate(*Out, C, S);
    ParallelismStats P = parallelismStats(*Out, R);
    Par = P.AvgParallelism;
    Steps = P.SequentialSteps;
    benchmark::DoNotOptimize(R);
  }
  State.counters["avg_parallelism"] = Par;
  State.counters["seq_steps"] = static_cast<double>(Steps);
  State.counters["orig_seq_steps"] =
      static_cast<double>((Size - 2) * (Size - 2)); // fully sequential
}
BENCHMARK(BM_Fig1WavefrontParallelism)->Arg(16)->Arg(64)->Arg(128);

static void BM_Fig1ExecuteOriginal(benchmark::State &State) {
  int64_t Size = State.range(0);
  LoopNest N = bench::stencilNest();
  EvalConfig C;
  C.Params["n"] = Size;
  for (auto _ : State) {
    ArrayStore S;
    EvalResult R = evaluate(N, C, S);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Fig1ExecuteOriginal)->Arg(64);

static void BM_Fig1ExecuteTransformed(benchmark::State &State) {
  int64_t Size = State.range(0);
  LoopNest N = bench::stencilNest();
  ErrorOr<LoopNest> Out = applySequence(bench::figure1Sequence(), N);
  assert(Out);
  EvalConfig C;
  C.Params["n"] = Size;
  for (auto _ : State) {
    ArrayStore S;
    EvalResult R = evaluate(*Out, C, S);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Fig1ExecuteTransformed)->Arg(64);

IRLT_BENCHMARK_MAIN();
