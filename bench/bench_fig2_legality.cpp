//===- bench/bench_fig2_legality.cpp - Uniform legality throughput -------===//
//
// Experiment F2 (DESIGN.md): the uniform legality test of Section 3.2 on
// Figure 2-style decisions. Measures IsLegal throughput as a function of
// the dependence-set size and the sequence length - the operation an
// optimizer runs once per candidate transformation, which the paper
// argues is cheap because the loop nest is never modified during the
// search (Section 5, "arbitrary levels of search and undo").
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "legality/IncrementalEngine.h"
#include "transform/AutoPar.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

DepSet depsOfSize(unsigned Count) {
  DepSet D;
  for (unsigned I = 0; I < Count; ++I) {
    int64_t A = static_cast<int64_t>(I % 3) + 1;
    int64_t B = static_cast<int64_t>(I % 5) - 2;
    D.insert(DepVector::distances({A, B}));
  }
  return D;
}

void BM_LegalityVsDepCount(benchmark::State &State) {
  LoopNest N = bench::parseOrDie("do i = 2, n - 1\n  do j = 2, n - 1\n"
                                 "    a(i, j) = b(j)\n  enddo\nenddo\n");
  DepSet D = depsOfSize(static_cast<unsigned>(State.range(0)));
  TransformSequence Seq =
      TransformSequence::of({makeReversePermute(2, {false, true}, {1, 0})});
  uint64_t Legal = 0;
  for (auto _ : State) {
    LegalityResult R = isLegal(Seq, N, D);
    Legal += R.Legal;
    benchmark::DoNotOptimize(R);
  }
  benchmark::DoNotOptimize(Legal);
}
BENCHMARK(BM_LegalityVsDepCount)->Arg(2)->Arg(16)->Arg(128)->Arg(1024);

/// The repeated interchange+reverse chain (self-inverse overall) both
/// sequence-length series run on.
TransformSequence repeatedPairSeq(int64_t Pairs) {
  TransformSequence Seq;
  for (int64_t I = 0; I < Pairs; ++I) {
    Seq.append(makeReversePermute(2, {false, true}, {1, 0}));
    Seq.append(makeReversePermute(2, {true, false}, {1, 0}));
  }
  return Seq;
}

/// isLegal() is a shim over the prefix-memoized engine
/// (legality/IncrementalEngine.h): after the first iteration every
/// prefix of the chain is cached, so steady-state cost is one final
/// lexicographic test, independent of sequence length. Compare against
/// BM_LegalityVsSequenceLengthLegacy below for the uncached walk.
void BM_LegalityVsSequenceLength(benchmark::State &State) {
  LoopNest N = bench::parseOrDie("do i = 2, n - 1\n  do j = 2, n - 1\n"
                                 "    a(i, j) = b(j)\n  enddo\nenddo\n");
  DepSet D;
  D.insert(DepVector::distances({1, -1}));
  D.insert(DepVector({DepElem::pos(), DepElem::zero()}));
  TransformSequence Seq = repeatedPairSeq(State.range(0));
  for (auto _ : State) {
    LegalityResult R = isLegal(Seq, N, D);
    benchmark::DoNotOptimize(R);
  }
  State.counters["seq_len"] = static_cast<double>(Seq.size());
}
BENCHMARK(BM_LegalityVsSequenceLength)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// The legacy whole-sequence walk on the same chain - every stage
/// recomputed on every call (IncrementalEngine::reference). This is the
/// "legacy" series in BENCH_search.json; the ratio to the incremental
/// series above is the prefix cache's payoff.
void BM_LegalityVsSequenceLengthLegacy(benchmark::State &State) {
  LoopNest N = bench::parseOrDie("do i = 2, n - 1\n  do j = 2, n - 1\n"
                                 "    a(i, j) = b(j)\n  enddo\nenddo\n");
  DepSet D;
  D.insert(DepVector::distances({1, -1}));
  D.insert(DepVector({DepElem::pos(), DepElem::zero()}));
  TransformSequence Seq = repeatedPairSeq(State.range(0));
  for (auto _ : State) {
    LegalityResult R = legality::IncrementalEngine::reference(
        Seq, N, D, legality::Mode::Full);
    benchmark::DoNotOptimize(R);
  }
  State.counters["seq_len"] = static_cast<double>(Seq.size());
}
BENCHMARK(BM_LegalityVsSequenceLengthLegacy)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_LegalityReducedVsUnreduced(benchmark::State &State) {
  // The paper's efficiency note: reduce() shortens chains before testing.
  LoopNest N = bench::parseOrDie("do i = 2, n - 1\n  do j = 2, n - 1\n"
                                 "    a(i, j) = b(j)\n  enddo\nenddo\n");
  DepSet D;
  D.insert(DepVector::distances({1, -1}));
  TransformSequence Seq;
  for (int I = 0; I < 32; ++I)
    Seq.append(makeReversePermute(2, {I % 2 == 0, I % 3 == 0}, {1, 0}));
  bool Reduced = State.range(0) != 0;
  TransformSequence Use = Reduced ? Seq.reduced() : Seq;
  for (auto _ : State) {
    LegalityResult R = isLegal(Use, N, D);
    benchmark::DoNotOptimize(R);
  }
  State.counters["stages"] = static_cast<double>(Use.size());
}
BENCHMARK(BM_LegalityReducedVsUnreduced)->Arg(0)->Arg(1);

void BM_SearchEightPermutations(benchmark::State &State) {
  // The "search and undo" workload: test every signed permutation of a
  // 2-nest (8 candidates) against Figure 2's dependences, without ever
  // touching the nest.
  LoopNest N = bench::parseOrDie("do i = 2, n - 1\n  do j = 2, n - 1\n"
                                 "    a(i, j) = b(j)\n  enddo\nenddo\n");
  DepSet D;
  D.insert(DepVector::distances({1, -1}));
  D.insert(DepVector({DepElem::pos(), DepElem::zero()}));
  uint64_t LegalCount = 0;
  for (auto _ : State) {
    LegalCount = 0;
    for (unsigned P = 0; P < 2; ++P)
      for (unsigned R1 = 0; R1 < 2; ++R1)
        for (unsigned R2 = 0; R2 < 2; ++R2) {
          std::vector<unsigned> Perm =
              P ? std::vector<unsigned>{1, 0} : std::vector<unsigned>{0, 1};
          TransformSequence Seq = TransformSequence::of(
              {makeReversePermute(2, {R1 != 0, R2 != 0}, Perm)});
          LegalCount += isLegal(Seq, N, D).Legal;
        }
    benchmark::DoNotOptimize(LegalCount);
  }
  State.counters["legal_of_8"] = static_cast<double>(LegalCount);
}
BENCHMARK(BM_SearchEightPermutations);

void BM_AutoParSearch(benchmark::State &State) {
  // The full Section 5/6 workload: enumerate signed permutations and
  // wavefront hyperplanes, legality-test each (fast path), rank - the
  // nest is never modified. Stencil (needs a wavefront) vs matmul
  // (plain parallelization wins).
  bool Stencil = State.range(0) != 0;
  LoopNest N = Stencil ? bench::stencilNest() : bench::matmulNest();
  DepSet D = analyzeDependences(N);
  unsigned Enumerated = 0, Legal = 0;
  for (auto _ : State) {
    AutoParResult R = autoParallelize(N, D);
    Enumerated = R.Enumerated;
    Legal = R.Legal;
    benchmark::DoNotOptimize(R);
  }
  State.SetLabel(Stencil ? "stencil" : "matmul");
  State.counters["candidates"] = Enumerated;
  State.counters["legal"] = Legal;
}
BENCHMARK(BM_AutoParSearch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

IRLT_BENCHMARK_MAIN();
