//===- bench/bench_fig5_boundsrep.cpp - Figure 5 matrix representation ---===//
//
// Experiment F5 (DESIGN.md): the LB/UB/STEP matrix representation of
// Section 4.3. Measures building the matrices from a nest and evaluating
// type() predicates against them - the machinery that lets legality
// testing avoid materializing transformed bound expressions.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "bounds/BoundsMatrices.h"
#include "transform/TypeState.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

LoopNest fig5Nest() {
  return bench::parseOrDie("do i = max(n, 3), 100, 2\n"
                           "  do j = 1, min(2, i + 512), 1\n"
                           "    do k = sqrt(i) / 2, 2*j, i\n"
                           "      a(i, j, k) = 1\n"
                           "    enddo\n"
                           "  enddo\n"
                           "enddo\n");
}

void BM_BuildMatrices(benchmark::State &State) {
  LoopNest N = fig5Nest();
  for (auto _ : State) {
    BoundsMatrices M = BoundsMatrices::fromNest(N);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_BuildMatrices);

void BM_BuildMatricesDeep(benchmark::State &State) {
  LoopNest N = bench::deepNest(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    BoundsMatrices M = BoundsMatrices::fromNest(N);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_BuildMatricesDeep)->Arg(2)->Arg(4)->Arg(6);

void BM_TypePredicatesViaMatrices(benchmark::State &State) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  for (auto _ : State) {
    // All defined entries of all three matrices.
    int Acc = 0;
    for (unsigned R = 0; R < M.numLoops(); ++R)
      for (unsigned C = 1; C <= R; ++C) {
        Acc += static_cast<int>(M.lbType(R, C));
        Acc += static_cast<int>(M.ubType(R, C));
        Acc += static_cast<int>(M.stepType(R, C));
      }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_TypePredicatesViaMatrices);

void BM_TypePredicatesViaExpressions(benchmark::State &State) {
  // The baseline the matrices compete with: re-classifying the raw bound
  // expressions every time.
  LoopNest N = fig5Nest();
  for (auto _ : State) {
    int Acc = 0;
    for (unsigned R = 0; R < N.numLoops(); ++R)
      for (unsigned C = 0; C < R; ++C) {
        const std::string &Var = N.Loops[C].IndexVar;
        Acc += static_cast<int>(
            typeOfBound(N.Loops[R].Lower, Var, BoundSide::Lower, 1));
        Acc += static_cast<int>(
            typeOfBound(N.Loops[R].Upper, Var, BoundSide::Upper, 1));
        Acc += static_cast<int>(typeOf(N.Loops[R].Step, Var));
      }
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(BM_TypePredicatesViaExpressions);

void BM_FastLegalityFigure7(benchmark::State &State) {
  // The Section 4.3 payoff: the whole Figure 7 pipeline's legality via
  // type propagation, no bound expressions materialized.
  LoopNest N = bench::matmulNest();
  DepSet D = analyzeDependences(N);
  TransformSequence Seq = bench::figure7Sequence();
  for (auto _ : State) {
    LegalityResult L = isLegalFast(Seq, N, D);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_FastLegalityFigure7);

void BM_FullLegalityFigure7(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  DepSet D = analyzeDependences(N);
  TransformSequence Seq = bench::figure7Sequence();
  for (auto _ : State) {
    LegalityResult L = isLegal(Seq, N, D);
    benchmark::DoNotOptimize(L);
  }
}
BENCHMARK(BM_FullLegalityFigure7);

void BM_MatrixRendering(benchmark::State &State) {
  BoundsMatrices M = BoundsMatrices::fromNest(fig5Nest());
  for (auto _ : State) {
    std::string S = M.str();
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_MatrixRendering);

} // namespace

IRLT_BENCHMARK_MAIN();
