//===- bench/bench_fig7_matmul.cpp - Figures 6/7 + Appendix A ------------===//
//
// Experiment F6/F7 (DESIGN.md): the matrix-multiply example driven
// through the five-stage Appendix A sequence. Measures the pipeline cost
// per stage and the *effect*: simulated cache miss ratios of the naive
// vs blocked matmul (the data-locality motivation), plus the parallelism
// exposed by the pardo jic loop.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "cachesim/Cache.h"
#include "eval/Evaluator.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

void BM_Fig7PipelineLegalityAndCodegen(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  DepSet D = analyzeDependences(N);
  TransformSequence Seq = bench::figure7Sequence();
  for (auto _ : State) {
    LegalityResult L = isLegal(Seq, N, D);
    benchmark::DoNotOptimize(L);
    ErrorOr<LoopNest> Out = applySequence(Seq, N);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_Fig7PipelineLegalityAndCodegen);

void BM_Fig7StagewiseDepMapping(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  DepSet D0 = analyzeDependences(N);
  TransformSequence Seq = bench::figure7Sequence();
  for (auto _ : State) {
    DepSet D = mapDependences(Seq, D0);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_Fig7StagewiseDepMapping);

/// Runs a nest and replays its trace through a small cache.
double missRatioOf(const LoopNest &Nest, const EvalConfig &Config,
                   int64_t Size) {
  EvalConfig C = Config;
  C.RecordAccesses = true;
  ArrayStore S;
  EvalResult R = evaluate(Nest, C, S);
  ArrayLayout L;
  L.declare("A", {1, 1}, {Size, Size});
  L.declare("B", {1, 1}, {Size, Size});
  L.declare("C", {1, 1}, {Size, Size});
  return replayTrace(R.Accesses, L, CacheConfig{8 * 1024, 64, 4});
}

void BM_Fig7CacheMissNaiveVsBlocked(benchmark::State &State) {
  int64_t Size = State.range(0);
  LoopNest N = bench::matmulNest();
  ErrorOr<LoopNest> Blocked = applySequence(bench::figure7Sequence(), N);
  assert(Blocked);
  EvalConfig C;
  C.Params = {{"n", Size}, {"bj", 8}, {"bk", 8}, {"bi", 8}};
  double MissNaive = 0, MissBlocked = 0;
  for (auto _ : State) {
    MissNaive = missRatioOf(N, C, Size);
    MissBlocked = missRatioOf(*Blocked, C, Size);
    benchmark::DoNotOptimize(MissNaive);
    benchmark::DoNotOptimize(MissBlocked);
  }
  State.counters["miss_naive"] = MissNaive;
  State.counters["miss_blocked"] = MissBlocked;
  State.counters["improvement"] =
      MissBlocked > 0 ? MissNaive / MissBlocked : 0.0;
}
BENCHMARK(BM_Fig7CacheMissNaiveVsBlocked)->Arg(24)->Arg(40)->Unit(
    benchmark::kMillisecond);

void BM_Fig7ParallelismOfJic(benchmark::State &State) {
  int64_t Size = State.range(0);
  LoopNest N = bench::matmulNest();
  ErrorOr<LoopNest> Out = applySequence(bench::figure7Sequence(), N);
  assert(Out);
  EvalConfig C;
  C.Params = {{"n", Size}, {"bj", 4}, {"bk", 4}, {"bi", 4}};
  double Par = 0;
  for (auto _ : State) {
    ArrayStore S;
    EvalResult R = evaluate(*Out, C, S);
    ParallelismStats P = parallelismStats(*Out, R);
    Par = P.AvgParallelism;
    benchmark::DoNotOptimize(R);
  }
  State.counters["avg_parallelism"] = Par;
}
BENCHMARK(BM_Fig7ParallelismOfJic)->Arg(16)->Unit(benchmark::kMillisecond);

} // namespace

IRLT_BENCHMARK_MAIN();
