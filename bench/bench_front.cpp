//===- bench/bench_front.cpp - Sharded front throughput -------------------===//
//
// Experiment F1: the irlt-front sharded multi-process front (docs/
// FRONT.md) against a direct single-process server on the same corpus.
// The front buys isolation (a crashed worker strands one shard, not the
// service) and per-shard cache locality (same canonicalNestKey -> same
// worker); what it costs is a forwarding hop per request. BENCH_front
// .json tracks both passes - cold (workers fresh) and warm (worker
// caches hot) - plus the robustness price tag: how long a killed worker
// takes to be detected, respawned, and probed back to healthy.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "front/Front.h"
#include "serve/Client.h"
#include "serve/Server.h"
#include "support/Json.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace irlt;

namespace {

#ifndef IRLT_SERVE_PATH
#define IRLT_SERVE_PATH "irlt-serve"
#endif

constexpr uint64_t RecvMs = 120000;

std::string sockPath(const std::string &Name) {
  return (std::filesystem::temp_directory_path() /
          ("irlt_bench_front_" + Name + ".sock"))
      .string();
}

/// The replayed corpus: the bench nests under scripts and the planner,
/// repeated so per-shard caches see the repeated-nest profile a
/// long-lived service actually has.
std::vector<std::string> corpus(unsigned Repeats) {
  auto Item = [](const std::string &Id, const LoopNest &Nest,
                 const std::string &Fields) {
    return "{\"id\": \"" + Id + "\", \"nest\": \"" +
           json::escape(Nest.str()) + "\", " + Fields + "}";
  };
  std::vector<std::string> Lines;
  for (unsigned R = 0; R < Repeats; ++R) {
    std::string Tag = std::to_string(R);
    Lines.push_back(Item("stencil-" + Tag, bench::stencilNest(),
                         "\"script\": \"skew 1 2 1\\ninterchange 1 2\", "
                         "\"reduce\": true"));
    Lines.push_back(Item("matmul-block-" + Tag, bench::matmulNest(),
                         "\"script\": \"block 1 3 8 8 8\""));
    Lines.push_back(Item("matmul-auto-" + Tag, bench::matmulNest(),
                         "\"auto\": \"locality\", \"beam\": 2, \"depth\": 1"));
    Lines.push_back(Item("triangular-" + Tag, bench::triangularNest(),
                         "\"script\": \"interchange 1 2\""));
  }
  return Lines;
}

/// Pipelines the whole corpus down one connection and drains one
/// response per request. Returns wall nanoseconds for the pass, or 0 on
/// any transport failure.
uint64_t timedPass(const std::string &Sock,
                   const std::vector<std::string> &Lines) {
  ErrorOr<serve::ClientConn> C = serve::connectUnix(Sock);
  if (!C)
    return 0;
  auto T0 = std::chrono::steady_clock::now();
  for (const std::string &L : Lines)
    if (!C->sendFrame(L))
      return 0;
  for (size_t I = 0; I < Lines.size(); ++I)
    if (!C->recvFrame(RecvMs))
      return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
}

/// Polls the front's aggregated healthz for up to \p Millis, first
/// until the outage is visible (ok:false - the killed worker can take a
/// few ms to actually exit, and a poll before that would clock a
/// recovery that never happened), then until ok:true again. Returns the
/// nanoseconds from the first poll to recovery, or 0 if either phase
/// timed out.
uint64_t waitDownThenHealthyNs(const std::string &Sock, int Millis) {
  auto T0 = std::chrono::steady_clock::now();
  bool SawDown = false;
  for (int I = 0; I < Millis / 10; ++I) {
    ErrorOr<serve::ClientConn> C = serve::connectUnix(Sock);
    if (C && C->sendFrame("{\"op\":\"healthz\",\"id\":\"w\"}")) {
      ErrorOr<std::string> P = C->recvFrame(5000);
      if (P && P->find("\"ok\":false") != std::string::npos)
        SawDown = true;
      if (SawDown && P && P->find("\"ok\":true") != std::string::npos)
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

/// Arg(0): 0 = direct single-process server (in-process, the PR-6
/// baseline), N > 0 = irlt-front with N spawned worker shards. Each
/// iteration starts the service fresh, runs a cold pass and a warm pass
/// of the same corpus, and drains.
void BM_FrontVsDirectThroughput(benchmark::State &State) {
  const std::vector<std::string> Lines = corpus(/*Repeats=*/10);
  const unsigned Shards = static_cast<unsigned>(State.range(0));
  uint64_t ColdNs = 0, WarmNs = 0;
  for (auto _ : State) {
    if (Shards == 0) {
      serve::ServeOptions O;
      O.SocketPath = sockPath("direct");
      serve::Server S(O);
      if (!S.start())
        continue;
      ColdNs = timedPass(O.SocketPath, Lines);
      WarmNs = timedPass(O.SocketPath, Lines);
      S.requestDrain();
      S.run();
    } else {
      front::FrontOptions O;
      O.SocketPath = sockPath("front");
      O.Shards = Shards;
      O.ServeBinary = IRLT_SERVE_PATH;
      front::Front F(O);
      if (!F.start())
        continue;
      ColdNs = timedPass(O.SocketPath, Lines);
      WarmNs = timedPass(O.SocketPath, Lines);
      F.requestDrain();
      F.run();
    }
  }
  double N = static_cast<double>(Lines.size());
  State.counters["shards"] = Shards;
  State.counters["requests"] = N;
  State.counters["cold_requests_per_sec"] =
      ColdNs ? N / (static_cast<double>(ColdNs) * 1e-9) : 0;
  State.counters["warm_requests_per_sec"] =
      WarmNs ? N / (static_cast<double>(WarmNs) * 1e-9) : 0;
}
BENCHMARK(BM_FrontVsDirectThroughput)->Arg(0)->Arg(1)->Arg(3)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// The robustness price tag: with the worker-kill fault armed, one
/// marker request crashes the only shard's worker right after it
/// responds. Measures kill -> supervisor reap -> backoff -> respawn ->
/// journal replay -> healthz ok, as seen by a client.
void BM_FrontRestartToHealthy(benchmark::State &State) {
  uint64_t RestartNs = 0;
  for (auto _ : State) {
    front::FrontOptions O;
    O.SocketPath = sockPath("restart");
    O.Shards = 1;
    O.ServeBinary = IRLT_SERVE_PATH;
    O.Faults.WorkerKill = true;
    O.RestartBackoffMillis = 50;
    O.ProbeIntervalMillis = 100;
    front::Front F(O);
    if (!F.start())
      continue;
    {
      ErrorOr<serve::ClientConn> C = serve::connectUnix(O.SocketPath);
      if (!C)
        continue;
      std::string Req = "{\"id\": \"kill-now\", \"nest\": \"" +
                        json::escape(bench::matmulNest().str()) +
                        "\", \"script\": \"interchange 1 2\"}";
      if (!C->sendFrame(Req) || !C->recvFrame(RecvMs))
        continue;
    }
    // The worker is now dead (or dying); clock the full recovery.
    RestartNs = waitDownThenHealthyNs(O.SocketPath, /*Millis=*/30000);
    F.requestDrain();
    F.run();
  }
  State.counters["restart_to_healthy_ms"] =
      static_cast<double>(RestartNs) * 1e-6;
  State.counters["backoff_ms"] = 50;
}
BENCHMARK(BM_FrontRestartToHealthy)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

} // namespace

IRLT_BENCHMARK_MAIN();
