//===- bench/bench_native.cpp - Measured native wall-clock ----------------===//
//
// Experiment N1: the first *honest* speedup numbers in the suite - the
// emitted differential harness (docs/CODEGEN.md) compiled with the host
// C compiler and timed on real hardware, instead of the cache-model
// proxy costs every other benchmark reports. Scenarios:
//
//   - matmul loop interchange (i-j-k -> i-k-j): wall-clock ratio of the
//     transformed kernel over the original, plus the harness verdict;
//   - blocked matmul (Table 4's template) at the same size;
//   - pardo scaling: a parallelized nest run under OMP_NUM_THREADS in
//     {1, 2, 4, 8}, reporting per-thread-count wall-clock;
//   - native-vs-interpreter: the same kernel timed compiled and under
//     the bounded interpreter, pinning the execution-budget split that
//     docs/LEGALITY.md's validation ladder is built on.
//
// Machines without a host C compiler report native_available=0 for
// every scenario and exit 0, so BENCH_native.json is always written but
// never silently fabricated (run_all.sh aborts on real failures).
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "cgen/Cgen.h"
#include "cgen/NativeRunner.h"
#include "driver/Script.h"
#include "eval/Evaluator.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

using namespace irlt;

namespace {

const std::string &hostCompiler() {
  static const std::string CC = cgen::probeCompiler();
  return CC;
}

/// Emits the (original, script-transformed) pair and runs it natively
/// with the given timing repetitions. Returns Status != Ok on any
/// infrastructure problem; the caller reports counters from the result.
cgen::NativeResult runPair(const LoopNest &Nest, const std::string &Script,
                           const std::map<std::string, int64_t> &Bindings,
                           unsigned Reps, bool OpenMP) {
  cgen::NativeResult Bad;
  ErrorOr<TransformSequence> Seq =
      parseTransformScript(Script, Nest.numLoops());
  if (!Seq)
    return Bad;
  ErrorOr<LoopNest> Out = applySequence(*Seq, Nest);
  if (!Out)
    return Bad;
  cgen::ProgramOptions PO;
  PO.Bindings = Bindings;
  PO.TimingReps = Reps;
  PO.UseOpenMP = OpenMP;
  ErrorOr<std::vector<cgen::ArrayShape>> Shapes =
      cgen::arrayShapes(Nest, Bindings, 1u << 22);
  if (!Shapes)
    return Bad;
  ErrorOr<std::string> Program = cgen::emitProgram(Nest, &*Out, *Shapes, PO);
  if (!Program)
    return Bad;
  cgen::NativeRunOptions RO;
  RO.Compiler = hostCompiler();
  RO.OpenMP = OpenMP;
  return cgen::runNative(*Program, RO);
}

void reportNative(benchmark::State &State, const cgen::NativeResult &R) {
  State.counters["native_available"] = 1;
  State.counters["match"] = R.Match ? 1 : 0;
  State.counters["ns_original"] = static_cast<double>(R.NsOriginal);
  State.counters["ns_transformed"] = static_cast<double>(R.NsTransformed);
  State.counters["wallclock_ratio"] =
      R.NsTransformed > 0 ? static_cast<double>(R.NsOriginal) /
                                static_cast<double>(R.NsTransformed)
                          : 0;
}

bool skipWithoutCompiler(benchmark::State &State) {
  if (!hostCompiler().empty())
    return false;
  for (auto _ : State) {
  }
  State.counters["native_available"] = 0;
  return true;
}

/// Matmul i-j-k vs i-k-j: the interchange moves the stride-n C(k, j)
/// access off the innermost loop, the textbook locality win.
void BM_NativeMatmulInterchange(benchmark::State &State) {
  if (skipWithoutCompiler(State))
    return;
  int64_t N = State.range(0);
  cgen::NativeResult R = runPair(bench::matmulNest(), "interchange 2 3",
                                 {{"n", N}}, /*Reps=*/3, /*OpenMP=*/false);
  for (auto _ : State) {
    benchmark::DoNotOptimize(R.ExitCode);
  }
  reportNative(State, R);
}
BENCHMARK(BM_NativeMatmulInterchange)->Arg(192)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// Table 4's blocked matmul at the same size, against the untransformed
/// original.
void BM_NativeMatmulBlocked(benchmark::State &State) {
  if (skipWithoutCompiler(State))
    return;
  int64_t N = State.range(0);
  cgen::NativeResult R = runPair(bench::matmulNest(), "block 1 3 16 16 16",
                                 {{"n", N}}, /*Reps=*/3, /*OpenMP=*/false);
  for (auto _ : State) {
    benchmark::DoNotOptimize(R.ExitCode);
  }
  reportNative(State, R);
}
BENCHMARK(BM_NativeMatmulBlocked)->Arg(192)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// Parallelize 1 turns the outer matmul loop into a pardo, emitted as
/// `#pragma omp parallel for`; sweep OMP_NUM_THREADS and report the
/// transformed kernel's wall-clock per thread count.
void BM_NativePardoScaling(benchmark::State &State) {
  if (skipWithoutCompiler(State))
    return;
  int64_t Threads = State.range(0);
  ::setenv("OMP_NUM_THREADS", std::to_string(Threads).c_str(), 1);
  cgen::NativeResult R = runPair(bench::matmulNest(), "parallelize 1",
                                 {{"n", 192}}, /*Reps=*/3, /*OpenMP=*/true);
  ::unsetenv("OMP_NUM_THREADS");
  for (auto _ : State) {
    benchmark::DoNotOptimize(R.ExitCode);
  }
  reportNative(State, R);
  State.counters["omp_threads"] = static_cast<double>(R.Threads);
}
BENCHMARK(BM_NativePardoScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// The execution-budget split behind docs/LEGALITY.md: the same matmul
/// at a validation-sized binding, once under the bounded interpreter
/// and once compiled. The ratio is why the native tier can afford
/// bindings ~20x larger than the interpreted defaults.
void BM_NativeVsInterpreter(benchmark::State &State) {
  if (skipWithoutCompiler(State))
    return;
  int64_t N = State.range(0);
  std::map<std::string, int64_t> Bindings{{"n", N}};
  LoopNest Nest = bench::matmulNest();

  auto Start = std::chrono::steady_clock::now();
  ErrorOr<std::vector<cgen::ArrayShape>> Shapes =
      cgen::arrayShapes(Nest, Bindings, 1u << 22);
  cgen::ProgramOptions PO;
  PO.Bindings = Bindings;
  cgen::InterpChecksums IC =
      cgen::interpretChecksums(Nest, nullptr, *Shapes, PO, 1ull << 32);
  double InterpNs = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());

  cgen::NativeResult R =
      runPair(Nest, "", Bindings, /*Reps=*/3, /*OpenMP=*/false);
  for (auto _ : State) {
    benchmark::DoNotOptimize(R.ExitCode);
  }
  reportNative(State, R);
  State.counters["interp_ok"] = IC.Ok ? 1 : 0;
  State.counters["ns_interpreted"] = InterpNs;
  State.counters["interp_over_native"] =
      R.NsOriginal > 0 ? InterpNs / static_cast<double>(R.NsOriginal) : 0;
}
BENCHMARK(BM_NativeVsInterpreter)->Arg(96)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

IRLT_BENCHMARK_MAIN()
