//===- bench/bench_search.cpp - Search engine throughput ------------------===//
//
// Experiment S1: the cost-model-guided beam search (docs/SEARCH.md) on
// the paper's nests. Measures end-to-end search latency per objective
// and the thread-scaling of the depth-2 frontier, and records the
// winner's simulated miss ratio so BENCH_search.json tracks result
// quality alongside speed.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "search/Search.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;
using namespace irlt::search;

namespace {

void recordResult(benchmark::State &State, const SearchResult &R) {
  State.counters["enumerated"] = static_cast<double>(R.Stats.Enumerated);
  State.counters["legal"] = static_cast<double>(R.Stats.Legal);
  if (R.Best && R.Best->MissRatio >= 0)
    State.counters["winner_miss_ratio"] = R.Best->MissRatio;
}

void BM_SearchMatmulLocality(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  DepSet D = analyzeDependences(N);
  SearchOptions O;
  O.Obj = Objective::Locality;
  O.Depth = 1;
  SearchResult R;
  for (auto _ : State) {
    R = searchTransformations(N, D, O);
    benchmark::DoNotOptimize(R);
  }
  recordResult(State, R);
}
BENCHMARK(BM_SearchMatmulLocality)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_SearchTrapezoidLocality(benchmark::State &State) {
  LoopNest N = bench::triangularNest();
  DepSet D = analyzeDependences(N);
  SearchOptions O;
  O.Obj = Objective::Locality;
  O.Depth = 1;
  SearchResult R;
  for (auto _ : State) {
    R = searchTransformations(N, D, O);
    benchmark::DoNotOptimize(R);
  }
  recordResult(State, R);
}
BENCHMARK(BM_SearchTrapezoidLocality)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_SearchMatmulParallelism(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  DepSet D = analyzeDependences(N);
  SearchOptions O;
  O.Obj = Objective::Parallelism;
  O.Depth = 1;
  SearchResult R;
  for (auto _ : State) {
    R = searchTransformations(N, D, O);
    benchmark::DoNotOptimize(R);
  }
  recordResult(State, R);
}
BENCHMARK(BM_SearchMatmulParallelism)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

/// Thread scaling of the expensive level: matmul at depth 2 with the
/// full default candidate space, 1 vs 4 workers. The results are
/// byte-identical by contract; only the wall time may differ.
void BM_SearchMatmulDepth2Threads(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  DepSet D = analyzeDependences(N);
  SearchOptions O;
  O.Obj = Objective::Both;
  O.Depth = 2;
  O.Beam = 4;
  O.Threads = static_cast<unsigned>(State.range(0));
  SearchResult R;
  for (auto _ : State) {
    R = searchTransformations(N, D, O);
    benchmark::DoNotOptimize(R);
  }
  recordResult(State, R);
}
BENCHMARK(BM_SearchMatmulDepth2Threads)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

} // namespace

IRLT_BENCHMARK_MAIN();
