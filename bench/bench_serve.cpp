//===- bench/bench_serve.cpp - Serve-layer throughput ---------------------===//
//
// Experiment S1: the irlt-serve service layer (docs/SERVE.md) under its
// three cache temperatures. The daemon's determinism contract says the
// response stream is byte-identical whether the memoization caches are
// cold (fresh start), warm (long-lived process), or restored (rewarmed
// from the crash-safe journal); what differs is throughput, and that
// difference is the whole point of running a daemon instead of invoking
// irlt-batch per corpus. BENCH_serve.json tracks all three so the
// restart penalty (restored vs warm) and the daemon dividend (warm vs
// cold) have a perf trajectory. A fourth scenario prices the wire
// framing itself (encode + FrameReader parse), which must stay in the
// noise next to request processing.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "engine/Engine.h"
#include "ir/NestHash.h"
#include "serve/Frame.h"
#include "serve/Journal.h"
#include "support/Json.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace irlt;

namespace {

/// One corpus item: the request line plus the journal source fields the
/// serve workers would have collected for it (script empty in auto
/// mode, matching CacheJournal semantics).
struct CorpusItem {
  std::string Line;
  std::string NestSource;
  std::string Script;
};

CorpusItem item(const std::string &Id, const LoopNest &Nest,
                const std::string &Fields, const std::string &Script) {
  CorpusItem C;
  C.NestSource = Nest.str();
  C.Script = Script;
  C.Line = "{\"id\": \"" + Id + "\", \"nest\": \"" + json::escape(C.NestSource) +
           "\", " + Fields + "}";
  return C;
}

/// The replayed corpus: the bench nests under scripts and the planner,
/// repeated so the caches see the repeated-nest profile a long-lived
/// service actually has.
std::vector<CorpusItem> corpus(unsigned Repeats) {
  std::vector<CorpusItem> Items;
  for (unsigned R = 0; R < Repeats; ++R) {
    std::string Tag = std::to_string(R);
    Items.push_back(item("stencil-" + Tag, bench::stencilNest(),
                         "\"script\": \"skew 1 2 1\\ninterchange 1 2\", "
                         "\"reduce\": true",
                         "skew 1 2 1\ninterchange 1 2"));
    Items.push_back(item("matmul-block-" + Tag, bench::matmulNest(),
                         "\"script\": \"block 1 3 8 8 8\"",
                         "block 1 3 8 8 8"));
    Items.push_back(item("matmul-auto-" + Tag, bench::matmulNest(),
                         "\"auto\": \"locality\", \"beam\": 2, \"depth\": 1",
                         ""));
    Items.push_back(item("triangular-" + Tag, bench::triangularNest(),
                         "\"script\": \"interchange 1 2\"",
                         "interchange 1 2"));
  }
  return Items;
}

std::vector<std::string> lines(const std::vector<CorpusItem> &Items) {
  std::vector<std::string> Lines;
  Lines.reserve(Items.size());
  for (const CorpusItem &C : Items)
    Lines.push_back(C.Line);
  return Lines;
}

/// Builds the journal a drained daemon would have dumped after serving
/// \p Items, and writes it to a temp path. Returns the path.
std::string dumpJournal(const std::vector<CorpusItem> &Items) {
  serve::CacheJournal J(/*Capacity=*/0);
  api::Pipeline P;
  for (const CorpusItem &C : Items) {
    ErrorOr<LoopNest> Nest = P.loadNest(C.NestSource);
    if (Nest)
      J.record(canonicalNestKey(*Nest), C.NestSource, C.Script);
  }
  std::string Path =
      (std::filesystem::temp_directory_path() / "irlt_bench_serve.journal")
          .string();
  ErrorOr<uint64_t> N = J.dump(Path);
  if (!N)
    std::fprintf(stderr, "bench_serve: journal dump failed: %s\n",
                 N.message().c_str());
  return Path;
}

/// Arg(0): 0 = cold (fresh engine), 1 = warm (engine pre-warmed by one
/// full corpus pass), 2 = restored (fresh engine rewarmed from the
/// journal dump before serving).
void BM_ServeCacheTemperature(benchmark::State &State) {
  const std::vector<CorpusItem> Items = corpus(/*Repeats=*/20);
  const std::vector<std::string> Lines = lines(Items);
  const int Mode = static_cast<int>(State.range(0));
  const std::string JournalPath = Mode == 2 ? dumpJournal(Items) : "";

  engine::EngineOptions O;
  O.Jobs = 4;
  engine::EngineMetrics M;
  serve::JournalLoadResult Load;
  uint64_t RewarmNs = 0;
  for (auto _ : State) {
    engine::BatchEngine E(O);
    if (Mode == 1)
      E.runToString(Lines); // warm pass, deliberately inside the timer:
                            // kept out of req/s via M.WallNs below
    if (Mode == 2) {
      auto T0 = std::chrono::steady_clock::now();
      Load = serve::CacheJournal(0).loadAndReplay(JournalPath, E.pipeline());
      RewarmNs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - T0)
              .count());
    }
    std::string Out = E.runToString(Lines, &M);
    benchmark::DoNotOptimize(Out);
  }
  double WallSec = static_cast<double>(M.WallNs) * 1e-9;
  State.counters["mode"] = Mode;
  State.counters["requests"] = static_cast<double>(M.Requests);
  State.counters["requests_per_sec"] =
      WallSec > 0 ? static_cast<double>(M.Requests) / WallSec : 0;
  State.counters["dep_cache_hit_rate"] = M.Cache.depHitRate();
  State.counters["legality_cache_hit_rate"] = M.Cache.legalityHitRate();
  State.counters["journal_replayed"] = static_cast<double>(Load.Replayed);
  State.counters["rewarm_ms"] = static_cast<double>(RewarmNs) * 1e-6;
  if (Mode == 2)
    std::filesystem::remove(JournalPath);
}
BENCHMARK(BM_ServeCacheTemperature)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// The framing layer alone: encode every corpus line into a frame, then
/// parse the concatenated stream back with FrameReader. Reported as
/// frames/s and MB/s; the serve protocol's fixed overhead.
void BM_FrameCodec(benchmark::State &State) {
  const std::vector<std::string> Lines = lines(corpus(/*Repeats=*/50));
  std::string Wire;
  for (const std::string &L : Lines)
    Wire += serve::encodeFrame(L);
  uint64_t Frames = 0;
  for (auto _ : State) {
    serve::FrameReader R;
    R.feed(Wire);
    std::string Payload;
    while (R.next(Payload) == serve::FrameReader::Status::Frame) {
      benchmark::DoNotOptimize(Payload);
      ++Frames;
    }
  }
  State.SetBytesProcessed(static_cast<int64_t>(
      static_cast<uint64_t>(State.iterations()) * Wire.size()));
  State.counters["frames_per_iter"] =
      State.iterations() ? static_cast<double>(Frames) /
                               static_cast<double>(State.iterations())
                         : 0;
}
BENCHMARK(BM_FrameCodec)->Unit(benchmark::kMicrosecond);

} // namespace

IRLT_BENCHMARK_MAIN();
