//===- bench/bench_table1_templates.cpp - Table 1 instantiation cost -----===//
//
// Experiment T1 (DESIGN.md): the kernel template set of Table 1.
// Measures the cost of instantiating each template and of building
// sequences from them - the operations an optimizer's search loop
// performs per candidate transformation, which the paper argues must be
// cheap because templates are independent of loop nests ("transformations
// may be created, instantiated, composed, and destroyed, without being
// tied to a particular loop nest", Section 5).
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

static void BM_InstantiateUnimodular(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    TemplateRef T = makeUnimodular(N, UnimodularMatrix::skew(N, 0, N - 1, 2));
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_InstantiateUnimodular)->Arg(2)->Arg(4)->Arg(6);

static void BM_InstantiateReversePermute(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::vector<unsigned> Perm(N);
  for (unsigned K = 0; K < N; ++K)
    Perm[K] = (K + 1) % N;
  std::vector<bool> Rev(N, false);
  Rev[0] = true;
  for (auto _ : State) {
    TemplateRef T = makeReversePermute(N, Rev, Perm);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_InstantiateReversePermute)->Arg(2)->Arg(4)->Arg(6);

static void BM_InstantiateBlock(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  std::vector<ExprRef> Bs(N, Expr::intConst(16));
  for (auto _ : State) {
    TemplateRef T = makeBlock(N, 1, N, Bs);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_InstantiateBlock)->Arg(2)->Arg(4)->Arg(6);

static void BM_BuildFigure7Sequence(benchmark::State &State) {
  for (auto _ : State) {
    TransformSequence S = bench::figure7Sequence();
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_BuildFigure7Sequence);

static void BM_SequenceConcatenation(benchmark::State &State) {
  TransformSequence A = bench::figure7Sequence();
  TransformSequence B = bench::figure7Sequence();
  for (auto _ : State) {
    TransformSequence C = A.composedWith(B);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_SequenceConcatenation);

IRLT_BENCHMARK_MAIN();
