//===- bench/bench_table2_depmap.cpp - Table 2 mapping throughput --------===//
//
// Experiment T2 (DESIGN.md): dependence-vector mapping rules of Table 2.
// Measures the per-template cost of mapping dependence sets of varying
// size through each rule - the inner operation of the uniform legality
// test. Block/Interleave are expected to be the slow (fan-out) rules;
// ReversePermute the cheap one (the Section 4.2/5 cost claim, quantified
// against Unimodular by bench_c1).
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

/// A mixed dependence set with the requested number of vectors.
DepSet mixedDeps(unsigned N, unsigned Count) {
  DepSet D;
  for (unsigned I = 0; I < Count; ++I) {
    std::vector<DepElem> Elems;
    for (unsigned K = 0; K < N; ++K) {
      switch ((I + K) % 5) {
      case 0:
        Elems.push_back(DepElem::distance(static_cast<int64_t>(I % 3)));
        break;
      case 1:
        Elems.push_back(DepElem::pos());
        break;
      case 2:
        Elems.push_back(DepElem::zero());
        break;
      case 3:
        Elems.push_back(DepElem::zeroPos());
        break;
      default:
        Elems.push_back(DepElem::distance(1));
        break;
      }
    }
    // Keep the set lexicographically non-negative: prepend a positive head.
    Elems[0] = DepElem::distance(static_cast<int64_t>(1 + I % 4));
    D.insert(DepVector(std::move(Elems)));
  }
  return D;
}

void runMapping(benchmark::State &State, const TemplateRef &T, unsigned N) {
  DepSet D = mixedDeps(N, static_cast<unsigned>(State.range(0)));
  uint64_t OutVectors = 0;
  for (auto _ : State) {
    DepSet Out = T->mapDependences(D);
    OutVectors = Out.size();
    benchmark::DoNotOptimize(Out);
  }
  State.counters["in_vectors"] = static_cast<double>(D.size());
  State.counters["out_vectors"] = static_cast<double>(OutVectors);
}

void BM_MapReversePermute(benchmark::State &State) {
  runMapping(State, makeReversePermute(4, {true, false, true, false},
                                       {3, 1, 0, 2}),
             4);
}
BENCHMARK(BM_MapReversePermute)->Arg(4)->Arg(32)->Arg(256);

void BM_MapUnimodular(benchmark::State &State) {
  UnimodularMatrix M = UnimodularMatrix::skew(4, 0, 3, 2) *
                       UnimodularMatrix::interchange(4, 1, 2);
  runMapping(State, makeUnimodular(4, M), 4);
}
BENCHMARK(BM_MapUnimodular)->Arg(4)->Arg(32)->Arg(256);

void BM_MapParallelize(benchmark::State &State) {
  runMapping(State, makeParallelize(4, {true, false, true, false}), 4);
}
BENCHMARK(BM_MapParallelize)->Arg(4)->Arg(32)->Arg(256);

void BM_MapBlockFanOut(benchmark::State &State) {
  std::vector<ExprRef> Bs(4, Expr::intConst(8));
  runMapping(State, makeBlock(4, 1, 4, Bs), 4);
}
BENCHMARK(BM_MapBlockFanOut)->Arg(4)->Arg(32)->Arg(256);

void BM_MapInterleaveFanOut(benchmark::State &State) {
  std::vector<ExprRef> Is(4, Expr::intConst(4));
  runMapping(State, makeInterleave(4, 1, 4, Is), 4);
}
BENCHMARK(BM_MapInterleaveFanOut)->Arg(4)->Arg(32)->Arg(256);

void BM_MapCoalesce(benchmark::State &State) {
  runMapping(State, makeCoalesce(4, 1, 4), 4);
}
BENCHMARK(BM_MapCoalesce)->Arg(4)->Arg(32)->Arg(256);

} // namespace

IRLT_BENCHMARK_MAIN();
