//===- bench/bench_table3_bounds.cpp - Table 3 bounds mapping cost -------===//
//
// Experiment T3 (DESIGN.md): loop-bounds mapping rules of Table 3
// (Unimodular / ReversePermute / Parallelize / Coalesce / Interleave).
// Measures precondition checking and code generation (bounds mapping +
// init-statement creation) per template on the paper's nests.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

void runPrecheck(benchmark::State &State, const LoopNest &N,
                 const TemplateRef &T) {
  for (auto _ : State) {
    std::string E = T->checkPreconditions(N);
    benchmark::DoNotOptimize(E);
  }
}

void runApply(benchmark::State &State, const LoopNest &N,
              const TemplateRef &T) {
  for (auto _ : State) {
    ErrorOr<LoopNest> Out = T->apply(N);
    benchmark::DoNotOptimize(Out);
  }
}

void BM_PrecheckUnimodular(benchmark::State &State) {
  LoopNest N = bench::stencilNest();
  runPrecheck(State, N, makeUnimodular(2, UnimodularMatrix(2, {1, 1, 1, 0})));
}
BENCHMARK(BM_PrecheckUnimodular);

void BM_ApplyUnimodularFig1(benchmark::State &State) {
  LoopNest N = bench::stencilNest();
  runApply(State, N, makeUnimodular(2, UnimodularMatrix(2, {1, 1, 1, 0})));
}
BENCHMARK(BM_ApplyUnimodularFig1);

void BM_PrecheckReversePermute(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  runPrecheck(State, N,
              makeReversePermute(3, {false, false, false}, {2, 0, 1}));
}
BENCHMARK(BM_PrecheckReversePermute);

void BM_ApplyReversePermute(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  runApply(State, N, makeReversePermute(3, {false, false, false}, {2, 0, 1}));
}
BENCHMARK(BM_ApplyReversePermute);

void BM_ApplyParallelize(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  runApply(State, N, makeParallelize(3, {true, false, false}));
}
BENCHMARK(BM_ApplyParallelize);

void BM_ApplyCoalesce(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  runApply(State, N, makeCoalesce(3, 1, 2));
}
BENCHMARK(BM_ApplyCoalesce);

void BM_ApplyInterleave(benchmark::State &State) {
  LoopNest N = bench::matmulNest();
  runApply(State, N,
           makeInterleave(3, 1, 2, {Expr::var("f1"), Expr::var("f2")}));
}
BENCHMARK(BM_ApplyInterleave);

void BM_ApplyDeepUnimodular(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  LoopNest N = bench::deepNest(Depth);
  UnimodularMatrix M = UnimodularMatrix::identity(Depth);
  for (unsigned K = 0; K + 1 < Depth; ++K)
    M = UnimodularMatrix::skew(Depth, K, K + 1, 1) * M;
  runApply(State, N, makeUnimodular(Depth, M));
}
BENCHMARK(BM_ApplyDeepUnimodular)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

} // namespace

IRLT_BENCHMARK_MAIN();
