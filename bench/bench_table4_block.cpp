//===- bench/bench_table4_block.cpp - Table 4 Block mapping cost ---------===//
//
// Experiment T4 (DESIGN.md): the Block bounds-mapping rule of Table 4
// (xmin/xmax substitution, element-loop clamping). Measures precondition
// checking and code generation on rectangular and trapezoidal nests of
// growing depth, plus the dependence fan-out cost.
//
//===----------------------------------------------------------------------===//

#include "BenchNests.h"

#include "BenchMain.h"

#include <benchmark/benchmark.h>

using namespace irlt;

namespace {

void BM_BlockApplyRectangular(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  LoopNest N = bench::deepNest(Depth);
  std::vector<ExprRef> Bs(Depth, Expr::intConst(16));
  TemplateRef T = makeBlock(Depth, 1, Depth, Bs);
  for (auto _ : State) {
    ErrorOr<LoopNest> Out = T->apply(N);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_BlockApplyRectangular)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

void BM_BlockApplyTrapezoid(benchmark::State &State) {
  LoopNest N = bench::triangularNest();
  TemplateRef T =
      makeBlock(2, 1, 2, {Expr::var("b1"), Expr::var("b2")});
  for (auto _ : State) {
    ErrorOr<LoopNest> Out = T->apply(N);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_BlockApplyTrapezoid);

void BM_BlockPrecheck(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  LoopNest N = bench::deepNest(Depth);
  std::vector<ExprRef> Bs(Depth, Expr::intConst(16));
  TemplateRef T = makeBlock(Depth, 1, Depth, Bs);
  for (auto _ : State) {
    std::string E = T->checkPreconditions(N);
    benchmark::DoNotOptimize(E);
  }
}
BENCHMARK(BM_BlockPrecheck)->Arg(2)->Arg(4);

void BM_BlockDepFanOut(benchmark::State &State) {
  // Worst case: every blocked entry splits -> 2^depth output vectors.
  unsigned Depth = static_cast<unsigned>(State.range(0));
  std::vector<ExprRef> Bs(Depth, Expr::intConst(16));
  TemplateRef T = makeBlock(Depth, 1, Depth, Bs);
  std::vector<DepElem> Elems(Depth, DepElem::distance(2));
  DepSet D;
  D.insert(DepVector(Elems));
  uint64_t Out = 0;
  for (auto _ : State) {
    DepSet M = T->mapDependences(D);
    Out = M.size();
    benchmark::DoNotOptimize(M);
  }
  State.counters["fanout"] = static_cast<double>(Out);
}
BENCHMARK(BM_BlockDepFanOut)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

} // namespace

IRLT_BENCHMARK_MAIN();
