#!/usr/bin/env bash
# Runs every bench_* binary from a build tree in --json mode and
# aggregates the per-scenario records into one JSON document, so the
# perf trajectory can be tracked across commits.
#
#   bench/run_all.sh [BUILD_DIR] [OUT_FILE]
#
# Defaults: BUILD_DIR=build, OUT_FILE=BENCH_search.json. The batch
# engine scenarios (bench_batch) are additionally split into their own
# BATCH_OUT (default BENCH_batch.json, next to OUT_FILE), and the
# static analyzer scenarios (bench_analyze) into ANALYZE_OUT (default
# BENCH_analyze.json), and the serve-layer scenarios (bench_serve) into
# SERVE_OUT (default BENCH_serve.json), and the native compile-and-run
# scenarios (bench_native) into NATIVE_OUT (default BENCH_native.json),
# so each throughput trajectory can be tracked on its own. Extra benchmark flags can be passed via IRLT_BENCH_ARGS
# (e.g. IRLT_BENCH_ARGS=--benchmark_min_time=0.01 for a quick pass).
#
# OUT carries both legality-vs-sequence-length series from
# bench_fig2_legality: BM_LegalityVsSequenceLength (the prefix-memoized
# engine behind isLegal) and BM_LegalityVsSequenceLengthLegacy (the
# uncached whole-sequence walk) - their ratio tracks the incremental
# engine's payoff across commits.
set -u

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_search.json}"
BATCH_OUT="${3:-$(dirname "$OUT")/BENCH_batch.json}"
ANALYZE_OUT="${4:-$(dirname "$OUT")/BENCH_analyze.json}"
SERVE_OUT="${5:-$(dirname "$OUT")/BENCH_serve.json}"
NATIVE_OUT="${6:-$(dirname "$OUT")/BENCH_native.json}"
FRONT_OUT="${7:-$(dirname "$OUT")/BENCH_front.json}"
DEPS_OUT="${8:-$(dirname "$OUT")/BENCH_deps.json}"
BENCH_DIR="$BUILD_DIR/bench"

if ! ls "$BENCH_DIR"/bench_* >/dev/null 2>&1; then
  echo "error: no bench_* binaries under $BENCH_DIR (build first?)" >&2
  exit 1
fi

TMP="$(mktemp)"
BATCH_TMP="$(mktemp)"
ANALYZE_TMP="$(mktemp)"
SERVE_TMP="$(mktemp)"
NATIVE_TMP="$(mktemp)"
FRONT_TMP="$(mktemp)"
DEPS_TMP="$(mktemp)"
trap 'rm -f "$TMP" "$BATCH_TMP" "$ANALYZE_TMP" "$SERVE_TMP" "$NATIVE_TMP" "$FRONT_TMP" "$DEPS_TMP"' EXIT

# Fail fast: a partial aggregate would silently skew any perf-trajectory
# comparison, so the first failing binary aborts the run and OUT is left
# untouched.
for BIN in "$BENCH_DIR"/bench_*; do
  [ -x "$BIN" ] || continue
  NAME="$(basename "$BIN")"
  echo "running $NAME..." >&2
  DEST="$TMP"
  [ "$NAME" = bench_batch ] && DEST="$BATCH_TMP"
  [ "$NAME" = bench_analyze ] && DEST="$ANALYZE_TMP"
  [ "$NAME" = bench_serve ] && DEST="$SERVE_TMP"
  [ "$NAME" = bench_native ] && DEST="$NATIVE_TMP"
  [ "$NAME" = bench_front ] && DEST="$FRONT_TMP"
  [ "$NAME" = bench_deps ] && DEST="$DEPS_TMP"
  if ! "$BIN" --json ${IRLT_BENCH_ARGS:-} >>"$DEST"; then
    echo "error: $NAME failed; aborting without writing $OUT" >&2
    exit 1
  fi
done

# Wraps JSON lines from $2 into a single document named $1 at $3.
wrap() {
  {
    printf '{\n  "suite": "%s",\n  "results": [\n' "$1"
    FIRST=1
    while IFS= read -r LINE; do
      [ -n "$LINE" ] || continue
      if [ "$FIRST" -eq 1 ]; then FIRST=0; else printf ',\n'; fi
      printf '    %s' "$LINE"
    done <"$2"
    printf '\n  ]\n}\n'
  } >"$3"
  echo "wrote $3" >&2
}

wrap irlt-bench "$TMP" "$OUT"
if [ -s "$BATCH_TMP" ]; then
  wrap irlt-bench-batch "$BATCH_TMP" "$BATCH_OUT"
fi
if [ -s "$ANALYZE_TMP" ]; then
  wrap irlt-bench-analyze "$ANALYZE_TMP" "$ANALYZE_OUT"
fi
if [ -s "$SERVE_TMP" ]; then
  wrap irlt-bench-serve "$SERVE_TMP" "$SERVE_OUT"
fi
if [ -s "$NATIVE_TMP" ]; then
  wrap irlt-bench-native "$NATIVE_TMP" "$NATIVE_OUT"
fi
if [ -s "$FRONT_TMP" ]; then
  wrap irlt-bench-front "$FRONT_TMP" "$FRONT_OUT"
fi
if [ -s "$DEPS_TMP" ]; then
  wrap irlt-bench-deps "$DEPS_TMP" "$DEPS_OUT"
fi
