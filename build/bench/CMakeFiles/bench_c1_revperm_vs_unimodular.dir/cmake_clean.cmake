file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_revperm_vs_unimodular.dir/bench_c1_revperm_vs_unimodular.cpp.o"
  "CMakeFiles/bench_c1_revperm_vs_unimodular.dir/bench_c1_revperm_vs_unimodular.cpp.o.d"
  "bench_c1_revperm_vs_unimodular"
  "bench_c1_revperm_vs_unimodular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_revperm_vs_unimodular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
