# Empty compiler generated dependencies file for bench_c1_revperm_vs_unimodular.
# This may be replaced when dependencies are built.
