file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_trapezoid_tiles.dir/bench_c2_trapezoid_tiles.cpp.o"
  "CMakeFiles/bench_c2_trapezoid_tiles.dir/bench_c2_trapezoid_tiles.cpp.o.d"
  "bench_c2_trapezoid_tiles"
  "bench_c2_trapezoid_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_trapezoid_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
