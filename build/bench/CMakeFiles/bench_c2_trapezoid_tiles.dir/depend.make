# Empty dependencies file for bench_c2_trapezoid_tiles.
# This may be replaced when dependencies are built.
