file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_composition.dir/bench_c3_composition.cpp.o"
  "CMakeFiles/bench_c3_composition.dir/bench_c3_composition.cpp.o.d"
  "bench_c3_composition"
  "bench_c3_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
