
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c4_fanout.cpp" "bench/CMakeFiles/bench_c4_fanout.dir/bench_c4_fanout.cpp.o" "gcc" "bench/CMakeFiles/bench_c4_fanout.dir/bench_c4_fanout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/irlt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/irlt_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/irlt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/irlt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/irlt_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/irlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/irlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
