file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_fanout.dir/bench_c4_fanout.cpp.o"
  "CMakeFiles/bench_c4_fanout.dir/bench_c4_fanout.cpp.o.d"
  "bench_c4_fanout"
  "bench_c4_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
