file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_stencil.dir/bench_fig1_stencil.cpp.o"
  "CMakeFiles/bench_fig1_stencil.dir/bench_fig1_stencil.cpp.o.d"
  "bench_fig1_stencil"
  "bench_fig1_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
