# Empty dependencies file for bench_fig1_stencil.
# This may be replaced when dependencies are built.
