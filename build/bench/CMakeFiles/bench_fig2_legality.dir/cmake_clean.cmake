file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_legality.dir/bench_fig2_legality.cpp.o"
  "CMakeFiles/bench_fig2_legality.dir/bench_fig2_legality.cpp.o.d"
  "bench_fig2_legality"
  "bench_fig2_legality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_legality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
