# Empty compiler generated dependencies file for bench_fig2_legality.
# This may be replaced when dependencies are built.
