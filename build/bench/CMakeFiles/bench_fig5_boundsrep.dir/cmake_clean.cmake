file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_boundsrep.dir/bench_fig5_boundsrep.cpp.o"
  "CMakeFiles/bench_fig5_boundsrep.dir/bench_fig5_boundsrep.cpp.o.d"
  "bench_fig5_boundsrep"
  "bench_fig5_boundsrep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_boundsrep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
