# Empty dependencies file for bench_fig5_boundsrep.
# This may be replaced when dependencies are built.
