file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_templates.dir/bench_table1_templates.cpp.o"
  "CMakeFiles/bench_table1_templates.dir/bench_table1_templates.cpp.o.d"
  "bench_table1_templates"
  "bench_table1_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
