# Empty dependencies file for bench_table1_templates.
# This may be replaced when dependencies are built.
