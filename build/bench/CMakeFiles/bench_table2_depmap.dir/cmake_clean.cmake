file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_depmap.dir/bench_table2_depmap.cpp.o"
  "CMakeFiles/bench_table2_depmap.dir/bench_table2_depmap.cpp.o.d"
  "bench_table2_depmap"
  "bench_table2_depmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_depmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
