# Empty dependencies file for bench_table2_depmap.
# This may be replaced when dependencies are built.
