file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_block.dir/bench_table4_block.cpp.o"
  "CMakeFiles/bench_table4_block.dir/bench_table4_block.cpp.o.d"
  "bench_table4_block"
  "bench_table4_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
