file(REMOVE_RECURSE
  "CMakeFiles/blocking_locality.dir/blocking_locality.cpp.o"
  "CMakeFiles/blocking_locality.dir/blocking_locality.cpp.o.d"
  "blocking_locality"
  "blocking_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
