# Empty compiler generated dependencies file for blocking_locality.
# This may be replaced when dependencies are built.
