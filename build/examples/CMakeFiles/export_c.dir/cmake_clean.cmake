file(REMOVE_RECURSE
  "CMakeFiles/export_c.dir/export_c.cpp.o"
  "CMakeFiles/export_c.dir/export_c.cpp.o.d"
  "export_c"
  "export_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
