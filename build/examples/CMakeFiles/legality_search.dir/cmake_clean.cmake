file(REMOVE_RECURSE
  "CMakeFiles/legality_search.dir/legality_search.cpp.o"
  "CMakeFiles/legality_search.dir/legality_search.cpp.o.d"
  "legality_search"
  "legality_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legality_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
