# Empty compiler generated dependencies file for legality_search.
# This may be replaced when dependencies are built.
