file(REMOVE_RECURSE
  "CMakeFiles/matmul_pipeline.dir/matmul_pipeline.cpp.o"
  "CMakeFiles/matmul_pipeline.dir/matmul_pipeline.cpp.o.d"
  "matmul_pipeline"
  "matmul_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
