# Empty dependencies file for matmul_pipeline.
# This may be replaced when dependencies are built.
