file(REMOVE_RECURSE
  "CMakeFiles/irlt_baseline.dir/RectangularTile.cpp.o"
  "CMakeFiles/irlt_baseline.dir/RectangularTile.cpp.o.d"
  "libirlt_baseline.a"
  "libirlt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
