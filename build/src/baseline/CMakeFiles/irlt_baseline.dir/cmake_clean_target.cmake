file(REMOVE_RECURSE
  "libirlt_baseline.a"
)
