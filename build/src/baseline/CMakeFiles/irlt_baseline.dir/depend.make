# Empty dependencies file for irlt_baseline.
# This may be replaced when dependencies are built.
