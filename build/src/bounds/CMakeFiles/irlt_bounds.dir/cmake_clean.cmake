file(REMOVE_RECURSE
  "CMakeFiles/irlt_bounds.dir/BoundsMatrices.cpp.o"
  "CMakeFiles/irlt_bounds.dir/BoundsMatrices.cpp.o.d"
  "CMakeFiles/irlt_bounds.dir/TypeLattice.cpp.o"
  "CMakeFiles/irlt_bounds.dir/TypeLattice.cpp.o.d"
  "libirlt_bounds.a"
  "libirlt_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
