file(REMOVE_RECURSE
  "libirlt_bounds.a"
)
