# Empty compiler generated dependencies file for irlt_bounds.
# This may be replaced when dependencies are built.
