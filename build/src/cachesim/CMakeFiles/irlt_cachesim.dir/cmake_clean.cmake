file(REMOVE_RECURSE
  "CMakeFiles/irlt_cachesim.dir/Cache.cpp.o"
  "CMakeFiles/irlt_cachesim.dir/Cache.cpp.o.d"
  "libirlt_cachesim.a"
  "libirlt_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
