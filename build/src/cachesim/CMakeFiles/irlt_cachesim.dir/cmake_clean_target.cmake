file(REMOVE_RECURSE
  "libirlt_cachesim.a"
)
