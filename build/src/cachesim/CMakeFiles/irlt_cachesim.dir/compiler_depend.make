# Empty compiler generated dependencies file for irlt_cachesim.
# This may be replaced when dependencies are built.
