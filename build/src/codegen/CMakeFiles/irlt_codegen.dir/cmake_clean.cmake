file(REMOVE_RECURSE
  "CMakeFiles/irlt_codegen.dir/CEmitter.cpp.o"
  "CMakeFiles/irlt_codegen.dir/CEmitter.cpp.o.d"
  "libirlt_codegen.a"
  "libirlt_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
