file(REMOVE_RECURSE
  "libirlt_codegen.a"
)
