# Empty compiler generated dependencies file for irlt_codegen.
# This may be replaced when dependencies are built.
