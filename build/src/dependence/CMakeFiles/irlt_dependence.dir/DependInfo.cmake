
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dependence/DepAnalysis.cpp" "src/dependence/CMakeFiles/irlt_dependence.dir/DepAnalysis.cpp.o" "gcc" "src/dependence/CMakeFiles/irlt_dependence.dir/DepAnalysis.cpp.o.d"
  "/root/repo/src/dependence/DepElem.cpp" "src/dependence/CMakeFiles/irlt_dependence.dir/DepElem.cpp.o" "gcc" "src/dependence/CMakeFiles/irlt_dependence.dir/DepElem.cpp.o.d"
  "/root/repo/src/dependence/DepVector.cpp" "src/dependence/CMakeFiles/irlt_dependence.dir/DepVector.cpp.o" "gcc" "src/dependence/CMakeFiles/irlt_dependence.dir/DepVector.cpp.o.d"
  "/root/repo/src/dependence/FMSolver.cpp" "src/dependence/CMakeFiles/irlt_dependence.dir/FMSolver.cpp.o" "gcc" "src/dependence/CMakeFiles/irlt_dependence.dir/FMSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/irlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
