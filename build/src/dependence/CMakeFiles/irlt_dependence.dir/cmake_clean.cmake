file(REMOVE_RECURSE
  "CMakeFiles/irlt_dependence.dir/DepAnalysis.cpp.o"
  "CMakeFiles/irlt_dependence.dir/DepAnalysis.cpp.o.d"
  "CMakeFiles/irlt_dependence.dir/DepElem.cpp.o"
  "CMakeFiles/irlt_dependence.dir/DepElem.cpp.o.d"
  "CMakeFiles/irlt_dependence.dir/DepVector.cpp.o"
  "CMakeFiles/irlt_dependence.dir/DepVector.cpp.o.d"
  "CMakeFiles/irlt_dependence.dir/FMSolver.cpp.o"
  "CMakeFiles/irlt_dependence.dir/FMSolver.cpp.o.d"
  "libirlt_dependence.a"
  "libirlt_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
