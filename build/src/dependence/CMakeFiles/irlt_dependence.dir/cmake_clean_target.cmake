file(REMOVE_RECURSE
  "libirlt_dependence.a"
)
