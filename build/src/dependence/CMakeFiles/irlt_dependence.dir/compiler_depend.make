# Empty compiler generated dependencies file for irlt_dependence.
# This may be replaced when dependencies are built.
