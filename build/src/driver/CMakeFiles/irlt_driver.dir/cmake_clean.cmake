file(REMOVE_RECURSE
  "CMakeFiles/irlt_driver.dir/Script.cpp.o"
  "CMakeFiles/irlt_driver.dir/Script.cpp.o.d"
  "libirlt_driver.a"
  "libirlt_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
