file(REMOVE_RECURSE
  "libirlt_driver.a"
)
