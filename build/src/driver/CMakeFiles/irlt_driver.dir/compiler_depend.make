# Empty compiler generated dependencies file for irlt_driver.
# This may be replaced when dependencies are built.
