file(REMOVE_RECURSE
  "CMakeFiles/irlt_eval.dir/Evaluator.cpp.o"
  "CMakeFiles/irlt_eval.dir/Evaluator.cpp.o.d"
  "CMakeFiles/irlt_eval.dir/Verify.cpp.o"
  "CMakeFiles/irlt_eval.dir/Verify.cpp.o.d"
  "libirlt_eval.a"
  "libirlt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
