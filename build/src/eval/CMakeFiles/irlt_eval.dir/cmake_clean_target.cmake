file(REMOVE_RECURSE
  "libirlt_eval.a"
)
