# Empty compiler generated dependencies file for irlt_eval.
# This may be replaced when dependencies are built.
