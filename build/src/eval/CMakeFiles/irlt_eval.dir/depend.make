# Empty dependencies file for irlt_eval.
# This may be replaced when dependencies are built.
