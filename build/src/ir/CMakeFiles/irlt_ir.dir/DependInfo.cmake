
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/irlt_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/irlt_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/Lexer.cpp" "src/ir/CMakeFiles/irlt_ir.dir/Lexer.cpp.o" "gcc" "src/ir/CMakeFiles/irlt_ir.dir/Lexer.cpp.o.d"
  "/root/repo/src/ir/LinExpr.cpp" "src/ir/CMakeFiles/irlt_ir.dir/LinExpr.cpp.o" "gcc" "src/ir/CMakeFiles/irlt_ir.dir/LinExpr.cpp.o.d"
  "/root/repo/src/ir/LoopNest.cpp" "src/ir/CMakeFiles/irlt_ir.dir/LoopNest.cpp.o" "gcc" "src/ir/CMakeFiles/irlt_ir.dir/LoopNest.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/irlt_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/irlt_ir.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
