file(REMOVE_RECURSE
  "CMakeFiles/irlt_ir.dir/Expr.cpp.o"
  "CMakeFiles/irlt_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/irlt_ir.dir/Lexer.cpp.o"
  "CMakeFiles/irlt_ir.dir/Lexer.cpp.o.d"
  "CMakeFiles/irlt_ir.dir/LinExpr.cpp.o"
  "CMakeFiles/irlt_ir.dir/LinExpr.cpp.o.d"
  "CMakeFiles/irlt_ir.dir/LoopNest.cpp.o"
  "CMakeFiles/irlt_ir.dir/LoopNest.cpp.o.d"
  "CMakeFiles/irlt_ir.dir/Parser.cpp.o"
  "CMakeFiles/irlt_ir.dir/Parser.cpp.o.d"
  "libirlt_ir.a"
  "libirlt_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
