file(REMOVE_RECURSE
  "libirlt_ir.a"
)
