# Empty dependencies file for irlt_ir.
# This may be replaced when dependencies are built.
