file(REMOVE_RECURSE
  "CMakeFiles/irlt_support.dir/Printing.cpp.o"
  "CMakeFiles/irlt_support.dir/Printing.cpp.o.d"
  "libirlt_support.a"
  "libirlt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
