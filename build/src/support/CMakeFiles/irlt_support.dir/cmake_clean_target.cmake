file(REMOVE_RECURSE
  "libirlt_support.a"
)
