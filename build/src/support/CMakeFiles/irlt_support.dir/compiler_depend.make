# Empty compiler generated dependencies file for irlt_support.
# This may be replaced when dependencies are built.
