
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/AutoPar.cpp" "src/transform/CMakeFiles/irlt_transform.dir/AutoPar.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/AutoPar.cpp.o.d"
  "/root/repo/src/transform/Block.cpp" "src/transform/CMakeFiles/irlt_transform.dir/Block.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/Block.cpp.o.d"
  "/root/repo/src/transform/Coalesce.cpp" "src/transform/CMakeFiles/irlt_transform.dir/Coalesce.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/Coalesce.cpp.o.d"
  "/root/repo/src/transform/Interleave.cpp" "src/transform/CMakeFiles/irlt_transform.dir/Interleave.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/Interleave.cpp.o.d"
  "/root/repo/src/transform/Parallelize.cpp" "src/transform/CMakeFiles/irlt_transform.dir/Parallelize.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/Parallelize.cpp.o.d"
  "/root/repo/src/transform/ReversePermute.cpp" "src/transform/CMakeFiles/irlt_transform.dir/ReversePermute.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/ReversePermute.cpp.o.d"
  "/root/repo/src/transform/Sequence.cpp" "src/transform/CMakeFiles/irlt_transform.dir/Sequence.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/Sequence.cpp.o.d"
  "/root/repo/src/transform/StripMine.cpp" "src/transform/CMakeFiles/irlt_transform.dir/StripMine.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/StripMine.cpp.o.d"
  "/root/repo/src/transform/SymbolicFM.cpp" "src/transform/CMakeFiles/irlt_transform.dir/SymbolicFM.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/SymbolicFM.cpp.o.d"
  "/root/repo/src/transform/TemplateCommon.cpp" "src/transform/CMakeFiles/irlt_transform.dir/TemplateCommon.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/TemplateCommon.cpp.o.d"
  "/root/repo/src/transform/TypeState.cpp" "src/transform/CMakeFiles/irlt_transform.dir/TypeState.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/TypeState.cpp.o.d"
  "/root/repo/src/transform/Unimodular.cpp" "src/transform/CMakeFiles/irlt_transform.dir/Unimodular.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/Unimodular.cpp.o.d"
  "/root/repo/src/transform/UnimodularMatrix.cpp" "src/transform/CMakeFiles/irlt_transform.dir/UnimodularMatrix.cpp.o" "gcc" "src/transform/CMakeFiles/irlt_transform.dir/UnimodularMatrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bounds/CMakeFiles/irlt_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/irlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/irlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
