file(REMOVE_RECURSE
  "CMakeFiles/irlt_transform.dir/AutoPar.cpp.o"
  "CMakeFiles/irlt_transform.dir/AutoPar.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/Block.cpp.o"
  "CMakeFiles/irlt_transform.dir/Block.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/Coalesce.cpp.o"
  "CMakeFiles/irlt_transform.dir/Coalesce.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/Interleave.cpp.o"
  "CMakeFiles/irlt_transform.dir/Interleave.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/Parallelize.cpp.o"
  "CMakeFiles/irlt_transform.dir/Parallelize.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/ReversePermute.cpp.o"
  "CMakeFiles/irlt_transform.dir/ReversePermute.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/Sequence.cpp.o"
  "CMakeFiles/irlt_transform.dir/Sequence.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/StripMine.cpp.o"
  "CMakeFiles/irlt_transform.dir/StripMine.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/SymbolicFM.cpp.o"
  "CMakeFiles/irlt_transform.dir/SymbolicFM.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/TemplateCommon.cpp.o"
  "CMakeFiles/irlt_transform.dir/TemplateCommon.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/TypeState.cpp.o"
  "CMakeFiles/irlt_transform.dir/TypeState.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/Unimodular.cpp.o"
  "CMakeFiles/irlt_transform.dir/Unimodular.cpp.o.d"
  "CMakeFiles/irlt_transform.dir/UnimodularMatrix.cpp.o"
  "CMakeFiles/irlt_transform.dir/UnimodularMatrix.cpp.o.d"
  "libirlt_transform.a"
  "libirlt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
