file(REMOVE_RECURSE
  "libirlt_transform.a"
)
