# Empty compiler generated dependencies file for irlt_transform.
# This may be replaced when dependencies are built.
