file(REMOVE_RECURSE
  "CMakeFiles/irlt_bounds_tests.dir/bounds/BoundsMatricesTest.cpp.o"
  "CMakeFiles/irlt_bounds_tests.dir/bounds/BoundsMatricesTest.cpp.o.d"
  "CMakeFiles/irlt_bounds_tests.dir/bounds/Figure5Test.cpp.o"
  "CMakeFiles/irlt_bounds_tests.dir/bounds/Figure5Test.cpp.o.d"
  "CMakeFiles/irlt_bounds_tests.dir/bounds/TypeLatticeTest.cpp.o"
  "CMakeFiles/irlt_bounds_tests.dir/bounds/TypeLatticeTest.cpp.o.d"
  "irlt_bounds_tests"
  "irlt_bounds_tests.pdb"
  "irlt_bounds_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_bounds_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
