# Empty compiler generated dependencies file for irlt_bounds_tests.
# This may be replaced when dependencies are built.
