file(REMOVE_RECURSE
  "CMakeFiles/irlt_codegen_tests.dir/codegen/CEmitterTest.cpp.o"
  "CMakeFiles/irlt_codegen_tests.dir/codegen/CEmitterTest.cpp.o.d"
  "CMakeFiles/irlt_codegen_tests.dir/codegen/CompileAndRunTest.cpp.o"
  "CMakeFiles/irlt_codegen_tests.dir/codegen/CompileAndRunTest.cpp.o.d"
  "CMakeFiles/irlt_codegen_tests.dir/driver/ScriptTest.cpp.o"
  "CMakeFiles/irlt_codegen_tests.dir/driver/ScriptTest.cpp.o.d"
  "CMakeFiles/irlt_codegen_tests.dir/driver/ToolTest.cpp.o"
  "CMakeFiles/irlt_codegen_tests.dir/driver/ToolTest.cpp.o.d"
  "irlt_codegen_tests"
  "irlt_codegen_tests.pdb"
  "irlt_codegen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_codegen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
