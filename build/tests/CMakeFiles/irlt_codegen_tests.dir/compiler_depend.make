# Empty compiler generated dependencies file for irlt_codegen_tests.
# This may be replaced when dependencies are built.
