
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dependence/DepAnalysisTest.cpp" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DepAnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DepAnalysisTest.cpp.o.d"
  "/root/repo/tests/dependence/DepElemTest.cpp" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DepElemTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DepElemTest.cpp.o.d"
  "/root/repo/tests/dependence/DepVectorTest.cpp" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DepVectorTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DepVectorTest.cpp.o.d"
  "/root/repo/tests/dependence/DirectionHierarchyTest.cpp" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DirectionHierarchyTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/DirectionHierarchyTest.cpp.o.d"
  "/root/repo/tests/dependence/FMSolverTest.cpp" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/FMSolverTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_dependence_tests.dir/dependence/FMSolverTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/irlt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/irlt_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/irlt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/irlt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/irlt_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/irlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/irlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/irlt_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/irlt_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
