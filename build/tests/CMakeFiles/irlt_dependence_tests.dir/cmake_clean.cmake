file(REMOVE_RECURSE
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DepAnalysisTest.cpp.o"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DepAnalysisTest.cpp.o.d"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DepElemTest.cpp.o"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DepElemTest.cpp.o.d"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DepVectorTest.cpp.o"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DepVectorTest.cpp.o.d"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DirectionHierarchyTest.cpp.o"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/DirectionHierarchyTest.cpp.o.d"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/FMSolverTest.cpp.o"
  "CMakeFiles/irlt_dependence_tests.dir/dependence/FMSolverTest.cpp.o.d"
  "irlt_dependence_tests"
  "irlt_dependence_tests.pdb"
  "irlt_dependence_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_dependence_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
