# Empty dependencies file for irlt_dependence_tests.
# This may be replaced when dependencies are built.
