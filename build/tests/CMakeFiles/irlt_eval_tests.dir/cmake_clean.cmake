file(REMOVE_RECURSE
  "CMakeFiles/irlt_eval_tests.dir/cachesim/CacheTest.cpp.o"
  "CMakeFiles/irlt_eval_tests.dir/cachesim/CacheTest.cpp.o.d"
  "CMakeFiles/irlt_eval_tests.dir/eval/CacheIntegrationTest.cpp.o"
  "CMakeFiles/irlt_eval_tests.dir/eval/CacheIntegrationTest.cpp.o.d"
  "CMakeFiles/irlt_eval_tests.dir/eval/EvaluatorTest.cpp.o"
  "CMakeFiles/irlt_eval_tests.dir/eval/EvaluatorTest.cpp.o.d"
  "CMakeFiles/irlt_eval_tests.dir/eval/VerifyTest.cpp.o"
  "CMakeFiles/irlt_eval_tests.dir/eval/VerifyTest.cpp.o.d"
  "irlt_eval_tests"
  "irlt_eval_tests.pdb"
  "irlt_eval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
