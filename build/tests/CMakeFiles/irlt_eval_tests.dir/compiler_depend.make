# Empty compiler generated dependencies file for irlt_eval_tests.
# This may be replaced when dependencies are built.
