
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/ConsistencyPropertyTest.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/ConsistencyPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/ConsistencyPropertyTest.cpp.o.d"
  "/root/repo/tests/integration/Figure1Test.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure1Test.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure1Test.cpp.o.d"
  "/root/repo/tests/integration/Figure2Test.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure2Test.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure2Test.cpp.o.d"
  "/root/repo/tests/integration/Figure4Test.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure4Test.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure4Test.cpp.o.d"
  "/root/repo/tests/integration/Figure7Test.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure7Test.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/Figure7Test.cpp.o.d"
  "/root/repo/tests/integration/KernelGalleryTest.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/KernelGalleryTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/KernelGalleryTest.cpp.o.d"
  "/root/repo/tests/integration/RandomNestPropertyTest.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/RandomNestPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/RandomNestPropertyTest.cpp.o.d"
  "/root/repo/tests/integration/TrapezoidBlockTest.cpp" "tests/CMakeFiles/irlt_integration_tests.dir/integration/TrapezoidBlockTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_integration_tests.dir/integration/TrapezoidBlockTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/irlt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/irlt_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/irlt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/irlt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/irlt_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/irlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/irlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/irlt_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/irlt_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
