file(REMOVE_RECURSE
  "CMakeFiles/irlt_integration_tests.dir/integration/ConsistencyPropertyTest.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/ConsistencyPropertyTest.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure1Test.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure1Test.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure2Test.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure2Test.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure4Test.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure4Test.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure7Test.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/Figure7Test.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/KernelGalleryTest.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/KernelGalleryTest.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/RandomNestPropertyTest.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/RandomNestPropertyTest.cpp.o.d"
  "CMakeFiles/irlt_integration_tests.dir/integration/TrapezoidBlockTest.cpp.o"
  "CMakeFiles/irlt_integration_tests.dir/integration/TrapezoidBlockTest.cpp.o.d"
  "irlt_integration_tests"
  "irlt_integration_tests.pdb"
  "irlt_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
