# Empty dependencies file for irlt_integration_tests.
# This may be replaced when dependencies are built.
