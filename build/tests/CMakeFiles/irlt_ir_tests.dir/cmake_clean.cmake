file(REMOVE_RECURSE
  "CMakeFiles/irlt_ir_tests.dir/ir/ExprTest.cpp.o"
  "CMakeFiles/irlt_ir_tests.dir/ir/ExprTest.cpp.o.d"
  "CMakeFiles/irlt_ir_tests.dir/ir/LinExprTest.cpp.o"
  "CMakeFiles/irlt_ir_tests.dir/ir/LinExprTest.cpp.o.d"
  "CMakeFiles/irlt_ir_tests.dir/ir/LoopNestTest.cpp.o"
  "CMakeFiles/irlt_ir_tests.dir/ir/LoopNestTest.cpp.o.d"
  "CMakeFiles/irlt_ir_tests.dir/ir/ParserTest.cpp.o"
  "CMakeFiles/irlt_ir_tests.dir/ir/ParserTest.cpp.o.d"
  "CMakeFiles/irlt_ir_tests.dir/ir/RoundTripTest.cpp.o"
  "CMakeFiles/irlt_ir_tests.dir/ir/RoundTripTest.cpp.o.d"
  "irlt_ir_tests"
  "irlt_ir_tests.pdb"
  "irlt_ir_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_ir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
