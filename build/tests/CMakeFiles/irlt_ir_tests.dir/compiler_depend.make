# Empty compiler generated dependencies file for irlt_ir_tests.
# This may be replaced when dependencies are built.
