file(REMOVE_RECURSE
  "CMakeFiles/irlt_support_tests.dir/support/CastingTest.cpp.o"
  "CMakeFiles/irlt_support_tests.dir/support/CastingTest.cpp.o.d"
  "CMakeFiles/irlt_support_tests.dir/support/ErrorOrTest.cpp.o"
  "CMakeFiles/irlt_support_tests.dir/support/ErrorOrTest.cpp.o.d"
  "CMakeFiles/irlt_support_tests.dir/support/MathUtilsTest.cpp.o"
  "CMakeFiles/irlt_support_tests.dir/support/MathUtilsTest.cpp.o.d"
  "CMakeFiles/irlt_support_tests.dir/support/PrintingTest.cpp.o"
  "CMakeFiles/irlt_support_tests.dir/support/PrintingTest.cpp.o.d"
  "CMakeFiles/irlt_support_tests.dir/support/RationalTest.cpp.o"
  "CMakeFiles/irlt_support_tests.dir/support/RationalTest.cpp.o.d"
  "irlt_support_tests"
  "irlt_support_tests.pdb"
  "irlt_support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
