# Empty dependencies file for irlt_support_tests.
# This may be replaced when dependencies are built.
