
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform/AutoParTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/AutoParTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/AutoParTest.cpp.o.d"
  "/root/repo/tests/transform/AutoVecTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/AutoVecTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/AutoVecTest.cpp.o.d"
  "/root/repo/tests/transform/BlockTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/BlockTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/BlockTest.cpp.o.d"
  "/root/repo/tests/transform/CoalesceTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/CoalesceTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/CoalesceTest.cpp.o.d"
  "/root/repo/tests/transform/DepMappingTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/DepMappingTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/DepMappingTest.cpp.o.d"
  "/root/repo/tests/transform/InterleaveTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/InterleaveTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/InterleaveTest.cpp.o.d"
  "/root/repo/tests/transform/ParallelizeTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/ParallelizeTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/ParallelizeTest.cpp.o.d"
  "/root/repo/tests/transform/ReversePermuteTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/ReversePermuteTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/ReversePermuteTest.cpp.o.d"
  "/root/repo/tests/transform/SequenceTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/SequenceTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/SequenceTest.cpp.o.d"
  "/root/repo/tests/transform/StripMineTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/StripMineTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/StripMineTest.cpp.o.d"
  "/root/repo/tests/transform/SymbolicFMTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/SymbolicFMTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/SymbolicFMTest.cpp.o.d"
  "/root/repo/tests/transform/TypeStateTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/TypeStateTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/TypeStateTest.cpp.o.d"
  "/root/repo/tests/transform/UnimodularMatrixTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/UnimodularMatrixTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/UnimodularMatrixTest.cpp.o.d"
  "/root/repo/tests/transform/UnimodularTest.cpp" "tests/CMakeFiles/irlt_transform_tests.dir/transform/UnimodularTest.cpp.o" "gcc" "tests/CMakeFiles/irlt_transform_tests.dir/transform/UnimodularTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/irlt_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/irlt_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/irlt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/irlt_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/irlt_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/irlt_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/irlt_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irlt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/irlt_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/irlt_driver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
