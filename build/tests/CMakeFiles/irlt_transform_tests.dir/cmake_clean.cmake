file(REMOVE_RECURSE
  "CMakeFiles/irlt_transform_tests.dir/transform/AutoParTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/AutoParTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/AutoVecTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/AutoVecTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/BlockTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/BlockTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/CoalesceTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/CoalesceTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/DepMappingTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/DepMappingTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/InterleaveTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/InterleaveTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/ParallelizeTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/ParallelizeTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/ReversePermuteTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/ReversePermuteTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/SequenceTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/SequenceTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/StripMineTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/StripMineTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/SymbolicFMTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/SymbolicFMTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/TypeStateTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/TypeStateTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/UnimodularMatrixTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/UnimodularMatrixTest.cpp.o.d"
  "CMakeFiles/irlt_transform_tests.dir/transform/UnimodularTest.cpp.o"
  "CMakeFiles/irlt_transform_tests.dir/transform/UnimodularTest.cpp.o.d"
  "irlt_transform_tests"
  "irlt_transform_tests.pdb"
  "irlt_transform_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt_transform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
