# Empty compiler generated dependencies file for irlt_transform_tests.
# This may be replaced when dependencies are built.
