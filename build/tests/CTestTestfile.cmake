# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/irlt_support_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_ir_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_dependence_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_bounds_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_transform_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_eval_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_codegen_tests[1]_include.cmake")
include("/root/repo/build/tests/irlt_integration_tests[1]_include.cmake")
