file(REMOVE_RECURSE
  "CMakeFiles/irlt-opt.dir/irlt-opt.cpp.o"
  "CMakeFiles/irlt-opt.dir/irlt-opt.cpp.o.d"
  "irlt-opt"
  "irlt-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irlt-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
