# Empty dependencies file for irlt-opt.
# This may be replaced when dependencies are built.
