//===- examples/auto_search.cpp - Cost-model-guided search ---------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
// The Section 5 optimizer loop, end to end: hand the matrix-multiply
// nest to the beam search (docs/SEARCH.md) under each objective and
// print what it picks - the winning sequence, its simulated miss ratio
// or parallelism score, and the search statistics. Equivalent to
//
//   irlt-search matmul.loop --objective both --explain
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "search/Search.h"

#include <cstdio>

using namespace irlt;
using namespace irlt::search;

namespace {

const char *objectiveName(Objective O) {
  switch (O) {
  case Objective::Locality:
    return "locality";
  case Objective::Parallelism:
    return "parallelism";
  case Objective::Both:
    return "both";
  }
  return "?";
}

} // namespace

int main() {
  ErrorOr<LoopNest> Nest = parseLoopNest("arrays B, C\n"
                                         "do i = 1, n\n"
                                         "  do j = 1, n\n"
                                         "    do k = 1, n\n"
                                         "      A(i, j) += B(i, k) * C(k, j)\n"
                                         "    enddo\n"
                                         "  enddo\n"
                                         "enddo\n");
  if (!Nest) {
    std::fprintf(stderr, "parse error: %s\n", Nest.message().c_str());
    return 1;
  }
  DepSet D = analyzeDependences(*Nest);

  for (Objective Obj :
       {Objective::Locality, Objective::Parallelism, Objective::Both}) {
    SearchOptions Opts;
    Opts.Obj = Obj;
    Opts.Threads = 4; // byte-identical to Threads = 1, just faster
    SearchResult R = searchTransformations(*Nest, D, Opts);
    if (!R.Error.empty()) {
      std::fprintf(stderr, "search error: %s\n", R.Error.c_str());
      return 1;
    }

    std::printf("objective %s:\n", objectiveName(Obj));
    if (!R.Best) {
      std::printf("  no candidate beats the original nest\n");
      continue;
    }
    std::printf("  winner: %s\n", R.Best->Seq.str().c_str());
    if (R.Best->MissRatio >= 0)
      std::printf("  miss ratio: %.4f\n", R.Best->MissRatio);
    if (!R.Best->ParallelLoops.empty()) {
      std::printf("  parallel loops:");
      for (unsigned P : R.Best->ParallelLoops)
        std::printf(" %u", P + 1);
      std::printf(" (score %ld)\n", R.Best->ParScore);
    }
    std::printf("  explored: %llu states, %llu confirmed legal\n",
                static_cast<unsigned long long>(R.Stats.Enumerated),
                static_cast<unsigned long long>(R.Stats.Legal));
  }
  return 0;
}
