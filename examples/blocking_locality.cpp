//===- examples/blocking_locality.cpp - Block for cache locality ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
// The data-locality motivation of the Block template, measured: tile the
// matrix-multiply nest at several block sizes, run the generated nests
// through the evaluator, and replay their memory traces through the
// cache simulator. Also demonstrates the trapezoid claim (Section 6):
// blocking a triangular nest visits only tiles with work, while the
// bounding-box baseline walks empty tiles.
//
//===----------------------------------------------------------------------===//

#include "baseline/RectangularTile.h"
#include "cachesim/Cache.h"
#include "dependence/DepAnalysis.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <cstdio>
#include <set>

using namespace irlt;

namespace {

double matmulMissRatio(const LoopNest &Nest, int64_t N, int64_t B) {
  EvalConfig C;
  C.Params = {{"n", N}, {"b", B}};
  C.RecordAccesses = true;
  ArrayStore S;
  EvalResult R = evaluate(Nest, C, S);
  ArrayLayout L;
  L.declare("A", {1, 1}, {N, N});
  L.declare("B", {1, 1}, {N, N});
  L.declare("C", {1, 1}, {N, N});
  return replayTrace(R.Accesses, L, CacheConfig{8 * 1024, 64, 4});
}

} // namespace

int main() {
  ErrorOr<LoopNest> MM = parseLoopNest("arrays B, C\n"
                                       "do i = 1, n\n"
                                       "  do j = 1, n\n"
                                       "    do k = 1, n\n"
                                       "      A(i, j) += B(i, k) * C(k, j)\n"
                                       "    enddo\n"
                                       "  enddo\n"
                                       "enddo\n");
  if (!MM) {
    std::fprintf(stderr, "parse error: %s\n", MM.message().c_str());
    return 1;
  }
  DepSet D = analyzeDependences(*MM);

  const int64_t N = 32;
  std::printf("matmul n=%lld, 8KiB 4-way cache, 64B lines\n",
              static_cast<long long>(N));
  std::printf("  naive     : miss ratio %.4f\n", matmulMissRatio(*MM, N, 0));

  for (int64_t B : {4, 8, 16}) {
    ExprRef Bs = Expr::var("b");
    TransformSequence Seq =
        TransformSequence::of({makeBlock(3, 1, 3, {Bs, Bs, Bs})});
    LegalityResult L = isLegal(Seq, *MM, D);
    if (!L.Legal) {
      std::fprintf(stderr, "blocking unexpectedly illegal: %s\n",
                   L.Reason.c_str());
      return 1;
    }
    ErrorOr<LoopNest> Blocked = applySequence(Seq, *MM);
    if (!Blocked) {
      std::fprintf(stderr, "codegen: %s\n", Blocked.message().c_str());
      return 1;
    }
    std::printf("  blocked %2lld: miss ratio %.4f\n",
                static_cast<long long>(B), matmulMissRatio(*Blocked, N, B));
  }

  // Trapezoid tiling comparison.
  ErrorOr<LoopNest> Tri = parseLoopNest("do i = 1, n\n"
                                        "  do j = 1, i\n"
                                        "    a(i, j) = a(i, j) + 1\n"
                                        "  enddo\n"
                                        "enddo\n");
  if (!Tri)
    return 1;
  auto countTiles = [](const LoopNest &T, int64_t Size) {
    EvalConfig C;
    C.Params["n"] = Size;
    ArrayStore S;
    EvalResult R = evaluate(T, C, S);
    std::set<std::pair<int64_t, int64_t>> Work;
    for (const std::vector<int64_t> &LT : R.LoopTuples)
      Work.insert({LT[0], LT[1]});
    return std::pair<uint64_t, uint64_t>(R.LevelCounts[1], Work.size());
  };

  ExprRef B8 = Expr::intConst(8);
  ErrorOr<LoopNest> Ours = applySequence(
      TransformSequence::of({makeBlock(2, 1, 2, {B8, B8})}), *Tri);
  ErrorOr<LoopNest> Box = applySequence(
      TransformSequence::of({makeRectangularTile(
          2, 1, 2, {B8, B8}, {Expr::intConst(1), Expr::intConst(1)},
          {Expr::var("n"), Expr::var("n")})}),
      *Tri);
  if (!Ours || !Box)
    return 1;
  auto [OursEntered, OursWork] = countTiles(*Ours, 64);
  auto [BoxEntered, BoxWork] = countTiles(*Box, 64);
  std::printf("\ntriangular n=64, 8x8 tiles:\n");
  std::printf("  framework Block : %llu tiles entered, %llu with work\n",
              static_cast<unsigned long long>(OursEntered),
              static_cast<unsigned long long>(OursWork));
  std::printf("  bounding box    : %llu tiles entered, %llu with work\n",
              static_cast<unsigned long long>(BoxEntered),
              static_cast<unsigned long long>(BoxWork));
  std::printf("  empty tiles avoided: %llu\n",
              static_cast<unsigned long long>(BoxEntered - OursEntered));
  return 0;
}
