//===- examples/export_c.cpp - From script to compilable OpenMP C --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
// The "downstream compiler" workflow: take a loop nest and a textual
// transformation script (the same surface irlt-opt exposes), check
// legality, and emit compilable C with `#pragma omp parallel for` on the
// pardo loops - the paper's parallel-execution target made concrete.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"

#include <cstdio>

using namespace irlt;

int main() {
  ErrorOr<LoopNest> NestOr = parseLoopNest(
      "do i = 2, n - 1\n"
      "  do j = 2, n - 1\n"
      "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + "
      "a(i, j + 1)) / 5\n"
      "  enddo\n"
      "enddo\n");
  if (!NestOr) {
    std::fprintf(stderr, "parse error: %s\n", NestOr.message().c_str());
    return 1;
  }
  LoopNest Nest = NestOr.take();

  // Skew + interchange as one unimodular matrix, then parallelize the
  // inner wavefront loop.
  const char *Script = "unimodular 1 1 / 1 0\n"
                       "parallelize 2\n";
  ErrorOr<TransformSequence> Seq =
      parseTransformScript(Script, Nest.numLoops());
  if (!Seq) {
    std::fprintf(stderr, "script error: %s\n", Seq.message().c_str());
    return 1;
  }

  DepSet D = analyzeDependences(Nest);
  LegalityResult L = isLegal(*Seq, Nest, D);
  std::printf("script:\n%s\nlegal: %s\n\n", Script, L.Legal ? "yes" : "no");
  if (!L.Legal) {
    std::fprintf(stderr, "reason: %s\n", L.Reason.c_str());
    return 1;
  }

  ErrorOr<LoopNest> Out = applySequence(*Seq, Nest);
  if (!Out) {
    std::fprintf(stderr, "apply error: %s\n", Out.message().c_str());
    return 1;
  }

  std::printf("== loop form ==\n%s\n", Out->str().c_str());
  CEmitOptions Options;
  Options.FunctionName = "wavefront_stencil";
  std::printf("== C form (bind a(i, j) to storage before including) ==\n%s",
              emitC(*Out, Options).c_str());
  return 0;
}
