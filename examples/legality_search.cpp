//===- examples/legality_search.cpp - Search without touching the nest ---===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
// Section 5's headline advantage: a transformation is "an independent
// entity, distinct from the loop nests on which it may be applied", so an
// optimizer can enumerate many candidate sequences, test each for
// legality, and only generate code once - arbitrary search and undo with
// zero nest mutation.
//
// This example enumerates every signed permutation (ReversePermute
// instantiation) of the Figure 2 nest plus parallelization choices,
// reports which candidates are legal, and generates code for the one
// exposing the most parallelism.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Evaluator.h"
#include "ir/Parser.h"
#include "transform/AutoPar.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <cstdio>

using namespace irlt;

int main() {
  // Figure 2-flavoured nest with a skewed flow dependence plus an
  // outer-carried one: D = {(1, -1), (+, 0)}.
  ErrorOr<LoopNest> NestOr =
      parseLoopNest("arrays b\n"
                    "do i = 2, n - 1\n"
                    "  do j = 2, n - 1\n"
                    "    a(i, j) = a(i - 1, j + 1) + b(j)\n"
                    "    b(j) = a(i, j)\n"
                    "  enddo\n"
                    "enddo\n");
  if (!NestOr) {
    std::fprintf(stderr, "parse error: %s\n", NestOr.message().c_str());
    return 1;
  }
  LoopNest Nest = NestOr.take();
  DepSet D = analyzeDependences(Nest);
  std::printf("nest:\n%sdependences: %s\n\n", Nest.str().c_str(),
              D.str().c_str());

  struct Candidate {
    TransformSequence Seq;
    std::string Desc;
    bool Legal;
  };
  std::vector<Candidate> Candidates;

  // All 8 signed permutations x 4 parallelization masks = 32 candidates.
  for (unsigned Swap = 0; Swap < 2; ++Swap)
    for (unsigned R1 = 0; R1 < 2; ++R1)
      for (unsigned R2 = 0; R2 < 2; ++R2)
        for (unsigned ParI = 0; ParI < 2; ++ParI)
          for (unsigned ParJ = 0; ParJ < 2; ++ParJ) {
            std::vector<unsigned> Perm =
                Swap ? std::vector<unsigned>{1, 0}
                     : std::vector<unsigned>{0, 1};
            TransformSequence Seq = TransformSequence::of(
                {makeReversePermute(2, {R1 != 0, R2 != 0}, Perm)});
            if (ParI || ParJ)
              Seq.append(makeParallelize(2, {ParI != 0, ParJ != 0}));
            std::string Desc =
                std::string(Swap ? "swap" : "keep") + (R1 ? " -i" : " +i") +
                (R2 ? " -j" : " +j") + (ParI ? " par(outer)" : "") +
                (ParJ ? " par(inner)" : "");
            bool Legal = isLegal(Seq, Nest, D).Legal;
            Candidates.push_back(Candidate{Seq, Desc, Legal});
          }

  unsigned LegalCount = 0;
  for (const Candidate &C : Candidates) {
    std::printf("  %-40s %s\n", C.Desc.c_str(),
                C.Legal ? "legal" : "illegal");
    LegalCount += C.Legal;
  }
  std::printf("\n%u of %zu candidates legal; note the loop nest itself was "
              "never modified during the search.\n\n",
              LegalCount, Candidates.size());

  // Pick the legal candidate with the highest measured parallelism.
  EvalConfig Config;
  Config.Params["n"] = 16;
  const Candidate *Best = nullptr;
  double BestPar = 0;
  for (const Candidate &C : Candidates) {
    if (!C.Legal)
      continue;
    ErrorOr<LoopNest> Out = applySequence(C.Seq, Nest);
    if (!Out)
      continue;
    ArrayStore S;
    EvalResult R = evaluate(*Out, Config, S);
    ParallelismStats P = parallelismStats(*Out, R);
    if (P.AvgParallelism > BestPar) {
      BestPar = P.AvgParallelism;
      Best = &C;
    }
  }
  if (!Best) {
    std::fprintf(stderr, "no legal candidate?\n");
    return 1;
  }
  std::printf("best candidate: %s (avg parallelism %.2f at n=16)\n",
              Best->Desc.c_str(), BestPar);
  ErrorOr<LoopNest> Out = applySequence(Best->Seq, Nest);
  std::printf("generated code:\n%s\n", Out->str().c_str());

  // The same search, automated: the AutoPar driver also explores
  // wavefront hyperplanes, so it can beat the hand-enumerated space.
  AutoParResult Auto = autoParallelize(Nest, D);
  std::printf("autoParallelize: %u candidates, %u legal\n", Auto.Enumerated,
              Auto.Legal);
  if (Auto.Best) {
    std::printf("auto-chosen sequence: %s\n", Auto.Best->Seq.str().c_str());
    ErrorOr<LoopNest> AOut = applySequence(Auto.Best->Seq, Nest);
    if (AOut)
      std::printf("auto-generated code:\n%s", AOut->str().c_str());
  }
  return 0;
}
