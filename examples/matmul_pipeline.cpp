//===- examples/matmul_pipeline.cpp - Appendix A, stage by stage ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
// Drives the matrix-multiply nest of Figure 6 through the five-stage
// Appendix A transformation - ReversePermute, Block, Parallelize,
// ReversePermute, Coalesce - printing, after every stage, the dependence
// vectors and the loop nest (the two columns of Figure 7). Finishes with
// a concrete-execution equivalence check.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <cstdio>

using namespace irlt;

int main() {
  ErrorOr<LoopNest> NestOr =
      parseLoopNest("arrays B, C\n"
                    "do i = 1, n\n"
                    "  do j = 1, n\n"
                    "    do k = 1, n\n"
                    "      A(i, j) += B(i, k) * C(k, j)\n"
                    "    enddo\n"
                    "  enddo\n"
                    "enddo\n");
  if (!NestOr) {
    std::fprintf(stderr, "parse error: %s\n", NestOr.message().c_str());
    return 1;
  }
  LoopNest Nest = NestOr.take();
  DepSet D = analyzeDependences(Nest);

  std::printf("== Figure 6: input loop nest ==\n%s\n", Nest.str().c_str());
  std::printf("START dependence vectors: %s\n\n", D.str().c_str());

  std::vector<TemplateRef> Stages = {
      makeReversePermute(3, {false, false, false}, {2, 0, 1}),
      makeBlock(3, 1, 3, {Expr::var("bj"), Expr::var("bk"), Expr::var("bi")}),
      makeParallelize(6, {true, false, true, false, false, false}),
      makeReversePermute(6, {false, false, false, false, false, false},
                         {0, 2, 1, 3, 4, 5}),
      makeCoalesce(6, 1, 2, std::string("jic")),
  };

  LoopNest Cur = Nest;
  DepSet CurD = D;
  for (size_t I = 0; I < Stages.size(); ++I) {
    const TemplateRef &T = Stages[I];
    std::printf("---- Stage %zu: %s ----\n", I + 1, T->str().c_str());
    if (std::string E = T->checkPreconditions(Cur); !E.empty()) {
      std::fprintf(stderr, "precondition violated: %s\n", E.c_str());
      return 1;
    }
    ErrorOr<LoopNest> Next = T->apply(Cur);
    if (!Next) {
      std::fprintf(stderr, "apply failed: %s\n", Next.message().c_str());
      return 1;
    }
    Cur = Next.take();
    CurD = T->mapDependences(CurD);
    std::printf("dependences: %s\n%s\n", CurD.str().c_str(),
                Cur.str().c_str());
  }

  bool LexOk = CurD.allLexNonNegative();
  std::printf("final dependence set lexicographically non-negative: %s\n",
              LexOk ? "yes (legal)" : "NO (illegal)");

  // Execute original and transformed with concrete sizes and compare.
  EvalConfig Config;
  Config.Params = {{"n", 12}, {"bj", 4}, {"bk", 3}, {"bi", 4}};
  VerifyResult V = verifyTransformed(Nest, Cur, Config);
  std::printf("verification at n=12, bsize=(4,3,4): %s\n",
              V.Ok ? "equivalent" : V.Problem.c_str());

  // Parallelism of the coalesced pardo jic loop.
  ArrayStore S;
  EvalResult R = evaluate(Cur, Config, S);
  ParallelismStats P = parallelismStats(Cur, R);
  std::printf("pardo jic parallelism: avg %.2f over %llu sequential steps\n",
              P.AvgParallelism,
              static_cast<unsigned long long>(P.SequentialSteps));
  return V.Ok && LexOk ? 0 : 1;
}
