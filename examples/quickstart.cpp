//===- examples/quickstart.cpp - IRLT in five minutes --------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992).
//
// The end-to-end workflow on the paper's Figure 1 example:
//   1. parse a loop nest,
//   2. analyze its dependences,
//   3. build a transformation as a sequence of kernel templates,
//   4. test legality (without touching the nest),
//   5. generate the transformed code,
//   6. execute both versions and check they agree.
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"
#include "eval/Verify.h"
#include "ir/Parser.h"
#include "transform/Sequence.h"
#include "transform/Templates.h"

#include <cstdio>

using namespace irlt;

int main() {
  // 1. Parse the 5-point stencil of Figure 1(a).
  const char *Source =
      "do i = 2, n - 1\n"
      "  do j = 2, n - 1\n"
      "    a(i, j) = (a(i, j) + a(i - 1, j) + a(i, j - 1) + a(i + 1, j) + "
      "a(i, j + 1)) / 5\n"
      "  enddo\n"
      "enddo\n";
  ErrorOr<LoopNest> NestOr = parseLoopNest(Source);
  if (!NestOr) {
    std::fprintf(stderr, "parse error: %s\n", NestOr.message().c_str());
    return 1;
  }
  LoopNest Nest = NestOr.take();
  std::printf("== Original nest (Figure 1a) ==\n%s\n", Nest.str().c_str());

  // 2. Dependence analysis.
  DepSet D = analyzeDependences(Nest);
  std::printf("dependence vectors: %s\n\n", D.str().c_str());

  // 3. The transformation: skew j by i, then interchange - two Unimodular
  //    template instantiations that reduce() fuses into one matrix.
  TransformSequence Seq = TransformSequence::of(
      {makeUnimodular(2, UnimodularMatrix::skew(2, 0, 1, 1)),
       makeUnimodular(2, UnimodularMatrix::interchange(2, 0, 1))});
  TransformSequence Reduced = Seq.reduced();
  std::printf("transformation:  %s\nreduces to:      %s\n\n",
              Seq.str().c_str(), Reduced.str().c_str());

  // 4. The uniform legality test: dependence part + bounds preconditions.
  LegalityResult L = isLegal(Reduced, Nest, D);
  std::printf("legal? %s   (mapped dependences: %s)\n\n",
              L.Legal ? "yes" : "no", L.FinalDeps.str().c_str());
  if (!L.Legal) {
    std::fprintf(stderr, "unexpectedly illegal: %s\n", L.Reason.c_str());
    return 1;
  }

  // 5. Code generation: new bounds + initialization statements.
  ErrorOr<LoopNest> Out = applySequence(Reduced, Nest);
  if (!Out) {
    std::fprintf(stderr, "codegen error: %s\n", Out.message().c_str());
    return 1;
  }
  std::printf("== Transformed nest (Figure 1b) ==\n%s\n", Out->str().c_str());

  // 6. Execute both on n = 12 and verify: same instances, dependence
  //    order preserved, same final array contents.
  EvalConfig Config;
  Config.Params["n"] = 12;
  VerifyResult V = verifyTransformed(Nest, *Out, Config);
  std::printf("verification: %s\n", V.Ok ? "equivalent" : V.Problem.c_str());

  // Bonus: the skewed inner loop carries no dependence - parallelize it.
  TransformSequence Par = Reduced.composedWith(
      TransformSequence::of({makeParallelize(2, {false, true})}));
  LegalityResult LP = isLegal(Par, Nest, D);
  std::printf("inner-loop parallelization legal? %s\n",
              LP.Legal ? "yes" : "no");
  ErrorOr<LoopNest> ParOut = applySequence(Par, Nest);
  if (ParOut) {
    ArrayStore S;
    EvalResult R = evaluate(*ParOut, Config, S);
    ParallelismStats P = parallelismStats(*ParOut, R);
    std::printf("wavefront parallelism at n=12: avg %.2f, max %llu over "
                "%llu sequential steps\n",
                P.AvgParallelism,
                static_cast<unsigned long long>(P.MaxParallelism),
                static_cast<unsigned long long>(P.SequentialSteps));
  }
  return V.Ok && LP.Legal ? 0 : 1;
}
