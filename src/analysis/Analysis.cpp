//===- analysis/Analysis.cpp - Static diagnostics for scripts ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"

#include "deps/CrossCheck.h"
#include "deps/DepOracle.h"
#include "support/Casting.h"
#include "support/MathUtils.h"
#include "transform/Templates.h"
#include "transform/TypeState.h"

#include <cstdlib>

using namespace irlt;
using namespace irlt::analysis;

const char *irlt::analysis::severityName(FindingSeverity S) {
  return S == FindingSeverity::Error ? "error" : "warning";
}

const std::vector<RuleInfo> &irlt::analysis::ruleRegistry() {
  static const std::vector<RuleInfo> Registry = {
      {"E100", FindingSeverity::Error,
       "final dependence vector admits a lexicographically negative tuple",
       "Table 2; Section 3.2"},
      {"E101", FindingSeverity::Error,
       "Table 3 loop-bounds precondition violated", "Table 3; Section 4.1"},
      {"E102", FindingSeverity::Error,
       "Table 4 loop-bounds precondition violated", "Table 4; Section 4.2"},
      {"E103", FindingSeverity::Error,
       "anchor-dependence side condition violated",
       "Definition 3.4; DESIGN.md section 5"},
      {"E104", FindingSeverity::Error,
       "coefficient arithmetic overflows the int64 range",
       "support/MathUtils.h saturation"},
      {"E105", FindingSeverity::Error,
       "bounds pipeline failed to apply the stage", "Section 4"},
      {"E106", FindingSeverity::Error,
       "stage arity does not match the current nest", "Section 2"},
      {"W200", FindingSeverity::Warning,
       "adjacent stages fold into one (the reduced() peephole)",
       "Section 2 efficiency note"},
      {"W201", FindingSeverity::Warning, "identity stage has no effect",
       "Section 2"},
      {"W202", FindingSeverity::Warning,
       "dependence direction information lost before a later Parallelize",
       "Table 2; Section 3.1"},
      {"W203", FindingSeverity::Warning,
       "generated loop bounds degrade to nonlinear", "Tables 3-4; Section 4.1"},
      {"W204", FindingSeverity::Warning,
       "saturation-risk coefficient magnitude in bounds",
       "support/MathUtils.h"},
      {"W205", FindingSeverity::Warning,
       "dependence analysis is conservative vs the exact backend",
       "deps/CrossCheck.h; docs/DEPENDENCE.md"},
      {"W206", FindingSeverity::Warning,
       "dependence analysis under-reports vs the exact backend",
       "deps/CrossCheck.h; docs/DEPENDENCE.md"},
  };
  return Registry;
}

unsigned irlt::analysis::ruleRegistryVersion() { return 2; }

const RuleInfo *irlt::analysis::findRule(std::string_view Id) {
  for (const RuleInfo &R : ruleRegistry())
    if (Id == R.Id)
      return &R;
  return nullptr;
}

Diag Finding::toDiag() const {
  Diag D("[" + RuleId + "] " + Message);
  D.Severity = Severity == FindingSeverity::Error ? DiagSeverity::Error
                                                  : DiagSeverity::Warning;
  if (Stage)
    D.atStage(Stage);
  if (!TemplateName.empty())
    D.inTemplate(TemplateName);
  return D;
}

unsigned AnalysisReport::errorCount() const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    N += F.Severity == FindingSeverity::Error;
  return N;
}

unsigned AnalysisReport::warningCount() const {
  unsigned N = 0;
  for (const Finding &F : Findings)
    N += F.Severity == FindingSeverity::Warning;
  return N;
}

namespace {

Finding makeFinding(const char *Id) {
  const RuleInfo *R = findRule(Id);
  Finding F;
  F.RuleId = Id;
  F.Severity = R->Severity;
  F.Citation = R->Citation;
  return F;
}

/// Templates whose bounds rules live in Table 4 (the splitting templates;
/// StripMine is the Kind::Custom extension of the Block decomposition).
bool usesTable4(TransformTemplate::Kind K) {
  using Kind = TransformTemplate::Kind;
  return K == Kind::Block || K == Kind::Interleave || K == Kind::Custom;
}

/// Where in a loop header the worst-typed expression sits.
enum class HeaderExpr { Lower, Upper, Step };

const char *headerExprName(HeaderExpr E) {
  switch (E) {
  case HeaderExpr::Lower:
    return "lower bound";
  case HeaderExpr::Upper:
    return "upper bound";
  case HeaderExpr::Step:
    return "step";
  }
  return "?";
}

/// The worst (lattice-highest) classification in \p State over every loop
/// header expression with respect to every index position, with the
/// argmax for attribution.
BoundType stateWorst(const NestTypeState &State, unsigned *WorstLoop = nullptr,
                     HeaderExpr *WorstExpr = nullptr) {
  BoundType W = BoundType::Const;
  for (unsigned L = 0; L < State.numLoops(); ++L) {
    const LoopTypeInfo &Info = State.Loops[L];
    for (unsigned P = 0; P < State.numLoops(); ++P) {
      struct {
        const ExprTypes *T;
        HeaderExpr Which;
      } Slots[] = {{&Info.LB, HeaderExpr::Lower},
                   {&Info.UB, HeaderExpr::Upper},
                   {&Info.Step, HeaderExpr::Step}};
      for (const auto &Slot : Slots) {
        BoundType T = Slot.T->wrt(P);
        if (!typeLE(T, W)) {
          W = T;
          if (WorstLoop)
            *WorstLoop = L;
          if (WorstExpr)
            *WorstExpr = Slot.Which;
        }
      }
    }
  }
  return W;
}

/// "loop 2 upper bound `n - i`" for the attribution slot of \p Nest.
std::string headerExprDesc(const LoopNest &Nest, unsigned LoopIdx,
                           HeaderExpr Which) {
  if (LoopIdx >= Nest.numLoops())
    return "";
  const Loop &L = Nest.Loops[LoopIdx];
  const ExprRef &E = Which == HeaderExpr::Lower
                         ? L.Lower
                         : (Which == HeaderExpr::Upper ? L.Upper : L.Step);
  return "loop " + std::to_string(LoopIdx + 1) + " " + headerExprName(Which) +
         " `" + (E ? E->str() : "?") + "`";
}

/// Largest integer-literal magnitude anywhere in \p E.
uint64_t maxConstMagnitude(const ExprRef &E) {
  if (!E)
    return 0;
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    return magnitude(cast<IntConstExpr>(E.get())->value());
  case Expr::Kind::Var:
    return 0;
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul:
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    uint64_t L = maxConstMagnitude(B->lhs());
    uint64_t R = maxConstMagnitude(B->rhs());
    return L > R ? L : R;
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    uint64_t M = 0;
    for (const ExprRef &Op : cast<MinMaxExpr>(E.get())->operands())
      M = std::max(M, maxConstMagnitude(Op));
    return M;
  }
  case Expr::Kind::Call: {
    uint64_t M = 0;
    for (const ExprRef &Arg : cast<CallExpr>(E.get())->args())
      M = std::max(M, maxConstMagnitude(Arg));
    return M;
  }
  }
  return 0;
}

/// Above this magnitude, two coefficients multiplied in the bounds
/// pipeline can leave the int64 range and saturate (MathUtils mulChecked).
constexpr uint64_t SaturationRiskMagnitude = uint64_t(1) << 31;

/// True when every vector of \p D is an exact distance vector.
bool allDistanceVectors(const DepSet &D) {
  for (const DepVector &V : D.vectors())
    if (!V.allDistances())
      return false;
  return true;
}

/// Finds a vector of \p D carrying a full '*' entry (all three sign
/// bits); returns its rendering, or empty when none.
std::string findStarVector(const DepSet &D) {
  for (const DepVector &V : D.vectors())
    for (const DepElem &E : V.elems())
      if (E.isDirection() && E.canBeNegative() && E.canBeZero() &&
          E.canBePositive())
        return V.str();
  return "";
}

/// The structural lint pass: rules that need no nest state (W200, W201,
/// W204) over the whole sequence, emitted in stage order.
void lintStructure(const TransformSequence &T, const LoopNest &Nest,
                   std::vector<Finding> &Out) {
  const std::vector<TemplateRef> &Steps = T.steps();

  // W204 on the source nest's own bound coefficients (stage 0).
  for (unsigned L = 0; L < Nest.numLoops(); ++L) {
    struct {
      const ExprRef *E;
      HeaderExpr Which;
    } Slots[] = {{&Nest.Loops[L].Lower, HeaderExpr::Lower},
                 {&Nest.Loops[L].Upper, HeaderExpr::Upper},
                 {&Nest.Loops[L].Step, HeaderExpr::Step}};
    for (const auto &Slot : Slots) {
      if (maxConstMagnitude(*Slot.E) < SaturationRiskMagnitude)
        continue;
      Finding F = makeFinding("W204");
      F.Bounds = headerExprDesc(Nest, L, Slot.Which);
      F.Message = "nest " + F.Bounds +
                  " carries a coefficient large enough that bounds-pipeline "
                  "arithmetic can saturate int64 (degrading legality answers "
                  "to overflow rejections)";
      Out.push_back(std::move(F));
    }
  }

  for (unsigned I = 0; I < Steps.size(); ++I) {
    const TransformTemplate &Step = *Steps[I];
    unsigned Stage = I + 1;

    if (isIdentityStage(Step)) {
      Finding F = makeFinding("W201");
      F.Stage = Stage;
      F.TemplateName = Step.name();
      F.Message = "stage is an identity " + Step.name() +
                  " and reorders nothing; drop it";
      F.FixIt = "delete stage " + std::to_string(Stage);
      Out.push_back(std::move(F));
    }

    // W204 on template coefficients.
    uint64_t ParamMag = 0;
    std::string ParamDesc;
    if (const auto *U = dyn_cast<UnimodularTemplate>(&Step)) {
      for (unsigned R = 0; R < U->matrix().size(); ++R)
        for (unsigned C = 0; C < U->matrix().size(); ++C)
          ParamMag = std::max(ParamMag, magnitude(U->matrix().at(R, C)));
      ParamDesc = "matrix entry";
    } else if (const auto *B = dyn_cast<BlockTemplate>(&Step)) {
      for (const ExprRef &S : B->bsize())
        ParamMag = std::max(ParamMag, maxConstMagnitude(S));
      ParamDesc = "block size";
    } else if (const auto *IL = dyn_cast<InterleaveTemplate>(&Step)) {
      for (const ExprRef &S : IL->isize())
        ParamMag = std::max(ParamMag, maxConstMagnitude(S));
      ParamDesc = "interleave size";
    } else if (const auto *SM = dyn_cast<StripMineTemplate>(&Step)) {
      ParamMag = maxConstMagnitude(SM->size());
      ParamDesc = "strip size";
    }
    if (ParamMag >= SaturationRiskMagnitude) {
      Finding F = makeFinding("W204");
      F.Stage = Stage;
      F.TemplateName = Step.name();
      F.Bounds = ParamDesc + " in " + Step.str();
      F.Message = Step.name() + " " + ParamDesc +
                  " is large enough that bounds-pipeline arithmetic can "
                  "saturate int64";
      Out.push_back(std::move(F));
    }

    // W200: this stage and the next fold into one under reduced().
    // Folding huge-entry matrices can saturate int64; a degraded fold is
    // not a truthful finding, so it is skipped (W204 already flags the
    // saturation risk itself).
    if (I + 1 < Steps.size()) {
      TransformSequence Pair(
          std::vector<TemplateRef>{Steps[I], Steps[I + 1]});
      OverflowGuard Shield;
      if (Pair.reduced().size() == 1 && !Shield.triggered()) {
        Finding F = makeFinding("W200");
        F.Stage = Stage;
        F.TemplateName = Step.name();
        F.Message = "stages " + std::to_string(Stage) + " and " +
                    std::to_string(Stage + 1) + " (" + Step.name() + ", " +
                    Steps[I + 1]->name() +
                    ") fold into a single stage under reduced()";
        F.FixIt = "replace both stages with " +
                  Pair.reduced().steps().front()->str();
        Out.push_back(std::move(F));
      }
    }
  }
}

} // namespace

bool irlt::analysis::isIdentityStage(const TransformTemplate &T) {
  using Kind = TransformTemplate::Kind;
  switch (T.kind()) {
  case Kind::Unimodular: {
    const auto &M = cast<UnimodularTemplate>(&T)->matrix();
    for (unsigned R = 0; R < M.size(); ++R)
      for (unsigned C = 0; C < M.size(); ++C)
        if (M.at(R, C) != (R == C ? 1 : 0))
          return false;
    return true;
  }
  case Kind::ReversePermute: {
    const auto *RP = cast<ReversePermuteTemplate>(&T);
    for (unsigned K = 0; K < RP->inputSize(); ++K)
      if (RP->rev()[K] || RP->perm()[K] != K)
        return false;
    return true;
  }
  case Kind::Parallelize: {
    for (bool Flag : cast<ParallelizeTemplate>(&T)->parFlag())
      if (Flag)
        return false;
    return true;
  }
  default:
    return false;
  }
}

TransformSequence irlt::analysis::fixitSequence(const TransformSequence &T) {
  // Strip-then-fold to a fixed point: folding two interchanges yields an
  // identity ReversePermute that the next strip pass drops, and dropping
  // a stage can make its neighbours adjacent and foldable again.
  TransformSequence Cur = T;
  for (;;) {
    std::vector<TemplateRef> Kept;
    for (const TemplateRef &Step : Cur.steps())
      if (!isIdentityStage(*Step))
        Kept.push_back(Step);
    TransformSequence Next = TransformSequence(std::move(Kept)).reduced();
    if (Next.size() == Cur.size())
      return Next;
    Cur = std::move(Next);
  }
}

bool irlt::analysis::finalDepsRejectable(const DepSet &MappedFinal) {
  return !MappedFinal.allLexNonNegative();
}

AnalysisReport irlt::analysis::analyzeSequence(const TransformSequence &T,
                                               const LoopNest &Nest,
                                               const DepSet &D,
                                               const AnalysisOptions &Opts) {
  AnalysisReport Report;
  const std::vector<TemplateRef> &Steps = T.steps();

  if (Opts.Lint)
    lintStructure(T, Nest, Report.Findings);

  // Does any stage strictly after index I parallelize? (for W202)
  auto laterParallelize = [&](unsigned I) {
    for (unsigned J = I + 1; J < Steps.size(); ++J)
      if (Steps[J]->kind() == TransformTemplate::Kind::Parallelize)
        return true;
    return false;
  };

  // The walk: an instrumented replica of isLegal() - identical checks in
  // identical order under the same per-stage OverflowGuard - so a
  // sequence is error-clean here exactly when isLegal() accepts it.
  // Provenance and lint computations run under their own nested guards
  // (innermost records) so they cannot perturb the replica's verdict.
  LoopNest Cur = Nest;
  DepSet CurDeps = D;
  bool Errored = false;
  for (unsigned I = 0; I < Steps.size() && !Errored; ++I) {
    const TemplateRef &Step = Steps[I];
    unsigned Stage = I + 1;

    // Defensive arity check so malformed hand-built sequences diagnose
    // instead of indexing out of range inside a template.
    if (Step->inputSize() != Cur.numLoops()) {
      Finding F = makeFinding("E106");
      F.Stage = Stage;
      F.TemplateName = Step->name();
      F.Message = Step->name() + " expects " +
                  std::to_string(Step->inputSize()) +
                  " loops but the nest has " + std::to_string(Cur.numLoops()) +
                  " at this stage";
      Report.Findings.push_back(std::move(F));
      return Report;
    }

    // Lattice provenance of the nest state this stage observes.
    unsigned WorstLoop = 0;
    HeaderExpr WorstExpr = HeaderExpr::Lower;
    BoundType PreWorst = BoundType::Const;
    {
      OverflowGuard Shield;
      PreWorst =
          stateWorst(NestTypeState::fromNest(Cur), &WorstLoop, &WorstExpr);
    }
    bool PreAllDistances = allDistanceVectors(CurDeps);

    LoopNest Next;
    DepSet NextDeps;
    {
      OverflowGuard Guard;
      auto overflow = [&]() {
        if (!Guard.triggered())
          return false;
        Finding F = makeFinding("E104");
        F.Stage = Stage;
        F.TemplateName = Step->name();
        F.Message = "coefficient arithmetic overflows the int64 range "
                    "(bounds overflow)";
        Report.Findings.push_back(std::move(F));
        return true;
      };

      std::string E = Step->checkPreconditions(Cur);
      if (overflow()) {
        Errored = true;
        break;
      }
      if (!E.empty()) {
        Finding F =
            makeFinding(usesTable4(Step->kind()) ? "E102" : "E101");
        F.Stage = Stage;
        F.TemplateName = Step->name();
        F.Message = "bounds precondition violated: " + E;
        F.Lattice = typeName(PreWorst);
        F.Bounds = headerExprDesc(Cur, WorstLoop, WorstExpr);
        Report.Findings.push_back(std::move(F));
        Errored = true;
        break;
      }

      E = checkAnchorDependence(*Step, NestTypeState::fromNest(Cur), CurDeps);
      if (overflow()) {
        Errored = true;
        break;
      }
      if (!E.empty()) {
        Finding F = makeFinding("E103");
        F.Stage = Stage;
        F.TemplateName = Step->name();
        F.Message = "dependence precondition violated: " + E;
        F.Lattice = typeName(PreWorst);
        std::string Deps = CurDeps.str();
        if (Deps.size() <= 200)
          F.DepVector = Deps;
        Report.Findings.push_back(std::move(F));
        Errored = true;
        break;
      }

      ErrorOr<LoopNest> Applied = Step->apply(Cur);
      if (overflow()) {
        Errored = true;
        break;
      }
      if (!Applied) {
        Finding F = makeFinding("E105");
        F.Stage = Stage;
        F.TemplateName = Step->name();
        F.Message = Applied.message();
        F.Lattice = typeName(PreWorst);
        Report.Findings.push_back(std::move(F));
        Errored = true;
        break;
      }
      Next = Applied.take();
      NextDeps = Step->mapDependences(CurDeps);
      if (overflow()) {
        Errored = true;
        break;
      }
    }

    if (Opts.Lint) {
      // W203: this stage's generated bounds introduced a nonlinear
      // classification the input nest did not have.
      if (usesTable4(Step->kind()) ||
          Step->kind() == TransformTemplate::Kind::Coalesce) {
        OverflowGuard Shield;
        unsigned OutLoop = 0;
        HeaderExpr OutExpr = HeaderExpr::Lower;
        BoundType PostWorst =
            stateWorst(NestTypeState::fromNest(Next), &OutLoop, &OutExpr);
        if (PostWorst == BoundType::Nonlinear &&
            PreWorst != BoundType::Nonlinear) {
          Finding F = makeFinding("W203");
          F.Stage = Stage;
          F.TemplateName = Step->name();
          F.Lattice = typeName(PostWorst);
          F.Bounds = headerExprDesc(Next, OutLoop, OutExpr);
          F.Message =
              Step->name() +
              " generates nonlinear loop bounds here (" + F.Bounds +
              "), which blocks every Table 3 template downstream";
          Report.Findings.push_back(std::move(F));
        }
      }

      // W202: an exact distance set degraded to a full '*' direction
      // while a later Parallelize still has to prove independence.
      if (PreAllDistances && laterParallelize(I)) {
        std::string Star = findStarVector(NextDeps);
        if (!Star.empty()) {
          Finding F = makeFinding("W202");
          F.Stage = Stage;
          F.TemplateName = Step->name();
          F.DepVector = Star;
          F.Message = Step->name() +
                      " degrades an exact distance vector to the '*' "
                      "direction (" +
                      Star +
                      "), blinding the later Parallelize stage's "
                      "legality test";
          Report.Findings.push_back(std::move(F));
        }
      }
    }

    Cur = std::move(Next);
    CurDeps = std::move(NextDeps);
  }

  // Final lexicographic test on the fully mapped set (isLegal part (a)).
  if (!Errored) {
    for (const DepVector &V : CurDeps.vectors()) {
      if (V.canBeLexNegative()) {
        Finding F = makeFinding("E100");
        F.Message = "transformed dependence vector " + V.str() +
                    " admits a lexicographically negative tuple";
        F.DepVector = V.str();
        {
          OverflowGuard Shield;
          F.Lattice = typeName(stateWorst(NestTypeState::fromNest(Cur)));
        }
        Report.Findings.push_back(std::move(F));
        break;
      }
    }
  }

  // Opt-in dependence-oracle cross-check (docs/DEPENDENCE.md): diff the
  // production analyzer against the first-principles fm-exact backend on
  // the *source* nest. Under-reporting (W206) means every verdict above
  // was computed from a possibly-incomplete dependence set - still a
  // warning, not an error, because the error class must stay equivalent
  // to isLegal() (the fuzzer's analyzer oracle relies on that), and
  // isLegal() shares the production set. Whole-sequence findings: Stage 0.
  if (Opts.Lint && Opts.CrossCheckDeps) {
    deps::DepResult Fast = deps::pipelineOracle().analyze(Nest);
    deps::DepResult Exact = deps::fmExactOracle().analyze(Nest);
    deps::CrossCheckResult CC = deps::crossCheckDeps(Fast, Exact);
    for (const DepVector &V : CC.Uncovered) {
      Finding F = makeFinding("W206");
      F.Message = "exact backend reports dependence vector " + V.str() +
                  " that no production vector covers (soundness "
                  "divergence; replay: irlt-opt <nest> --deps-diff)";
      F.DepVector = V.str();
      Report.Findings.push_back(std::move(F));
    }
    if (CC.Stat == deps::CrossCheckResult::Status::PrecisionGap) {
      for (const DepVector &V : CC.Extra) {
        Finding F = makeFinding("W205");
        F.Message = "production dependence vector " + V.str() +
                    " lies beyond the exact backend's set (conservative "
                    "over-approximation; may forbid legal transforms)";
        F.DepVector = V.str();
        Report.Findings.push_back(std::move(F));
      }
    }
  }

  // A fix-it exists when a droppable/foldable lint rule fired. Fusing can
  // saturate int64 on huge-entry matrices; a degraded fix-it would not be
  // equivalent to the input, so it is dropped rather than reported.
  for (const Finding &F : Report.Findings) {
    if (F.RuleId == "W200" || F.RuleId == "W201") {
      OverflowGuard Shield;
      TransformSequence Fixed = fixitSequence(T);
      if (!Shield.triggered())
        Report.Fixed = std::move(Fixed);
      break;
    }
  }
  return Report;
}

void irlt::analysis::writeReport(json::JsonWriter &W,
                                 const AnalysisReport &R) {
  W.beginObject();
  W.field("errors", R.errorCount());
  W.field("warnings", R.warningCount());
  W.key("findings").beginArray();
  for (const Finding &F : R.Findings) {
    W.beginObject();
    W.field("rule", F.RuleId);
    W.field("severity", severityName(F.Severity));
    W.field("stage", F.Stage);
    if (!F.TemplateName.empty())
      W.field("template", F.TemplateName);
    W.field("message", F.Message);
    W.field("citation", F.Citation);
    if (!F.Lattice.empty())
      W.field("lattice", F.Lattice);
    if (!F.DepVector.empty())
      W.field("dep_vector", F.DepVector);
    if (!F.Bounds.empty())
      W.field("bounds", F.Bounds);
    if (!F.FixIt.empty())
      W.field("fixit", F.FixIt);
    W.endObject();
  }
  W.endArray();
  if (R.Fixed)
    W.field("fixed_sequence", R.Fixed->str());
  W.endObject();
}

std::vector<Diag> irlt::analysis::toDiags(const AnalysisReport &R) {
  std::vector<Diag> Out;
  Out.reserve(R.Findings.size());
  for (const Finding &F : R.Findings)
    Out.push_back(F.toDiag());
  return Out;
}
