//===- analysis/Analysis.h - Static diagnostics for scripts --------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static diagnostic and lint engine behind irlt-analyze (and the
/// --analyze surfaces of the other tools). The paper's central claim is
/// that legality of an arbitrary kernel-template sequence is decidable
/// *statically* - the Table 2 dependence mapping rules plus the Table 3/4
/// bounds preconditions over the const/invar/linear/nonlinear lattice -
/// and this module turns that decision procedure into *explanations*:
/// every isLegal() rejection becomes an error-class finding carrying the
/// stage index, template name, the exact table rule that fired, the
/// offending dependence vector or bounds expression, and the inferred
/// TypeState lattice element.
///
/// Error-class rules replicate the isLegal() walk step for step (same
/// checks, same order, same per-stage OverflowGuard), so by construction
/// a sequence is error-clean if and only if isLegal() accepts it - the
/// invariant the fuzzer's analyzer oracle enforces. Warning-class lint
/// rules flag legal-but-wasteful scripts: stage pairs the reduced()
/// peephole would fold, identity stages, direction-vector information
/// loss ahead of a Parallelize, templates whose generated bounds degrade
/// to nonlinear, and saturation-risk coefficients (support/MathUtils.h).
///
/// Nothing here executes a nest: analysis uses the same bounds pipeline
/// and dependence mapping the legality test itself uses, never the
/// evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_ANALYSIS_ANALYSIS_H
#define IRLT_ANALYSIS_ANALYSIS_H

#include "support/Json.h"
#include "transform/Sequence.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace irlt {
namespace analysis {

/// Finding severity. Errors predict an isLegal() rejection; warnings are
/// lint (the sequence is typically legal but wasteful or fragile).
enum class FindingSeverity { Error, Warning };

/// "error" / "warning".
const char *severityName(FindingSeverity S);

/// One entry of the rule registry: stable id, severity, a short title,
/// and the paper-table (or design-doc) citation the rule enforces.
struct RuleInfo {
  const char *Id;
  FindingSeverity Severity;
  const char *Title;
  const char *Citation;
};

/// All rules, error class first, in id order.
const std::vector<RuleInfo> &ruleRegistry();

/// Monotonic registry version, bumped whenever a rule is added, removed,
/// or changes meaning. Carried in every irlt-analyze --json record header
/// so downstream triage can tell which rule set produced a report.
/// History: 1 = E100-E106/W200-W204; 2 = + W205/W206 (dependence-oracle
/// cross-check, docs/DEPENDENCE.md).
unsigned ruleRegistryVersion();

/// Registry lookup; nullptr for an unknown id.
const RuleInfo *findRule(std::string_view Id);

/// One finding. Provenance fields are filled when they apply and empty
/// otherwise; Stage is 1-based with 0 meaning "whole sequence" (the final
/// lexicographic test, pair rules reference their first stage).
struct Finding {
  std::string RuleId;
  FindingSeverity Severity = FindingSeverity::Error;
  unsigned Stage = 0;
  std::string TemplateName;
  std::string Message;
  /// Paper-table citation of the rule that fired (from the registry).
  std::string Citation;
  /// Inferred TypeState lattice element of the nest state the rule
  /// observed ("const", "invar", "linear", "nonlinear").
  std::string Lattice;
  /// Offending dependence vector rendering, e.g. "(-1, 0)".
  std::string DepVector;
  /// Offending bounds expression, e.g. "loop 2 upper bound `n - i`".
  std::string Bounds;
  /// Human-readable fix-it hint (warnings only).
  std::string FixIt;

  /// Renders as a structured Diag (severity, stage, template, message).
  Diag toDiag() const;
};

struct AnalysisOptions {
  /// Run the warning-class lint rules (errors always run).
  bool Lint = true;
  /// Cross-check the source nest's dependence set against the
  /// first-principles fm-exact backend (deps/DepOracle.h) and report
  /// W205 (pipeline strictly conservative) / W206 (pipeline
  /// under-reports: a soundness divergence) findings with the offending
  /// vectors. Off by default: the exact backend enumerates the full
  /// sign tree per reference pair, which is far more work than the
  /// production analyzer, and the rules are diagnostics, not part of
  /// the legality contract.
  bool CrossCheckDeps = false;
};

struct AnalysisReport {
  /// Findings in discovery order: per-stage walk findings first (the walk
  /// stops at the first error, like isLegal), then whole-sequence rules.
  std::vector<Finding> Findings;

  /// The fix-it sequence when at least one fixable lint finding fired
  /// (identity stages stripped, adjacent fusable stages folded); nullopt
  /// when no fix applies. Semantically equivalent to the input sequence
  /// on every nest both apply to (the fuzzer's oracle checks this under
  /// the evaluator).
  std::optional<TransformSequence> Fixed;

  unsigned errorCount() const;
  unsigned warningCount() const;
  bool hasErrors() const { return errorCount() != 0; }
};

/// Analyzes \p T against \p Nest with dependence set \p D. Never asserts
/// or throws on any parseable input: overflow degrades to an E104
/// finding, arity mismatches to E106, and apply failures to E105.
AnalysisReport analyzeSequence(const TransformSequence &T,
                               const LoopNest &Nest, const DepSet &D,
                               const AnalysisOptions &Opts = {});

/// True for a stage the fix-it may drop outright: an identity Unimodular
/// matrix, an identity ReversePermute, or an all-false Parallelize.
bool isIdentityStage(const TransformTemplate &T);

/// The fix-it transformation: identity stages stripped, then reduced().
/// May be empty (the identity sequence).
TransformSequence fixitSequence(const TransformSequence &T);

/// Cheap error-only scan used by the search pre-filter: true when the
/// final mapped dependence set admits a lexicographically negative tuple
/// (rule E100) - such a candidate cannot pass isLegal and need not be
/// costed.
bool finalDepsRejectable(const DepSet &MappedFinal);

/// Writes the standard findings object (the caller has already emitted
/// the surrounding key): {"errors": n, "warnings": m, "findings": [...]}
/// with one object per finding; empty provenance fields are omitted.
void writeReport(json::JsonWriter &W, const AnalysisReport &R);

/// Renders findings as structured Diags for text output (errors and
/// warnings, discovery order).
std::vector<Diag> toDiags(const AnalysisReport &R);

} // namespace analysis
} // namespace irlt

#endif // IRLT_ANALYSIS_ANALYSIS_H
