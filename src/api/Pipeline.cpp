//===- api/Pipeline.cpp - The unified irlt::api facade -------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//

#include "api/Pipeline.h"

#include "bounds/BoundsMatrices.h"
#include "codegen/CEmitter.h"
#include "deps/DepOracle.h"
#include "ir/NestHash.h"
#include "support/Lru.h"
#include "support/MathUtils.h"
#include "transform/TypeState.h"
#include "witness/Witness.h"

#include <atomic>

using namespace irlt;
using namespace irlt::api;

namespace {

/// One cache: a bounded LRU map under a mutex. The guarded section is
/// only the lookup/insert - analysis and legality runs happen outside
/// the lock, and on a miss race the first insert wins (both computations
/// produced identical values, so which copy survives is unobservable).
/// With a capacity set, insertion past the bound evicts the
/// least-recently-used entry; callers still holding a shared_ptr to an
/// evicted entry keep a valid reference, and the next lookup of that key
/// recomputes a byte-identical value.
template <typename V> class KeyedCache {
public:
  explicit KeyedCache(size_t Capacity) : Map(Capacity) {}

  std::shared_ptr<const V> lookup(const std::string &Key) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Map.lookup(Key);
  }

  /// Inserts \p Val unless \p Key is already present; returns the entry
  /// that ends up in the cache.
  std::shared_ptr<const V> insert(const std::string &Key,
                                  std::shared_ptr<const V> Val) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Map.insert(Key, std::move(Val));
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Map.size();
  }

  uint64_t inserts() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Map.inserts();
  }

  uint64_t evictions() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Map.evictions();
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Map.clear();
  }

private:
  mutable std::mutex Mu;
  LruMap<V> Map;
};

/// A cached dependence analysis. Overflowed records whether coefficient
/// arithmetic saturated during the run: such a DepSet is untrustworthy,
/// and storing the flag next to the value keeps cache hits and misses
/// indistinguishable (a hit on a saturated entry reports overflow exactly
/// like the original computation did).
struct DepEntry {
  DepSet Deps;
  bool Overflowed = false;
};

} // namespace

struct Pipeline::Impl {
  PipelineOptions Opts;

  /// The dependence backend every facade call analyzes through - the
  /// production pipeline oracle configured with Opts.DepOptions
  /// (deps/DepOracle.h). Alternative backends (fm-exact) are reached via
  /// the registry by the differential tooling, not by the facade.
  std::unique_ptr<deps::DepOracle> Oracle;

  KeyedCache<DepEntry> DepCache;
  KeyedCache<LegalityResult> LegalityCache;

  std::atomic<uint64_t> DepHits{0}, DepMisses{0};
  std::atomic<uint64_t> LegalityHits{0}, LegalityMisses{0};

  explicit Impl(const PipelineOptions &O)
      : Opts(O), Oracle(deps::makePipelineOracle(O.DepOptions)),
        DepCache(O.CacheCapacity), LegalityCache(O.CacheCapacity) {}
};

Pipeline::Pipeline(PipelineOptions Opts)
    : M(std::make_unique<Impl>(Opts)) {}

Pipeline::~Pipeline() = default;

ErrorOr<LoopNest> Pipeline::loadNest(const std::string &Source) const {
  OverflowGuard Guard;
  ErrorOr<LoopNest> N = parseLoopNest(Source);
  if (Guard.triggered())
    return Failure(Diag::error(
        "constant folding overflows the int64 range while parsing the nest"));
  return N;
}

ErrorOr<TransformSequence> Pipeline::parseScript(const std::string &Script,
                                                 unsigned NumLoops) const {
  OverflowGuard Guard;
  ErrorOr<TransformSequence> Seq = parseTransformScript(Script, NumLoops);
  if (Guard.triggered())
    return Failure(Diag::error(
        "coefficient arithmetic overflows the int64 range in the script"));
  return Seq;
}

std::shared_ptr<const DepSet> Pipeline::dependences(const LoopNest &Nest,
                                                    bool *Overflowed) {
  // The oracle runs its analysis under an OverflowGuard
  // (support/MathUtils.h): generated and adversarial nests can push
  // Fourier-Motzkin coefficients out of int64, and the facade degrades
  // that to a reported flag instead of an assertion. The flag lives in
  // the cache entry so a hit on a saturated analysis reports overflow
  // exactly like the miss that computed it.
  auto computeEntry = [&] {
    deps::DepResult R = M->Oracle->analyze(Nest);
    return DepEntry{std::move(R.Deps), R.Overflowed};
  };
  auto finish = [&](std::shared_ptr<const DepEntry> E) {
    if (Overflowed)
      *Overflowed = E->Overflowed;
    return std::shared_ptr<const DepSet>(E, &E->Deps);
  };
  if (!M->Opts.EnableCache)
    return finish(std::make_shared<const DepEntry>(computeEntry()));
  bool KeyOverflow = false;
  std::string Key;
  {
    OverflowGuard Guard;
    Key = canonicalNestKey(Nest);
    KeyOverflow = Guard.triggered();
  }
  // A saturated fingerprint could collide with a different nest's, so
  // such a nest is simply not cacheable.
  if (KeyOverflow)
    return finish(std::make_shared<const DepEntry>(computeEntry()));
  if (std::shared_ptr<const DepEntry> Hit = M->DepCache.lookup(Key)) {
    M->DepHits.fetch_add(1, std::memory_order_relaxed);
    return finish(Hit);
  }
  M->DepMisses.fetch_add(1, std::memory_order_relaxed);
  return finish(M->DepCache.insert(
      Key, std::make_shared<const DepEntry>(computeEntry())));
}

/// The shared "analysis saturated" verdict: a DepSet computed through
/// saturating arithmetic cannot support a trustworthy legality test.
static LegalityResult depOverflowVerdict() {
  LegalityResult R;
  R.reject(LegalityResult::RejectKind::Overflow,
           Diag::error("dependence analysis overflows the int64 "
                       "coefficient range"));
  return R;
}

LegalityResult Pipeline::checkLegality(const TransformSequence &Seq,
                                       const LoopNest &Nest) {
  bool DepOverflow = false;
  std::shared_ptr<const DepSet> D = dependences(Nest, &DepOverflow);
  if (DepOverflow)
    return depOverflowVerdict();
  // Misses walk the process-global prefix-memoized engine directly (the
  // same engine the isLegal() shim wraps): only stages the engine has
  // not seen are recomputed, and the whole-sequence cache here stays as
  // the cheaper single-lookup front for exact repeats (and the CacheStats
  // surface the wire records report).
  auto Walk = [&]() {
    return legality::IncrementalEngine::global().check(Seq, Nest, *D,
                                                       legality::Mode::Full);
  };
  if (!M->Opts.EnableCache)
    return Walk();
  // Keyed on the sequence exactly as written, NOT on reduced(): the
  // verdict is not reduction-invariant. Figure 1's skew+interchange is
  // rejected stage by stage but legal once merged into one Unimodular,
  // so a reduced() key would let one spelling poison the other. Spellings
  // that normalize to the same stages (interchange 1 2 / permute 2 1 3)
  // still share an entry via str(). '\x01' cannot occur in either part.
  bool KeyOverflow = false;
  std::string Key;
  {
    OverflowGuard Guard;
    Key = canonicalNestKey(Nest) + '\x01' + Seq.str();
    KeyOverflow = Guard.triggered();
  }
  if (KeyOverflow) // not cacheable; see dependences()
    return Walk();
  if (std::shared_ptr<const LegalityResult> Hit =
          M->LegalityCache.lookup(Key)) {
    M->LegalityHits.fetch_add(1, std::memory_order_relaxed);
    return *Hit;
  }
  M->LegalityMisses.fetch_add(1, std::memory_order_relaxed);
  auto Computed = std::make_shared<const LegalityResult>(Walk());
  return *M->LegalityCache.insert(Key, std::move(Computed));
}

LegalityResult Pipeline::checkLegalityFast(const TransformSequence &Seq,
                                           const LoopNest &Nest) {
  bool DepOverflow = false;
  std::shared_ptr<const DepSet> D = dependences(Nest, &DepOverflow);
  if (DepOverflow)
    return depOverflowVerdict();
  return legality::IncrementalEngine::global().check(Seq, Nest, *D,
                                                     legality::Mode::Fast);
}

legality::SequenceBuilder Pipeline::openSequence(const LoopNest &Nest,
                                                 legality::Mode Md) {
  bool DepOverflow = false;
  std::shared_ptr<const DepSet> D = dependences(Nest, &DepOverflow);
  if (DepOverflow)
    // Same degradation as checkLegality: the builder starts failed with
    // the shared saturated-analysis verdict, and extend() refuses stages.
    return legality::SequenceBuilder::failed(depOverflowVerdict());
  return legality::IncrementalEngine::global().open(Nest, *D, Md);
}

analysis::AnalysisReport Pipeline::analyze(const TransformSequence &Seq,
                                           const LoopNest &Nest,
                                           const analysis::AnalysisOptions &Opts) {
  bool DepOverflow = false;
  std::shared_ptr<const DepSet> D = dependences(Nest, &DepOverflow);
  if (DepOverflow) {
    // Mirror checkLegality's Overflow verdict so the two surfaces agree.
    analysis::AnalysisReport R;
    analysis::Finding F;
    F.RuleId = "E104";
    F.Severity = analysis::FindingSeverity::Error;
    F.Citation = analysis::findRule("E104")->Citation;
    F.Message = "dependence analysis overflows the int64 coefficient range";
    R.Findings.push_back(std::move(F));
    return R;
  }
  return analysis::analyzeSequence(Seq, Nest, *D, Opts);
}

ErrorOr<LoopNest> Pipeline::apply(const TransformSequence &Seq,
                                  const LoopNest &Nest) const {
  return applySequence(Seq, Nest);
}

ErrorOr<LoopNest> Pipeline::applyScript(const LoopNest &Nest,
                                        const std::string &Script) {
  ErrorOr<TransformSequence> Seq = parseScript(Script, Nest.numLoops());
  if (!Seq)
    return Failure(Seq.takeDiags());
  return apply(*Seq, Nest);
}

std::string Pipeline::emit(const LoopNest &Nest, EmitKind Kind) const {
  return Kind == EmitKind::C ? emitC(Nest) : Nest.str();
}

std::string Pipeline::boundsMatrices(const LoopNest &Nest) const {
  return BoundsMatrices::fromNest(Nest).str();
}

search::SearchResult Pipeline::searchAuto(const LoopNest &Nest,
                                          const search::SearchOptions &Opts) {
  bool DepOverflow = false;
  std::shared_ptr<const DepSet> D = dependences(Nest, &DepOverflow);
  if (DepOverflow) {
    search::SearchResult R;
    R.Error = "dependence analysis overflows the int64 coefficient range";
    return R;
  }
  return search::searchTransformations(Nest, *D, Opts);
}

witness::LadderResult
Pipeline::validate(const LoopNest &Nest,
                   const std::vector<TransformSequence> &Candidates,
                   const witness::ValidateOptions &Opts) const {
  return witness::validateLadder(Nest, Candidates, Opts);
}

witness::Certificate Pipeline::certify(const TransformSequence &Seq,
                                       const LoopNest &Nest) {
  std::shared_ptr<const DepSet> D = dependences(Nest);
  return witness::certify(Seq, Nest, *D);
}

std::string Pipeline::checkCertificate(const witness::Certificate &C,
                                       const TransformSequence &Seq,
                                       const LoopNest &Nest) {
  std::shared_ptr<const DepSet> D = dependences(Nest);
  return witness::checkCertificate(C, Seq, Nest, *D);
}

VerifyResult Pipeline::verify(const LoopNest &Original,
                              const LoopNest &Transformed,
                              const EvalConfig &Config) const {
  return verifyTransformed(Original, Transformed, Config);
}

CacheStats Pipeline::cacheStats() const {
  CacheStats S;
  S.DepHits = M->DepHits.load(std::memory_order_relaxed);
  S.DepMisses = M->DepMisses.load(std::memory_order_relaxed);
  S.LegalityHits = M->LegalityHits.load(std::memory_order_relaxed);
  S.LegalityMisses = M->LegalityMisses.load(std::memory_order_relaxed);
  S.DepLookups = S.DepHits + S.DepMisses;
  S.LegalityLookups = S.LegalityHits + S.LegalityMisses;
  S.DepInserts = M->DepCache.inserts();
  S.DepEvictions = M->DepCache.evictions();
  S.LegalityInserts = M->LegalityCache.inserts();
  S.LegalityEvictions = M->LegalityCache.evictions();
  S.DepEntries = M->DepCache.size();
  S.LegalityEntries = M->LegalityCache.size();
  return S;
}

void Pipeline::clearCaches() {
  M->DepCache.clear();
  M->LegalityCache.clear();
}

fuzz::FuzzStats api::runFuzzer(const fuzz::FuzzOptions &Opts) {
  return fuzz::runFuzzer(Opts);
}
