//===- api/Pipeline.h - The unified irlt::api facade ---------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable programmatic surface of the framework (docs/API.md). The
/// paper's pitch is *uniformity* - one legality test, one code generator,
/// one composition rule - and this facade is where that uniformity meets
/// callers: irlt-opt, irlt-search, irlt-fuzz, and the batch engine
/// (src/engine/) are all thin clients of the Pipeline class below instead
/// of hand-wiring parse -> dependence analysis -> legality -> codegen ->
/// validate themselves.
///
/// A Pipeline owns two concurrency-safe memoization caches keyed by
/// canonical structural fingerprints (ir/NestHash.h):
///
///   - dependence-analysis results per nest, and
///   - legality verdicts per (nest fingerprint, sequence rendering);
///
/// repeated nests across a corpus - the common case in fuzz corpora and
/// search ladders - hit the cache instead of re-running Fourier-Motzkin.
/// All cache lookups are sound by construction: the fingerprint
/// canonicalizes exactly the structure the dependence analyzer and the
/// legality test observe (alpha-renamed index variables, reordered
/// bound terms), templates address loops positionally, and verdicts are
/// deterministic - so a hit returns byte-identical results to a miss.
/// (The legality key deliberately uses the sequence as written, not its
/// reduced() form: legality is not reduction-invariant - Figure 1's
/// skew+interchange is rejected staged but legal merged.) Coefficient
/// overflow during analysis degrades to a reported flag / a structured
/// RejectKind::Overflow verdict, never an assertion, and the flag is
/// cached with the entry so hits and misses are indistinguishable.
/// Every entry point is safe to call from multiple threads concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_API_PIPELINE_H
#define IRLT_API_PIPELINE_H

#include "analysis/Analysis.h"
#include "dependence/DepAnalysis.h"
#include "driver/Script.h"
#include "eval/Verify.h"
#include "fuzz/Fuzzer.h"
#include "ir/Parser.h"
#include "legality/IncrementalEngine.h"
#include "search/Search.h"
#include "transform/Sequence.h"
#include "witness/Validate.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace irlt {
namespace api {

/// Cache behavior knobs.
struct PipelineOptions {
  /// Master switch; off turns every cached call into a plain computation
  /// (the cache-correctness tests diff the two configurations).
  bool EnableCache = true;
  /// Dependence-analysis options used for cached analysis runs.
  DepAnalysisOptions DepOptions;
  /// Per-cache entry bound; 0 = unbounded. When set, each cache evicts
  /// least-recently-used entries past the bound. Eviction is
  /// deterministic in the access sequence, and an evicted entry simply
  /// recomputes on its next use to a byte-identical value - capacity is
  /// a memory knob, never a correctness one.
  size_t CacheCapacity = 0;
};

/// A point-in-time snapshot of the cache counters. The reconciliation
/// invariants (pinned by the eviction tests):
///   Hits + Misses == Lookups      (per cache)
///   Inserts - Evictions == Entries
struct CacheStats {
  uint64_t DepHits = 0;
  uint64_t DepMisses = 0;
  uint64_t LegalityHits = 0;
  uint64_t LegalityMisses = 0;
  uint64_t DepLookups = 0;
  uint64_t LegalityLookups = 0;
  uint64_t DepInserts = 0;
  uint64_t DepEvictions = 0;
  uint64_t LegalityInserts = 0;
  uint64_t LegalityEvictions = 0;
  uint64_t DepEntries = 0;
  uint64_t LegalityEntries = 0;

  double depHitRate() const {
    uint64_t N = DepHits + DepMisses;
    return N ? static_cast<double>(DepHits) / static_cast<double>(N) : 0.0;
  }
  double legalityHitRate() const {
    uint64_t N = LegalityHits + LegalityMisses;
    return N ? static_cast<double>(LegalityHits) / static_cast<double>(N)
             : 0.0;
  }
};

/// What irlt-opt --emit emits.
enum class EmitKind { Loop, C };

/// The facade. One instance per tool invocation (or per batch engine);
/// sharing an instance shares its caches.
class Pipeline {
public:
  explicit Pipeline(PipelineOptions Opts = {});
  ~Pipeline();

  Pipeline(const Pipeline &) = delete;
  Pipeline &operator=(const Pipeline &) = delete;

  //===--- Front end --------------------------------------------------------
  /// Parses loop-language source into a nest.
  ErrorOr<LoopNest> loadNest(const std::string &Source) const;

  /// Parses a transformation script against a nest of \p NumLoops loops.
  ErrorOr<TransformSequence> parseScript(const std::string &Script,
                                         unsigned NumLoops) const;

  //===--- Analysis (cached) ------------------------------------------------
  /// The dependence-vector set of \p Nest, memoized on the nest's
  /// canonical fingerprint. The returned pointer stays valid for the
  /// lifetime of the Pipeline (or of the caller's reference, whichever
  /// is longer). When \p Overflowed is non-null it is set to whether the
  /// analysis saturated int64 coefficient arithmetic - such a set must
  /// not be trusted for legality decisions.
  std::shared_ptr<const DepSet> dependences(const LoopNest &Nest,
                                            bool *Overflowed = nullptr);

  /// The uniform legality test, memoized on (nest fingerprint, sequence
  /// rendering). Dependence analysis is taken from (and fills) the
  /// dependence cache; an overflowed analysis yields a
  /// RejectKind::Overflow verdict. Below this whole-sequence cache sits
  /// the process-wide prefix-memoized engine
  /// (legality/IncrementalEngine.h): a miss here re-walks only the
  /// stages the engine has not seen, so even cold whole-sequence keys
  /// pay one stage, not the chain.
  LegalityResult checkLegality(const TransformSequence &Seq,
                               const LoopNest &Nest);

  /// Same verdict surface via the Section 4.3 type-state fast path
  /// (no whole-sequence cache layer: the differential fuzzer wants a
  /// distinct code path from checkLegality; prefix memoization still
  /// applies underneath, under Mode::Fast keys).
  LegalityResult checkLegalityFast(const TransformSequence &Seq,
                                   const LoopNest &Nest);

  /// Opens an incremental legality builder rooted at \p Nest:
  /// extend(stage) consumes one stage and reports the verdict plus
  /// witness provenance (stage index, template, RejectKind), paying only
  /// that stage's mapping cost; finish() runs the final lexicographic
  /// test. THE entry point for callers that grow sequences one stage at
  /// a time (search frontiers, interactive drivers) - whole-sequence
  /// checkLegality is a convenience over the same engine. Dependence
  /// analysis comes from (and fills) the dependence cache; if it
  /// saturated, the returned builder starts failed with the same
  /// Overflow verdict checkLegality would report.
  legality::SequenceBuilder openSequence(const LoopNest &Nest,
                                         legality::Mode M =
                                             legality::Mode::Full);

  /// The static diagnostic engine (docs/ANALYSIS.md): rule-registry
  /// analysis of \p Seq against \p Nest, with full rejection provenance
  /// and lint warnings. Dependence analysis comes from (and fills) the
  /// dependence cache; a saturated analysis yields one E104 finding,
  /// matching checkLegality's RejectKind::Overflow verdict.
  analysis::AnalysisReport analyze(const TransformSequence &Seq,
                                   const LoopNest &Nest,
                                   const analysis::AnalysisOptions &Opts = {});

  //===--- Transformation ---------------------------------------------------
  /// The uniform code generator: applies \p Seq to \p Nest.
  ErrorOr<LoopNest> apply(const TransformSequence &Seq,
                          const LoopNest &Nest) const;

  /// Convenience: parseScript + apply in one step.
  ErrorOr<LoopNest> applyScript(const LoopNest &Nest,
                                const std::string &Script);

  /// Renders \p Nest as loop-language source or C.
  std::string emit(const LoopNest &Nest, EmitKind Kind) const;

  /// The Figure 5 LB/UB/STEP matrices rendering.
  std::string boundsMatrices(const LoopNest &Nest) const;

  //===--- Search -----------------------------------------------------------
  /// The cost-model-guided beam search (docs/SEARCH.md). Dependence
  /// analysis comes from the cache.
  search::SearchResult searchAuto(const LoopNest &Nest,
                                  const search::SearchOptions &Opts);

  //===--- Validation -------------------------------------------------------
  /// Bounded concrete-execution cross-check of candidate sequences with
  /// graceful degradation (docs/LEGALITY.md).
  witness::LadderResult
  validate(const LoopNest &Nest,
           const std::vector<TransformSequence> &Candidates,
           const witness::ValidateOptions &Opts) const;

  /// Machine-checkable certificate for a legality verdict, plus the
  /// third-party checker.
  witness::Certificate certify(const TransformSequence &Seq,
                               const LoopNest &Nest);
  std::string checkCertificate(const witness::Certificate &C,
                               const TransformSequence &Seq,
                               const LoopNest &Nest);

  /// Concrete-execution equivalence check of a transformed nest.
  VerifyResult verify(const LoopNest &Original, const LoopNest &Transformed,
                      const EvalConfig &Config) const;

  //===--- Cache management -------------------------------------------------
  CacheStats cacheStats() const;
  void clearCaches();

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

/// Facade entry point for the differential fuzzer, so irlt-fuzz is a
/// client of irlt::api like every other driver.
fuzz::FuzzStats runFuzzer(const fuzz::FuzzOptions &Opts);

} // namespace api
} // namespace irlt

#endif // IRLT_API_PIPELINE_H
