//===- baseline/RectangularTile.cpp - Bounding-box tiling baseline -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "baseline/RectangularTile.h"

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Printing.h"

#include <cassert>

using namespace irlt;

RectangularTileTemplate::RectangularTileTemplate(unsigned N, unsigned I,
                                                 unsigned J,
                                                 std::vector<ExprRef> BSize,
                                                 std::vector<ExprRef> BoxLo,
                                                 std::vector<ExprRef> BoxHi)
    : TransformTemplate(Kind::Custom), N(N), I(I), J(J),
      BSize(std::move(BSize)), BoxLo(std::move(BoxLo)),
      BoxHi(std::move(BoxHi)) {
  assert(I >= 1 && I <= J && J <= N && "tile range out of bounds");
  unsigned Span = J - I + 1;
  assert(this->BSize.size() == Span && this->BoxLo.size() == Span &&
         this->BoxHi.size() == Span && "parameter arity mismatch");
}

std::string RectangularTileTemplate::paramStr() const {
  std::vector<std::string> Bs;
  for (const ExprRef &B : BSize)
    Bs.push_back(B->str());
  return formatStr("(n=%u, i=%u, j=%u, bsize=[%s])", N, I, J,
                   join(Bs, " ").c_str());
}

DepSet RectangularTileTemplate::mapDependences(const DepSet &D) const {
  // Same fan-out as Block: delegate through a temporary Block template's
  // rule by re-implementing blockmap inline (the rule depends only on the
  // tiled range).
  unsigned Lo = I - 1, Hi = J - 1;
  unsigned Span = Hi - Lo + 1;
  auto blockmap = [](const DepElem &E) {
    std::vector<std::pair<DepElem, DepElem>> Out;
    if (E.isDistance() && E.dist() == 0) {
      Out.push_back({DepElem::zero(), DepElem::zero()});
      return Out;
    }
    if (E == DepElem::any()) {
      Out.push_back({DepElem::any(), DepElem::any()});
      return Out;
    }
    if (E.isDistance() && (E.dist() == 1 || E.dist() == -1)) {
      Out.push_back({DepElem::zero(), E});
      Out.push_back({E, DepElem::any()});
      return Out;
    }
    Out.push_back({DepElem::zero(), E});
    Out.push_back({E.dirOnly(), DepElem::any()});
    return Out;
  };
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    std::vector<std::vector<std::pair<DepElem, DepElem>>> Choices;
    for (unsigned K = Lo; K <= Hi; ++K)
      Choices.push_back(blockmap(V[K]));
    std::vector<unsigned> Pick(Span, 0);
    while (true) {
      std::vector<DepElem> Elems;
      for (unsigned K = 0; K < Lo; ++K)
        Elems.push_back(V[K]);
      for (unsigned K = 0; K < Span; ++K)
        Elems.push_back(Choices[K][Pick[K]].first);
      for (unsigned K = 0; K < Span; ++K)
        Elems.push_back(Choices[K][Pick[K]].second);
      for (unsigned K = Hi + 1; K < N; ++K)
        Elems.push_back(V[K]);
      Out.insert(DepVector(std::move(Elems)));
      unsigned P = 0;
      while (P < Span && ++Pick[P] == Choices[P].size()) {
        Pick[P] = 0;
        ++P;
      }
      if (P == Span)
        break;
    }
  }
  return Out;
}

std::string
RectangularTileTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("RectangularTile: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  unsigned Lo = I - 1, Hi = J - 1;
  for (unsigned K = Lo; K <= Hi; ++K) {
    std::optional<int64_t> S = Nest.Loops[K].Step->constValue();
    if (!S || *S != 1)
      return formatStr("RectangularTile: step of loop %u must be 1 (the "
                       "baseline's bounding-box grid has no alignment "
                       "handling)",
                       K + 1);
  }
  // The bounding box must be invariant in all index variables.
  for (unsigned K = 0; K < BoxLo.size(); ++K)
    for (const Loop &L : Nest.Loops) {
      if (!typeLE(typeOf(BoxLo[K], L.IndexVar), BoundType::Invar) ||
          !typeLE(typeOf(BoxHi[K], L.IndexVar), BoundType::Invar))
        return formatStr(
            "RectangularTile: bounding box for tiled loop %u is not "
            "invariant in '%s'",
            I + K, L.IndexVar.c_str());
    }
  return std::string();
}

ErrorOr<LoopNest> RectangularTileTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  unsigned Lo = I - 1, Hi = J - 1;

  LoopNest NameScope = Nest;
  std::vector<std::string> BlockVar(N);
  for (unsigned K = Lo; K <= Hi; ++K) {
    BlockVar[K] = freshVarName(NameScope,
                               Nest.Loops[K].IndexVar + Nest.Loops[K].IndexVar);
    NameScope.Loops.push_back(Loop(BlockVar[K], Expr::intConst(0),
                                   Expr::intConst(0), Expr::intConst(1)));
  }

  LoopNest Out = Nest;
  Out.Loops.clear();
  for (unsigned K = 0; K < Lo; ++K)
    Out.Loops.push_back(Nest.Loops[K]);

  // Block loops over the rectangular bounding box - the whole point of
  // the baseline: these bounds ignore the true (possibly trapezoidal)
  // region, so empty tiles are walked.
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    int64_t S = *L.Step->constValue();
    ExprRef BStep = simplify(Expr::mul(Expr::intConst(S), BSize[K - Lo]));
    Out.Loops.push_back(
        Loop(BlockVar[K], BoxLo[K - Lo], BoxHi[K - Lo], BStep, L.Kind));
  }

  // Element loops clamp to the true bounds (semantic equivalence).
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    int64_t S = *L.Step->constValue();
    ExprRef BlkEnd = simplify(Expr::add(
        Expr::var(BlockVar[K]),
        Expr::mul(Expr::intConst(S),
                  Expr::sub(BSize[K - Lo], Expr::intConst(1)))));
    ExprRef Lo2 = simplify(Expr::maxE({Expr::var(BlockVar[K]), L.Lower}));
    ExprRef Hi2 = simplify(Expr::minE({BlkEnd, L.Upper}));
    Out.Loops.push_back(Loop(L.IndexVar, Lo2, Hi2, L.Step, L.Kind));
  }

  for (unsigned K = Hi + 1; K < N; ++K)
    Out.Loops.push_back(Nest.Loops[K]);
  return Out;
}

TemplateRef irlt::makeRectangularTile(unsigned N, unsigned I, unsigned J,
                                      std::vector<ExprRef> BSize,
                                      std::vector<ExprRef> BoxLo,
                                      std::vector<ExprRef> BoxHi) {
  return std::make_shared<RectangularTileTemplate>(
      N, I, J, std::move(BSize), std::move(BoxLo), std::move(BoxHi));
}
