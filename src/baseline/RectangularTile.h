//===- baseline/RectangularTile.h - Wolf-Lam-style bounding-box tiling ---===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline comparator for the paper's trapezoidal-blocking claim
/// (Sections 4.2 and 6): Wolf & Lam's tiling [14] "creates a rectangular
/// boundary around a trapezoidal iteration space, and hence may create
/// many tiles with no work". This template tiles loops i..j against a
/// caller-supplied invariant bounding box instead of the paper's
/// xmin/xmax substitution; everything else (element-loop clamping, loop
/// order, dependence fan-out) matches the Block template.
///
/// It doubles as the demonstration of the kernel set's *extensibility*
/// (Section 2: "a small but extensible kernel set"): a new template slots
/// into the same uniform legality test and code generator by subclassing
/// TransformTemplate.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_BASELINE_RECTANGULARTILE_H
#define IRLT_BASELINE_RECTANGULARTILE_H

#include "transform/Template.h"

#include <vector>

namespace irlt {

/// RectangularTile(n, i, j, bsize, boxLo, boxHi): tiles loops i..j
/// (1-based, inclusive) using the invariant bounding box [boxLo, boxHi]
/// per blocked loop for the *block* loops; element loops still clamp to
/// the true bounds, so the result is semantically equivalent to Block -
/// it just walks (possibly many) empty tiles.
class RectangularTileTemplate : public TransformTemplate {
public:
  RectangularTileTemplate(unsigned N, unsigned I, unsigned J,
                          std::vector<ExprRef> BSize,
                          std::vector<ExprRef> BoxLo,
                          std::vector<ExprRef> BoxHi);

  std::string name() const override { return "RectangularTile"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N + (J - I + 1); }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Custom;
  }

private:
  unsigned N, I, J;
  std::vector<ExprRef> BSize, BoxLo, BoxHi;
};

TemplateRef makeRectangularTile(unsigned N, unsigned I, unsigned J,
                                std::vector<ExprRef> BSize,
                                std::vector<ExprRef> BoxLo,
                                std::vector<ExprRef> BoxHi);

} // namespace irlt

#endif // IRLT_BASELINE_RECTANGULARTILE_H
