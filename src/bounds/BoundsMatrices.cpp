//===- bounds/BoundsMatrices.cpp - LB/UB/STEP coefficient matrices -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "bounds/BoundsMatrices.h"

#include "support/Casting.h"
#include "support/Printing.h"

#include <cassert>

using namespace irlt;

BoundIneq irlt::decomposeBound(const LinExpr &L, const LoopNest &Nest) {
  BoundIneq Out;
  Out.Coef.assign(Nest.numLoops(), 0);
  LinExpr Invariant;
  Invariant.addConst(L.constant());
  for (const auto &[Key, T] : L.terms()) {
    if (const auto *V = dyn_cast<VarExpr>(T.Atom.get())) {
      int Pos = Nest.loopIndexOf(V->name());
      if (Pos >= 0) {
        Out.Coef[static_cast<size_t>(Pos)] = T.Coef;
        continue;
      }
    }
    // Not a direct index variable: goes to column 0. Remember whether an
    // index variable hides inside (the nonlinear folding case).
    std::set<std::string> AtomVars;
    T.Atom->collectVars(AtomVars);
    for (const std::string &V : AtomVars)
      if (Nest.bindsVar(V)) {
        Out.NonlinearFold = true;
        break;
      }
    Invariant.addAtom(T.Atom, T.Coef);
  }
  Out.InvariantPart = Invariant.toExpr();
  return Out;
}

BoundsMatrices BoundsMatrices::fromNest(const LoopNest &Nest) {
  BoundsMatrices M;
  unsigned N = Nest.numLoops();
  M.LB.resize(N);
  M.UB.resize(N);
  M.Step.resize(N);
  M.StepOriginal.resize(N);
  M.StepSign.assign(N, 0);
  for (const Loop &L : Nest.Loops)
    M.Vars.push_back(L.IndexVar);

  for (unsigned I = 0; I < N; ++I) {
    const Loop &L = Nest.Loops[I];
    std::optional<int64_t> StepC = L.Step->constValue();
    int SSign = StepC ? (*StepC > 0 ? 1 : (*StepC < 0 ? -1 : 0)) : 0;
    M.StepSign[I] = SSign;
    M.StepOriginal[I] = L.Step;
    M.Step[I] = decomposeBound(LinExpr::fromExpr(L.Step), Nest);

    auto buildRow = [&](const ExprRef &E, BoundSide Side) {
      BoundRow Row;
      Row.Original = E;
      // Decompose splittable max/min bounds into one inequality per term.
      Expr::Kind Splittable = Expr::Kind::Call; // sentinel
      if (SSign > 0)
        Splittable = Side == BoundSide::Lower ? Expr::Kind::Max
                                              : Expr::Kind::Min;
      else if (SSign < 0)
        Splittable = Side == BoundSide::Lower ? Expr::Kind::Min
                                              : Expr::Kind::Max;
      if (E->kind() == Splittable) {
        for (const ExprRef &Op : cast<MinMaxExpr>(E.get())->operands())
          Row.Ineqs.push_back(decomposeBound(LinExpr::fromExpr(Op), Nest));
      } else {
        Row.Ineqs.push_back(decomposeBound(LinExpr::fromExpr(E), Nest));
      }
      return Row;
    };
    M.LB[I] = buildRow(L.Lower, BoundSide::Lower);
    M.UB[I] = buildRow(L.Upper, BoundSide::Upper);
  }
  return M;
}

BoundType BoundsMatrices::entryType(bool IsStep, const BoundRow *Row,
                                    const BoundIneq *St, unsigned Col) const {
  assert(Col >= 1 && "column 0 has no per-variable type");
  const std::string &Var = Vars[Col - 1];
  BoundType T = BoundType::Const;
  auto oneIneq = [&](const BoundIneq &Q) {
    if (Q.NonlinearFold && Q.InvariantPart->containsVar(Var)) {
      T = typeJoin(T, BoundType::Nonlinear);
      return;
    }
    if (Q.Coef[Col - 1] != 0) {
      T = typeJoin(T, BoundType::Linear);
      return;
    }
    // Variable absent: const iff the whole inequality is constant.
    bool IsConst =
        Q.InvariantPart->constValue().has_value();
    for (int64_t C : Q.Coef)
      if (C != 0)
        IsConst = false;
    T = typeJoin(T, IsConst ? BoundType::Const : BoundType::Invar);
  };
  if (IsStep) {
    oneIneq(*St);
  } else {
    for (const BoundIneq &Q : Row->Ineqs)
      oneIneq(Q);
  }
  return T;
}

BoundType BoundsMatrices::lbType(unsigned Row, unsigned Col) const {
  return entryType(false, &LB[Row], nullptr, Col);
}
BoundType BoundsMatrices::ubType(unsigned Row, unsigned Col) const {
  return entryType(false, &UB[Row], nullptr, Col);
}
BoundType BoundsMatrices::stepType(unsigned Row, unsigned Col) const {
  return entryType(true, nullptr, &Step[Row], Col);
}

std::string BoundsMatrices::str() const {
  std::string Out;
  unsigned N = numLoops();
  auto renderRowList = [&](const std::vector<BoundIneq> &Ineqs,
                           unsigned Col) -> std::string {
    // Column 0 prints invariant parts; columns >= 1 print coefficients.
    // Multi-inequality rows print as a <...> list, Figure 5 style.
    std::vector<std::string> Parts;
    for (const BoundIneq &Q : Ineqs) {
      if (Col == 0)
        Parts.push_back(Q.InvariantPart->str());
      else
        Parts.push_back(std::to_string(Q.Coef[Col - 1]));
    }
    if (Parts.size() == 1)
      return Parts[0];
    return "<" + join(Parts, ", ") + ">";
  };

  auto renderMatrix = [&](const char *Name, bool IsStep,
                          const std::vector<BoundRow> &Rows) {
    Out += formatStr("%s =\n", Name);
    for (unsigned I = 0; I < N; ++I) {
      Out += "  [";
      for (unsigned Col = 0; Col <= N; ++Col) {
        if (Col)
          Out += "  ";
        if (Col >= 1 && Col > I) {
          Out += "."; // undefined region: entry (i, j) requires j <= i
          continue;
        }
        if (IsStep)
          Out += renderRowList({Step[I]}, Col);
        else
          Out += renderRowList(Rows[I].Ineqs, Col);
      }
      Out += "]\n";
    }
  };

  renderMatrix("LB", false, LB);
  renderMatrix("UB", false, UB);
  renderMatrix("STEP", true, LB);
  return Out;
}
