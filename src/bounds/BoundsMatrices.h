//===- bounds/BoundsMatrices.h - LB/UB/STEP coefficient matrices ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The matrix representation of loop bound expressions from Section 4.3
/// and Figure 5 of the paper. Three matrices LB, UB, STEP of shape
/// (1..n) x (0..n):
///
///  - entry (i, 0) holds the loop-invariant part of loop i's bound: an
///    arbitrary run-time expression (symbolic parameters, calls, and any
///    nonlinear-in-index terms get folded here);
///  - entry (i, j), j >= 1, holds the compile-time integer coefficient of
///    index variable x_j, defined only for j < i;
///  - max/min bounds contribute a *list* of inequalities per row: each
///    entry stores one value per inequality.
///
/// Every entry carries a type tag from the const/invar/linear/nonlinear
/// lattice. The transformation templates check their loop-bounds
/// preconditions against these tags, so legality testing never has to
/// materialize transformed bound expressions (Section 4.3: "we use a
/// matrix-based representation to carry sufficient information to
/// evaluate the type predicates").
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_BOUNDS_BOUNDSMATRICES_H
#define IRLT_BOUNDS_BOUNDSMATRICES_H

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "ir/LoopNest.h"

#include <string>
#include <vector>

namespace irlt {

/// One decomposed inequality of a bound: integer coefficients over the
/// nest's index variables plus an invariant-part expression.
struct BoundIneq {
  /// Coefficient of index variable k (0-based loop position); only
  /// positions < row index can be non-zero in a well-formed nest.
  std::vector<int64_t> Coef;
  /// Invariant part (column 0). Includes the constant and any terms the
  /// linearizer could not open up (also nonlinear-in-index atoms).
  ExprRef InvariantPart;
  /// True when some index variable occurs inside InvariantPart (the
  /// paper's nonlinear folding case).
  bool NonlinearFold = false;
};

/// One row of LB or UB: the list of inequalities (singleton unless the
/// bound was a splittable max/min).
struct BoundRow {
  std::vector<BoundIneq> Ineqs;
  /// The original expression (used for printing entries like max<n, 3>).
  ExprRef Original;
};

/// The LB/UB/STEP matrices of one loop nest.
class BoundsMatrices {
public:
  /// Builds the matrices for \p Nest. Max lower bounds and min upper
  /// bounds decompose per inequality when the loop step sign is known.
  static BoundsMatrices fromNest(const LoopNest &Nest);

  unsigned numLoops() const { return static_cast<unsigned>(LB.size()); }

  const BoundRow &lb(unsigned I) const { return LB[I]; }
  const BoundRow &ub(unsigned I) const { return UB[I]; }
  const BoundIneq &step(unsigned I) const { return Step[I]; }

  /// Type tag of matrix entry (\p Row, \p Col) with Col >= 1 denoting the
  /// index variable of loop Col-1, per the paper's classification.
  BoundType lbType(unsigned Row, unsigned Col) const;
  BoundType ubType(unsigned Row, unsigned Col) const;
  BoundType stepType(unsigned Row, unsigned Col) const;

  /// Figure 5-style rendering of all three matrices.
  std::string str() const;

private:
  BoundType entryType(bool IsStep, const BoundRow *Row, const BoundIneq *St,
                      unsigned Col) const;

  std::vector<std::string> Vars; // index variable per loop position
  std::vector<BoundRow> LB;
  std::vector<BoundRow> UB;
  std::vector<BoundIneq> Step;
  std::vector<ExprRef> StepOriginal;
  std::vector<int> StepSign; // +1/-1/0(unknown)
};

/// Splits \p L into index-variable coefficients and the invariant part,
/// relative to \p Nest's index variables.
BoundIneq decomposeBound(const LinExpr &L, const LoopNest &Nest);

} // namespace irlt

#endif // IRLT_BOUNDS_BOUNDSMATRICES_H
