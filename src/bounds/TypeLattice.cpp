//===- bounds/TypeLattice.cpp - The const/invar/linear/nonlinear lattice -===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"

#include "ir/LinExpr.h"
#include "support/Casting.h"

using namespace irlt;

const char *irlt::typeName(BoundType T) {
  switch (T) {
  case BoundType::Const:
    return "const";
  case BoundType::Invar:
    return "invar";
  case BoundType::Linear:
    return "linear";
  case BoundType::Nonlinear:
    return "nonlinear";
  }
  return "?";
}

bool irlt::isCompileTimeConst(const ExprRef &E) {
  return LinExpr::fromExpr(E).isConst();
}

BoundType irlt::typeOf(const ExprRef &E, const std::string &Var) {
  LinExpr L = LinExpr::fromExpr(E);
  if (L.hasVarInsideOpaqueAtom(Var))
    return BoundType::Nonlinear;
  if (L.coeffOf(Var) != 0)
    return BoundType::Linear;
  if (L.isConst())
    return BoundType::Const;
  return BoundType::Invar;
}

BoundType irlt::typeOfBound(const ExprRef &E, const std::string &Var,
                            BoundSide Side, int StepSign) {
  // The special case: max-of lower bounds / min-of upper bounds decompose
  // into separate inequalities under a positive step (mirrored under a
  // negative step), so each term is classified on its own.
  Expr::Kind SplittableKind = Expr::Kind::Call; // sentinel: none
  if (StepSign > 0)
    SplittableKind =
        Side == BoundSide::Lower ? Expr::Kind::Max : Expr::Kind::Min;
  else if (StepSign < 0)
    SplittableKind =
        Side == BoundSide::Lower ? Expr::Kind::Min : Expr::Kind::Max;

  if (E->kind() == Expr::Kind::Min || E->kind() == Expr::Kind::Max) {
    if (E->kind() == SplittableKind) {
      BoundType T = BoundType::Const;
      for (const ExprRef &Op : cast<MinMaxExpr>(E.get())->operands())
        T = typeJoin(T, typeOfBound(Op, Var, Side, StepSign));
      return T;
    }
  }
  return typeOf(E, Var);
}
