//===- bounds/TypeLattice.h - The const/invar/linear/nonlinear lattice ---===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4.1 of the paper classifies how an index variable x_i is used
/// in a bounds expression with the function type(expr_j, x_i), whose
/// values form the totally ordered lattice
///
///     const  <=  invar  <=  linear  <=  nonlinear.
///
/// Every transformation template's loop-bounds preconditions are
/// predicates of the form  type(expr, x) <= V  over this lattice.
///
/// The paper's special case is implemented here too: a max lower bound
/// (or min upper bound) of linear terms under a positive step classifies
/// as the join of its terms - each term acts as a separate linear
/// inequality (mirrored for negative steps).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_BOUNDS_TYPELATTICE_H
#define IRLT_BOUNDS_TYPELATTICE_H

#include "ir/Expr.h"

#include <string>

namespace irlt {

/// The four points of the lattice, in lattice order.
enum class BoundType { Const = 0, Invar = 1, Linear = 2, Nonlinear = 3 };

/// Lattice order test: A <= B.
inline bool typeLE(BoundType A, BoundType B) {
  return static_cast<int>(A) <= static_cast<int>(B);
}

/// Lattice join (least upper bound).
inline BoundType typeJoin(BoundType A, BoundType B) {
  return typeLE(A, B) ? B : A;
}

/// Printable name: "const", "invar", "linear", "nonlinear".
const char *typeName(BoundType T);

/// The paper's type(expr, x): how does \p Var occur in \p E?
///  - Const: E is a compile-time constant (Var trivially absent);
///  - Invar: Var does not occur in E (but E is not a constant);
///  - Linear: every occurrence of Var is a direct linear term with a
///    compile-time-constant coefficient;
///  - Nonlinear: Var occurs inside a div/mod/min/max/call or a product of
///    non-constants.
BoundType typeOf(const ExprRef &E, const std::string &Var);

/// Which side of a loop a bound expression sits on.
enum class BoundSide { Lower, Upper };

/// type() with the paper's max/min special case: when \p StepSign > 0, a
/// Max lower bound / Min upper bound of terms classifies as the join of
/// the terms' types (each term a separate inequality); when
/// \p StepSign < 0 the roles of Min and Max swap. A step of unknown sign
/// (StepSign == 0) gets no special case.
BoundType typeOfBound(const ExprRef &E, const std::string &Var,
                      BoundSide Side, int StepSign);

/// True if \p E is a compile-time integer constant.
bool isCompileTimeConst(const ExprRef &E);

} // namespace irlt

#endif // IRLT_BOUNDS_TYPELATTICE_H
