//===- cachesim/Cache.cpp - Set-associative LRU cache simulator ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "cachesim/Cache.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace irlt;

CacheSim::CacheSim(const CacheConfig &Config) : Config(Config) {
  assert(Config.LineBytes > 0 && Config.Associativity > 0 &&
         Config.SizeBytes >= Config.LineBytes * Config.Associativity &&
         "malformed cache geometry");
  NumSets = Config.SizeBytes / (Config.LineBytes * Config.Associativity);
  assert(NumSets > 0);
  Sets.resize(NumSets);
}

void CacheSim::reset() {
  for (std::vector<Line> &S : Sets)
    S.clear();
  Clock = Hits = Misses = 0;
}

bool CacheSim::access(uint64_t Addr) {
  uint64_t LineAddr = Addr / Config.LineBytes;
  uint64_t SetIdx = LineAddr % NumSets;
  uint64_t Tag = LineAddr / NumSets;
  ++Clock;
  std::vector<Line> &S = Sets[SetIdx];
  for (Line &L : S) {
    if (L.Tag == Tag) {
      L.LastUse = Clock;
      ++Hits;
      return true;
    }
  }
  ++Misses;
  if (S.size() < Config.Associativity) {
    S.push_back(Line{Tag, Clock});
    return false;
  }
  // Evict the least recently used way.
  size_t Victim = 0;
  for (size_t I = 1; I < S.size(); ++I)
    if (S[I].LastUse < S[Victim].LastUse)
      Victim = I;
  S[Victim] = Line{Tag, Clock};
  return false;
}

void ArrayLayout::declare(const std::string &Array, std::vector<int64_t> Lows,
                          std::vector<int64_t> Highs) {
  assert(Lows.size() == Highs.size() && "extent arity mismatch");
  uint64_t Elems = 1;
  for (size_t D = 0; D < Lows.size(); ++D) {
    assert(Highs[D] >= Lows[D] && "empty array extent");
    Elems *= static_cast<uint64_t>(Highs[D] - Lows[D] + 1);
  }
  Info I;
  I.Base = NextBase;
  I.Lows = std::move(Lows);
  I.Highs = std::move(Highs);
  Arrays.emplace(Array, std::move(I));
  uint64_t Bytes = Elems * 8;
  NextBase += (Bytes + 4095) / 4096 * 4096 + 4096; // 4KiB-align + guard page
}

uint64_t ArrayLayout::addressOf(const std::string &Array,
                                const std::vector<int64_t> &Subs) const {
  auto It = Arrays.find(Array);
  assert(It != Arrays.end() && "access to undeclared array");
  const Info &I = It->second;
  assert(Subs.size() == I.Lows.size() && "subscript arity mismatch");
  // Column-major: the first subscript varies fastest.
  uint64_t Offset = 0;
  uint64_t Stride = 1;
  for (size_t D = 0; D < Subs.size(); ++D) {
    assert(Subs[D] >= I.Lows[D] && Subs[D] <= I.Highs[D] &&
           "subscript out of declared range");
    Offset += static_cast<uint64_t>(Subs[D] - I.Lows[D]) * Stride;
    Stride *= static_cast<uint64_t>(I.Highs[D] - I.Lows[D] + 1);
  }
  return I.Base + Offset * 8;
}

double irlt::replayTrace(const std::vector<MemAccess> &Accesses,
                         const ArrayLayout &Layout,
                         const CacheConfig &Config) {
  CacheSim Sim(Config);
  for (const MemAccess &A : Accesses)
    Sim.access(Layout.addressOf(A.Array, A.Subs));
  return Sim.missRatio();
}
