//===- cachesim/Cache.h - Set-associative LRU cache simulator ------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative LRU cache simulator fed by the evaluator's memory
/// traces. The paper motivates Block/Interleave by data locality but
/// reports no machine numbers; this simulator is the documented
/// substitution (DESIGN.md Section 4): it measures the miss ratio of the
/// *generated* loop nests, exercising exactly the code the framework
/// emits.
///
/// Arrays are laid out column-major (the paper's loops are Fortran-ish)
/// at disjoint base addresses with 8-byte elements.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_CACHESIM_CACHE_H
#define IRLT_CACHESIM_CACHE_H

#include "eval/Evaluator.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace irlt {

/// Geometry of a simulated cache.
struct CacheConfig {
  uint64_t SizeBytes = 32 * 1024;
  uint64_t LineBytes = 64;
  unsigned Associativity = 4;
};

/// Simple set-associative LRU cache.
class CacheSim {
public:
  explicit CacheSim(const CacheConfig &Config);

  /// Accesses one byte address; returns true on hit.
  bool access(uint64_t Addr);

  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t accesses() const { return Hits + Misses; }
  double missRatio() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(Misses) / static_cast<double>(accesses());
  }

  void reset();

private:
  CacheConfig Config;
  uint64_t NumSets;
  // Per set: list of (tag, lastUse); linear scan is fine at these sizes.
  struct Line {
    uint64_t Tag;
    uint64_t LastUse;
  };
  std::vector<std::vector<Line>> Sets;
  uint64_t Clock = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

/// Column-major layout of the arrays appearing in a trace.
class ArrayLayout {
public:
  /// Declares array extents; subscripts are assumed in [Low_d, High_d].
  /// Arrays are packed at disjoint 4KiB-aligned bases in declaration
  /// order; elements are 8 bytes.
  void declare(const std::string &Array, std::vector<int64_t> Lows,
               std::vector<int64_t> Highs);

  /// Byte address of one element. Asserts the array was declared and the
  /// subscripts are in range.
  uint64_t addressOf(const std::string &Array,
                     const std::vector<int64_t> &Subs) const;

private:
  struct Info {
    uint64_t Base;
    std::vector<int64_t> Lows;
    std::vector<int64_t> Highs;
  };
  std::map<std::string, Info> Arrays;
  uint64_t NextBase = 0;
};

/// Replays \p Accesses through a cache; returns the final miss ratio.
double replayTrace(const std::vector<MemAccess> &Accesses,
                   const ArrayLayout &Layout, const CacheConfig &Config);

} // namespace irlt

#endif // IRLT_CACHESIM_CACHE_H
