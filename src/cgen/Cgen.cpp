//===- cgen/Cgen.cpp - Native differential program emission ---------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "cgen/Cgen.h"

#include "codegen/CEmitter.h"
#include "eval/Evaluator.h"
#include "support/MathUtils.h"
#include "support/Printing.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <optional>
#include <set>

using namespace irlt;
using namespace irlt::cgen;

namespace {

//===----------------------------------------------------------------------===//
// Expression walking
//===----------------------------------------------------------------------===//

void walkExpr(const ExprRef &E, const std::function<void(const Expr &)> &Fn) {
  if (!E)
    return;
  Fn(*E);
  switch (E->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul:
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    walkExpr(B->lhs(), Fn);
    walkExpr(B->rhs(), Fn);
    return;
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max:
    for (const ExprRef &Op : cast<MinMaxExpr>(E.get())->operands())
      walkExpr(Op, Fn);
    return;
  case Expr::Kind::Call:
    for (const ExprRef &A : cast<CallExpr>(E.get())->args())
      walkExpr(A, Fn);
    return;
  }
}

void walkNestExprs(const LoopNest &Nest,
                   const std::function<void(const Expr &)> &Fn) {
  for (const Loop &L : Nest.Loops) {
    walkExpr(L.Lower, Fn);
    walkExpr(L.Upper, Fn);
    walkExpr(L.Step, Fn);
  }
  for (const InitStmt &I : Nest.Inits)
    walkExpr(I.Value, Fn);
  for (const AssignStmt &S : Nest.Body) {
    for (const ExprRef &Sub : S.LHS.Subscripts)
      walkExpr(Sub, Fn);
    walkExpr(S.RHS, Fn);
  }
}

/// Opaque (non-array) callees appearing anywhere in the nest.
std::set<std::string> opaqueCallees(const LoopNest &Nest) {
  std::set<std::string> Out;
  walkNestExprs(Nest, [&](const Expr &E) {
    if (const auto *C = dyn_cast<CallExpr>(&E))
      if (!Nest.ArrayNames.count(C->callee()))
        Out.insert(C->callee());
  });
  return Out;
}

bool isEmittableOpaque(const std::string &Name) {
  return Name == "sqrt" || Name == "abs" || Name == "sgn";
}

//===----------------------------------------------------------------------===//
// Interval analysis over bound and subscript expressions
//===----------------------------------------------------------------------===//

/// Values are clamped to +/- 2^40: large enough for any emittable shape
/// (the cell cap rejects anything near it) and small enough that sums
/// and corner products below stay inside __int128 trivially.
constexpr int64_t IntervalLimit = int64_t(1) << 40;

int64_t clampToLimit(__int128 V) {
  if (V > IntervalLimit)
    return IntervalLimit;
  if (V < -IntervalLimit)
    return -IntervalLimit;
  return static_cast<int64_t>(V);
}

struct Interval {
  int64_t Lo = 0, Hi = 0;
};

Interval hull(Interval A, Interval B) {
  return {std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

/// Flooring division on interval-clamped values (magnitudes < 2^41, so
/// the arithmetic cannot overflow int64).
int64_t floorDivSmall(int64_t A, int64_t B) {
  int64_t Q = A / B, R = A % B;
  return (R != 0 && ((R < 0) != (B < 0))) ? Q - 1 : Q;
}

std::optional<Interval>
evalInterval(const ExprRef &E, const std::map<std::string, Interval> &Env) {
  switch (E->kind()) {
  case Expr::Kind::IntConst: {
    int64_t V = clampToLimit(cast<IntConstExpr>(E.get())->value());
    return Interval{V, V};
  }
  case Expr::Kind::Var: {
    auto It = Env.find(cast<VarExpr>(E.get())->name());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul: {
    const auto *B = cast<BinaryExpr>(E.get());
    auto L = evalInterval(B->lhs(), Env);
    auto R = evalInterval(B->rhs(), Env);
    if (!L || !R)
      return std::nullopt;
    if (E->kind() == Expr::Kind::Add)
      return Interval{clampToLimit(__int128(L->Lo) + R->Lo),
                      clampToLimit(__int128(L->Hi) + R->Hi)};
    if (E->kind() == Expr::Kind::Sub)
      return Interval{clampToLimit(__int128(L->Lo) - R->Hi),
                      clampToLimit(__int128(L->Hi) - R->Lo)};
    __int128 C[4] = {__int128(L->Lo) * R->Lo, __int128(L->Lo) * R->Hi,
                     __int128(L->Hi) * R->Lo, __int128(L->Hi) * R->Hi};
    __int128 Lo = C[0], Hi = C[0];
    for (__int128 V : C) {
      Lo = std::min(Lo, V);
      Hi = std::max(Hi, V);
    }
    return Interval{clampToLimit(Lo), clampToLimit(Hi)};
  }
  case Expr::Kind::Div: {
    const auto *B = cast<BinaryExpr>(E.get());
    auto L = evalInterval(B->lhs(), Env);
    auto R = evalInterval(B->rhs(), Env);
    if (!L || !R || (R->Lo <= 0 && R->Hi >= 0))
      return std::nullopt;
    // Flooring division is monotone in the numerator and endpoint-
    // extremal in a sign-definite denominator: corners suffice.
    int64_t C[4] = {
        floorDivSmall(L->Lo, R->Lo), floorDivSmall(L->Lo, R->Hi),
        floorDivSmall(L->Hi, R->Lo), floorDivSmall(L->Hi, R->Hi)};
    return Interval{*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
  }
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    auto R = evalInterval(B->rhs(), Env);
    if (!R || (R->Lo <= 0 && R->Hi >= 0))
      return std::nullopt;
    if (!evalInterval(B->lhs(), Env))
      return std::nullopt;
    // The flooring modulus takes the divisor's sign.
    if (R->Lo > 0)
      return Interval{0, R->Hi - 1};
    return Interval{R->Lo + 1, 0};
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    const auto *M = cast<MinMaxExpr>(E.get());
    std::optional<Interval> Acc;
    for (const ExprRef &Op : M->operands()) {
      auto V = evalInterval(Op, Env);
      if (!V)
        return std::nullopt;
      if (!Acc) {
        Acc = V;
        continue;
      }
      if (M->isMin())
        Acc = Interval{std::min(Acc->Lo, V->Lo), std::min(Acc->Hi, V->Hi)};
      else
        Acc = Interval{std::max(Acc->Lo, V->Lo), std::max(Acc->Hi, V->Hi)};
    }
    return Acc;
  }
  case Expr::Kind::Call:
    return std::nullopt; // uninterpreted: fall back to the probe
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// Shape bookkeeping
//===----------------------------------------------------------------------===//

/// All array references of the nest (writes then reads).
std::vector<ArrayRef> allArrayRefs(const LoopNest &Nest) {
  std::vector<ArrayRef> Refs;
  Nest.collectWrites(Refs);
  Nest.collectReads(Refs);
  return Refs;
}

/// Per-array arity from the syntactic references; fails on disagreement
/// (such an array cannot be bound to one C macro).
ErrorOr<std::map<std::string, unsigned>> arrayArities(const LoopNest &Nest) {
  std::map<std::string, unsigned> Arity;
  for (const ArrayRef &R : allArrayRefs(Nest)) {
    unsigned N = static_cast<unsigned>(R.Subscripts.size());
    auto [It, Fresh] = Arity.emplace(R.Array, N);
    if (!Fresh && It->second != N)
      return Failure("array " + R.Array +
                     " is referenced with inconsistent arities");
  }
  return Arity;
}

std::vector<ArrayShape>
finishShapes(std::map<std::string, std::vector<Interval>> &Ranges) {
  std::vector<ArrayShape> Out;
  for (auto &[Name, Dims] : Ranges) {
    ArrayShape S;
    S.Name = Name;
    for (const Interval &I : Dims) {
      S.Lower.push_back(I.Lo);
      S.Extent.push_back(I.Hi - I.Lo + 1);
    }
    Out.push_back(std::move(S));
  }
  return Out; // map iteration: already name-sorted
}

/// Total opaque functions matching the emitted C helpers exactly (the
/// evaluator's builtins assert on negative sqrt; the harness cannot).
std::map<std::string, OpaqueFn> totalOpaqueFuncs() {
  std::map<std::string, OpaqueFn> F;
  F["sqrt"] = [](const std::vector<int64_t> &A) -> int64_t {
    if (A.size() != 1 || A[0] <= 0)
      return 0;
    return static_cast<int64_t>(std::sqrt(static_cast<double>(A[0])));
  };
  F["abs"] = [](const std::vector<int64_t> &A) -> int64_t {
    if (A.size() != 1)
      return 0;
    return A[0] < 0 ? -A[0] : A[0];
  };
  F["sgn"] = [](const std::vector<int64_t> &A) -> int64_t {
    if (A.size() != 1)
      return 0;
    return (A[0] > 0) - (A[0] < 0);
  };
  return F;
}

uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Flat cell -> subscript tuple under a row-major shape.
std::vector<int64_t> unflatten(uint64_t Flat, const ArrayShape &S) {
  std::vector<int64_t> Subs(S.Lower.size());
  for (size_t D = S.Lower.size(); D-- > 0;) {
    uint64_t E = static_cast<uint64_t>(S.Extent[D]);
    Subs[D] = S.Lower[D] + static_cast<int64_t>(Flat % E);
    Flat /= E;
  }
  return Subs;
}

uint64_t checksumStore(const ArrayStore &Store,
                       const std::vector<ArrayShape> &Sorted) {
  uint64_t H = 14695981039346656037ULL;
  for (const ArrayShape &S : Sorted) {
    uint64_t N = S.cells();
    for (uint64_t Flat = 0; Flat < N; ++Flat) {
      H ^= static_cast<uint64_t>(Store.read(S.Name, unflatten(Flat, S)));
      H *= 1099511628211ULL;
    }
  }
  return H;
}

std::string bindingComment(const std::map<std::string, int64_t> &B) {
  std::string S;
  for (const auto &[K, V] : B)
    S += (S.empty() ? "" : " ") + K + "=" + std::to_string(V);
  return S.empty() ? "(none)" : S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public shape inference
//===----------------------------------------------------------------------===//

ErrorOr<std::vector<ArrayShape>>
irlt::cgen::inferShapes(const LoopNest &Nest,
                        const std::map<std::string, int64_t> &Bindings) {
  ErrorOr<std::map<std::string, unsigned>> Arity = arrayArities(Nest);
  if (!Arity)
    return Failure(Arity.takeDiags());

  std::map<std::string, Interval> Env;
  for (const auto &[K, V] : Bindings)
    Env[K] = Interval{V, V};
  for (const Loop &L : Nest.Loops) {
    auto Lo = evalInterval(L.Lower, Env);
    auto Up = evalInterval(L.Upper, Env);
    if (!Lo || !Up)
      return Failure("bounds of loop " + L.IndexVar +
                     " are not interval-evaluable");
    // The loop variable starts at the lower bound and moves toward the
    // upper bound, so regardless of the step's sign its values lie in
    // the hull of the two bound intervals.
    Env[L.IndexVar] = hull(*Lo, *Up);
  }
  for (const InitStmt &I : Nest.Inits) {
    auto V = evalInterval(I.Value, Env);
    if (!V)
      return Failure("initialization of " + I.Var +
                     " is not interval-evaluable");
    Env[I.Var] = *V;
  }

  std::map<std::string, std::vector<Interval>> Ranges;
  for (const ArrayRef &R : allArrayRefs(Nest)) {
    auto It = Ranges.find(R.Array);
    bool Fresh = It == Ranges.end();
    if (Fresh)
      It = Ranges.emplace(R.Array, std::vector<Interval>(R.Subscripts.size()))
               .first;
    for (size_t D = 0; D < R.Subscripts.size(); ++D) {
      auto V = evalInterval(R.Subscripts[D], Env);
      if (!V)
        return Failure("subscript " + std::to_string(D + 1) + " of " +
                       R.Array + " is not interval-evaluable");
      It->second[D] = Fresh ? *V : hull(It->second[D], *V);
    }
  }
  return finishShapes(Ranges);
}

ErrorOr<std::vector<ArrayShape>>
irlt::cgen::probeShapes(const LoopNest &Nest,
                        const std::map<std::string, int64_t> &Bindings,
                        uint64_t MaxInstances) {
  std::string Reason = checkEmittable(Nest);
  if (!Reason.empty())
    return Failure("shape probe: " + Reason);

  EvalConfig EC;
  EC.Params = Bindings;
  EC.Funcs = totalOpaqueFuncs();
  EC.RecordTrace = false;
  EC.RecordAccesses = true;
  EC.MaxInstances = MaxInstances;

  ArrayStore Store;
  EvalResult R;
  {
    OverflowGuard G;
    R = evaluate(Nest, EC, Store);
    if (G.triggered())
      return Failure("shape probe: evaluation arithmetic overflowed");
  }
  if (R.LimitHit)
    return Failure("shape probe: " + R.LimitReason);

  std::map<std::string, std::vector<Interval>> Ranges;
  for (const MemAccess &A : R.Accesses) {
    auto It = Ranges.find(A.Array);
    bool Fresh = It == Ranges.end();
    if (Fresh)
      It = Ranges.emplace(A.Array, std::vector<Interval>(A.Subs.size()))
               .first;
    for (size_t D = 0; D < A.Subs.size(); ++D) {
      Interval P{A.Subs[D], A.Subs[D]};
      It->second[D] = Fresh ? P : hull(It->second[D], P);
    }
  }
  // Arrays referenced syntactically but never executed (zero-trip
  // loops): one dummy cell so their macros still compile and index.
  ErrorOr<std::map<std::string, unsigned>> Arity = arrayArities(Nest);
  if (!Arity)
    return Failure(Arity.takeDiags());
  for (const auto &[Name, N] : *Arity)
    if (!Ranges.count(Name))
      Ranges.emplace(Name, std::vector<Interval>(N));
  return finishShapes(Ranges);
}

ErrorOr<std::vector<ArrayShape>>
irlt::cgen::arrayShapes(const LoopNest &Nest,
                        const std::map<std::string, int64_t> &Bindings,
                        uint64_t ProbeMaxInstances) {
  ErrorOr<std::vector<ArrayShape>> S = inferShapes(Nest, Bindings);
  if (S)
    return S;
  return probeShapes(Nest, Bindings, ProbeMaxInstances);
}

//===----------------------------------------------------------------------===//
// Emission
//===----------------------------------------------------------------------===//

std::string irlt::cgen::checkEmittable(const LoopNest &Nest) {
  if (Nest.Loops.empty())
    return "nest has no loops";
  for (const std::string &Callee : opaqueCallees(Nest))
    if (!isEmittableOpaque(Callee))
      return "opaque call '" + Callee +
             "' has no C lowering (only sqrt/abs/sgn do)";
  ErrorOr<std::map<std::string, unsigned>> Arity = arrayArities(Nest);
  if (!Arity)
    return Arity.message();
  for (const auto &[Name, N] : *Arity)
    if (N == 0)
      return "array " + Name + " is referenced with no subscripts";
  return "";
}

int64_t irlt::cgen::seededCell(uint64_t Seed, uint64_t ArrayIdx,
                               uint64_t Flat) {
  return static_cast<int64_t>(mix64(Seed ^ ((ArrayIdx + 1) << 32) ^ Flat) %
                              127) -
         63;
}

namespace {

/// Unbound free parameters of \p Nest under \p B, rendered for a
/// diagnostic; empty when all are bound.
std::string unboundParams(const LoopNest &Nest,
                          const std::map<std::string, int64_t> &B) {
  std::string Missing;
  for (const std::string &P : freeParameters(Nest))
    if (!B.count(P))
      Missing += (Missing.empty() ? "" : ", ") + P;
  return Missing;
}

std::string callArgs(const LoopNest &Nest,
                     const std::map<std::string, int64_t> &B) {
  std::vector<std::string> Args;
  for (const std::string &P : freeParameters(Nest))
    Args.push_back(std::to_string(B.at(P)));
  return join(Args, ", ");
}

} // namespace

ErrorOr<std::string>
irlt::cgen::emitProgram(const LoopNest &Original, const LoopNest *Transformed,
                        const std::vector<ArrayShape> &Shapes,
                        const ProgramOptions &Options) {
  std::string Reason = checkEmittable(Original);
  if (!Reason.empty())
    return Failure("original nest not emittable: " + Reason);
  if (Transformed) {
    Reason = checkEmittable(*Transformed);
    if (!Reason.empty())
      return Failure("transformed nest not emittable: " + Reason);
  }
  std::string Missing = unboundParams(Original, Options.Bindings);
  if (Missing.empty() && Transformed)
    Missing = unboundParams(*Transformed, Options.Bindings);
  if (!Missing.empty())
    return Failure("unbound scalar parameter(s): " + Missing +
                   " (pass --bind)");

  std::vector<ArrayShape> Sorted = Shapes;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const ArrayShape &A, const ArrayShape &B) {
              return A.Name < B.Name;
            });
  uint64_t TotalCells = 0;
  for (const ArrayShape &S : Sorted) {
    if (S.Lower.empty())
      return Failure("array " + S.Name + " has an empty shape");
    if (S.cells() > Options.MaxCells)
      return Failure("array " + S.Name + " needs " +
                     std::to_string(S.cells()) +
                     " cells, above the cap of " +
                     std::to_string(Options.MaxCells));
    TotalCells += S.cells();
  }

  std::set<std::string> Opaques = opaqueCallees(Original);
  if (Transformed) {
    std::set<std::string> T = opaqueCallees(*Transformed);
    Opaques.insert(T.begin(), T.end());
  }

  std::string P;
  auto L = [&P](const std::string &Line) { P += Line + "\n"; };

  L("/* Generated by irlt-cgen: differential native harness for the");
  L(" * PLDI'92 iteration-reordering framework (docs/CODEGEN.md).");
  L(" * seed=" + std::to_string(Options.Seed) +
    " bindings: " + bindingComment(Options.Bindings) +
    " reps=" + std::to_string(Options.TimingReps));
  L(" * Exit status: 0 = checksums and memory images match, 7 = mismatch.");
  L(" * Machine-readable verdict: the IRLT_RESULT line on stdout. */");
  L("#include <inttypes.h>");
  L("#include <stdint.h>");
  L("#include <stdio.h>");
  L("#include <string.h>");
  L("#include <time.h>");
  L("#if defined(_OPENMP)");
  L("#include <omp.h>");
  L("#endif");
  L("");
  L("/* Flooring division/modulus (the framework's div and mod). */");
  L("static inline int64_t irlt_floordiv(int64_t a, int64_t b) {");
  L("  int64_t q = a / b, r = a % b;");
  L("  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;");
  L("}");
  L("static inline int64_t irlt_floormod(int64_t a, int64_t b) {");
  L("  return a - irlt_floordiv(a, b) * b;");
  L("}");
  L("static inline int64_t irlt_min(int64_t a, int64_t b) {");
  L("  return a < b ? a : b;");
  L("}");
  L("static inline int64_t irlt_max(int64_t a, int64_t b) {");
  L("  return a > b ? a : b;");
  L("}");
  if (Opaques.count("sqrt")) {
    L("static inline int64_t irlt_isqrt(int64_t a) {");
    L("  return a <= 0 ? 0 : (int64_t)__builtin_sqrt((double)a);");
    L("}");
    L("#define sqrt(a) irlt_isqrt(a)");
  }
  if (Opaques.count("abs")) {
    L("static inline int64_t irlt_iabs(int64_t a) { return a < 0 ? -a : a; }");
    L("#define abs(a) irlt_iabs(a)");
  }
  if (Opaques.count("sgn")) {
    L("static inline int64_t irlt_isgn(int64_t a) {");
    L("  return (a > 0) - (a < 0);");
    L("}");
    L("#define sgn(a) irlt_isgn(a)");
  }
  L("");
  L("/* splitmix64: the deterministic (seed, array, cell) value stream,");
  L(" * mirrored by cgen::seededCell on the interpreter side. */");
  L("static inline uint64_t irlt_mix(uint64_t x) {");
  L("  x += 0x9e3779b97f4a7c15ULL;");
  L("  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;");
  L("  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;");
  L("  return x ^ (x >> 31);");
  L("}");
  L("");
  L("static uint64_t irlt_oob = 0;");
  L("static int64_t irlt_sink = 0;");

  // Per-array storage, bounds-checked accessor, and access macro.
  for (const ArrayShape &S : Sorted) {
    std::string Cells = std::to_string(S.cells());
    std::string Dims;
    for (size_t D = 0; D < S.Lower.size(); ++D)
      Dims += (D ? " x " : "") + std::string("[") +
              std::to_string(S.Lower[D]) + ", " +
              std::to_string(S.Lower[D] + S.Extent[D] - 1) + "]";
    L("");
    L("/* " + S.Name + ": " + Dims + " (" + Cells + " cells, row-major);");
    L(" * out-of-shape accesses go to the sink and are counted. */");
    L("static int64_t irlt_buf_" + S.Name + "[" + Cells + "];");
    L("static int64_t irlt_ref_" + S.Name + "[" + Cells + "];");
    std::string Params;
    for (size_t D = 0; D < S.Lower.size(); ++D)
      Params += std::string(D ? ", " : "") + "int64_t s" + std::to_string(D);
    L("static inline int64_t *irlt_at_" + S.Name + "(" + Params + ") {");
    std::string Check;
    for (size_t D = 0; D < S.Lower.size(); ++D) {
      std::string V = "s" + std::to_string(D);
      std::string Lo = std::to_string(S.Lower[D]);
      std::string Hi = std::to_string(S.Lower[D] + S.Extent[D] - 1);
      Check += (D ? " || " : "") + V + " < " + Lo + " || " + V + " > " + Hi;
    }
    L("  if (" + Check + ") {");
    L("#if defined(_OPENMP)");
    L("#pragma omp atomic");
    L("#endif");
    L("    ++irlt_oob;");
    L("    return &irlt_sink;");
    L("  }");
    // Row-major flattening: ((s0-L0)*E1 + (s1-L1))*E2 + ...
    std::string Index;
    for (size_t D = 0; D < S.Lower.size(); ++D) {
      std::string Term = "(uint64_t)(s" + std::to_string(D) + " - (" +
                         std::to_string(S.Lower[D]) + "))";
      if (D == 0)
        Index = Term;
      else
        Index = "(" + Index + ") * " + std::to_string(S.Extent[D]) + "ULL + " +
                Term;
    }
    L("  return &irlt_buf_" + S.Name + "[" + Index + "];");
    L("}");
    std::string MacroParams;
    for (size_t D = 0; D < S.Lower.size(); ++D)
      MacroParams += std::string(D ? ", " : "") + "s" + std::to_string(D);
    L("#define " + S.Name + "(" + MacroParams + ") (*irlt_at_" + S.Name +
      "(" + MacroParams + "))");
  }

  L("");
  L("static const uint64_t IRLT_SEED = " + std::to_string(Options.Seed) +
    "ULL;");
  L("");
  L("static void irlt_seed_arrays(void) {");
  L("  uint64_t i;");
  for (size_t A = 0; A < Sorted.size(); ++A) {
    const ArrayShape &S = Sorted[A];
    L("  for (i = 0; i < " + std::to_string(S.cells()) + "ULL; ++i)");
    L("    irlt_buf_" + S.Name + "[i] = (int64_t)(irlt_mix(IRLT_SEED ^ ((" +
      std::to_string(A) + "ULL + 1ULL) << 32) ^ i) % 127) - 63;");
  }
  L("}");
  L("");
  L("/* FNV-1a over every cell of every array, in sorted array order;");
  L(" * mirrored by the interpreter-side checksum (cgen/Cgen.h). */");
  L("static uint64_t irlt_checksum(void) {");
  L("  uint64_t h = 14695981039346656037ULL;");
  L("  uint64_t i;");
  for (const ArrayShape &S : Sorted) {
    L("  for (i = 0; i < " + std::to_string(S.cells()) + "ULL; ++i) {");
    L("    h ^= (uint64_t)irlt_buf_" + S.Name + "[i];");
    L("    h *= 1099511628211ULL;");
    L("  }");
  }
  L("  return h;");
  L("}");
  L("");
  L("static uint64_t irlt_now_ns(void) {");
  L("  struct timespec ts;");
  L("  clock_gettime(CLOCK_MONOTONIC, &ts);");
  L("  return (uint64_t)ts.tv_sec * 1000000000ULL + (uint64_t)ts.tv_nsec;");
  L("}");
  L("");

  CEmitOptions KO;
  KO.EmitHelpers = false;
  KO.UseOpenMP = Options.UseOpenMP;
  KO.FunctionName = "irlt_original";
  P += emitC(Original, KO);
  if (Transformed) {
    L("");
    KO.FunctionName = "irlt_transformed";
    P += emitC(*Transformed, KO);
  }

  std::string OrigArgs = callArgs(Original, Options.Bindings);
  std::string XformArgs =
      Transformed ? callArgs(*Transformed, Options.Bindings) : "";

  L("");
  L("int main(void) {");
  L("  int match = 1;");
  L("  irlt_oob = 0;");
  L("  irlt_seed_arrays();");
  L("  irlt_original(" + OrigArgs + ");");
  L("  uint64_t ck_original = irlt_checksum();");
  L("  uint64_t oob_original = irlt_oob;");
  for (const ArrayShape &S : Sorted)
    L("  memcpy(irlt_ref_" + S.Name + ", irlt_buf_" + S.Name +
      ", sizeof(irlt_buf_" + S.Name + "));");
  L("  uint64_t ck_transformed = ck_original;");
  L("  uint64_t oob_transformed = oob_original;");
  if (Transformed) {
    L("  irlt_oob = 0;");
    L("  irlt_seed_arrays();");
    L("  irlt_transformed(" + XformArgs + ");");
    L("  ck_transformed = irlt_checksum();");
    L("  oob_transformed = irlt_oob;");
    L("  if (ck_transformed != ck_original)");
    L("    match = 0;");
    L("  if (oob_transformed != oob_original)");
    L("    match = 0;");
    for (const ArrayShape &S : Sorted) {
      L("  if (memcmp(irlt_buf_" + S.Name + ", irlt_ref_" + S.Name +
        ", sizeof(irlt_buf_" + S.Name + ")) != 0)");
      L("    match = 0;");
    }
  }
  L("  uint64_t ns_original = 0;");
  L("  uint64_t ns_transformed = 0;");
  if (Options.TimingReps > 0) {
    std::string Reps = std::to_string(Options.TimingReps);
    L("  {");
    L("    int r;");
    L("    for (r = 0; r < " + Reps + "; ++r) {");
    L("      irlt_seed_arrays();");
    L("      uint64_t t0 = irlt_now_ns();");
    L("      irlt_original(" + OrigArgs + ");");
    L("      uint64_t t1 = irlt_now_ns();");
    L("      if (ns_original == 0 || t1 - t0 < ns_original)");
    L("        ns_original = t1 - t0;");
    L("    }");
    if (Transformed) {
      L("    for (r = 0; r < " + Reps + "; ++r) {");
      L("      irlt_seed_arrays();");
      L("      uint64_t t0 = irlt_now_ns();");
      L("      irlt_transformed(" + XformArgs + ");");
      L("      uint64_t t1 = irlt_now_ns();");
      L("      if (ns_transformed == 0 || t1 - t0 < ns_transformed)");
      L("        ns_transformed = t1 - t0;");
    L("    }");
    }
    L("  }");
  } else {
    L("  (void)irlt_now_ns;");
  }
  L("  int threads = 1;");
  L("#if defined(_OPENMP)");
  L("  threads = omp_get_max_threads();");
  L("#endif");
  L("  printf(\"IRLT_RESULT {\\\"schema_version\\\":1,"
    "\\\"record\\\":\\\"native-run\\\",\"");
  L("         \"\\\"match\\\":%s,\"");
  L("         \"\\\"checksum_original\\\":\\\"0x%016\" PRIx64 \"\\\",\"");
  L("         \"\\\"checksum_transformed\\\":\\\"0x%016\" PRIx64 \"\\\",\"");
  L("         \"\\\"oob_original\\\":%\" PRIu64 \","
    "\\\"oob_transformed\\\":%\" PRIu64 \",\"");
  L("         \"\\\"cells\\\":" + std::to_string(TotalCells) +
    ",\\\"reps\\\":" + std::to_string(Options.TimingReps) + ",\"");
  L("         \"\\\"ns_original\\\":%\" PRIu64 \","
    "\\\"ns_transformed\\\":%\" PRIu64 \",\\\"threads\\\":%d}\\n\",");
  L("         match ? \"true\" : \"false\", ck_original, ck_transformed,");
  L("         oob_original, oob_transformed, ns_original, ns_transformed,");
  L("         threads);");
  L("  return match ? 0 : 7;");
  L("}");
  return P;
}

//===----------------------------------------------------------------------===//
// Interpreted twin
//===----------------------------------------------------------------------===//

InterpChecksums irlt::cgen::interpretChecksums(
    const LoopNest &Original, const LoopNest *Transformed,
    const std::vector<ArrayShape> &Shapes, const ProgramOptions &Options,
    uint64_t MaxInstances) {
  InterpChecksums R;

  std::vector<ArrayShape> Sorted = Shapes;
  std::sort(Sorted.begin(), Sorted.end(),
            [](const ArrayShape &A, const ArrayShape &B) {
              return A.Name < B.Name;
            });

  ArrayStore Seeded;
  for (size_t A = 0; A < Sorted.size(); ++A) {
    const ArrayShape &S = Sorted[A];
    uint64_t N = S.cells();
    if (N > Options.MaxCells) {
      R.Detail = "array " + S.Name + " above the cell cap";
      return R;
    }
    for (uint64_t Flat = 0; Flat < N; ++Flat)
      Seeded.write(S.Name, unflatten(Flat, S),
                   seededCell(Options.Seed, A, Flat));
  }

  EvalConfig EC;
  EC.Params = Options.Bindings;
  EC.Funcs = totalOpaqueFuncs();
  EC.RecordTrace = false;
  EC.MaxInstances = MaxInstances;

  auto runOne = [&](const LoopNest &Nest, uint64_t &ChecksumOut) {
    ArrayStore Store = Seeded;
    EvalResult E;
    {
      OverflowGuard G;
      E = evaluate(Nest, EC, Store);
      if (G.triggered()) {
        R.Overflow = true;
        R.Detail = "interpreted execution overflowed";
        return false;
      }
    }
    if (E.LimitHit) {
      R.BudgetExceeded = true;
      R.Detail = "interpreted execution " + E.LimitReason;
      return false;
    }
    ChecksumOut = checksumStore(Store, Sorted);
    return true;
  };

  if (!runOne(Original, R.Original))
    return R;
  R.Transformed = R.Original;
  if (Transformed && !runOne(*Transformed, R.Transformed))
    return R;
  R.Ok = true;
  return R;
}
