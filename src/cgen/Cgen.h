//===- cgen/Cgen.h - Native differential program emission -----------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a (original, transformed) nest pair into one standalone C
/// translation unit with a deterministic differential harness
/// (docs/CODEGEN.md):
///
///  - array storage is dense flat int64 buffers sized by *shape
///    inference* (interval analysis over the loop bounds, falling back
///    to an interpreter probe when a bound or subscript is not
///    interval-evaluable), with bounds-checked access macros that
///    redirect out-of-shape accesses to a sink cell and count them -
///    an incorrect transformation can never scribble outside a buffer;
///  - both kernels are emitted with codegen/CEmitter.h (`pardo` loops
///    become `#pragma omp parallel for`);
///  - `main` seeds every buffer from splitmix64 over (seed, array,
///    cell), runs original then transformed from identical images, and
///    compares an FNV-1a checksum plus the full memory image;
///  - the verdict is printed as one machine-readable `IRLT_RESULT`
///    JSON line and doubles as the exit status (0 match, 7 mismatch).
///
/// The same seeding and checksum are reimplemented here over the
/// interpreter's ArrayStore, so the fuzzer can cross-check interpreted
/// and native execution cell-for-cell (interpretChecksums).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_CGEN_CGEN_H
#define IRLT_CGEN_CGEN_H

#include "ir/LoopNest.h"
#include "support/ErrorOr.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace irlt {
namespace cgen {

/// Dense storage shape of one array: per-dimension inclusive lower
/// bounds and extents (>= 1), row-major.
struct ArrayShape {
  std::string Name;
  std::vector<int64_t> Lower;
  std::vector<int64_t> Extent;

  uint64_t cells() const {
    uint64_t N = 1;
    for (int64_t E : Extent)
      N *= static_cast<uint64_t>(E);
    return N;
  }
};

/// Infers shapes by interval analysis: every loop variable is bounded by
/// the hull of its lower/upper bound intervals, and every subscript is
/// interval-evaluated under those bounds. Sound over-approximation;
/// fails when a bound or subscript contains an opaque call or a
/// divisor interval straddling zero.
ErrorOr<std::vector<ArrayShape>> inferShapes(
    const LoopNest &Nest, const std::map<std::string, int64_t> &Bindings);

/// Infers shapes by running the interpreter with access recording and
/// taking per-dimension min/max. Exact, but costs one interpreted run.
ErrorOr<std::vector<ArrayShape>> probeShapes(
    const LoopNest &Nest, const std::map<std::string, int64_t> &Bindings,
    uint64_t MaxInstances);

/// The production entry: interval analysis first, interpreter probe as
/// the fallback (docs/CODEGEN.md).
ErrorOr<std::vector<ArrayShape>> arrayShapes(
    const LoopNest &Nest, const std::map<std::string, int64_t> &Bindings,
    uint64_t ProbeMaxInstances);

/// Options for emitProgram.
struct ProgramOptions {
  /// Seed of the deterministic array images; the same (seed, array,
  /// cell) triple yields the same value in C and in the interpreter.
  uint64_t Seed = 42;
  /// Values for every free scalar parameter of both nests.
  std::map<std::string, int64_t> Bindings;
  /// Timing repetitions in the harness (0 = correctness only); the
  /// reported time per kernel is the minimum over the repetitions,
  /// each from a freshly seeded image.
  unsigned TimingReps = 0;
  /// Emit `#pragma omp parallel for` on pardo loops.
  bool UseOpenMP = true;
  /// Per-array cell cap; emission fails above it (the harness uses
  /// static buffers).
  uint64_t MaxCells = 1ull << 23;
};

/// \returns an empty string when the nest can be lowered to C, else the
/// reason (an opaque call other than sqrt/abs/sgn, no loops, ...).
std::string checkEmittable(const LoopNest &Nest);

/// Emits the standalone differential translation unit. \p Transformed
/// may be null (single-kernel harness: the transformed side is skipped
/// and the verdict is trivially a match). \p Shapes must cover every
/// access of both nests under \p Bindings - use arrayShapes on the
/// *original* nest (a correct transformation touches the same cells;
/// an incorrect one is caught by the harness's bounds-checked macros).
ErrorOr<std::string> emitProgram(const LoopNest &Original,
                                 const LoopNest *Transformed,
                                 const std::vector<ArrayShape> &Shapes,
                                 const ProgramOptions &Options);

/// The deterministic initial value of flat cell \p Flat of array number
/// \p ArrayIdx (position in the name-sorted shape list) under \p Seed.
/// Values stay in [-63, 63] so generated bodies cannot overflow int64
/// within any realistic iteration count.
int64_t seededCell(uint64_t Seed, uint64_t ArrayIdx, uint64_t Flat);

/// Interpreted twin of the harness: seeds an ArrayStore from the same
/// (seed, array, cell) stream, evaluates the nest(s), and returns the
/// same FNV-1a checksum the native binary prints.
struct InterpChecksums {
  bool Ok = false;
  bool Overflow = false;       ///< arithmetic saturated; no verdict
  bool BudgetExceeded = false; ///< instance budget ran out; no verdict
  std::string Detail;
  uint64_t Original = 0;
  uint64_t Transformed = 0; ///< == Original when Transformed was null
};
InterpChecksums interpretChecksums(const LoopNest &Original,
                                   const LoopNest *Transformed,
                                   const std::vector<ArrayShape> &Shapes,
                                   const ProgramOptions &Options,
                                   uint64_t MaxInstances);

} // namespace cgen
} // namespace irlt

#endif // IRLT_CGEN_CGEN_H
