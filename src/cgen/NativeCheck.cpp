//===- cgen/NativeCheck.cpp - One-call native differential check ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "cgen/NativeCheck.h"

#include "codegen/CEmitter.h"
#include "support/Printing.h"

using namespace irlt;
using namespace irlt::cgen;

namespace {

std::string hex64(uint64_t V) {
  return formatStr("0x%016llx", static_cast<unsigned long long>(V));
}

bool allParamsBound(const LoopNest &Nest,
                    const std::map<std::string, int64_t> &B,
                    std::string &Missing) {
  for (const std::string &P : freeParameters(Nest))
    if (!B.count(P)) {
      Missing = P;
      return false;
    }
  return true;
}

} // namespace

const char *irlt::cgen::nativeCheckStatusName(NativeCheckStatus S) {
  switch (S) {
  case NativeCheckStatus::Match:
    return "match";
  case NativeCheckStatus::Mismatch:
    return "mismatch";
  case NativeCheckStatus::InterpDiverged:
    return "interp-diverged";
  case NativeCheckStatus::Unavailable:
    return "unavailable";
  case NativeCheckStatus::Skipped:
    return "skipped";
  case NativeCheckStatus::Failed:
    return "failed";
  }
  return "unknown";
}

NativeCheckResult
irlt::cgen::checkNative(const LoopNest &Original, const LoopNest *Transformed,
                        const NativeCheckOptions &Options) {
  NativeCheckResult R;

  std::string Reason = checkEmittable(Original);
  if (Reason.empty() && Transformed)
    Reason = checkEmittable(*Transformed);
  if (!Reason.empty()) {
    R.Status = NativeCheckStatus::Skipped;
    R.Detail = "not emittable: " + Reason;
    return R;
  }
  std::string Missing;
  if (!allParamsBound(Original, Options.Bindings, Missing) ||
      (Transformed && !allParamsBound(*Transformed, Options.Bindings,
                                      Missing))) {
    R.Status = NativeCheckStatus::Skipped;
    R.Detail = "unbound scalar parameter: " + Missing;
    return R;
  }

  ErrorOr<std::vector<ArrayShape>> Shapes =
      arrayShapes(Original, Options.Bindings, Options.InterpMaxInstances);
  if (!Shapes) {
    R.Status = NativeCheckStatus::Skipped;
    R.Detail = "no shapes: " + Shapes.message();
    return R;
  }
  for (const ArrayShape &S : *Shapes)
    if (S.cells() > Options.MaxCells) {
      R.Status = NativeCheckStatus::Skipped;
      R.Detail = "array " + S.Name + " above the cell cap";
      return R;
    }

  ProgramOptions PO;
  PO.Seed = Options.Seed;
  PO.Bindings = Options.Bindings;
  PO.TimingReps = Options.TimingReps;
  PO.UseOpenMP = Options.UseOpenMP;
  PO.MaxCells = Options.MaxCells;

  // Interpreted reference first: it carries the overflow guard, so any
  // case whose arithmetic would overflow (where native wrapping and
  // interpreted saturation could diverge for reasons unrelated to the
  // transformation) is skipped before native execution.
  if (Options.CrossCheckInterpreter) {
    R.Interp = interpretChecksums(Original, Transformed, *Shapes, PO,
                                  Options.InterpMaxInstances);
    if (!R.Interp.Ok) {
      R.Status = NativeCheckStatus::Skipped;
      R.Detail = "interpreter reference unavailable: " + R.Interp.Detail;
      return R;
    }
  }

  ErrorOr<std::string> Program =
      emitProgram(Original, Transformed, *Shapes, PO);
  if (!Program) {
    R.Status = NativeCheckStatus::Skipped;
    R.Detail = "emission failed: " + Program.message();
    return R;
  }

  R.Native = runNative(*Program, Options.Runner);
  switch (R.Native.Status) {
  case NativeStatus::NoCompiler:
    R.Status = NativeCheckStatus::Unavailable;
    R.Detail = "no host C compiler";
    return R;
  case NativeStatus::CompileError:
  case NativeStatus::RunTimeout:
  case NativeStatus::RunError:
  case NativeStatus::BadOutput:
    R.Status = NativeCheckStatus::Failed;
    R.Detail = std::string("native run failed: ") +
               nativeStatusName(R.Native.Status);
    return R;
  case NativeStatus::Mismatch:
    R.Status = NativeCheckStatus::Mismatch;
    R.Detail = "native mismatch: original " + hex64(R.Native.ChecksumOriginal) +
               " vs transformed " + hex64(R.Native.ChecksumTransformed) +
               (R.Native.OobOriginal != R.Native.OobTransformed
                    ? " (out-of-shape access counts differ)"
                    : "");
    return R;
  case NativeStatus::Ok:
    break;
  }

  if (Options.CrossCheckInterpreter &&
      (R.Interp.Original != R.Native.ChecksumOriginal ||
       R.Interp.Transformed != R.Native.ChecksumTransformed)) {
    R.Status = NativeCheckStatus::InterpDiverged;
    R.Detail = "interpreter/native divergence: interpreted " +
               hex64(R.Interp.Original) + "/" + hex64(R.Interp.Transformed) +
               " vs native " + hex64(R.Native.ChecksumOriginal) + "/" +
               hex64(R.Native.ChecksumTransformed);
    return R;
  }

  R.Status = NativeCheckStatus::Match;
  R.Detail = "native match: checksum " + hex64(R.Native.ChecksumOriginal);
  return R;
}
