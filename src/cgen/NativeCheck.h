//===- cgen/NativeCheck.h - One-call native differential check ------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The orchestration layer over Cgen.h + NativeRunner.h that the
/// witness validator, the fuzzer's `--native` oracle, and the tools
/// share: shape-infer, optionally cross-check the interpreter on the
/// same seeded images, emit, compile, run, classify. Every outcome is
/// a NativeCheckStatus; Detail strings are deterministic (no compiler
/// logs or timings) so engine output stays byte-identical across runs.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_CGEN_NATIVECHECK_H
#define IRLT_CGEN_NATIVECHECK_H

#include "cgen/Cgen.h"
#include "cgen/NativeRunner.h"
#include "ir/LoopNest.h"

#include <cstdint>
#include <map>
#include <string>

namespace irlt {
namespace cgen {

enum class NativeCheckStatus {
  Match,         ///< native original == native transformed (and, when
                 ///< cross-checking, == interpreted)
  Mismatch,      ///< native original != native transformed
  InterpDiverged,///< native sides agree with each other but not with the
                 ///< interpreter: a codegen/evaluator inconsistency
  Unavailable,   ///< no host C compiler
  Skipped,       ///< case not checkable (opaque call, cell cap, interp
                 ///< overflow/budget, unbound parameter)
  Failed         ///< infrastructure failure (compile error on emitted
                 ///< code, run crash, timeout, bad output)
};

const char *nativeCheckStatusName(NativeCheckStatus S);

struct NativeCheckOptions {
  uint64_t Seed = 42;
  std::map<std::string, int64_t> Bindings;
  unsigned TimingReps = 0;
  bool UseOpenMP = true;
  uint64_t MaxCells = 1ull << 23;
  /// Budget for the shape probe and the interpreted cross-check.
  uint64_t InterpMaxInstances = 1u << 22;
  /// Also run the interpreter on the same seeded images and require its
  /// checksums to equal the native ones (the fuzz oracle's mode).
  bool CrossCheckInterpreter = false;
  NativeRunOptions Runner;
};

struct NativeCheckResult {
  NativeCheckStatus Status = NativeCheckStatus::Skipped;
  /// Deterministic classification text (safe for engine output).
  std::string Detail;
  /// The raw runner result (Detail there may be nondeterministic).
  NativeResult Native;
  /// Interpreted checksums (only meaningful with CrossCheckInterpreter).
  InterpChecksums Interp;
};

/// Full pipeline: emittability, shapes, optional interpreted reference,
/// emit, compile, run, classify. \p Transformed may be null.
NativeCheckResult checkNative(const LoopNest &Original,
                              const LoopNest *Transformed,
                              const NativeCheckOptions &Options);

} // namespace cgen
} // namespace irlt

#endif // IRLT_CGEN_NATIVECHECK_H
