//===- cgen/NativeRunner.cpp - Compile-and-run execution of emitted C -----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "cgen/NativeRunner.h"

#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace irlt;
using namespace irlt::cgen;

namespace {

/// Outcome of one child process run.
struct ProcResult {
  bool Started = false;  ///< fork/pipe machinery worked
  bool TimedOut = false; ///< killed at the deadline
  bool ExecFailed = false; ///< the executable itself could not be run
  int ExitCode = -1;     ///< valid when exited normally
  int Signal = 0;        ///< nonzero when terminated by a signal
  std::string Output;    ///< combined stdout+stderr, capped at 1 MiB
};

constexpr size_t OutputCap = 1 << 20;

/// Sentinel exit code the child uses when execvp itself fails; chosen to
/// match the shell convention for "command not found".
constexpr int ExecFailCode = 127;

/// Runs \p Argv with stdout+stderr captured, killing the whole process
/// group at the deadline.
ProcResult runProcess(const std::vector<std::string> &Argv,
                      uint64_t TimeoutMs) {
  ProcResult R;

  int Pipe[2];
  if (pipe(Pipe) != 0)
    return R;

  pid_t Pid = fork();
  if (Pid < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    return R;
  }
  if (Pid == 0) {
    // Child: own process group so a timeout kill reaps OpenMP workers too.
    setpgid(0, 0);
    dup2(Pipe[1], STDOUT_FILENO);
    dup2(Pipe[1], STDERR_FILENO);
    close(Pipe[0]);
    close(Pipe[1]);
    std::vector<char *> Args;
    Args.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      Args.push_back(const_cast<char *>(A.c_str()));
    Args.push_back(nullptr);
    execvp(Args[0], Args.data());
    _exit(ExecFailCode);
  }

  // Parent.
  R.Started = true;
  close(Pipe[1]);
  fcntl(Pipe[0], F_SETFL, O_NONBLOCK);

  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  bool Exited = false;
  int Status = 0;
  char Buf[4096];
  for (;;) {
    ssize_t N;
    while ((N = read(Pipe[0], Buf, sizeof(Buf))) > 0)
      if (R.Output.size() < OutputCap)
        R.Output.append(Buf, Buf + std::min<size_t>(
                                       static_cast<size_t>(N),
                                       OutputCap - R.Output.size()));
    pid_t W = waitpid(Pid, &Status, WNOHANG);
    if (W == Pid) {
      Exited = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= Deadline) {
      kill(-Pid, SIGKILL);
      kill(Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      R.TimedOut = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Drain whatever arrived between the last read and exit.
  ssize_t N;
  while ((N = read(Pipe[0], Buf, sizeof(Buf))) > 0)
    if (R.Output.size() < OutputCap)
      R.Output.append(Buf, Buf + std::min<size_t>(static_cast<size_t>(N),
                                                  OutputCap - R.Output.size()));
  close(Pipe[0]);

  if (Exited) {
    if (WIFEXITED(Status)) {
      R.ExitCode = WEXITSTATUS(Status);
      R.ExecFailed = R.ExitCode == ExecFailCode;
    } else if (WIFSIGNALED(Status)) {
      R.Signal = WTERMSIG(Status);
    }
  }
  return R;
}

bool answersVersion(const std::string &CC) {
  ProcResult R = runProcess({CC, "--version"}, 10000);
  return R.Started && !R.TimedOut && R.ExitCode == 0;
}

/// First line (or first 400 chars) of a tool's output, for diagnostics.
std::string excerpt(const std::string &Output) {
  std::string S = Output.substr(0, 400);
  for (char &C : S)
    if (C == '\n')
      C = ' ';
  return S;
}

uint64_t hexField(const json::JsonValue &Obj, std::string_view Key) {
  std::string S = Obj.stringOr(Key, "0x0");
  return strtoull(S.c_str(), nullptr, 16);
}

} // namespace

std::string irlt::cgen::probeCompiler() {
  if (const char *Env = getenv("IRLT_CC"); Env && *Env)
    return answersVersion(Env) ? std::string(Env) : std::string();
  for (const char *CC : {"cc", "gcc", "clang"})
    if (answersVersion(CC))
      return CC;
  return "";
}

const char *irlt::cgen::nativeStatusName(NativeStatus S) {
  switch (S) {
  case NativeStatus::Ok:
    return "ok";
  case NativeStatus::Mismatch:
    return "mismatch";
  case NativeStatus::NoCompiler:
    return "no-compiler";
  case NativeStatus::CompileError:
    return "compile-error";
  case NativeStatus::RunTimeout:
    return "run-timeout";
  case NativeStatus::RunError:
    return "run-error";
  case NativeStatus::BadOutput:
    return "bad-output";
  }
  return "unknown";
}

NativeResult irlt::cgen::runNative(const std::string &Program,
                                   const NativeRunOptions &Options) {
  NativeResult R;

  std::string CC = Options.Compiler.empty() ? probeCompiler()
                                            : Options.Compiler;
  if (CC.empty()) {
    R.Status = NativeStatus::NoCompiler;
    R.Detail = "no host C compiler (set IRLT_CC or install cc/gcc/clang)";
    return R;
  }

  // Scratch directory.
  std::string Dir = Options.WorkDir;
  bool OwnDir = false;
  if (Dir.empty()) {
    const char *Tmp = getenv("TMPDIR");
    std::string Templ =
        std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/irlt-cgen-XXXXXX";
    std::vector<char> Buf(Templ.begin(), Templ.end());
    Buf.push_back('\0');
    if (!mkdtemp(Buf.data())) {
      R.Status = NativeStatus::RunError;
      R.Detail = std::string("mkdtemp failed: ") + strerror(errno);
      return R;
    }
    Dir = Buf.data();
    OwnDir = true;
  }
  std::string Src = Dir + "/program.c";
  std::string Bin = Dir + "/program.bin";
  auto Cleanup = [&]() {
    if (Options.KeepFiles)
      return;
    remove(Src.c_str());
    remove(Bin.c_str());
    if (OwnDir)
      rmdir(Dir.c_str());
  };

  {
    std::ofstream Out(Src, std::ios::binary);
    Out << Program;
    if (!Out) {
      R.Status = NativeStatus::RunError;
      R.Detail = "cannot write " + Src;
      Cleanup();
      return R;
    }
  }
  if (Options.KeepFiles)
    R.SourcePath = Src;

  // Compile: -fwrapv so int64 arithmetic wraps (the interpreter's
  // overflow guard rejects overflowing cases before they reach here,
  // and wrapping keeps any residual overflow deterministic, not UB).
  auto CompileArgv = [&](bool OpenMP) {
    std::vector<std::string> A{CC, "-O2", "-fwrapv"};
    if (OpenMP)
      A.push_back("-fopenmp");
    A.insert(A.end(), {"-o", Bin, Src, "-lm"});
    return A;
  };
  ProcResult C = runProcess(CompileArgv(Options.OpenMP),
                            Options.CompileTimeoutMs);
  std::string Note;
  if (Options.OpenMP && C.Started && !C.TimedOut && C.ExitCode != 0 &&
      !C.ExecFailed) {
    // Some host compilers lack libomp; fall back to serial.
    C = runProcess(CompileArgv(false), Options.CompileTimeoutMs);
    Note = " (OpenMP unavailable; compiled serial)";
  }
  if (!C.Started || C.ExecFailed) {
    R.Status = NativeStatus::NoCompiler;
    R.Detail = "compiler '" + CC + "' could not be executed";
    Cleanup();
    return R;
  }
  if (C.TimedOut) {
    R.Status = NativeStatus::CompileError;
    R.Detail = "compilation exceeded " +
               std::to_string(Options.CompileTimeoutMs) + " ms";
    Cleanup();
    return R;
  }
  if (C.ExitCode != 0) {
    R.Status = NativeStatus::CompileError;
    R.Detail = "compiler exited " + std::to_string(C.ExitCode) + ": " +
               excerpt(C.Output);
    Cleanup();
    return R;
  }

  // Run.
  ProcResult Run = runProcess({Bin}, Options.RunTimeoutMs);
  if (!Run.Started) {
    R.Status = NativeStatus::RunError;
    R.Detail = "could not start " + Bin;
    Cleanup();
    return R;
  }
  if (Run.TimedOut) {
    R.Status = NativeStatus::RunTimeout;
    R.Detail = "binary exceeded " + std::to_string(Options.RunTimeoutMs) +
               " ms and was killed";
    Cleanup();
    return R;
  }
  if (Run.Signal != 0) {
    R.Status = NativeStatus::RunError;
    R.Detail = "binary killed by signal " + std::to_string(Run.Signal);
    Cleanup();
    return R;
  }
  R.ExitCode = Run.ExitCode;

  // Parse the IRLT_RESULT line.
  size_t Pos = Run.Output.find("IRLT_RESULT ");
  if (Pos == std::string::npos) {
    R.Status = NativeStatus::BadOutput;
    R.Detail = "no IRLT_RESULT line (exit " + std::to_string(Run.ExitCode) +
               "): " + excerpt(Run.Output);
    Cleanup();
    return R;
  }
  size_t End = Run.Output.find('\n', Pos);
  std::string Line = Run.Output.substr(
      Pos + strlen("IRLT_RESULT "),
      End == std::string::npos ? std::string::npos
                               : End - Pos - strlen("IRLT_RESULT "));
  ErrorOr<json::JsonValue> J = json::JsonValue::parse(Line);
  if (!J || !J->isObject()) {
    R.Status = NativeStatus::BadOutput;
    R.Detail = "unparseable IRLT_RESULT: " + excerpt(Line);
    Cleanup();
    return R;
  }
  R.Match = J->boolOr("match", false);
  R.ChecksumOriginal = hexField(*J, "checksum_original");
  R.ChecksumTransformed = hexField(*J, "checksum_transformed");
  R.OobOriginal = static_cast<uint64_t>(J->intOr("oob_original", 0));
  R.OobTransformed = static_cast<uint64_t>(J->intOr("oob_transformed", 0));
  R.NsOriginal = static_cast<uint64_t>(J->intOr("ns_original", 0));
  R.NsTransformed = static_cast<uint64_t>(J->intOr("ns_transformed", 0));
  R.Threads = J->intOr("threads", 1);
  R.Cells = J->intOr("cells", 0);

  if (Run.ExitCode == 0 && R.Match) {
    R.Status = NativeStatus::Ok;
    R.Detail = "match" + Note;
  } else if (Run.ExitCode == 7 || !R.Match) {
    R.Status = NativeStatus::Mismatch;
    R.Detail = "harness reported mismatch" + Note;
  } else {
    R.Status = NativeStatus::RunError;
    R.Detail = "unexpected exit " + std::to_string(Run.ExitCode) + Note;
  }
  Cleanup();
  return R;
}
