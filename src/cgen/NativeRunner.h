//===- cgen/NativeRunner.h - Compile-and-run execution of emitted C -------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a host C compiler over a program emitted by cgen::emitProgram
/// and parses the harness's IRLT_RESULT record back into a structured
/// result. Every failure mode is a status, never a crash: no compiler,
/// compile error, run timeout, run crash, unparseable output, and the
/// harness's own mismatch verdict all come back as NativeStatus values
/// with a diagnostic Detail (docs/CODEGEN.md).
///
/// The compiler is probed as `$IRLT_CC`, then `cc`, `gcc`, `clang` (the
/// first that answers `--version`); compilation uses `-O2 -fwrapv` so
/// native arithmetic wraps deterministically, and `-fopenmp` is dropped
/// automatically when the host compiler rejects it.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_CGEN_NATIVERUNNER_H
#define IRLT_CGEN_NATIVERUNNER_H

#include <cstdint>
#include <string>

namespace irlt {
namespace cgen {

/// \returns the first working host C compiler (see file comment), or ""
/// when none answers. Not cached; callers probe once and reuse.
std::string probeCompiler();

/// How a native run ended.
enum class NativeStatus {
  Ok,           ///< compiled, ran, harness reported a match
  Mismatch,     ///< compiled, ran, harness reported checksum/image mismatch
  NoCompiler,   ///< no usable host C compiler
  CompileError, ///< the compiler rejected the emitted program
  RunTimeout,   ///< the binary exceeded the run timeout and was killed
  RunError,     ///< the binary crashed or exited with an unexpected code
  BadOutput     ///< the binary ran but printed no parseable IRLT_RESULT
};

const char *nativeStatusName(NativeStatus S);

struct NativeRunOptions {
  /// Compiler executable; empty means probe (per call).
  std::string Compiler;
  /// Pass -fopenmp (retried without it if the compiler rejects it).
  bool OpenMP = true;
  uint64_t CompileTimeoutMs = 120000;
  uint64_t RunTimeoutMs = 60000;
  /// Scratch directory; empty means a fresh mkdtemp under TMPDIR.
  std::string WorkDir;
  /// Keep the .c/.bin files instead of deleting them (for reproducers).
  bool KeepFiles = false;
};

struct NativeResult {
  NativeStatus Status = NativeStatus::RunError;
  std::string Detail; ///< human-readable; compiler/runtime output excerpt
  int ExitCode = -1;  ///< harness exit code (0 match, 7 mismatch)
  bool Match = false;
  uint64_t ChecksumOriginal = 0;
  uint64_t ChecksumTransformed = 0;
  uint64_t OobOriginal = 0;
  uint64_t OobTransformed = 0;
  uint64_t NsOriginal = 0;
  uint64_t NsTransformed = 0;
  int64_t Threads = 0;
  int64_t Cells = 0;
  /// Where the program was written (empty unless KeepFiles).
  std::string SourcePath;
};

/// Writes \p Program to disk, compiles it, runs the binary under the
/// timeout, and parses the IRLT_RESULT line.
NativeResult runNative(const std::string &Program,
                       const NativeRunOptions &Options);

} // namespace cgen
} // namespace irlt

#endif // IRLT_CGEN_NATIVERUNNER_H
