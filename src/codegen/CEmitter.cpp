//===- codegen/CEmitter.cpp - Emit transformed nests as C ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"

#include "support/Casting.h"
#include "support/Printing.h"

#include <cassert>
#include <set>

using namespace irlt;

namespace {

// C precedence tiers used here: additive 10, multiplicative 20, atom 100.
std::string emitExpr(const ExprRef &E, int ParentPrec);

std::string emitBinary(const BinaryExpr *B, const char *Op, int Prec,
                       int ParentPrec, bool GuardRight) {
  std::string S = emitExpr(B->lhs(), Prec) + Op +
                  emitExpr(B->rhs(), GuardRight ? Prec + 1 : Prec);
  if (Prec < ParentPrec)
    return "(" + S + ")";
  return S;
}

std::string emitExpr(const ExprRef &E, int ParentPrec) {
  switch (E->kind()) {
  case Expr::Kind::IntConst: {
    int64_t V = cast<IntConstExpr>(E.get())->value();
    std::string S = std::to_string(V);
    if (V < 0 && ParentPrec > 0)
      return "(" + S + ")";
    return S;
  }
  case Expr::Kind::Var:
    return cast<VarExpr>(E.get())->name();
  case Expr::Kind::Add:
    return emitBinary(cast<BinaryExpr>(E.get()), " + ", 10, ParentPrec,
                      false);
  case Expr::Kind::Sub:
    return emitBinary(cast<BinaryExpr>(E.get()), " - ", 10, ParentPrec,
                      true);
  case Expr::Kind::Mul: {
    const auto *B = cast<BinaryExpr>(E.get());
    std::optional<int64_t> LC = B->lhs()->constValue();
    if (LC && *LC == -1) {
      std::string S = "-" + emitExpr(B->rhs(), 20);
      if (ParentPrec > 10)
        return "(" + S + ")";
      return S;
    }
    return emitBinary(B, "*", 20, ParentPrec, false);
  }
  case Expr::Kind::Div: {
    const auto *B = cast<BinaryExpr>(E.get());
    return "irlt_floordiv(" + emitExpr(B->lhs(), 0) + ", " +
           emitExpr(B->rhs(), 0) + ")";
  }
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    return "irlt_floormod(" + emitExpr(B->lhs(), 0) + ", " +
           emitExpr(B->rhs(), 0) + ")";
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    const auto *M = cast<MinMaxExpr>(E.get());
    const char *Fn = M->isMin() ? "irlt_min" : "irlt_max";
    // Fold the n-ary operator into nested binary helper calls.
    std::string S = emitExpr(M->operands().front(), 0);
    for (size_t I = 1; I < M->operands().size(); ++I)
      S = std::string(Fn) + "(" + S + ", " + emitExpr(M->operands()[I], 0) +
          ")";
    return S;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E.get());
    std::vector<std::string> Args;
    for (const ExprRef &A : C->args())
      Args.push_back(emitExpr(A, 0));
    return C->callee() + "(" + join(Args, ", ") + ")";
  }
  }
  assert(false && "unreachable expression kind");
  return std::string();
}

} // namespace

std::string irlt::emitCExpr(const ExprRef &E) { return emitExpr(E, 0); }

std::vector<std::string> irlt::freeParameters(const LoopNest &Nest) {
  std::set<std::string> All;
  auto addVarsOf = [&All](const ExprRef &E) { E->collectVars(All); };
  for (const Loop &L : Nest.Loops) {
    addVarsOf(L.Lower);
    addVarsOf(L.Upper);
    addVarsOf(L.Step);
  }
  for (const InitStmt &I : Nest.Inits)
    addVarsOf(I.Value);
  for (const AssignStmt &S : Nest.Body) {
    for (const ExprRef &Sub : S.LHS.Subscripts)
      addVarsOf(Sub);
    addVarsOf(S.RHS);
  }
  // Remove loop variables and init-defined variables.
  for (const Loop &L : Nest.Loops)
    All.erase(L.IndexVar);
  for (const InitStmt &I : Nest.Inits)
    All.erase(I.Var);
  return std::vector<std::string>(All.begin(), All.end());
}

std::string irlt::emitC(const LoopNest &Nest, const CEmitOptions &Options) {
  IndentedWriter W(2);

  if (Options.EmitHelpers) {
    W.line("#include <stdint.h>");
    W.blank();
    W.line("/* Flooring division/modulus (the framework's div and mod). */");
    W.line("static inline int64_t irlt_floordiv(int64_t a, int64_t b) {");
    W.indent();
    W.line("int64_t q = a / b, r = a % b;");
    W.line("return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;");
    W.outdent();
    W.line("}");
    W.line("static inline int64_t irlt_floormod(int64_t a, int64_t b) {");
    W.indent();
    W.line("return a - irlt_floordiv(a, b) * b;");
    W.outdent();
    W.line("}");
    W.line("static inline int64_t irlt_min(int64_t a, int64_t b) {");
    W.indent();
    W.line("return a < b ? a : b;");
    W.outdent();
    W.line("}");
    W.line("static inline int64_t irlt_max(int64_t a, int64_t b) {");
    W.indent();
    W.line("return a > b ? a : b;");
    W.outdent();
    W.line("}");
    W.blank();
  }

  // Function head: scalar parameters only; arrays/opaque calls are
  // macros supplied by the includer.
  std::vector<std::string> Params = freeParameters(Nest);
  std::vector<std::string> Sig;
  for (const std::string &P : Params)
    Sig.push_back("int64_t " + P);
  W.line(formatStr("void %s(%s) {", Options.FunctionName.c_str(),
                   Sig.empty() ? "void" : join(Sig, ", ").c_str()));
  W.indent();

  for (const Loop &L : Nest.Loops) {
    if (L.Kind == LoopKind::ParDo && Options.UseOpenMP)
      W.line("#pragma omp parallel for");
    std::string Var = L.IndexVar;
    std::optional<int64_t> StepC = L.Step->constValue();
    std::string Cond;
    if (StepC && *StepC > 0)
      Cond = Var + " <= " + emitCExpr(L.Upper);
    else if (StepC && *StepC < 0)
      Cond = Var + " >= " + emitCExpr(L.Upper);
    else
      // Unknown step sign: branch on it (ReversePermute keeps symbolic
      // strides).
      Cond = formatStr("(%s) > 0 ? %s <= %s : %s >= %s",
                       emitCExpr(L.Step).c_str(), Var.c_str(),
                       emitCExpr(L.Upper).c_str(), Var.c_str(),
                       emitCExpr(L.Upper).c_str());
    W.line(formatStr("for (int64_t %s = %s; %s; %s += %s) {", Var.c_str(),
                     emitCExpr(L.Lower).c_str(), Cond.c_str(), Var.c_str(),
                     emitCExpr(L.Step).c_str()));
    W.indent();
  }

  for (const InitStmt &I : Nest.Inits)
    W.line(formatStr("int64_t %s = %s;", I.Var.c_str(),
                     emitCExpr(I.Value).c_str()));
  for (const AssignStmt &S : Nest.Body) {
    std::vector<std::string> Subs;
    for (const ExprRef &Sub : S.LHS.Subscripts)
      Subs.push_back(emitCExpr(Sub));
    W.line(formatStr("%s(%s) = %s;", S.LHS.Array.c_str(),
                     join(Subs, ", ").c_str(), emitCExpr(S.RHS).c_str()));
  }

  for (size_t I = 0; I < Nest.Loops.size(); ++I) {
    W.outdent();
    W.line("}");
  }
  W.outdent();
  W.line("}");
  return W.str();
}
