//===- codegen/CEmitter.h - Emit transformed nests as C ------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a (possibly transformed) loop nest as a compilable C99
/// translation unit, so the framework's output is real code rather than
/// pretty-printing:
///
///  - flooring division/modulus helpers (C's `/` truncates; the paper's
///    div/mod floor), n-ary min/max helpers;
///  - every loop becomes a `for`; `pardo` loops get
///    `#pragma omp parallel for` (ignored by non-OpenMP compilers);
///  - initialization statements become local declarations at the top of
///    the body;
///  - arrays are accessed through function-like macros (`A(i, j)`) that
///    the caller binds to storage; scalar parameters become function
///    arguments.
///
/// The test suite compiles emitted units with the host compiler and
/// compares their results against the evaluator.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_CODEGEN_CEMITTER_H
#define IRLT_CODEGEN_CEMITTER_H

#include "ir/LoopNest.h"

#include <string>
#include <vector>

namespace irlt {

/// Options for C emission.
struct CEmitOptions {
  /// Name of the emitted function.
  std::string FunctionName = "kernel";
  /// Emit `#pragma omp parallel for` on pardo loops.
  bool UseOpenMP = true;
  /// Emit the flooring div/mod and min/max helper definitions (turn off
  /// when emitting several kernels into one file).
  bool EmitHelpers = true;
};

/// Renders one C expression (uses irlt_floordiv / irlt_floormod /
/// irlt_min / irlt_max helpers for the non-C-native operators).
std::string emitCExpr(const ExprRef &E);

/// Renders the whole nest as a C function. The function's parameters are
/// the nest's free scalar variables (symbolic parameters), in sorted
/// order; arrays and opaque functions are referenced as function-like
/// macros the includer must define.
std::string emitC(const LoopNest &Nest, const CEmitOptions &Options = {});

/// The free scalar parameters of a nest: variables that are neither loop
/// variables, init-defined, arrays, nor opaque calls. Sorted.
std::vector<std::string> freeParameters(const LoopNest &Nest);

} // namespace irlt

#endif // IRLT_CODEGEN_CEMITTER_H
