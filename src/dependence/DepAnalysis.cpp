//===- dependence/DepAnalysis.cpp - Array dependence analysis -------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "dependence/DepAnalysis.h"

#include "dependence/FMSolver.h"
#include "ir/LinExpr.h"
#include "support/MathUtils.h"

#include <cassert>
#include <map>

using namespace irlt;

//===----------------------------------------------------------------------===
// Stand-alone classic tests
//===----------------------------------------------------------------------===

bool deptest::zivEqual(int64_t CA, int64_t CB) { return CA == CB; }

bool deptest::gcdFeasible(const std::vector<int64_t> &Coefs, int64_t C0) {
  int64_t G = 0;
  for (int64_t C : Coefs)
    G = gcd(G, C);
  if (G == 0)
    return C0 == 0;
  return C0 % G == 0;
}

deptest::SIVResult deptest::strongSIV(int64_t A, int64_t CA, int64_t CB,
                                      std::optional<int64_t> Lo,
                                      std::optional<int64_t> Hi) {
  SIVResult R;
  assert(A != 0 && "strong SIV requires a non-zero coefficient");
  int64_t Delta = CB - CA; // a*i1 + CA == a*i2 + CB  =>  i1 - i2 = Delta/a
  if (Delta % A != 0)
    return R; // non-integral distance: independent
  int64_t D = Delta / A;
  // The distance must fit within the iteration range.
  if (Lo && Hi) {
    int64_t Span = *Hi - *Lo;
    if (Span < 0 || D > Span || D < -Span)
      return R;
  }
  R.Dependent = true;
  R.Distance = D;
  return R;
}

bool deptest::banerjeeFeasible(const std::vector<int64_t> &Coefs, int64_t C0,
                               const std::vector<std::optional<int64_t>> &Lo,
                               const std::vector<std::optional<int64_t>> &Hi) {
  assert(Coefs.size() == Lo.size() && Coefs.size() == Hi.size());
  // Compute [min, max] of sum Coefs[k]*v_k + C0; unbounded terms with a
  // non-zero coefficient make the corresponding side infinite.
  bool MinFinite = true, MaxFinite = true;
  int64_t Min = C0, Max = C0;
  for (size_t K = 0; K < Coefs.size(); ++K) {
    int64_t C = Coefs[K];
    if (C == 0)
      continue;
    const std::optional<int64_t> &L = C > 0 ? Lo[K] : Hi[K];
    const std::optional<int64_t> &H = C > 0 ? Hi[K] : Lo[K];
    if (L)
      Min = addChecked(Min, mulChecked(C, *L));
    else
      MinFinite = false;
    if (H)
      Max = addChecked(Max, mulChecked(C, *H));
    else
      MaxFinite = false;
  }
  if (MinFinite && Min > 0)
    return false;
  if (MaxFinite && Max < 0)
    return false;
  return true;
}

//===----------------------------------------------------------------------===
// The FM-driven analyzer
//===----------------------------------------------------------------------===

namespace {

/// One array reference occurrence in the body.
struct RefOcc {
  const irlt::ArrayRef *Ref;
  bool IsWrite;
  unsigned Index; ///< occurrence position (writes first, then reads)
};

/// Per-level direction states during hierarchical refinement.
enum class DirState { Eq, Gt, Lt };

/// Shared analysis context for one loop nest.
class Analyzer {
public:
  Analyzer(const LoopNest &Nest, const DepAnalysisOptions &Opts,
           std::vector<DepPairInfo> *Prov = nullptr)
      : Nest(Nest), Opts(Opts), Prov(Prov), N(Nest.numLoops()) {}

  DepSet run();

private:
  // Variable layout in FM systems:
  //   [0, N)        source iteration I (index values)
  //   [N, 2N)       target iteration J (index values)
  //   [2N, 2N+M)    invariant symbolic atoms (n, block sizes, ...)
  //   [2N+M, 3N+M)  difference variables d_k
  //   [3N+M, 4N+M)  source trip counters cI_k (strided loops only)
  //   [4N+M, 5N+M)  target trip counters cJ_k (strided loops only)
  //
  // d_k is measured in the units transformations act on (the normalized
  // "hat" space of Section 4): for a unit-step loop d_k = J_k - I_k, and
  // for a constant-step loop with an analyzable affine start bound
  // d_k = cJ_k - cI_k where x_k = l_k + s_k * c_k, c_k >= 0. Loops whose
  // step or start bound cannot be analyzed leave d_k unconstrained.
  unsigned varI(unsigned K) const { return K; }
  unsigned varJ(unsigned K) const { return N + K; }
  unsigned varD(unsigned K) const { return 2 * N + NumSyms + K; }
  unsigned varCI(unsigned K) const { return 3 * N + NumSyms + K; }
  unsigned varCJ(unsigned K) const { return 4 * N + NumSyms + K; }
  unsigned totalVars() const { return 5 * N + NumSyms; }

  /// Registers invariant atoms of \p L into the symbol table; returns
  /// false if \p L has an atom containing an index variable (nonlinear).
  bool registerAtoms(const LinExpr &L);

  /// Writes \p L's terms into a coefficient row. \p VarOf maps an index
  /// variable's loop position to an FM variable (source or target side).
  /// \returns false on nonlinear terms.
  bool emitLin(const LinExpr &L, bool TargetSide, std::vector<int64_t> &Coef,
               int64_t &Const) const;

  /// Adds the loop-bound constraints for one side (source or target).
  void addBoundConstraints(FMSystem &Sys, bool TargetSide) const;

  /// Analyzes one ordered reference pair; inserts resulting vectors and
  /// records provenance when enabled.
  void analyzePair(const RefOcc &A, const RefOcc &B, DepSet &Out);

  /// The pair analysis proper: fills \p Out with this pair's vectors and
  /// reports which test decided.
  DepDecision analyzePairImpl(const RefOcc &A, const RefOcc &B, DepSet &Out);

  /// Emits the fully-conservative vector family (0,..,0,+,*,..,*).
  void emitConservative(DepSet &Out) const;

  /// Hierarchical refinement over direction states.
  void refine(FMSystem &Sys, std::vector<DirState> &Prefix, bool SeenGt,
              DepSet &Out);

  const LoopNest &Nest;
  const DepAnalysisOptions &Opts;
  std::vector<DepPairInfo> *Prov;
  unsigned N;

  std::map<std::string, unsigned> SymIndex; // atom key -> sym slot
  std::vector<ExprRef> SymAtoms;
  unsigned NumSyms = 0;

  // Cached per-loop affine bounds (lower-max terms / upper-min terms);
  // empty when unanalyzable.
  struct LoopBounds {
    std::vector<LinExpr> Lowers;
    std::vector<LinExpr> Uppers;
  };
  std::vector<LoopBounds> Bounds;

  // Per-loop execution-order model. Unit loops use the index value
  // directly; strided loops (any constant step != 1, including -1) are
  // modelled through a trip counter so that d_k agrees with both the
  // execution order and the normalized space transformations act on.
  struct StrideInfo {
    enum class Kind { Unit, Strided, Opaque };
    Kind K = Kind::Opaque;
    int64_t Step = 1;          // valid unless Opaque
    LinExpr Start;             // single affine start bound (Strided only)
    std::vector<LinExpr> Ends; // end pieces: s>0: x <= E; s<0: x >= E
  };
  std::vector<StrideInfo> Strides;
};

bool Analyzer::registerAtoms(const LinExpr &L) {
  for (const auto &[Key, T] : L.terms()) {
    if (isa<VarExpr>(T.Atom.get())) {
      const auto *V = cast<VarExpr>(T.Atom.get());
      if (Nest.bindsVar(V->name()))
        continue; // index variable: handled positionally
      // Invariant scalar (e.g. the symbolic n): register as atom.
    } else {
      // Opaque atom: only usable if it is invariant in the nest.
      std::set<std::string> Vars;
      T.Atom->collectVars(Vars);
      for (const std::string &V : Vars)
        if (Nest.bindsVar(V))
          return false;
    }
    if (!SymIndex.count(Key)) {
      SymIndex.emplace(Key, NumSyms++);
      SymAtoms.push_back(T.Atom);
    }
  }
  return true;
}

bool Analyzer::emitLin(const LinExpr &L, bool TargetSide,
                       std::vector<int64_t> &Coef, int64_t &Const) const {
  Const = addChecked(Const, L.constant());
  for (const auto &[Key, T] : L.terms()) {
    if (const auto *V = dyn_cast<VarExpr>(T.Atom.get())) {
      int Pos = Nest.loopIndexOf(V->name());
      if (Pos >= 0) {
        unsigned Var = TargetSide ? varJ(static_cast<unsigned>(Pos))
                                  : varI(static_cast<unsigned>(Pos));
        Coef[Var] = addChecked(Coef[Var], T.Coef);
        continue;
      }
    }
    auto It = SymIndex.find(Key);
    if (It == SymIndex.end())
      return false; // unregistered (nonlinear) atom
    Coef[2 * N + It->second] = addChecked(Coef[2 * N + It->second], T.Coef);
  }
  return true;
}

void Analyzer::addBoundConstraints(FMSystem &Sys, bool TargetSide) const {
  for (unsigned K = 0; K < N; ++K) {
    unsigned V = TargetSide ? varJ(K) : varI(K);
    for (const LinExpr &LB : Bounds[K].Lowers) {
      // x_k >= LB  <=>  x_k - LB >= 0.
      std::vector<int64_t> Coef(totalVars(), 0);
      int64_t C = 0;
      if (!emitLin(LB, TargetSide, Coef, C))
        continue;
      for (int64_t &Cf : Coef)
        Cf = -Cf;
      Coef[V] = addChecked(Coef[V], 1);
      Sys.addGE(std::move(Coef), C);
    }
    for (const LinExpr &UB : Bounds[K].Uppers) {
      std::vector<int64_t> Coef(totalVars(), 0);
      int64_t C = 0;
      if (!emitLin(UB, TargetSide, Coef, C))
        continue;
      for (int64_t &Cf : Coef)
        Cf = -Cf;
      Coef[V] = addChecked(Coef[V], 1);
      Sys.addLE(std::move(Coef), C);
    }

    // Strided loops: tie the index value to its trip counter,
    //   x_k == start + s * c_k,  c_k >= 0,
    // and bound the value by the end pieces. Without these the index of
    // a strided loop (and its counter) would float free.
    const StrideInfo &SI = Strides[K];
    if (SI.K != StrideInfo::Kind::Strided)
      continue;
    unsigned CV = TargetSide ? varCJ(K) : varCI(K);
    {
      std::vector<int64_t> Coef(totalVars(), 0);
      int64_t C = 0;
      if (emitLin(SI.Start, TargetSide, Coef, C)) {
        for (int64_t &Cf : Coef)
          Cf = -Cf;
        Coef[V] = addChecked(Coef[V], 1);
        Coef[CV] = addChecked(Coef[CV], -SI.Step);
        Sys.addEQ(std::move(Coef), C); // x - s*c - start == 0
        std::vector<int64_t> CPos(totalVars(), 0);
        CPos[CV] = 1;
        Sys.addGE(std::move(CPos), 0); // c >= 0
      }
    }
    for (const LinExpr &E : SI.Ends) {
      std::vector<int64_t> Coef(totalVars(), 0);
      int64_t C = 0;
      if (!emitLin(E, TargetSide, Coef, C))
        continue;
      for (int64_t &Cf : Coef)
        Cf = -Cf;
      Coef[V] = addChecked(Coef[V], 1);
      if (SI.Step > 0)
        Sys.addLE(std::move(Coef), C); // x <= end piece
      else
        Sys.addGE(std::move(Coef), C); // x >= end piece
    }
  }
}

void Analyzer::emitConservative(DepSet &Out) const {
  for (unsigned K = 0; K < N; ++K) {
    std::vector<DepElem> Elems;
    Elems.reserve(N);
    for (unsigned J = 0; J < K; ++J)
      Elems.push_back(DepElem::zero());
    Elems.push_back(DepElem::pos());
    for (unsigned J = K + 1; J < N; ++J)
      Elems.push_back(DepElem::any());
    Out.insert(DepVector(std::move(Elems)));
  }
}

void Analyzer::refine(FMSystem &Sys, std::vector<DirState> &Prefix,
                      bool SeenGt, DepSet &Out) {
  unsigned Level = static_cast<unsigned>(Prefix.size());
  if (Level == N) {
    if (!SeenGt)
      return; // all-equal: no cross-iteration dependence
    if (!Sys.feasible())
      return;
    std::vector<DepElem> Elems;
    Elems.reserve(N);
    for (unsigned K = 0; K < N; ++K) {
      switch (Prefix[K]) {
      case DirState::Eq:
        Elems.push_back(DepElem::zero());
        break;
      case DirState::Gt:
      case DirState::Lt: {
        DepElem E =
            Prefix[K] == DirState::Gt ? DepElem::pos() : DepElem::neg();
        if (Opts.RefineDistances) {
          VarRange R = Sys.rangeOf(varD(K));
          if (R.Feasible && R.Lo && R.Hi && *R.Lo == *R.Hi &&
              R.Lo->isInteger())
            E = DepElem::distance(R.Lo->num());
        }
        Elems.push_back(E);
        break;
      }
      }
    }
    Out.insert(DepVector(std::move(Elems)));
    return;
  }

  auto tryState = [&](DirState S) {
    FMSystem Child = Sys;
    std::vector<int64_t> Coef(totalVars(), 0);
    Coef[varD(Level)] = 1;
    switch (S) {
    case DirState::Eq:
      Child.addEQ(Coef, 0);
      break;
    case DirState::Gt:
      Child.addGE(std::move(Coef), 1);
      break;
    case DirState::Lt:
      Child.addLE(std::move(Coef), -1);
      break;
    }
    if (!Child.feasible())
      return; // prune the whole subtree
    Prefix.push_back(S);
    refine(Child, Prefix, SeenGt || S == DirState::Gt, Out);
    Prefix.pop_back();
  };

  tryState(DirState::Eq);
  tryState(DirState::Gt);
  if (SeenGt)
    tryState(DirState::Lt); // lex-non-negative prefixes only
}

void Analyzer::analyzePair(const RefOcc &A, const RefOcc &B, DepSet &Out) {
  // Analyze into a local set so the pair's own contribution is visible
  // for provenance; DepSet insertion is canonical (sorted, deduplicated),
  // so merging per-pair sets yields the same set as direct insertion.
  DepSet Local;
  DepDecision Decided = analyzePairImpl(A, B, Local);
  if (Prov) {
    DepPairInfo I;
    I.Array = A.Ref->Array;
    I.SrcOcc = A.Index;
    I.DstOcc = B.Index;
    I.SrcIsWrite = A.IsWrite;
    I.DstIsWrite = B.IsWrite;
    I.Decided = Decided;
    I.NumVectors = static_cast<unsigned>(Local.size());
    I.Independent = Local.empty();
    bool AllDist = !Local.empty();
    for (const DepVector &V : Local.vectors())
      AllDist = AllDist && V.allDistances();
    I.Exact = AllDist;
    Prov->push_back(std::move(I));
  }
  Out.insertAll(Local.vectors());
}

DepDecision Analyzer::analyzePairImpl(const RefOcc &A, const RefOcc &B,
                                      DepSet &Out) {
  assert(A.Ref->Array == B.Ref->Array);
  if (A.Ref->Subscripts.size() != B.Ref->Subscripts.size()) {
    emitConservative(Out); // ill-typed access: be safe
    return DepDecision::IllTyped;
  }

  // Linearize all subscripts; bail to the conservative family when a
  // dimension is nonlinear in the index variables.
  struct Dim {
    LinExpr FA, FB;
    bool Analyzable;
  };
  std::vector<Dim> Dims;
  bool AnyAnalyzable = false;
  for (size_t D = 0; D < A.Ref->Subscripts.size(); ++D) {
    Dim Dm;
    Dm.FA = LinExpr::fromExpr(A.Ref->Subscripts[D]);
    Dm.FB = LinExpr::fromExpr(B.Ref->Subscripts[D]);
    Dm.Analyzable = registerAtoms(Dm.FA) && registerAtoms(Dm.FB);
    AnyAnalyzable |= Dm.Analyzable;
    Dims.push_back(std::move(Dm));
  }
  if (!AnyAnalyzable) {
    emitConservative(Out);
    return DepDecision::NonLinear;
  }

  FMSystem Sys(totalVars());

  // Subscript equations f_A(I) == f_B(J), with classic prefilters.
  for (const Dim &Dm : Dims) {
    if (!Dm.Analyzable)
      continue;
    std::vector<int64_t> Coef(totalVars(), 0);
    int64_t CA = 0, CB = 0;
    std::vector<int64_t> CoefB(totalVars(), 0);
    if (!emitLin(Dm.FA, /*TargetSide=*/false, Coef, CA) ||
        !emitLin(Dm.FB, /*TargetSide=*/true, CoefB, CB))
      continue;
    // Equation: f_A - f_B == 0  =>  Coef - CoefB row, rhs CB - CA.
    for (size_t I = 0; I < Coef.size(); ++I)
      Coef[I] = addChecked(Coef[I], -CoefB[I]);
    int64_t Rhs = addChecked(CB, -CA);

    if (Opts.UseFastTests) {
      bool AllZero = true;
      for (int64_t C : Coef)
        if (C != 0) {
          AllZero = false;
          break;
        }
      if (AllZero) {
        // ZIV: constant subscripts on both sides.
        if (!deptest::zivEqual(0, Rhs))
          return DepDecision::ZIV; // provably independent in this dimension
        continue;  // trivially satisfied; no constraint
      }
      // GCD filter over all integer variables in the equation.
      if (!deptest::gcdFeasible(Coef, Rhs))
        return DepDecision::GCD;
    }
    Sys.addEQ(Coef, Rhs);
  }

  // Loop-bound constraints for both sides, difference-variable defs.
  // Unit loops: d_k = J_k - I_k (index values). Strided loops: d_k =
  // cJ_k - cI_k (trip counters), which is both the execution-order
  // distance and the distance in the normalized space transformations
  // act on. Opaque loops leave d_k unconstrained (conservative).
  addBoundConstraints(Sys, /*TargetSide=*/false);
  addBoundConstraints(Sys, /*TargetSide=*/true);
  for (unsigned K = 0; K < N; ++K) {
    std::vector<int64_t> Coef(totalVars(), 0);
    Coef[varD(K)] = 1;
    switch (Strides[K].K) {
    case StrideInfo::Kind::Unit:
      Coef[varJ(K)] = -1;
      Coef[varI(K)] = 1;
      Sys.addEQ(Coef, 0); // d_k - J_k + I_k == 0
      break;
    case StrideInfo::Kind::Strided:
      Coef[varCJ(K)] = -1;
      Coef[varCI(K)] = 1;
      Sys.addEQ(Coef, 0); // d_k - cJ_k + cI_k == 0
      break;
    case StrideInfo::Kind::Opaque:
      break; // d_k free
    }
  }

  std::vector<DirState> Prefix;
  refine(Sys, Prefix, /*SeenGt=*/false, Out);
  return DepDecision::FM;
}

DepSet Analyzer::run() {
  // Pre-compute analyzable loop bounds and stride models.
  Bounds.resize(N);
  Strides.resize(N);
  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    auto gatherTerms = [&](const ExprRef &E, Expr::Kind Splittable,
                           std::vector<LinExpr> &Out) {
      // max-of lower bounds and min-of upper bounds (mirrored for
      // negative steps) decompose into conjunctions of simple affine
      // constraints.
      std::vector<ExprRef> Pieces;
      if (E->kind() == Splittable) {
        const auto *M = cast<MinMaxExpr>(E.get());
        Pieces.assign(M->operands().begin(), M->operands().end());
      } else {
        Pieces.push_back(E);
      }
      for (const ExprRef &P : Pieces) {
        LinExpr LE = LinExpr::fromExpr(P);
        if (registerAtoms(LE))
          Out.push_back(std::move(LE));
      }
    };
    std::optional<int64_t> StepC = L.Step->constValue();
    if (StepC && *StepC == 1) {
      // Unit step: index value == trip count up to the start offset;
      // d_k stays in index-value units.
      Strides[K].K = StrideInfo::Kind::Unit;
      Strides[K].Step = 1;
      gatherTerms(L.Lower, Expr::Kind::Max, Bounds[K].Lowers);
      gatherTerms(L.Upper, Expr::Kind::Min, Bounds[K].Uppers);
    } else if (StepC && *StepC != 0 && L.Lower->kind() != Expr::Kind::Max &&
               L.Lower->kind() != Expr::Kind::Min) {
      // Constant non-unit step with a single (non-composite) start
      // bound: model through a trip counter if the start is affine.
      LinExpr Start = LinExpr::fromExpr(L.Lower);
      if (registerAtoms(Start)) {
        StrideInfo &SI = Strides[K];
        SI.K = StrideInfo::Kind::Strided;
        SI.Step = *StepC;
        SI.Start = std::move(Start);
        gatherTerms(L.Upper, *StepC > 0 ? Expr::Kind::Min : Expr::Kind::Max,
                    SI.Ends);
      }
    }
    // Everything else (non-constant or zero step, composite/nonlinear
    // start): Opaque, no constraints, d_k unconstrained.
  }

  // Collect reference occurrences.
  std::vector<irlt::ArrayRef> Writes, Reads;
  Nest.collectWrites(Writes);
  Nest.collectReads(Reads);
  std::vector<RefOcc> Occs;
  Occs.reserve(Writes.size() + Reads.size());
  for (const irlt::ArrayRef &W : Writes)
    Occs.push_back(RefOcc{&W, true, static_cast<unsigned>(Occs.size())});
  for (const irlt::ArrayRef &R : Reads)
    Occs.push_back(RefOcc{&R, false, static_cast<unsigned>(Occs.size())});

  DepSet Out;
  for (const RefOcc &A : Occs)
    for (const RefOcc &B : Occs) {
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (A.Ref->Array != B.Ref->Array)
        continue;
      analyzePair(A, B, Out);
    }
  return Out;
}

} // namespace

DepSet irlt::analyzeDependences(const LoopNest &Nest,
                                const DepAnalysisOptions &Opts) {
  Analyzer A(Nest, Opts);
  return A.run();
}

DepSet irlt::analyzeDependences(const LoopNest &Nest,
                                const DepAnalysisOptions &Opts,
                                std::vector<DepPairInfo> &PairInfo) {
  Analyzer A(Nest, Opts, &PairInfo);
  return A.run();
}

const char *irlt::depDecisionName(DepDecision D) {
  switch (D) {
  case DepDecision::IllTyped:
    return "ill-typed";
  case DepDecision::NonLinear:
    return "nonlinear";
  case DepDecision::ZIV:
    return "ziv";
  case DepDecision::GCD:
    return "gcd";
  case DepDecision::FM:
    return "fm";
  }
  return "?";
}
