//===- dependence/DepAnalysis.h - Array dependence analysis ---------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes the initial dependence-vector set of a perfect loop nest from
/// its array accesses, using "standard data dependence analysis
/// techniques" as the paper prescribes (its citations [4, 6, 10, 12]):
/// ZIV and GCD filters, a strong-SIV exact test, Banerjee bounds, and -
/// as the general engine - hierarchical direction-vector refinement over
/// an exact rational Fourier-Motzkin system (an Omega-style backend).
///
/// Output vectors are canonical: exact distances wherever the FM
/// projection pins the difference to a single integer, direction values
/// otherwise; lexicographically negative and all-zero vectors are never
/// produced (Section 3.1: the original execution order satisfies the
/// dependence partial order).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPENDENCE_DEPANALYSIS_H
#define IRLT_DEPENDENCE_DEPANALYSIS_H

#include "dependence/DepVector.h"
#include "ir/LoopNest.h"

#include <optional>
#include <string>
#include <vector>

namespace irlt {

/// Options for the dependence analyzer.
struct DepAnalysisOptions {
  /// Refine direction entries to exact distances via FM projection.
  bool RefineDistances = true;
  /// Run the cheap ZIV/GCD/SIV/Banerjee filters before the FM engine.
  bool UseFastTests = true;
};

/// Which test decided one ordered reference pair (deps::DepOracle
/// provenance, docs/DEPENDENCE.md).
enum class DepDecision {
  IllTyped,   ///< subscript arity mismatch: conservative family emitted
  NonLinear,  ///< no analyzable dimension: conservative family emitted
  ZIV,        ///< constant-subscript disproof (independent)
  GCD,        ///< integer-infeasible subscript equation (independent)
  FM          ///< hierarchical Fourier-Motzkin refinement ran
};

/// Per-ordered-reference-pair provenance of a dependence analysis run.
struct DepPairInfo {
  std::string Array;        ///< the common array
  unsigned SrcOcc = 0;      ///< source occurrence index (writes, then reads)
  unsigned DstOcc = 0;      ///< target occurrence index
  bool SrcIsWrite = false;
  bool DstIsWrite = false;
  DepDecision Decided = DepDecision::FM;
  bool Independent = false; ///< the pair was proven dependence-free
  bool Exact = false;       ///< every emitted vector is a pure distance
  unsigned NumVectors = 0;  ///< vectors this pair contributed (pre-dedup)
};

/// Computes the dependence-vector set D of \p Nest (Definition 3.1).
DepSet analyzeDependences(const LoopNest &Nest,
                          const DepAnalysisOptions &Opts = {});

/// Same analysis, additionally recording per-pair provenance into
/// \p PairInfo (appended in pair-visit order). The returned set is
/// byte-identical to the overload above.
DepSet analyzeDependences(const LoopNest &Nest, const DepAnalysisOptions &Opts,
                          std::vector<DepPairInfo> &PairInfo);

/// Human-readable name of a DepDecision ("ziv", "gcd", "fm", ...).
const char *depDecisionName(DepDecision D);

/// The classic stand-alone tests, exposed for unit testing and reuse.
/// All of them reason about one subscript-pair equation
///   sum_k A[k]*I_k + CA  ==  sum_k B[k]*J_k + CB
/// between source iteration I and target iteration J.
namespace deptest {

/// ZIV: both subscripts constant. \returns false when provably no
/// dependence (constants differ), true when they are equal.
bool zivEqual(int64_t CA, int64_t CB);

/// GCD test on  sum Coefs[i]*v_i == C0  over free integers v: returns
/// false when no integer solution exists (gcd does not divide C0).
bool gcdFeasible(const std::vector<int64_t> &Coefs, int64_t C0);

/// Strong SIV: subscripts a*i + CA (write) and a*i + CB (read) in the same
/// loop variable. The dependence distance is (CA - CB)/a when integral;
/// Lo/Hi bound the loop's iteration range when known.
struct SIVResult {
  bool Dependent = false;
  std::optional<int64_t> Distance; // set when Dependent
};
SIVResult strongSIV(int64_t A, int64_t CA, int64_t CB,
                    std::optional<int64_t> Lo, std::optional<int64_t> Hi);

/// Banerjee-style extreme-value test:  is 0 in [min, max] of
///   sum_k Coefs[k]*v_k + C0  where v_k ranges over [Lo[k], Hi[k]]
/// (unbounded entries use nullopt)? \returns false when provably no
/// dependence.
bool banerjeeFeasible(const std::vector<int64_t> &Coefs, int64_t C0,
                      const std::vector<std::optional<int64_t>> &Lo,
                      const std::vector<std::optional<int64_t>> &Hi);

} // namespace deptest

} // namespace irlt

#endif // IRLT_DEPENDENCE_DEPANALYSIS_H
