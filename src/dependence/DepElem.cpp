//===- dependence/DepElem.cpp - Distance/direction dependence entries ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "dependence/DepElem.h"

#include "support/MathUtils.h"

#include <cassert>

using namespace irlt;

DepElem DepElem::distance(int64_t D) {
  DepElem E;
  E.IsDistance = true;
  E.Dist = D;
  E.Mask = D == 0 ? SignZero : (D > 0 ? SignPos : SignNeg);
  return E;
}

DepElem DepElem::direction(uint8_t Mask) {
  assert(Mask != 0 && (Mask & ~uint8_t(SignNeg | SignZero | SignPos)) == 0 &&
         "malformed direction mask");
  if (Mask == SignZero)
    return distance(0); // "=" normalizes to the zero distance.
  DepElem E;
  E.IsDistance = false;
  E.Dist = 0;
  E.Mask = Mask;
  return E;
}

int64_t DepElem::dist() const {
  assert(IsDistance && "dist() on a direction entry");
  return Dist;
}

bool DepElem::contains(int64_t V) const {
  if (IsDistance)
    return V == Dist;
  if (V < 0)
    return canBeNegative();
  if (V == 0)
    return canBeZero();
  return canBePositive();
}

bool DepElem::covers(const DepElem &O) const {
  if (IsDistance)
    return O.IsDistance && O.Dist == Dist;
  // A direction covers everything its sign set covers.
  return (O.Mask & ~Mask) == 0;
}

DepElem DepElem::reversed() const {
  if (IsDistance)
    return distance(-Dist);
  uint8_t M = Mask & SignZero;
  if (Mask & SignNeg)
    M |= SignPos;
  if (Mask & SignPos)
    M |= SignNeg;
  return direction(M);
}

DepElem DepElem::dirOnly() const {
  if (!IsDistance || Dist == 0)
    return *this;
  return Dist > 0 ? pos() : neg();
}

DepElem DepElem::parMapped() const {
  if (IsDistance && Dist == 0)
    return *this;
  uint8_t M = Mask;
  if (M & SignNeg)
    M |= SignPos;
  if (M & SignPos)
    M |= SignNeg;
  return direction(M);
}

DepElem DepElem::add(const DepElem &L, const DepElem &R) {
  if (L.IsDistance && R.IsDistance)
    return distance(addChecked(L.Dist, R.Dist));
  // Sign-interval arithmetic: which sum signs are achievable? Because
  // direction sign classes contain integers of unbounded magnitude, the
  // achievable set only depends on the sign classes:
  //   Pos + Pos -> Pos          Pos + Zero -> Pos
  //   Neg + Neg -> Neg          Neg + Zero -> Neg
  //   Zero + Zero -> Zero       Pos + Neg -> {Neg, Zero, Pos}
  // For a *distance* operand the magnitude is fixed but the direction
  // operand's magnitude is unbounded, so the same table applies (e.g.
  // -5 + '+' reaches all three signs).
  auto mixedDistanceDir = [](const DepElem &D, const DepElem &Dir) -> uint8_t {
    // Exact distance + direction: zero direction-values keep the
    // distance's sign; nonzero direction signs dominate as in the table,
    // except distance 0 which is absorbed.
    uint8_t Out = 0;
    for (uint8_t SB : {uint8_t(SignNeg), uint8_t(SignZero), uint8_t(SignPos)}) {
      if (!(Dir.Mask & SB))
        continue;
      if (SB == SignZero) {
        Out |= D.Mask; // d + 0 = d
      } else if (SB == SignPos) {
        if (D.Dist > 0)
          Out |= SignPos; // pos + pos
        else if (D.Dist == 0)
          Out |= SignPos;
        else
          Out |= SignNeg | SignZero | SignPos; // neg + unbounded pos
      } else { // SignNeg
        if (D.Dist < 0)
          Out |= SignNeg;
        else if (D.Dist == 0)
          Out |= SignNeg;
        else
          Out |= SignNeg | SignZero | SignPos;
      }
    }
    return Out;
  };

  if (L.IsDistance)
    return direction(mixedDistanceDir(L, R));
  if (R.IsDistance)
    return direction(mixedDistanceDir(R, L));

  uint8_t Out = 0;
  for (uint8_t A : {uint8_t(SignNeg), uint8_t(SignZero), uint8_t(SignPos)}) {
    if (!(L.Mask & A))
      continue;
    for (uint8_t B : {uint8_t(SignNeg), uint8_t(SignZero), uint8_t(SignPos)}) {
      if (!(R.Mask & B))
        continue;
      if (A == SignZero)
        Out |= B;
      else if (B == SignZero)
        Out |= A;
      else if (A == B)
        Out |= A;
      else
        Out |= SignNeg | SignZero | SignPos;
    }
  }
  return direction(Out);
}

DepElem DepElem::scaled(int64_t C) const {
  if (C == 0)
    return distance(0);
  if (IsDistance)
    return distance(mulChecked(Dist, C));
  return C > 0 ? *this : reversed();
}

std::vector<DepElem> DepElem::expandSummary() const {
  if (IsDistance)
    return {*this};
  std::vector<DepElem> Out;
  if (canBeNegative())
    Out.push_back(neg());
  if (canBeZero())
    Out.push_back(zero());
  if (canBePositive())
    Out.push_back(pos());
  return Out;
}

DepElem DepElem::joinedWith(const DepElem &O) const {
  if (IsDistance && O.IsDistance && Dist == O.Dist)
    return *this;
  return direction(Mask | O.Mask);
}

std::vector<int64_t> DepElem::valuesWithin(int64_t Radius) const {
  std::vector<int64_t> Out;
  if (IsDistance) {
    if (Dist >= -Radius && Dist <= Radius)
      Out.push_back(Dist);
    return Out;
  }
  for (int64_t V = -Radius; V <= Radius; ++V)
    if (contains(V))
      Out.push_back(V);
  return Out;
}

bool DepElem::operator<(const DepElem &O) const {
  if (IsDistance != O.IsDistance)
    return IsDistance; // distances order before directions
  if (IsDistance)
    return Dist < O.Dist;
  return Mask < O.Mask;
}

std::string DepElem::str() const {
  if (IsDistance)
    return std::to_string(Dist);
  switch (Mask) {
  case SignPos:
    return "+";
  case SignNeg:
    return "-";
  case SignZero | SignPos:
    return "0+";
  case SignNeg | SignZero:
    return "0-";
  case SignNeg | SignPos:
    return "+-";
  case SignNeg | SignZero | SignPos:
    return "*";
  }
  return "?";
}
