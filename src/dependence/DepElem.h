//===- dependence/DepElem.h - Distance/direction dependence entries ------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One entry of a dependence vector (Definition 3.1). An entry is either
///
///   - a *distance*: an exact integer d, with S(d) = {d}; or
///   - a *direction*: one of the paper's six values
///       +  (positive), - (negative), 0+ (non-negative), 0- (non-positive),
///       +- (non-zero), * (any),
///     with S(dir) = all integers whose sign is contained in the value.
///
/// Directions are represented as a non-empty subset of {Neg, Zero, Pos}.
/// The paper's "=" direction is identical to the zero distance and is
/// normalized to it. The full direction lattice (including singletons
/// {Neg} and {Pos}) is closed under the operations the mapping rules of
/// Table 2 need: reversal, dir(), parallel symmetrization (parmap),
/// addition and integer scaling (for the direction-extended matrix-vector
/// product of the Unimodular rule), and the pairwise mergedirs of the
/// Coalesce rule.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPENDENCE_DEPELEM_H
#define IRLT_DEPENDENCE_DEPELEM_H

#include <cstdint>
#include <string>
#include <vector>

namespace irlt {

/// One dependence-vector entry: exact distance or direction sign-set.
class DepElem {
public:
  /// Sign-set bits for direction values.
  enum SignBit : uint8_t { SignNeg = 1, SignZero = 2, SignPos = 4 };

  /// Default: the zero distance.
  DepElem() : IsDistance(true), Dist(0), Mask(SignZero) {}

  /// Exact distance d (S = {d}).
  static DepElem distance(int64_t D);

  /// Direction from a non-empty sign mask. A pure-zero mask normalizes to
  /// the zero distance (the paper's "=" direction).
  static DepElem direction(uint8_t Mask);

  static DepElem pos() { return direction(SignPos); }          ///< +
  static DepElem neg() { return direction(SignNeg); }          ///< -
  static DepElem zeroPos() { return direction(SignZero | SignPos); } ///< 0+
  static DepElem zeroNeg() { return direction(SignNeg | SignZero); } ///< 0-
  static DepElem nonZero() { return direction(SignNeg | SignPos); }  ///< +-
  static DepElem any() {
    return direction(SignNeg | SignZero | SignPos); ///< *
  }
  static DepElem zero() { return distance(0); }

  bool isDistance() const { return IsDistance; }
  bool isDirection() const { return !IsDistance; }

  /// The exact distance; only valid for distance entries.
  int64_t dist() const;

  /// The sign set S(d) can reach: for a distance this is the singleton
  /// sign of the value.
  uint8_t signMask() const { return Mask; }

  bool canBeNegative() const { return (Mask & SignNeg) != 0; }
  bool canBeZero() const { return (Mask & SignZero) != 0; }
  bool canBePositive() const { return (Mask & SignPos) != 0; }

  /// True if S(this) contains the integer \p V.
  bool contains(int64_t V) const;

  /// True if S(this) is a superset of S(\p O).
  bool covers(const DepElem &O) const;

  /// Entry for the reversed loop: distance d -> -d; direction: Neg and Pos
  /// bits swap.
  DepElem reversed() const;

  /// The paper's dir() function (Table 2, Block rule): the entry itself if
  /// it is a direction value or zero; otherwise the sign direction of the
  /// distance.
  DepElem dirOnly() const;

  /// The parallelize map: iterations of a parallel loop are unordered, so
  /// every non-zero value it can take may be observed with either sign.
  /// Zero stays zero; otherwise the sign set is symmetrized. (This is what
  /// makes Parallelize "just another reordering transformation": the
  /// symmetric entry turns into a lexicographically negative witness
  /// exactly when the parallel loop would carry the dependence.)
  DepElem parMapped() const;

  /// Sum entry: exact when both are distances, sign-interval arithmetic
  /// otherwise. Always a superset of {a + b | a in S(L), b in S(R)}.
  static DepElem add(const DepElem &L, const DepElem &R);

  /// Scaled entry c*d: exact for distances; directions flip on negative c.
  DepElem scaled(int64_t C) const;

  /// Expands a summary direction (0+, 0-, +-, *) into the equivalent set
  /// of non-summary entries {-, 0, +} per the recommendation at the end of
  /// Section 3.1. Non-summary entries expand to themselves.
  std::vector<DepElem> expandSummary() const;

  /// The least entry covering both (equal distances stay exact; anything
  /// else joins as a direction over the union of the sign sets).
  DepElem joinedWith(const DepElem &O) const;

  /// All values of S(this) within [-Radius, Radius]; for tests/ground truth.
  std::vector<int64_t> valuesWithin(int64_t Radius) const;

  bool operator==(const DepElem &O) const {
    if (IsDistance != O.IsDistance)
      return false;
    return IsDistance ? Dist == O.Dist : Mask == O.Mask;
  }
  bool operator!=(const DepElem &O) const { return !(*this == O); }

  /// Total order for canonicalizing dependence sets.
  bool operator<(const DepElem &O) const;

  /// Paper-style rendering: "3", "-1", "+", "-", "0+", "0-", "+-", "*".
  std::string str() const;

private:
  bool IsDistance;
  int64_t Dist; // valid when IsDistance
  uint8_t Mask; // always valid: singleton sign for distances
};

} // namespace irlt

#endif // IRLT_DEPENDENCE_DEPELEM_H
