//===- dependence/DepVector.cpp - Dependence vectors and sets ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "dependence/DepVector.h"

#include "support/Printing.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace irlt;

DepVector DepVector::distances(const std::vector<int64_t> &Ds) {
  std::vector<DepElem> Elems;
  Elems.reserve(Ds.size());
  for (int64_t D : Ds)
    Elems.push_back(DepElem::distance(D));
  return DepVector(std::move(Elems));
}

bool DepVector::canBeLexNegative() const {
  // A tuple is lexicographically negative iff its first non-zero element
  // is negative. Entries choose values independently (Tuples is a
  // Cartesian product), so scan: position k can host the first negative
  // element iff entry k can be negative and all earlier entries can be 0.
  for (const DepElem &E : Elems) {
    if (E.canBeNegative())
      return true;
    if (!E.canBeZero())
      return false; // some earlier entry is forced non-zero, non-negative
  }
  return false;
}

bool DepVector::canBeLexPositive() const {
  for (const DepElem &E : Elems) {
    if (E.canBePositive())
      return true;
    if (!E.canBeZero())
      return false;
  }
  return false;
}

bool DepVector::isAllZero() const {
  for (const DepElem &E : Elems)
    if (!(E.isDistance() && E.dist() == 0))
      return false;
  return true;
}

bool DepVector::allDistances() const {
  for (const DepElem &E : Elems)
    if (!E.isDistance())
      return false;
  return true;
}

bool DepVector::containsTuple(const std::vector<int64_t> &T) const {
  assert(T.size() == Elems.size() && "tuple arity mismatch");
  for (size_t I = 0; I < T.size(); ++I)
    if (!Elems[I].contains(T[I]))
      return false;
  return true;
}

bool DepVector::covers(const DepVector &O) const {
  if (size() != O.size())
    return false;
  for (size_t I = 0; I < Elems.size(); ++I)
    if (!Elems[I].covers(O.Elems[I]))
      return false;
  return true;
}

std::vector<DepVector> DepVector::expandSummaries() const {
  std::vector<DepVector> Out;
  Out.emplace_back(std::vector<DepElem>{});
  for (const DepElem &E : Elems) {
    std::vector<DepElem> Choices = E.expandSummary();
    std::vector<DepVector> Next;
    Next.reserve(Out.size() * Choices.size());
    for (const DepVector &Prefix : Out)
      for (const DepElem &C : Choices) {
        std::vector<DepElem> Elems2 = Prefix.elems();
        Elems2.push_back(C);
        Next.emplace_back(std::move(Elems2));
      }
    Out = std::move(Next);
  }
  return Out;
}

bool DepVector::operator<(const DepVector &O) const {
  if (Elems.size() != O.Elems.size())
    return Elems.size() < O.Elems.size();
  for (size_t I = 0; I < Elems.size(); ++I) {
    if (Elems[I] < O.Elems[I])
      return true;
    if (O.Elems[I] < Elems[I])
      return false;
  }
  return false;
}

std::string DepVector::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Elems.size());
  for (const DepElem &E : Elems)
    Parts.push_back(E.str());
  return "(" + join(Parts, ", ") + ")";
}

void DepSet::insert(DepVector V) {
  auto It = std::lower_bound(Vectors.begin(), Vectors.end(), V);
  if (It != Vectors.end() && *It == V)
    return;
  Vectors.insert(It, std::move(V));
}

void DepSet::insertAll(std::vector<DepVector> Vs) {
  for (DepVector &V : Vs)
    insert(std::move(V));
}

bool DepSet::allLexNonNegative() const {
  for (const DepVector &V : Vectors)
    if (V.canBeLexNegative())
      return false;
  return true;
}

DepSet DepSet::expandedSummaries() const {
  DepSet Out;
  for (const DepVector &V : Vectors)
    Out.insertAll(V.expandSummaries());
  return Out;
}

DepSet DepSet::minimized() const {
  DepSet Out;
  for (size_t I = 0; I < Vectors.size(); ++I) {
    bool Covered = false;
    for (size_t J = 0; J < Vectors.size(); ++J) {
      if (I == J)
        continue;
      if (Vectors[J].covers(Vectors[I]) &&
          !(Vectors[I].covers(Vectors[J]) && I < J)) {
        Covered = true;
        break;
      }
    }
    if (!Covered)
      Out.insert(Vectors[I]);
  }
  return Out;
}

DepSet DepSet::summarized(size_t MaxVectors) const {
  if (Vectors.size() <= MaxVectors)
    return *this;
  // Group by the position of the first possibly-non-zero entry (n = the
  // all-zero-capable group), then pointwise-join within groups.
  std::map<unsigned, DepVector> Groups;
  for (const DepVector &V : Vectors) {
    unsigned Level = V.size();
    for (unsigned K = 0; K < V.size(); ++K) {
      if (!(V[K].isDistance() && V[K].dist() == 0)) {
        Level = K;
        break;
      }
    }
    auto It = Groups.find(Level);
    if (It == Groups.end()) {
      Groups.emplace(Level, V);
      continue;
    }
    std::vector<DepElem> Joined;
    Joined.reserve(V.size());
    for (unsigned K = 0; K < V.size(); ++K)
      Joined.push_back(It->second[K].joinedWith(V[K]));
    It->second = DepVector(std::move(Joined));
  }
  DepSet Out;
  for (auto &[Level, V] : Groups)
    Out.insert(std::move(V));
  return Out;
}

std::string DepSet::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Vectors.size());
  for (const DepVector &V : Vectors)
    Parts.push_back(V.str());
  return "{" + join(Parts, ", ") + "}";
}
