//===- dependence/DepVector.h - Dependence vectors and sets --------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence vectors (Definition 3.1) and dependence-vector sets, with
/// the Tuples() semantics of Section 3.1 and the lexicographic tests the
/// uniform legality test of Section 3.2 is built on.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPENDENCE_DEPVECTOR_H
#define IRLT_DEPENDENCE_DEPVECTOR_H

#include "dependence/DepElem.h"

#include <string>
#include <vector>

namespace irlt {

/// A dependence vector: one DepElem per loop, outermost first.
/// Tuples(d) = S(d_1) x ... x S(d_n).
class DepVector {
public:
  DepVector() = default;
  explicit DepVector(std::vector<DepElem> Elems) : Elems(std::move(Elems)) {}

  /// Builds an exact distance vector.
  static DepVector distances(const std::vector<int64_t> &Ds);

  unsigned size() const { return static_cast<unsigned>(Elems.size()); }
  const DepElem &operator[](unsigned I) const { return Elems[I]; }
  DepElem &operator[](unsigned I) { return Elems[I]; }
  const std::vector<DepElem> &elems() const { return Elems; }

  /// True if Tuples(this) contains a lexicographically negative tuple
  /// (Definition 3.2): there is a position k whose entry can be negative
  /// while all earlier entries can be zero. This is the core of the
  /// uniform dependence legality test.
  bool canBeLexNegative() const;

  /// True if Tuples(this) contains a lexicographically positive tuple.
  bool canBeLexPositive() const;

  /// True if every entry is the exact zero distance.
  bool isAllZero() const;

  /// True if every entry is an exact distance.
  bool allDistances() const;

  /// True if Tuples(this) contains the concrete tuple \p T.
  bool containsTuple(const std::vector<int64_t> &T) const;

  /// True if Tuples(this) is a superset of Tuples(O) (entrywise cover).
  bool covers(const DepVector &O) const;

  /// Expands summary directions into all combinations of {-, 0, +}
  /// entries (Section 3.1 recommends this for best precision).
  std::vector<DepVector> expandSummaries() const;

  bool operator==(const DepVector &O) const { return Elems == O.Elems; }
  bool operator<(const DepVector &O) const;

  /// Paper-style rendering, e.g. "(1, -1)" or "(0, +)".
  std::string str() const;

private:
  std::vector<DepElem> Elems;
};

/// A set of dependence vectors. Tuples(D) is the union over members.
/// Kept deduplicated (exact equality) and sorted for deterministic output.
class DepSet {
public:
  DepSet() = default;
  explicit DepSet(std::vector<DepVector> Vs) { insertAll(std::move(Vs)); }

  void insert(DepVector V);
  void insertAll(std::vector<DepVector> Vs);

  bool empty() const { return Vectors.empty(); }
  size_t size() const { return Vectors.size(); }
  const std::vector<DepVector> &vectors() const { return Vectors; }

  /// The dependence part of IsLegal (Section 3.2): true iff no member can
  /// produce a lexicographically negative tuple.
  bool allLexNonNegative() const;

  /// Expands every summary direction in every member.
  DepSet expandedSummaries() const;

  /// Drops members whose tuple set is covered by another member.
  DepSet minimized() const;

  /// Widens the set to at most \p MaxVectors members by pointwise-joining
  /// vectors that share the position of their first possibly-non-zero
  /// entry (which preserves the lexicographic level structure the
  /// legality test cares about). Always a tuple-superset of the input;
  /// useful to curb Block/Interleave fan-out growth in long pipelines.
  DepSet summarized(size_t MaxVectors) const;

  bool operator==(const DepSet &O) const { return Vectors == O.Vectors; }

  /// "{(1, -1), (0, +)}".
  std::string str() const;

private:
  std::vector<DepVector> Vectors;
};

} // namespace irlt

#endif // IRLT_DEPENDENCE_DEPVECTOR_H
