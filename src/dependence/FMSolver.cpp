//===- dependence/FMSolver.cpp - Rational Fourier-Motzkin elimination ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "dependence/FMSolver.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>

using namespace irlt;

void FMSystem::addLE(std::vector<int64_t> Coef, int64_t Rhs) {
  assert(Coef.size() == NumVars && "coefficient arity mismatch");
  Row R{std::move(Coef), Rhs};
  bool Contradiction = false;
  if (normalizeRow(R, Contradiction, IntegerVars))
    Rows.push_back(std::move(R));
  if (Contradiction)
    HardInfeasible = true;
}

void FMSystem::addGE(std::vector<int64_t> Coef, int64_t Rhs) {
  for (int64_t &C : Coef)
    C = negChecked(C);
  addLE(std::move(Coef), negChecked(Rhs));
}

void FMSystem::addEQ(const std::vector<int64_t> &Coef, int64_t Rhs) {
  addLE(Coef, Rhs);
  addGE(Coef, Rhs);
}

void FMSystem::fixVar(unsigned Var, int64_t Value) {
  std::vector<int64_t> Coef(NumVars, 0);
  Coef[Var] = 1;
  addEQ(Coef, Value);
}

bool FMSystem::normalizeRow(Row &R, bool &Contradiction, bool IntegerVars) {
  int64_t G = 0;
  for (int64_t C : R.Coef)
    G = gcd(G, C);
  if (G == 0) {
    // Constant row: 0 <= Rhs.
    if (R.Rhs < 0)
      Contradiction = true;
    return false; // never keep constant rows
  }
  if (G > 1) {
    for (int64_t &C : R.Coef)
      C /= G;
    if (IntegerVars) {
      // Integral variables: sum (Coef/g)*x is an integer, so the bound
      // floors exactly. This keeps every integer solution and cuts the
      // purely-rational slack (an equality whose rhs g does not divide
      // becomes a contradictory <=/>= pair, i.e. the GCD test).
      R.Rhs = floorDiv(R.Rhs, G);
    } else if (R.Rhs % G == 0) {
      // Rational variables: divide the rhs only when it stays exact
      // (flooring would cut rational solutions).
      R.Rhs /= G;
    } else {
      // Re-scale coefficients back; keep the row unreduced.
      for (int64_t &C : R.Coef)
        C *= G;
    }
  }
  return true;
}

FMSystem::ElimResult FMSystem::eliminate(std::vector<Row> &Rows, unsigned Var,
                                         bool IntegerVars) {
  // Bail out before the pairing step can square the row count into
  // pathological territory; callers treat Overflow as "unknown".
  constexpr size_t RowCap = 2000;
  std::vector<Row> Lower, Upper, Rest;
  for (Row &R : Rows) {
    if (R.Coef[Var] < 0)
      Lower.push_back(std::move(R));
    else if (R.Coef[Var] > 0)
      Upper.push_back(std::move(R));
    else
      Rest.push_back(std::move(R));
  }
  if (Rest.size() + Lower.size() * Upper.size() > RowCap)
    return ElimResult::Overflow;
  Rows = std::move(Rest);
  for (const Row &L : Lower) {
    for (const Row &U : Upper) {
      // L: cL*v + a.x <= rL (cL < 0);  U: cU*v + b.x <= rU (cU > 0).
      // cU*L + (-cL)*U eliminates v.
      int64_t FL = U.Coef[Var];            // > 0
      int64_t FU = negChecked(L.Coef[Var]); // > 0
      Row N;
      N.Coef.resize(L.Coef.size());
      for (size_t I = 0; I < L.Coef.size(); ++I)
        N.Coef[I] =
            addChecked(mulChecked(FL, L.Coef[I]), mulChecked(FU, U.Coef[I]));
      N.Rhs = addChecked(mulChecked(FL, L.Rhs), mulChecked(FU, U.Rhs));
      if (N.Coef[Var] != 0) {
        // Identically zero in exact arithmetic; a residue means the
        // checked ops saturated under an OverflowGuard. Record and treat
        // the elimination as overflowed so the caller rejects cleanly.
        bool Guarded = OverflowGuard::record();
        assert(Guarded && "variable survived elimination");
        (void)Guarded;
        return ElimResult::Overflow;
      }
      bool Contradiction = false;
      if (normalizeRow(N, Contradiction, IntegerVars))
        Rows.push_back(std::move(N));
      if (Contradiction)
        return ElimResult::Contradiction;
    }
  }
  // Deduplicate to curb FM blowup.
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    if (A.Coef != B.Coef)
      return A.Coef < B.Coef;
    return A.Rhs < B.Rhs;
  });
  Rows.erase(std::unique(Rows.begin(), Rows.end(),
                         [](const Row &A, const Row &B) {
                           return A.Coef == B.Coef && A.Rhs == B.Rhs;
                         }),
             Rows.end());
  return ElimResult::Ok;
}

bool FMSystem::feasible() const {
  if (HardInfeasible)
    return false;
  std::vector<Row> Work = Rows;
  for (unsigned V = 0; V < NumVars; ++V) {
    switch (eliminate(Work, V, IntegerVars)) {
    case ElimResult::Contradiction:
      return false;
    case ElimResult::Overflow:
      return true; // unknown: conservative for every caller
    case ElimResult::Ok:
      break;
    }
  }
  return true; // only tautological constant rows remained
}

VarRange FMSystem::rangeOf(unsigned Var) const {
  VarRange Out;
  if (HardInfeasible)
    return Out;
  std::vector<Row> Work = Rows;
  for (unsigned V = 0; V < NumVars; ++V) {
    if (V == Var)
      continue;
    switch (eliminate(Work, V, IntegerVars)) {
    case ElimResult::Contradiction:
      return Out;
    case ElimResult::Overflow:
      Out.Feasible = true; // unknown: report an unbounded range
      return Out;
    case ElimResult::Ok:
      break;
    }
  }
  Out.Feasible = true;
  for (const Row &R : Work) {
    int64_t C = R.Coef[Var];
    assert(C != 0 && "constant rows are never stored");
    Rational Bound(R.Rhs, C);
    if (C > 0) { // v <= Rhs/C
      if (!Out.Hi || Bound < *Out.Hi)
        Out.Hi = Bound;
    } else { // v >= Rhs/C (division by negative flips)
      if (!Out.Lo || Bound > *Out.Lo)
        Out.Lo = Bound;
    }
  }
  if (Out.Lo && Out.Hi && *Out.Hi < *Out.Lo)
    Out.Feasible = false;
  return Out;
}
