//===- dependence/FMSolver.h - Rational Fourier-Motzkin elimination ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exact Fourier-Motzkin solver over rational variables. The
/// dependence analyzer uses it as the "fast and practical integer
/// programming" backend the paper cites (Pugh's Omega test [12]): the
/// rational relaxation is a conservative feasibility test, sharpened by
/// per-equation GCD filters in the analyzer. It also computes variable
/// ranges, which the analyzer uses to refine direction entries into exact
/// distances.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPENDENCE_FMSOLVER_H
#define IRLT_DEPENDENCE_FMSOLVER_H

#include "support/Rational.h"

#include <optional>
#include <vector>

namespace irlt {

/// Result of projecting a system onto one variable.
struct VarRange {
  bool Feasible = false;
  std::optional<Rational> Lo; ///< empty = unbounded below
  std::optional<Rational> Hi; ///< empty = unbounded above
};

/// A conjunction of linear constraints  sum_i Coef[i]*x_i <= Rhs  (and
/// equalities) over \p NumVars rational variables. Coefficients are kept
/// as integers (every client has integer coefficients); right-hand sides
/// too.
///
/// With \p IntegerVars the variables are declared integral and row
/// normalization tightens: after dividing a row by the gcd g of its
/// coefficients, the right-hand side becomes floor(Rhs/g) - exact over
/// integer points, strictly tighter than the rational relaxation when g
/// does not divide Rhs. In particular an integrally unsatisfiable
/// equality (g does not divide its rhs) normalizes to a contradictory
/// inequality pair, so the classic GCD test is subsumed structurally.
/// The elimination itself remains Fourier-Motzkin, so feasibility is
/// still a (tighter) relaxation of integer feasibility.
class FMSystem {
public:
  explicit FMSystem(unsigned NumVars, bool IntegerVars = false)
      : NumVars(NumVars), IntegerVars(IntegerVars) {}

  unsigned numVars() const { return NumVars; }

  /// Adds sum Coef[i]*x_i <= Rhs.
  void addLE(std::vector<int64_t> Coef, int64_t Rhs);

  /// Adds sum Coef[i]*x_i >= Rhs.
  void addGE(std::vector<int64_t> Coef, int64_t Rhs);

  /// Adds sum Coef[i]*x_i == Rhs (as a pair of inequalities).
  void addEQ(const std::vector<int64_t> &Coef, int64_t Rhs);

  /// Fixes variable \p Var to \p Value.
  void fixVar(unsigned Var, int64_t Value);

  /// True if the rational relaxation has a solution.
  bool feasible() const;

  /// Projects onto variable \p Var: eliminates all others and reports the
  /// variable's feasible range (rational). Infeasible systems report
  /// Feasible = false.
  VarRange rangeOf(unsigned Var) const;

  size_t numConstraints() const { return Rows.size(); }

private:
  struct Row {
    std::vector<int64_t> Coef; // length NumVars
    int64_t Rhs;
  };

  /// Divides by the gcd of all coefficients and the rhs-compatible factor
  /// (flooring the rhs instead under \p IntegerVars), then returns false
  /// if the row is a tautology (all-zero, 0 <= Rhs with Rhs >= 0) and
  /// flags contradictions.
  static bool normalizeRow(Row &R, bool &Contradiction, bool IntegerVars);

  enum class ElimResult { Ok, Contradiction, Overflow };

  /// Eliminates variable \p Var from \p Rows (classic FM pairing).
  /// Overflow reports that the quadratic pairing exceeded the row cap -
  /// callers must fall back conservatively (assume feasible/unbounded).
  static ElimResult eliminate(std::vector<Row> &Rows, unsigned Var,
                              bool IntegerVars);

  std::vector<Row> Rows; // all rows mean  sum Coef*x <= Rhs
  unsigned NumVars;
  bool IntegerVars;
  bool HardInfeasible = false; // a contradiction was added directly
};

} // namespace irlt

#endif // IRLT_DEPENDENCE_FMSOLVER_H
