//===- deps/CrossCheck.cpp - Differential oracle comparison --------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "deps/CrossCheck.h"

using namespace irlt;
using namespace irlt::deps;

bool deps::coveredBy(const DepVector &V, const DepSet &Set) {
  for (const DepVector &S : Set.vectors())
    if (S.covers(V))
      return true;
  // A summary vector may be covered piecewise even when no single member
  // covers it whole (e.g. (0+, x) against {(0, x), (+, x)}).
  std::vector<DepVector> Pieces = V.expandSummaries();
  if (Pieces.size() <= 1)
    return false;
  for (const DepVector &P : Pieces) {
    bool Hit = false;
    for (const DepVector &S : Set.vectors())
      if (S.covers(P)) {
        Hit = true;
        break;
      }
    if (!Hit)
      return false;
  }
  return true;
}

CrossCheckResult deps::crossCheckDeps(const DepResult &Fast,
                                      const DepResult &Exact) {
  CrossCheckResult R;
  if (Fast.Overflowed || Exact.Overflowed) {
    R.Stat = CrossCheckResult::Status::Skipped;
    return R;
  }
  for (const DepVector &E : Exact.Deps.vectors())
    if (!coveredBy(E, Fast.Deps))
      R.Uncovered.push_back(E);
  for (const DepVector &F : Fast.Deps.vectors())
    if (!coveredBy(F, Exact.Deps))
      R.Extra.push_back(F);
  if (!R.Uncovered.empty())
    R.Stat = CrossCheckResult::Status::Soundness;
  else if (!R.Extra.empty())
    R.Stat = CrossCheckResult::Status::PrecisionGap;
  return R;
}

std::string CrossCheckResult::str() const {
  switch (Stat) {
  case Status::Skipped:
    return "skipped: oracle arithmetic overflowed";
  case Status::Agree:
    return "agree";
  case Status::Soundness: {
    std::string S = "soundness: exact vectors uncovered by the pipeline:";
    for (const DepVector &V : Uncovered)
      S += " " + V.str();
    return S;
  }
  case Status::PrecisionGap: {
    std::string S = "precision: pipeline vectors beyond the exact set:";
    for (const DepVector &V : Extra)
      S += " " + V.str();
    return S;
  }
  }
  return "?";
}
