//===- deps/CrossCheck.h - Differential oracle comparison ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares a fast-pipeline dependence result against the exact-FM
/// backend's on the same nest (docs/DEPENDENCE.md):
///
///   - a vector the exact oracle reports that no pipeline vector covers
///     is a SOUNDNESS divergence: the production analyzer under-reports
///     and every downstream legality verdict is suspect;
///   - a pipeline vector the exact set does not cover is a PRECISION gap:
///     the production analyzer is conservative there (extra dependences
///     can only forbid legal transformations, never admit illegal ones).
///
/// Runs where either oracle saturated its arithmetic are skipped: a
/// saturated set carries no verdict by the framework-wide overflow
/// contract. Used by irlt-fuzz --deps and the W205/W206 analyzer rules.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPS_CROSSCHECK_H
#define IRLT_DEPS_CROSSCHECK_H

#include "deps/DepOracle.h"

#include <string>
#include <vector>

namespace irlt {
namespace deps {

/// Outcome of one differential comparison.
struct CrossCheckResult {
  enum class Status {
    Agree,        ///< tuple sets coincide under entrywise cover
    PrecisionGap, ///< pipeline is strictly conservative (sound)
    Soundness,    ///< pipeline under-reports vs exact: a bug
    Skipped       ///< an oracle overflowed; no verdict
  };
  Status Stat = Status::Agree;

  /// Exact vectors no pipeline vector covers (soundness witnesses).
  std::vector<DepVector> Uncovered;
  /// Pipeline vectors the exact set does not cover (precision witnesses).
  std::vector<DepVector> Extra;

  bool sound() const { return Stat != Status::Soundness; }

  /// One-line report, e.g. "soundness: exact (1, 0) uncovered".
  std::string str() const;
};

/// True if some vector of \p Set covers \p V, trying \p V's summary
/// expansion when no single vector does.
bool coveredBy(const DepVector &V, const DepSet &Set);

/// Classifies \p Fast (the pipeline backend) against \p Exact.
CrossCheckResult crossCheckDeps(const DepResult &Fast, const DepResult &Exact);

} // namespace deps
} // namespace irlt

#endif // IRLT_DEPS_CROSSCHECK_H
