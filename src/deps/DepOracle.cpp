//===- deps/DepOracle.cpp - Oracle registry and the pipeline backend -----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "deps/DepOracle.h"

#include "deps/FMExactOracle.h"
#include "support/MathUtils.h"

using namespace irlt;
using namespace irlt::deps;

DepOracle::~DepOracle() = default;

namespace {

/// The production analyzer behind the interface. Byte-identical to a
/// direct analyzeDependences call by construction: it only adds the
/// OverflowGuard wrapper every call site already used.
class PipelineOracle : public DepOracle {
public:
  explicit PipelineOracle(DepAnalysisOptions Opts) : Opts(Opts) {}

  std::string name() const override { return "pipeline"; }

  DepResult analyze(const LoopNest &Nest) const override {
    DepResult R;
    OverflowGuard Guard;
    R.Deps = analyzeDependences(Nest, Opts, R.Pairs);
    R.Overflowed = Guard.triggered();
    return R;
  }

private:
  DepAnalysisOptions Opts;
};

} // namespace

const DepOracle &deps::pipelineOracle() {
  static PipelineOracle O{DepAnalysisOptions{}};
  return O;
}

const DepOracle *deps::oracleByName(const std::string &Name) {
  if (Name == "pipeline")
    return &pipelineOracle();
  if (Name == "fm-exact")
    return &fmExactOracle();
  return nullptr;
}

std::vector<std::string> deps::oracleNames() {
  return {"pipeline", "fm-exact"};
}

std::unique_ptr<DepOracle>
deps::makePipelineOracle(const DepAnalysisOptions &Opts) {
  return std::make_unique<PipelineOracle>(Opts);
}
