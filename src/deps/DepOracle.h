//===- deps/DepOracle.h - Multi-backend dependence oracle interface ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract dependence oracle (docs/DEPENDENCE.md): analyze a perfect
/// loop nest into a dependence-vector set plus per-reference-pair
/// provenance (which test decided, exact/approximate, how many vectors).
/// Two registered backends:
///
///   - "pipeline": the production ZIV/GCD + hierarchical-FM analyzer in
///     src/dependence/ (the default everywhere);
///   - "fm-exact": an independently written first-principles oracle that
///     builds the full iteration-pair constraint system per subscript
///     pair and runs integer-tightened Fourier-Motzkin directly, with no
///     ZIV/SIV/GCD shortcuts (deps/FMExactOracle.cpp).
///
/// Both share the d-space specification of DepAnalysis.cpp (trip-counter
/// stride model, conservative fallback families), so a vector the exact
/// oracle reports that the pipeline does not cover is a soundness bug -
/// the property irlt-fuzz --deps checks differentially (deps/CrossCheck.h).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPS_DEPORACLE_H
#define IRLT_DEPS_DEPORACLE_H

#include "dependence/DepAnalysis.h"
#include "dependence/DepVector.h"
#include "ir/LoopNest.h"

#include <memory>
#include <string>
#include <vector>

namespace irlt {
namespace deps {

/// One oracle run: the dependence set, per-pair provenance in pair-visit
/// order, and whether coefficient arithmetic saturated (in which case the
/// set must not be trusted for legality decisions - the same contract as
/// api::Pipeline's dependence cache).
struct DepResult {
  DepSet Deps;
  std::vector<DepPairInfo> Pairs;
  bool Overflowed = false;
};

/// Abstract dependence-analysis backend.
class DepOracle {
public:
  virtual ~DepOracle();

  /// Registry name ("pipeline", "fm-exact").
  virtual std::string name() const = 0;

  /// Analyzes \p Nest under an OverflowGuard; saturation is reported via
  /// DepResult::Overflowed, never an assertion. Thread-safe: oracles are
  /// stateless between calls.
  virtual DepResult analyze(const LoopNest &Nest) const = 0;
};

/// The production pipeline backend with default analysis options.
const DepOracle &pipelineOracle();

/// The first-principles integer-tightened FM backend.
const DepOracle &fmExactOracle();

/// Registry lookup; nullptr for unknown names.
const DepOracle *oracleByName(const std::string &Name);

/// All registered backend names, in registry order.
std::vector<std::string> oracleNames();

/// A pipeline backend with non-default dependence-analysis options (the
/// api::Pipeline facade owns one configured from PipelineOptions).
std::unique_ptr<DepOracle> makePipelineOracle(const DepAnalysisOptions &Opts);

} // namespace deps
} // namespace irlt

#endif // IRLT_DEPS_DEPORACLE_H
