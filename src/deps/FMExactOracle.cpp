//===- deps/FMExactOracle.cpp - First-principles FM dependence oracle ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
//
// Written independently of src/dependence/DepAnalysis.cpp on purpose: the
// two backends share only the FMSolver primitives, the LinExpr
// linearizer, and the d-space *specification* (variable meaning, loop
// models, fallback policy). Everything here - symbol registration,
// constraint assembly, direction-class enumeration - is a from-scratch
// second implementation, so a disagreement between the backends points at
// a real bug rather than a shared one.
//
//===----------------------------------------------------------------------===//

#include "deps/FMExactOracle.h"

#include "dependence/FMSolver.h"
#include "ir/LinExpr.h"
#include "support/MathUtils.h"

#include <cassert>
#include <map>

using namespace irlt;
using namespace irlt::deps;

namespace {

/// How one loop couples its index value to execution order (the shared
/// d-space spec): Value loops advance by 1 so d_k is a difference of
/// index values; Counter loops advance by a constant non-unit stride from
/// an affine start, so d_k is a difference of trip counters; Free loops
/// are unanalyzable and leave d_k unconstrained.
struct LoopModel {
  enum class Shape { Value, Counter, Free };
  Shape S = Shape::Free;
  int64_t Step = 1;
  // Value loops: conjunctive bound pieces (x >= each Lower, x <= each
  // Upper). Counter loops: Start (x == Start + Step*c, c >= 0) and End
  // pieces (x <= E for Step > 0, x >= E otherwise).
  std::vector<LinExpr> Lowers, Uppers;
  LinExpr Start;
  std::vector<LinExpr> Ends;
};

/// One side of a reference pair.
struct Access {
  const irlt::ArrayRef *Ref;
  bool IsWrite;
};

class ExactAnalyzer {
public:
  explicit ExactAnalyzer(const LoopNest &Nest)
      : Nest(Nest), N(Nest.numLoops()) {}

  DepResult run();

private:
  // Variable space (identical meaning to the pipeline analyzer's):
  //   src iteration  [0, N)
  //   dst iteration  [N, 2N)
  //   parameters     [2N, 2N+P)
  //   differences    [2N+P, 3N+P)
  //   src counters   [3N+P, 4N+P)
  //   dst counters   [4N+P, 5N+P)
  unsigned srcVar(unsigned K) const { return K; }
  unsigned dstVar(unsigned K) const { return N + K; }
  unsigned parVar(unsigned P) const { return 2 * N + P; }
  unsigned difVar(unsigned K) const { return 2 * N + NumParams + K; }
  unsigned srcCnt(unsigned K) const { return 3 * N + NumParams + K; }
  unsigned dstCnt(unsigned K) const { return 4 * N + NumParams + K; }
  unsigned numFMVars() const { return 5 * N + NumParams; }

  /// True if every atom of \p L is invariant in the nest (a plain
  /// non-index variable, or an opaque subtree mentioning no index
  /// variable). Registers each such atom as a parameter.
  bool registerInvariants(const LinExpr &L);

  /// Adds \p L's coefficients into \p Row (iteration variables mapped to
  /// the chosen side, parameters to their slots) scaled by \p Scale, and
  /// the constant into \p Const. Pre: registerInvariants(L) held.
  void accumulate(const LinExpr &L, bool DstSide, int64_t Scale,
                  std::vector<int64_t> &Row, int64_t &Const) const;

  /// Installs the bound / counter-coupling / difference-definition rows
  /// for iteration side \p DstSide into \p Sys.
  void installIterationConstraints(FMSystem &Sys, bool DstSide) const;

  /// The (0,..,0,+,*,..,*) fallback family.
  void emitFallbackFamily(DepSet &Out) const;

  /// Decides one ordered pair; returns its provenance record.
  DepPairInfo decidePair(const Access &Src, unsigned SrcIdx,
                         const Access &Dst, unsigned DstIdx, DepSet &Out);

  /// Depth-first direction-class enumeration over the integral system.
  void enumerate(const FMSystem &Sys, std::vector<int8_t> &Signs,
                 bool SeenPos, DepSet &Out) const;

  const LoopNest &Nest;
  unsigned N;
  unsigned NumParams = 0;
  std::map<std::string, unsigned> ParamSlot; // atom key -> parameter slot
  std::vector<LoopModel> Models;
};

bool ExactAnalyzer::registerInvariants(const LinExpr &L) {
  for (const auto &[Key, Term] : L.terms()) {
    if (const auto *V = dyn_cast<VarExpr>(Term.Atom.get())) {
      if (Nest.bindsVar(V->name()))
        continue; // index variable: positional, not a parameter
    } else {
      std::set<std::string> Vars;
      Term.Atom->collectVars(Vars);
      for (const std::string &Name : Vars)
        if (Nest.bindsVar(Name))
          return false; // index variable buried in an opaque atom
    }
    if (!ParamSlot.count(Key))
      ParamSlot.emplace(Key, NumParams++);
  }
  return true;
}

void ExactAnalyzer::accumulate(const LinExpr &L, bool DstSide, int64_t Scale,
                               std::vector<int64_t> &Row,
                               int64_t &Const) const {
  Const = addChecked(Const, mulChecked(Scale, L.constant()));
  for (const auto &[Key, Term] : L.terms()) {
    int64_t C = mulChecked(Scale, Term.Coef);
    if (const auto *V = dyn_cast<VarExpr>(Term.Atom.get())) {
      int Pos = Nest.loopIndexOf(V->name());
      if (Pos >= 0) {
        unsigned Slot = DstSide ? dstVar(static_cast<unsigned>(Pos))
                                : srcVar(static_cast<unsigned>(Pos));
        Row[Slot] = addChecked(Row[Slot], C);
        continue;
      }
    }
    auto It = ParamSlot.find(Key);
    assert(It != ParamSlot.end() && "accumulate on unregistered atom");
    Row[parVar(It->second)] = addChecked(Row[parVar(It->second)], C);
  }
}

void ExactAnalyzer::installIterationConstraints(FMSystem &Sys,
                                                bool DstSide) const {
  for (unsigned K = 0; K < N; ++K) {
    const LoopModel &M = Models[K];
    unsigned X = DstSide ? dstVar(K) : srcVar(K);
    switch (M.S) {
    case LoopModel::Shape::Value: {
      for (const LinExpr &LB : M.Lowers) {
        // x - LB >= 0.
        std::vector<int64_t> Row(numFMVars(), 0);
        int64_t C = 0;
        Row[X] = 1;
        accumulate(LB, DstSide, -1, Row, C);
        Sys.addGE(std::move(Row), negChecked(C));
      }
      for (const LinExpr &UB : M.Uppers) {
        // UB - x >= 0.
        std::vector<int64_t> Row(numFMVars(), 0);
        int64_t C = 0;
        Row[X] = -1;
        accumulate(UB, DstSide, 1, Row, C);
        Sys.addGE(std::move(Row), negChecked(C));
      }
      break;
    }
    case LoopModel::Shape::Counter: {
      unsigned Cnt = DstSide ? dstCnt(K) : srcCnt(K);
      // x == Start + Step*c  and  c >= 0.
      std::vector<int64_t> Eq(numFMVars(), 0);
      int64_t C = 0;
      Eq[X] = 1;
      Eq[Cnt] = negChecked(M.Step);
      accumulate(M.Start, DstSide, -1, Eq, C);
      Sys.addEQ(Eq, negChecked(C));
      std::vector<int64_t> CRow(numFMVars(), 0);
      CRow[Cnt] = 1;
      Sys.addGE(std::move(CRow), 0);
      for (const LinExpr &E : M.Ends) {
        std::vector<int64_t> Row(numFMVars(), 0);
        int64_t EC = 0;
        if (M.Step > 0) { // E - x >= 0
          Row[X] = -1;
          accumulate(E, DstSide, 1, Row, EC);
        } else { // x - E >= 0
          Row[X] = 1;
          accumulate(E, DstSide, -1, Row, EC);
        }
        Sys.addGE(std::move(Row), negChecked(EC));
      }
      break;
    }
    case LoopModel::Shape::Free:
      break;
    }
  }
}

void ExactAnalyzer::emitFallbackFamily(DepSet &Out) const {
  for (unsigned Carrier = 0; Carrier < N; ++Carrier) {
    std::vector<DepElem> Elems(N, DepElem::any());
    for (unsigned K = 0; K < Carrier; ++K)
      Elems[K] = DepElem::zero();
    Elems[Carrier] = DepElem::pos();
    Out.insert(DepVector(std::move(Elems)));
  }
}

void ExactAnalyzer::enumerate(const FMSystem &Sys, std::vector<int8_t> &Signs,
                              bool SeenPos, DepSet &Out) const {
  unsigned Level = static_cast<unsigned>(Signs.size());
  if (Level == N) {
    if (!SeenPos)
      return; // the all-zero class carries no dependence
    std::vector<DepElem> Elems;
    Elems.reserve(N);
    for (unsigned K = 0; K < N; ++K) {
      if (Signs[K] == 0) {
        Elems.push_back(DepElem::zero());
        continue;
      }
      DepElem E = Signs[K] > 0 ? DepElem::pos() : DepElem::neg();
      VarRange R = Sys.rangeOf(difVar(K));
      if (R.Feasible && R.Lo && R.Hi && *R.Lo == *R.Hi && R.Lo->isInteger())
        E = DepElem::distance(R.Lo->num());
      Elems.push_back(E);
    }
    Out.insert(DepVector(std::move(Elems)));
    return;
  }

  // Extend the class with each legal sign of d_Level; the first non-zero
  // sign must be positive (the source order satisfies the dependence).
  const int8_t Candidates[3] = {0, 1, -1};
  for (int8_t S : Candidates) {
    if (S < 0 && !SeenPos)
      continue;
    FMSystem Narrow = Sys;
    std::vector<int64_t> Row(numFMVars(), 0);
    Row[difVar(Level)] = 1;
    if (S == 0)
      Narrow.addEQ(Row, 0);
    else if (S > 0)
      Narrow.addGE(std::move(Row), 1);
    else
      Narrow.addLE(std::move(Row), -1);
    if (!Narrow.feasible())
      continue;
    Signs.push_back(S);
    enumerate(Narrow, Signs, SeenPos || S > 0, Out);
    Signs.pop_back();
  }
}

DepPairInfo ExactAnalyzer::decidePair(const Access &Src, unsigned SrcIdx,
                                      const Access &Dst, unsigned DstIdx,
                                      DepSet &Out) {
  DepPairInfo Info;
  Info.Array = Src.Ref->Array;
  Info.SrcOcc = SrcIdx;
  Info.DstOcc = DstIdx;
  Info.SrcIsWrite = Src.IsWrite;
  Info.DstIsWrite = Dst.IsWrite;

  DepSet Local;
  if (Src.Ref->Subscripts.size() != Dst.Ref->Subscripts.size()) {
    emitFallbackFamily(Local);
    Info.Decided = DepDecision::IllTyped;
  } else {
    // Linearize every dimension; a dimension participates only when both
    // sides are affine over index variables and registered invariants.
    struct DimPair {
      LinExpr S, D;
    };
    std::vector<DimPair> Usable;
    for (size_t I = 0; I < Src.Ref->Subscripts.size(); ++I) {
      DimPair P{LinExpr::fromExpr(Src.Ref->Subscripts[I]),
                LinExpr::fromExpr(Dst.Ref->Subscripts[I])};
      if (registerInvariants(P.S) && registerInvariants(P.D))
        Usable.push_back(std::move(P));
    }
    if (Usable.empty()) {
      emitFallbackFamily(Local);
      Info.Decided = DepDecision::NonLinear;
    } else {
      FMSystem Sys(numFMVars(), /*IntegerVars=*/true);
      // Subscript equations: f_src(I) - f_dst(J) == 0, with no prefilter
      // of any kind - integral row normalization subsumes ZIV and GCD.
      for (const DimPair &P : Usable) {
        std::vector<int64_t> Row(numFMVars(), 0);
        int64_t C = 0;
        accumulate(P.S, /*DstSide=*/false, 1, Row, C);
        accumulate(P.D, /*DstSide=*/true, -1, Row, C);
        Sys.addEQ(Row, negChecked(C));
      }
      installIterationConstraints(Sys, /*DstSide=*/false);
      installIterationConstraints(Sys, /*DstSide=*/true);
      // Difference definitions per the shared spec.
      for (unsigned K = 0; K < N; ++K) {
        std::vector<int64_t> Row(numFMVars(), 0);
        Row[difVar(K)] = 1;
        switch (Models[K].S) {
        case LoopModel::Shape::Value:
          Row[dstVar(K)] = -1;
          Row[srcVar(K)] = 1;
          Sys.addEQ(Row, 0);
          break;
        case LoopModel::Shape::Counter:
          Row[dstCnt(K)] = -1;
          Row[srcCnt(K)] = 1;
          Sys.addEQ(Row, 0);
          break;
        case LoopModel::Shape::Free:
          break; // d_K unconstrained
        }
      }
      std::vector<int8_t> Signs;
      enumerate(Sys, Signs, /*SeenPos=*/false, Local);
      Info.Decided = DepDecision::FM;
    }
  }

  Info.NumVectors = static_cast<unsigned>(Local.size());
  Info.Independent = Local.empty();
  bool AllDist = !Local.empty();
  for (const DepVector &V : Local.vectors())
    AllDist = AllDist && V.allDistances();
  Info.Exact = AllDist;
  Out.insertAll(Local.vectors());
  return Info;
}

DepResult ExactAnalyzer::run() {
  DepResult Result;
  OverflowGuard Guard;

  // Loop models per the shared d-space spec. Bound pieces that fail the
  // invariance check are dropped (the variable is then under-constrained
  // on that side, which is conservative).
  Models.resize(N);
  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    LoopModel &M = Models[K];
    auto splitPieces = [&](const ExprRef &E, Expr::Kind SplitKind,
                           std::vector<LinExpr> &Dest) {
      std::vector<ExprRef> Parts;
      if (E->kind() == SplitKind)
        Parts = cast<MinMaxExpr>(E.get())->operands();
      else
        Parts.push_back(E);
      for (const ExprRef &P : Parts) {
        LinExpr LE = LinExpr::fromExpr(P);
        if (registerInvariants(LE))
          Dest.push_back(std::move(LE));
      }
    };
    std::optional<int64_t> Step = L.Step->constValue();
    if (Step && *Step == 1) {
      M.S = LoopModel::Shape::Value;
      M.Step = 1;
      splitPieces(L.Lower, Expr::Kind::Max, M.Lowers);
      splitPieces(L.Upper, Expr::Kind::Min, M.Uppers);
    } else if (Step && *Step != 0 && L.Lower->kind() != Expr::Kind::Max &&
               L.Lower->kind() != Expr::Kind::Min) {
      LinExpr Start = LinExpr::fromExpr(L.Lower);
      if (registerInvariants(Start)) {
        M.S = LoopModel::Shape::Counter;
        M.Step = *Step;
        M.Start = std::move(Start);
        splitPieces(L.Upper, *Step > 0 ? Expr::Kind::Min : Expr::Kind::Max,
                    M.Ends);
      }
    }
  }

  // Pre-register subscript invariants so the parameter table (and with it
  // the FM variable space) is fixed before any pair is decided.
  std::vector<irlt::ArrayRef> Writes, Reads;
  Nest.collectWrites(Writes);
  Nest.collectReads(Reads);
  std::vector<Access> Accesses;
  Accesses.reserve(Writes.size() + Reads.size());
  for (const irlt::ArrayRef &W : Writes)
    Accesses.push_back(Access{&W, true});
  for (const irlt::ArrayRef &R : Reads)
    Accesses.push_back(Access{&R, false});
  for (const Access &A : Accesses)
    for (const ExprRef &S : A.Ref->Subscripts)
      (void)registerInvariants(LinExpr::fromExpr(S));

  for (unsigned I = 0; I < Accesses.size(); ++I)
    for (unsigned J = 0; J < Accesses.size(); ++J) {
      const Access &A = Accesses[I], &B = Accesses[J];
      if (!A.IsWrite && !B.IsWrite)
        continue;
      if (A.Ref->Array != B.Ref->Array)
        continue;
      Result.Pairs.push_back(decidePair(A, I, B, J, Result.Deps));
    }

  Result.Overflowed = Guard.triggered();
  return Result;
}

/// The registered backend.
class FMExactBackend : public DepOracle {
public:
  std::string name() const override { return "fm-exact"; }

  DepResult analyze(const LoopNest &Nest) const override {
    ExactAnalyzer A(Nest);
    return A.run();
  }
};

} // namespace

const DepOracle &deps::fmExactOracle() {
  static FMExactBackend O;
  return O;
}
