//===- deps/FMExactOracle.h - First-principles FM dependence oracle ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second, independently written dependence backend (docs/
/// DEPENDENCE.md): for every ordered reference pair it assembles the full
/// iteration-pair constraint system - subscript equations, bound
/// constraints for both iterations, trip-counter couplings for strided
/// loops, difference-variable definitions - and decides each direction
/// class by running Fourier-Motzkin elimination directly on it, with the
/// variables declared integral (FMSystem's integer-tightening mode). No
/// ZIV, SIV, GCD, or Banerjee shortcut is consulted: constant-subscript
/// disproofs and integer-divisibility disproofs fall out of row
/// normalization instead.
///
/// The oracle follows the shared d-space specification of
/// DepAnalysis.cpp (unit / trip-counter / opaque loop models and the
/// conservative fallback families), so its result set is always covered
/// by the pipeline backend's unless the pipeline has a soundness bug -
/// the invariant irlt-fuzz --deps checks.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPS_FMEXACTORACLE_H
#define IRLT_DEPS_FMEXACTORACLE_H

#include "deps/DepOracle.h"

namespace irlt {
namespace deps {

/// The registered "fm-exact" backend instance.
const DepOracle &fmExactOracle();

} // namespace deps
} // namespace irlt

#endif // IRLT_DEPS_FMEXACTORACLE_H
