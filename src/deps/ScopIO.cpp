//===- deps/ScopIO.cpp - OpenScop-style affine nest import/export --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "deps/ScopIO.h"

#include "ir/LinExpr.h"
#include "ir/Parser.h"

#include <map>
#include <sstream>
#include <vector>

using namespace irlt;
using namespace irlt::deps;

namespace {

/// One DOMAIN row: [e/i flag | iterator coefs | parameter coefs | const],
/// meaning  flag==1: sum >= 0.
struct ScopRow {
  std::vector<int64_t> IterCoef;
  std::vector<int64_t> ParamCoef;
  int64_t Const = 0;
};

//===----------------------------------------------------------------------===
// Export
//===----------------------------------------------------------------------===

/// Splits a bound into conjunctive affine pieces (Max for lower bounds,
/// Min for upper bounds). Fails when a piece is not affine over outer
/// iterators (< \p LoopIdx) and plain invariant variables.
ErrorOr<std::vector<LinExpr>> boundPieces(const LoopNest &Nest,
                                          const ExprRef &Bound,
                                          Expr::Kind SplitKind,
                                          unsigned LoopIdx) {
  std::vector<ExprRef> Parts;
  if (Bound->kind() == SplitKind)
    Parts = cast<MinMaxExpr>(Bound.get())->operands();
  else
    Parts.push_back(Bound);
  std::vector<LinExpr> Out;
  for (const ExprRef &P : Parts) {
    LinExpr L = LinExpr::fromExpr(P);
    for (const auto &[Key, Term] : L.terms()) {
      const auto *V = dyn_cast<VarExpr>(Term.Atom.get());
      if (!V)
        return Failure("bound of loop " + std::to_string(LoopIdx + 1) +
                       " is not affine: non-variable term " + Key);
      int Pos = Nest.loopIndexOf(V->name());
      if (Pos >= static_cast<int>(LoopIdx))
        return Failure("bound of loop " + std::to_string(LoopIdx + 1) +
                       " references non-outer iterator " + V->name());
    }
    Out.push_back(std::move(L));
  }
  return Out;
}

void writeSection(std::ostringstream &OS, const std::string &Tag,
                  const std::vector<std::string> &Lines) {
  OS << "<" << Tag << ">\n";
  for (const std::string &L : Lines)
    OS << L << "\n";
  OS << "</" << Tag << ">\n\n";
}

std::string joinSpace(const std::vector<std::string> &Parts) {
  std::string S;
  for (size_t I = 0; I < Parts.size(); ++I)
    S += (I ? " " : "") + Parts[I];
  return S;
}

//===----------------------------------------------------------------------===
// Import
//===----------------------------------------------------------------------===

struct SectionedText {
  std::map<std::string, std::vector<std::string>> Sections;
  std::vector<ScopRow> Domain;
  unsigned NumIters = 0, NumParams = 0;
};

bool parseInt64(const std::string &Tok, int64_t &V) {
  if (Tok.empty())
    return false;
  size_t Pos = 0;
  try {
    V = std::stoll(Tok, &Pos);
  } catch (...) {
    return false;
  }
  return Pos == Tok.size();
}

std::vector<std::string> splitWS(const std::string &Line) {
  std::vector<std::string> Out;
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok)
    Out.push_back(Tok);
  return Out;
}

ErrorOr<SectionedText> parseSections(const std::string &Text) {
  SectionedText S;
  std::vector<std::string> Lines;
  {
    std::istringstream IS(Text);
    std::string L;
    while (std::getline(IS, L))
      Lines.push_back(L);
  }
  bool SawOpen = false;
  std::string InTag;
  size_t I = 0;
  auto trimmed = [](const std::string &L) {
    size_t B = L.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      return std::string();
    size_t E = L.find_last_not_of(" \t\r");
    return L.substr(B, E - B + 1);
  };
  while (I < Lines.size()) {
    std::string L = trimmed(Lines[I]);
    ++I;
    if (!InTag.empty()) {
      if (L == "</" + InTag + ">") {
        InTag.clear();
        continue;
      }
      if (L.empty())
        continue;
      S.Sections[InTag].push_back(L);
      continue;
    }
    if (L.empty() || L[0] == '#')
      continue;
    if (L == "<OpenScop>") {
      SawOpen = true;
      continue;
    }
    if (L == "</OpenScop>")
      continue;
    if (L.size() > 2 && L.front() == '<' && L.back() == '>' && L[1] != '/') {
      InTag = L.substr(1, L.size() - 2);
      S.Sections[InTag]; // record presence even when empty
      continue;
    }
    if (L == "DOMAIN") {
      // Header "R C", then R rows of C integers each.
      while (I < Lines.size() &&
             (trimmed(Lines[I]).empty() || trimmed(Lines[I])[0] == '#'))
        ++I;
      if (I >= Lines.size())
        return Failure("scop: DOMAIN missing its size header");
      std::vector<std::string> Hdr = splitWS(trimmed(Lines[I]));
      ++I;
      int64_t R = 0, C = 0;
      if (Hdr.size() != 2 || !parseInt64(Hdr[0], R) || !parseInt64(Hdr[1], C) ||
          R < 0 || C < 3)
        return Failure("scop: malformed DOMAIN size header");
      for (int64_t Row = 0; Row < R; ++Row) {
        while (I < Lines.size() &&
               (trimmed(Lines[I]).empty() || trimmed(Lines[I])[0] == '#'))
          ++I;
        if (I >= Lines.size())
          return Failure("scop: DOMAIN ends after " + std::to_string(Row) +
                         " of " + std::to_string(R) + " rows");
        std::vector<std::string> Toks = splitWS(trimmed(Lines[I]));
        ++I;
        if (Toks.size() != static_cast<size_t>(C))
          return Failure("scop: DOMAIN row " + std::to_string(Row + 1) +
                         " has " + std::to_string(Toks.size()) +
                         " columns, expected " + std::to_string(C));
        std::vector<int64_t> Vals(Toks.size());
        for (size_t T = 0; T < Toks.size(); ++T)
          if (!parseInt64(Toks[T], Vals[T]))
            return Failure("scop: non-integer DOMAIN entry '" + Toks[T] + "'");
        if (Vals[0] != 1)
          return Failure("scop: only inequality rows (flag 1) are supported");
        ScopRow SR;
        SR.Const = Vals.back();
        SR.IterCoef.assign(Vals.begin() + 1, Vals.end() - 1);
        S.Domain.push_back(std::move(SR)); // split iter/param columns later
      }
      continue;
    }
    return Failure("scop: unexpected line '" + L + "'");
  }
  if (!SawOpen)
    return Failure("scop: missing <OpenScop> header");
  if (!InTag.empty())
    return Failure("scop: unterminated section <" + InTag + ">");
  return S;
}

} // namespace

ErrorOr<std::string> deps::exportScop(const LoopNest &Nest) {
  if (!Nest.Inits.empty())
    return Failure("scop export is defined for source nests only "
                   "(this nest carries initialization statements)");
  unsigned N = Nest.numLoops();
  if (N == 0)
    return Failure("scop export needs at least one loop");

  // Collect the per-loop affine pieces and the step constants.
  std::vector<std::vector<LinExpr>> Lowers(N), Uppers(N);
  std::vector<int64_t> Steps(N);
  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    std::optional<int64_t> Step = L.Step->constValue();
    if (!Step || *Step <= 0)
      return Failure("scop export requires a positive constant step on loop " +
                     std::to_string(K + 1));
    Steps[K] = *Step;
    ErrorOr<std::vector<LinExpr>> Lo =
        boundPieces(Nest, L.Lower, Expr::Kind::Max, K);
    if (!Lo)
      return Failure(Lo.takeDiags());
    ErrorOr<std::vector<LinExpr>> Up =
        boundPieces(Nest, L.Upper, Expr::Kind::Min, K);
    if (!Up)
      return Failure(Up.takeDiags());
    Lowers[K] = Lo.take();
    Uppers[K] = Up.take();
  }

  // Parameter table: plain invariant variables, sorted (std::map order).
  std::map<std::string, unsigned> Params;
  for (unsigned K = 0; K < N; ++K)
    for (const std::vector<LinExpr> *Side : {&Lowers[K], &Uppers[K]})
      for (const LinExpr &P : *Side)
        for (const auto &[Key, Term] : P.terms())
          if (!Nest.bindsVar(Key))
            Params.emplace(Key, 0);
  {
    unsigned Slot = 0;
    for (auto &[Name, Idx] : Params)
      Idx = Slot++;
  }
  unsigned NumParams = static_cast<unsigned>(Params.size());

  // DOMAIN rows, iterator-major: loop k's lower pieces then upper pieces.
  auto pieceRow = [&](unsigned K, const LinExpr &Piece, bool IsLower) {
    std::vector<int64_t> Row(N + NumParams, 0);
    int64_t Sign = IsLower ? -1 : 1; //  lower: x - P >= 0; upper: P - x >= 0
    Row[K] = -Sign;
    int64_t Const = Sign * Piece.constant();
    for (const auto &[Key, Term] : Piece.terms()) {
      int Pos = Nest.loopIndexOf(Key);
      unsigned Slot = Pos >= 0 ? static_cast<unsigned>(Pos)
                               : N + Params.at(Key);
      Row[Slot] += Sign * Term.Coef;
    }
    std::string Line = "1";
    for (int64_t C : Row) {
      Line += ' ';
      Line += std::to_string(C);
    }
    Line += ' ';
    Line += std::to_string(Const);
    return Line;
  };
  std::vector<std::string> RowLines;
  for (unsigned K = 0; K < N; ++K) {
    for (const LinExpr &P : Lowers[K])
      RowLines.push_back(pieceRow(K, P, /*IsLower=*/true));
    for (const LinExpr &P : Uppers[K])
      RowLines.push_back(pieceRow(K, P, /*IsLower=*/false));
  }

  std::ostringstream OS;
  OS << "<OpenScop>\n";
  OS << "# IRLT affine nest (OpenScop-style dialect; docs/DEPENDENCE.md)\n\n";

  std::vector<std::string> ArrayLine, IterLine, ParamLine;
  ArrayLine.push_back(joinSpace(std::vector<std::string>(
      Nest.ArrayNames.begin(), Nest.ArrayNames.end())));
  std::vector<std::string> Iters;
  for (const Loop &L : Nest.Loops)
    Iters.push_back(L.IndexVar);
  IterLine.push_back(joinSpace(Iters));
  std::vector<std::string> ParamNames;
  for (const auto &[Name, Idx] : Params)
    ParamNames.push_back(Name);
  writeSection(OS, "arrays", ArrayLine);
  writeSection(OS, "iterators", IterLine);
  writeSection(OS, "parameters",
               ParamNames.empty()
                   ? std::vector<std::string>{}
                   : std::vector<std::string>{joinSpace(ParamNames)});

  OS << "DOMAIN\n";
  OS << RowLines.size() << " " << (2 + N + NumParams) << "\n";
  OS << "# e/i | " << joinSpace(Iters) << " | " << joinSpace(ParamNames)
     << " | 1\n";
  for (const std::string &R : RowLines)
    OS << R << "\n";
  OS << "\n";

  std::vector<std::string> StrideToks, KindToks;
  for (unsigned K = 0; K < N; ++K) {
    StrideToks.push_back(std::to_string(Steps[K]));
    KindToks.push_back(Nest.Loops[K].Kind == LoopKind::ParDo ? "pardo" : "do");
  }
  writeSection(OS, "strides", {joinSpace(StrideToks)});
  writeSection(OS, "kinds", {joinSpace(KindToks)});

  std::vector<std::string> BodyLines;
  for (const AssignStmt &St : Nest.Body)
    BodyLines.push_back(St.str());
  writeSection(OS, "body", BodyLines);

  OS << "</OpenScop>\n";
  return OS.str();
}

ErrorOr<LoopNest> deps::importScop(const std::string &Text) {
  ErrorOr<SectionedText> SOr = parseSections(Text);
  if (!SOr)
    return Failure(SOr.takeDiags());
  SectionedText S = SOr.take();

  auto section = [&](const std::string &Tag) -> std::vector<std::string> * {
    auto It = S.Sections.find(Tag);
    return It == S.Sections.end() ? nullptr : &It->second;
  };
  auto oneLineToks =
      [&](const std::string &Tag) -> ErrorOr<std::vector<std::string>> {
    std::vector<std::string> *Sec = section(Tag);
    if (!Sec)
      return Failure("scop: missing <" + Tag + "> section");
    if (Sec->empty())
      return std::vector<std::string>{};
    if (Sec->size() != 1)
      return Failure("scop: <" + Tag + "> must be a single line");
    return splitWS((*Sec)[0]);
  };

  ErrorOr<std::vector<std::string>> ItersOr = oneLineToks("iterators");
  if (!ItersOr)
    return Failure(ItersOr.takeDiags());
  std::vector<std::string> Iters = ItersOr.take();
  unsigned N = static_cast<unsigned>(Iters.size());
  if (N == 0)
    return Failure("scop: no iterators");

  ErrorOr<std::vector<std::string>> ParamsOr = oneLineToks("parameters");
  if (!ParamsOr)
    return Failure(ParamsOr.takeDiags());
  std::vector<std::string> Param = ParamsOr.take();

  ErrorOr<std::vector<std::string>> ArraysOr = oneLineToks("arrays");
  if (!ArraysOr)
    return Failure(ArraysOr.takeDiags());
  std::vector<std::string> Arrays = ArraysOr.take();

  ErrorOr<std::vector<std::string>> StridesOr = oneLineToks("strides");
  if (!StridesOr)
    return Failure(StridesOr.takeDiags());
  ErrorOr<std::vector<std::string>> KindsOr = oneLineToks("kinds");
  if (!KindsOr)
    return Failure(KindsOr.takeDiags());
  std::vector<std::string> StrideToks = StridesOr.take();
  std::vector<std::string> KindToks = KindsOr.take();
  if (StrideToks.size() != N || KindToks.size() != N)
    return Failure("scop: <strides>/<kinds> arity does not match iterators");
  std::vector<int64_t> Steps(N);
  for (unsigned K = 0; K < N; ++K) {
    if (!parseInt64(StrideToks[K], Steps[K]) || Steps[K] <= 0)
      return Failure("scop: stride of iterator " + Iters[K] +
                     " must be a positive integer");
    if (KindToks[K] != "do" && KindToks[K] != "pardo")
      return Failure("scop: loop kind must be do or pardo, got " + KindToks[K]);
  }

  std::vector<std::string> *Body = section("body");
  if (!Body || Body->empty())
    return Failure("scop: missing or empty <body> section");

  // Attribute each DOMAIN row to its deepest iterator and rebuild the
  // bound expression it encodes.
  unsigned Cols = N + static_cast<unsigned>(Param.size());
  std::vector<std::vector<ExprRef>> LowerPieces(N), UpperPieces(N);
  for (size_t R = 0; R < S.Domain.size(); ++R) {
    const ScopRow &Row = S.Domain[R];
    if (Row.IterCoef.size() != Cols)
      return Failure("scop: DOMAIN width does not match iterators+parameters");
    int Deepest = -1;
    for (unsigned K = 0; K < N; ++K)
      if (Row.IterCoef[K] != 0)
        Deepest = static_cast<int>(K);
    if (Deepest < 0)
      return Failure("scop: DOMAIN row " + std::to_string(R + 1) +
                     " constrains no iterator");
    int64_t C = Row.IterCoef[Deepest];
    if (C != 1 && C != -1)
      return Failure("scop: DOMAIN row " + std::to_string(R + 1) +
                     " has non-unit coefficient on its deepest iterator");
    // C == 1: x >= -(rest) - const.  C == -1: x <= rest + const.
    LinExpr Bound;
    int64_t Sign = C == 1 ? -1 : 1;
    Bound.addConst(Sign * Row.Const);
    for (unsigned K = 0; K < Cols; ++K) {
      if (static_cast<int>(K) == Deepest || Row.IterCoef[K] == 0)
        continue;
      const std::string &Name = K < N ? Iters[K] : Param[K - N];
      Bound.addVar(Name, Sign * Row.IterCoef[K]);
    }
    (C == 1 ? LowerPieces : UpperPieces)[Deepest].push_back(Bound.toExpr());
  }
  for (unsigned K = 0; K < N; ++K) {
    if (LowerPieces[K].empty())
      return Failure("scop: iterator " + Iters[K] + " has no lower bound row");
    if (UpperPieces[K].empty())
      return Failure("scop: iterator " + Iters[K] + " has no upper bound row");
  }

  // Rebuild loop-language source and reuse the standard parser so the
  // imported nest passes exactly the validation hand-written source does.
  std::ostringstream Src;
  if (!Arrays.empty())
    Src << "arrays " << [&] {
      std::string L;
      for (size_t I = 0; I < Arrays.size(); ++I)
        L += (I ? ", " : "") + Arrays[I];
      return L;
    }() << "\n";
  auto combined = [](std::vector<ExprRef> Pieces, bool IsMax) {
    if (Pieces.size() == 1)
      return Pieces[0];
    return IsMax ? Expr::maxE(std::move(Pieces)) : Expr::minE(std::move(Pieces));
  };
  std::string Indent;
  for (unsigned K = 0; K < N; ++K) {
    Src << Indent << (KindToks[K] == "pardo" ? "pardo " : "do ") << Iters[K]
        << " = " << combined(LowerPieces[K], /*IsMax=*/true)->str() << ", "
        << combined(UpperPieces[K], /*IsMax=*/false)->str();
    if (Steps[K] != 1)
      Src << ", " << Steps[K];
    Src << "\n";
    Indent += "  ";
  }
  for (const std::string &Line : *Body)
    Src << Indent << Line << "\n";
  for (unsigned K = 0; K < N; ++K) {
    Indent.resize(Indent.size() - 2);
    Src << Indent << "enddo\n";
  }

  ErrorOr<LoopNest> NestOr = parseLoopNest(Src.str());
  if (!NestOr)
    return Failure(NestOr.takeDiags());
  return NestOr.take();
}
