//===- deps/ScopIO.h - OpenScop-style affine nest import/export ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A textual OpenScop-style exchange format for affine source nests
/// (docs/DEPENDENCE.md), so external polyhedral corpora can be fed to the
/// dependence oracles and the rest of the pipeline via
/// `irlt-opt --import-scop` / `--export-scop`.
///
/// The dialect keeps OpenScop's shape - a DOMAIN constraint matrix over
/// [e/i flag | iterators | parameters | 1] with every row meaning
/// `sum >= 0`, plus tagged extension sections - and adds the extensions
/// this framework needs for byte-exact round-trips: `<arrays>`,
/// `<iterators>`, `<parameters>`, `<strides>` (constant positive steps),
/// `<kinds>` (do/pardo), and `<body>` (verbatim loop-language statement
/// text, like OpenScop's body extension).
///
/// Export is defined for *source* nests (no initialization statements)
/// whose bounds are affine in outer iterators and plain invariant
/// parameters (max-of lower bounds / min-of upper bounds allowed) and
/// whose steps are positive integer constants; anything else fails with a
/// diagnostic. Import rebuilds loop-language source from the sections and
/// reuses the standard parser, so an imported nest satisfies every
/// invariant a hand-written one does, and export(import(text)) is a
/// fixpoint (pinned by the tests/deps round-trip goldens).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DEPS_SCOPIO_H
#define IRLT_DEPS_SCOPIO_H

#include "ir/LoopNest.h"
#include "support/ErrorOr.h"

#include <string>

namespace irlt {
namespace deps {

/// Renders \p Nest in the scop dialect; fails (with a reason) when the
/// nest is outside the exportable affine subset.
ErrorOr<std::string> exportScop(const LoopNest &Nest);

/// Parses scop text back into a validated, sealed source nest.
ErrorOr<LoopNest> importScop(const std::string &Text);

} // namespace deps
} // namespace irlt

#endif // IRLT_DEPS_SCOPIO_H
