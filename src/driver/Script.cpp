//===- driver/Script.cpp - Textual transformation scripts ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Script.h"

#include "support/MathUtils.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cctype>
#include <sstream>

using namespace irlt;

namespace {

/// One whitespace-separated directive, already tokenized.
struct Directive {
  std::string Name;
  std::vector<std::string> Args;
  unsigned LineNo;
};

std::vector<Directive> splitDirectives(const std::string &Script) {
  std::vector<Directive> Out;
  unsigned LineNo = 0;
  std::istringstream Lines(Script);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    // Strip comments.
    size_t Bang = Line.find('!');
    if (Bang != std::string::npos)
      Line.resize(Bang);
    // Split on ';' for multiple directives per line.
    std::istringstream Parts(Line);
    std::string Part;
    while (std::getline(Parts, Part, ';')) {
      std::istringstream Words(Part);
      Directive D;
      D.LineNo = LineNo;
      std::string W;
      while (Words >> W) {
        if (D.Name.empty())
          D.Name = W;
        else
          D.Args.push_back(W);
      }
      if (!D.Name.empty())
        Out.push_back(std::move(D));
    }
  }
  return Out;
}

/// Overflow-safe decimal parse: rejects (rather than throws or wraps)
/// values outside the int64 range, so a fuzzer-sized literal degrades to
/// an ordinary "not an integer" diagnostic.
bool parseInt(const std::string &S, int64_t &V) {
  if (S.empty())
    return false;
  bool Negative = S[0] == '-';
  size_t I = Negative ? 1 : 0;
  if (I == S.size())
    return false;
  uint64_t Mag = 0;
  constexpr uint64_t Limit = UINT64_C(1) << 63; // |INT64_MIN|
  for (; I < S.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
    uint64_t Digit = static_cast<uint64_t>(S[I] - '0');
    if (Mag > (Limit - Digit) / 10)
      return false;
    Mag = Mag * 10 + Digit;
  }
  if (Mag > (Negative ? Limit : Limit - 1))
    return false;
  V = Negative ? -static_cast<int64_t>(Mag - 1) - 1
               : static_cast<int64_t>(Mag);
  return true;
}

bool isIdent(const std::string &S) {
  if (S.empty() || !(std::isalpha(static_cast<unsigned char>(S[0])) ||
                     S[0] == '_'))
    return false;
  for (char C : S)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_'))
      return false;
  return true;
}

/// An argument that is an integer constant or a symbolic name. Failure
/// messages carry no location; the caller attaches line and directive.
ErrorOr<ExprRef> parseSize(const std::string &S) {
  int64_t V;
  if (parseInt(S, V))
    return Expr::intConst(V);
  if (isIdent(S))
    return ExprRef(Expr::var(S));
  return Failure(
      formatStr("'%s' is neither an integer nor a name", S.c_str()));
}

/// A 1-based loop position within [1, N].
ErrorOr<unsigned> parsePos(const std::string &S, unsigned N) {
  int64_t V;
  if (!parseInt(S, V) || V < 1 || V > static_cast<int64_t>(N))
    return Failure(
        formatStr("loop position '%s' is not in [1, %u]", S.c_str(), N));
  return static_cast<unsigned>(V);
}

/// Parses one directive against nest size \p N. On success appends to
/// \p Seq and updates \p N; on failure returns the diagnostic message
/// (location-free) and leaves \p Seq and \p N untouched, so the caller
/// can recover and keep checking subsequent directives.
std::string parseDirective(const Directive &D, TransformSequence &Seq,
                           unsigned &N) {
  auto wrongArity = [&](const std::string &Expected) {
    return formatStr("expects %s (got %zu arguments)", Expected.c_str(),
                     D.Args.size());
  };

  if (D.Name == "interchange") {
    if (D.Args.size() != 2)
      return wrongArity("two loop positions");
    ErrorOr<unsigned> A = parsePos(D.Args[0], N);
    ErrorOr<unsigned> B = parsePos(D.Args[1], N);
    if (!A)
      return A.message();
    if (!B)
      return B.message();
    Seq.append(makeInterchange(N, *A - 1, *B - 1));
    return std::string();
  }

  if (D.Name == "reverse") {
    if (D.Args.size() != 1)
      return wrongArity("one loop position");
    ErrorOr<unsigned> K = parsePos(D.Args[0], N);
    if (!K)
      return K.message();
    std::vector<bool> Rev(N, false);
    Rev[*K - 1] = true;
    std::vector<unsigned> Perm(N);
    for (unsigned I = 0; I < N; ++I)
      Perm[I] = I;
    Seq.append(makeReversePermute(N, std::move(Rev), std::move(Perm)));
    return std::string();
  }

  if (D.Name == "permute") {
    if (D.Args.size() != N)
      return wrongArity(formatStr("%u positions", N));
    std::vector<unsigned> Perm(N);
    std::vector<bool> Seen(N, false);
    for (unsigned I = 0; I < N; ++I) {
      ErrorOr<unsigned> P = parsePos(D.Args[I], N);
      if (!P)
        return P.message();
      if (Seen[*P - 1])
        return formatStr("permute repeats position %u", *P);
      Seen[*P - 1] = true;
      Perm[I] = *P - 1;
    }
    Seq.append(
        makeReversePermute(N, std::vector<bool>(N, false), std::move(Perm)));
    return std::string();
  }

  if (D.Name == "parallelize") {
    if (D.Args.empty())
      return wrongArity("at least one loop position");
    std::vector<bool> Flags(N, false);
    for (const std::string &A : D.Args) {
      ErrorOr<unsigned> P = parsePos(A, N);
      if (!P)
        return P.message();
      Flags[*P - 1] = true;
    }
    Seq.append(makeParallelize(N, std::move(Flags)));
    return std::string();
  }

  if (D.Name == "block" || D.Name == "interleave") {
    if (D.Args.size() < 3)
      return wrongArity("i j size...");
    ErrorOr<unsigned> I = parsePos(D.Args[0], N);
    ErrorOr<unsigned> J = parsePos(D.Args[1], N);
    if (!I)
      return I.message();
    if (!J)
      return J.message();
    if (*I > *J)
      return formatStr("range [%u, %u] is empty", *I, *J);
    unsigned Span = *J - *I + 1;
    if (D.Args.size() != 2 + Span)
      return wrongArity(
          formatStr("%u sizes for range [%u, %u]", Span, *I, *J));
    std::vector<ExprRef> Sizes;
    for (unsigned K = 0; K < Span; ++K) {
      ErrorOr<ExprRef> S = parseSize(D.Args[2 + K]);
      if (!S)
        return S.message();
      Sizes.push_back(*S);
    }
    if (D.Name == "block")
      Seq.append(makeBlock(N, *I, *J, std::move(Sizes)));
    else
      Seq.append(makeInterleave(N, *I, *J, std::move(Sizes)));
    N += Span;
    return std::string();
  }

  if (D.Name == "coalesce") {
    if (D.Args.size() != 2 && D.Args.size() != 3)
      return wrongArity("i j [newname]");
    ErrorOr<unsigned> I = parsePos(D.Args[0], N);
    ErrorOr<unsigned> J = parsePos(D.Args[1], N);
    if (!I)
      return I.message();
    if (!J)
      return J.message();
    if (*I > *J)
      return "coalesce range is empty";
    std::optional<std::string> Name;
    if (D.Args.size() == 3) {
      if (!isIdent(D.Args[2]))
        return formatStr("'%s' is not a valid name", D.Args[2].c_str());
      Name = D.Args[2];
    }
    Seq.append(makeCoalesce(N, *I, *J, Name));
    N -= *J - *I;
    return std::string();
  }

  if (D.Name == "stripmine") {
    if (D.Args.size() != 2)
      return wrongArity("k size");
    ErrorOr<unsigned> K = parsePos(D.Args[0], N);
    if (!K)
      return K.message();
    ErrorOr<ExprRef> S = parseSize(D.Args[1]);
    if (!S)
      return S.message();
    Seq.append(makeStripMine(N, *K, *S));
    N += 1;
    return std::string();
  }

  if (D.Name == "skew") {
    if (D.Args.size() != 3)
      return wrongArity("src dst factor");
    ErrorOr<unsigned> Src = parsePos(D.Args[0], N);
    ErrorOr<unsigned> Dst = parsePos(D.Args[1], N);
    if (!Src)
      return Src.message();
    if (!Dst)
      return Dst.message();
    int64_t F;
    if (!parseInt(D.Args[2], F) || F == 0)
      return formatStr("skew factor '%s' is not a non-zero integer",
                       D.Args[2].c_str());
    if (*Src == *Dst)
      return "skew source equals destination";
    Seq.append(
        makeUnimodular(N, UnimodularMatrix::skew(N, *Src - 1, *Dst - 1, F)));
    return std::string();
  }

  if (D.Name == "unimodular") {
    // Row-major entries with '/' separating rows: "1 1 / 1 0".
    std::vector<std::vector<int64_t>> RowData(1);
    for (const std::string &A : D.Args) {
      if (A == "/") {
        RowData.emplace_back();
        continue;
      }
      int64_t V;
      if (!parseInt(A, V))
        return formatStr("matrix entry '%s' is not an integer", A.c_str());
      RowData.back().push_back(V);
    }
    if (RowData.size() != N)
      return formatStr("unimodular needs %u rows, got %zu", N,
                       RowData.size());
    std::vector<int64_t> Flat;
    for (const std::vector<int64_t> &Row : RowData) {
      if (Row.size() != N)
        return formatStr("unimodular row has %zu entries, expected %u",
                         Row.size(), N);
      Flat.insert(Flat.end(), Row.begin(), Row.end());
    }
    UnimodularMatrix M(N, std::move(Flat));
    // Huge entries can overflow the determinant computation; degrade to a
    // clean rejection rather than UB.
    OverflowGuard Guard;
    bool Uni = M.isUnimodular();
    if (Guard.triggered())
      return formatStr("matrix %s overflows determinant arithmetic",
                       M.str().c_str());
    if (!Uni)
      return formatStr("matrix %s has determinant %lld (not unimodular)",
                       M.str().c_str(),
                       static_cast<long long>(M.determinant()));
    Seq.append(makeUnimodular(N, std::move(M)));
    return std::string();
  }

  return formatStr("unknown directive '%s'", D.Name.c_str());
}

} // namespace

ErrorOr<TransformSequence>
irlt::parseTransformScript(const std::string &Script, unsigned InitialLoops) {
  TransformSequence Seq;
  unsigned N = InitialLoops;
  std::vector<Diag> Diags;

  for (const Directive &D : splitDirectives(Script)) {
    std::string E = parseDirective(D, Seq, N);
    if (E.empty())
      continue;
    // Recover: record the diagnostic, keep the nest size unchanged, and
    // keep checking the remaining directives so one bad line does not
    // mask errors after it.
    Diags.push_back(
        Diag::error(std::move(E)).atLine(D.LineNo).inTemplate(D.Name));
  }
  if (!Diags.empty())
    return Failure(std::move(Diags));
  return Seq;
}
