//===- driver/Script.cpp - Textual transformation scripts ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "driver/Script.h"

#include "support/Printing.h"
#include "transform/Templates.h"

#include <cctype>
#include <sstream>

using namespace irlt;

namespace {

/// One whitespace-separated directive, already tokenized.
struct Directive {
  std::string Name;
  std::vector<std::string> Args;
  unsigned LineNo;
};

std::vector<Directive> splitDirectives(const std::string &Script) {
  std::vector<Directive> Out;
  unsigned LineNo = 0;
  std::istringstream Lines(Script);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    // Strip comments.
    size_t Bang = Line.find('!');
    if (Bang != std::string::npos)
      Line.resize(Bang);
    // Split on ';' for multiple directives per line.
    std::istringstream Parts(Line);
    std::string Part;
    while (std::getline(Parts, Part, ';')) {
      std::istringstream Words(Part);
      Directive D;
      D.LineNo = LineNo;
      std::string W;
      while (Words >> W) {
        if (D.Name.empty())
          D.Name = W;
        else
          D.Args.push_back(W);
      }
      if (!D.Name.empty())
        Out.push_back(std::move(D));
    }
  }
  return Out;
}

bool parseInt(const std::string &S, int64_t &V) {
  if (S.empty())
    return false;
  size_t I = S[0] == '-' ? 1 : 0;
  if (I == S.size())
    return false;
  for (; I < S.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(S[I])))
      return false;
  V = std::stoll(S);
  return true;
}

bool isIdent(const std::string &S) {
  if (S.empty() || !(std::isalpha(static_cast<unsigned char>(S[0])) ||
                     S[0] == '_'))
    return false;
  for (char C : S)
    if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_'))
      return false;
  return true;
}

/// An argument that is an integer constant or a symbolic name.
ErrorOr<ExprRef> parseSize(const Directive &D, const std::string &S) {
  int64_t V;
  if (parseInt(S, V))
    return Expr::intConst(V);
  if (isIdent(S))
    return ExprRef(Expr::var(S));
  return Failure(formatStr("line %u: '%s' is neither an integer nor a name",
                           D.LineNo, S.c_str()));
}

/// A 1-based loop position within [1, N].
ErrorOr<unsigned> parsePos(const Directive &D, const std::string &S,
                           unsigned N) {
  int64_t V;
  if (!parseInt(S, V) || V < 1 || V > static_cast<int64_t>(N))
    return Failure(formatStr(
        "line %u (%s): loop position '%s' is not in [1, %u]", D.LineNo,
        D.Name.c_str(), S.c_str(), N));
  return static_cast<unsigned>(V);
}

} // namespace

ErrorOr<TransformSequence>
irlt::parseTransformScript(const std::string &Script, unsigned InitialLoops) {
  TransformSequence Seq;
  unsigned N = InitialLoops;

  for (const Directive &D : splitDirectives(Script)) {
    auto wrongArity = [&](const char *Expected) {
      return Failure(formatStr("line %u: %s expects %s (got %zu arguments)",
                               D.LineNo, D.Name.c_str(), Expected,
                               D.Args.size()));
    };

    if (D.Name == "interchange") {
      if (D.Args.size() != 2)
        return wrongArity("two loop positions");
      ErrorOr<unsigned> A = parsePos(D, D.Args[0], N);
      ErrorOr<unsigned> B = parsePos(D, D.Args[1], N);
      if (!A)
        return Failure(A.message());
      if (!B)
        return Failure(B.message());
      Seq.append(makeInterchange(N, *A - 1, *B - 1));
      continue;
    }

    if (D.Name == "reverse") {
      if (D.Args.size() != 1)
        return wrongArity("one loop position");
      ErrorOr<unsigned> K = parsePos(D, D.Args[0], N);
      if (!K)
        return Failure(K.message());
      std::vector<bool> Rev(N, false);
      Rev[*K - 1] = true;
      std::vector<unsigned> Perm(N);
      for (unsigned I = 0; I < N; ++I)
        Perm[I] = I;
      Seq.append(makeReversePermute(N, std::move(Rev), std::move(Perm)));
      continue;
    }

    if (D.Name == "permute") {
      if (D.Args.size() != N)
        return wrongArity(formatStr("%u positions", N).c_str());
      std::vector<unsigned> Perm(N);
      std::vector<bool> Seen(N, false);
      for (unsigned I = 0; I < N; ++I) {
        ErrorOr<unsigned> P = parsePos(D, D.Args[I], N);
        if (!P)
          return Failure(P.message());
        if (Seen[*P - 1])
          return Failure(formatStr("line %u: permute repeats position %u",
                                   D.LineNo, *P));
        Seen[*P - 1] = true;
        Perm[I] = *P - 1;
      }
      Seq.append(
          makeReversePermute(N, std::vector<bool>(N, false), std::move(Perm)));
      continue;
    }

    if (D.Name == "parallelize") {
      if (D.Args.empty())
        return wrongArity("at least one loop position");
      std::vector<bool> Flags(N, false);
      for (const std::string &A : D.Args) {
        ErrorOr<unsigned> P = parsePos(D, A, N);
        if (!P)
          return Failure(P.message());
        Flags[*P - 1] = true;
      }
      Seq.append(makeParallelize(N, std::move(Flags)));
      continue;
    }

    if (D.Name == "block" || D.Name == "interleave") {
      if (D.Args.size() < 3)
        return wrongArity("i j size...");
      ErrorOr<unsigned> I = parsePos(D, D.Args[0], N);
      ErrorOr<unsigned> J = parsePos(D, D.Args[1], N);
      if (!I)
        return Failure(I.message());
      if (!J)
        return Failure(J.message());
      if (*I > *J)
        return Failure(formatStr("line %u: %s range [%u, %u] is empty",
                                 D.LineNo, D.Name.c_str(), *I, *J));
      unsigned Span = *J - *I + 1;
      if (D.Args.size() != 2 + Span)
        return wrongArity(
            formatStr("%u sizes for range [%u, %u]", Span, *I, *J).c_str());
      std::vector<ExprRef> Sizes;
      for (unsigned K = 0; K < Span; ++K) {
        ErrorOr<ExprRef> S = parseSize(D, D.Args[2 + K]);
        if (!S)
          return Failure(S.message());
        Sizes.push_back(*S);
      }
      if (D.Name == "block")
        Seq.append(makeBlock(N, *I, *J, std::move(Sizes)));
      else
        Seq.append(makeInterleave(N, *I, *J, std::move(Sizes)));
      N += Span;
      continue;
    }

    if (D.Name == "coalesce") {
      if (D.Args.size() != 2 && D.Args.size() != 3)
        return wrongArity("i j [newname]");
      ErrorOr<unsigned> I = parsePos(D, D.Args[0], N);
      ErrorOr<unsigned> J = parsePos(D, D.Args[1], N);
      if (!I)
        return Failure(I.message());
      if (!J)
        return Failure(J.message());
      if (*I > *J)
        return Failure(
            formatStr("line %u: coalesce range is empty", D.LineNo));
      std::optional<std::string> Name;
      if (D.Args.size() == 3) {
        if (!isIdent(D.Args[2]))
          return Failure(formatStr("line %u: '%s' is not a valid name",
                                   D.LineNo, D.Args[2].c_str()));
        Name = D.Args[2];
      }
      Seq.append(makeCoalesce(N, *I, *J, Name));
      N -= *J - *I;
      continue;
    }

    if (D.Name == "stripmine") {
      if (D.Args.size() != 2)
        return wrongArity("k size");
      ErrorOr<unsigned> K = parsePos(D, D.Args[0], N);
      if (!K)
        return Failure(K.message());
      ErrorOr<ExprRef> S = parseSize(D, D.Args[1]);
      if (!S)
        return Failure(S.message());
      Seq.append(makeStripMine(N, *K, *S));
      N += 1;
      continue;
    }

    if (D.Name == "skew") {
      if (D.Args.size() != 3)
        return wrongArity("src dst factor");
      ErrorOr<unsigned> Src = parsePos(D, D.Args[0], N);
      ErrorOr<unsigned> Dst = parsePos(D, D.Args[1], N);
      if (!Src)
        return Failure(Src.message());
      if (!Dst)
        return Failure(Dst.message());
      int64_t F;
      if (!parseInt(D.Args[2], F) || F == 0)
        return Failure(formatStr(
            "line %u: skew factor '%s' is not a non-zero integer", D.LineNo,
            D.Args[2].c_str()));
      if (*Src == *Dst)
        return Failure(
            formatStr("line %u: skew source equals destination", D.LineNo));
      Seq.append(makeUnimodular(
          N, UnimodularMatrix::skew(N, *Src - 1, *Dst - 1, F)));
      continue;
    }

    if (D.Name == "unimodular") {
      // Row-major entries with '/' separating rows: "1 1 / 1 0".
      std::vector<std::vector<int64_t>> RowData(1);
      for (const std::string &A : D.Args) {
        if (A == "/") {
          RowData.emplace_back();
          continue;
        }
        int64_t V;
        if (!parseInt(A, V))
          return Failure(formatStr("line %u: matrix entry '%s' is not an "
                                   "integer",
                                   D.LineNo, A.c_str()));
        RowData.back().push_back(V);
      }
      if (RowData.size() != N)
        return Failure(formatStr("line %u: unimodular needs %u rows, got %zu",
                                 D.LineNo, N, RowData.size()));
      std::vector<int64_t> Flat;
      for (const std::vector<int64_t> &Row : RowData) {
        if (Row.size() != N)
          return Failure(formatStr(
              "line %u: unimodular row has %zu entries, expected %u",
              D.LineNo, Row.size(), N));
        Flat.insert(Flat.end(), Row.begin(), Row.end());
      }
      UnimodularMatrix M(N, std::move(Flat));
      if (!M.isUnimodular())
        return Failure(formatStr(
            "line %u: matrix %s has determinant %lld (not unimodular)",
            D.LineNo, M.str().c_str(),
            static_cast<long long>(M.determinant())));
      Seq.append(makeUnimodular(N, std::move(M)));
      continue;
    }

    return Failure(formatStr("line %u: unknown directive '%s'", D.LineNo,
                             D.Name.c_str()));
  }
  return Seq;
}
