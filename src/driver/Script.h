//===- driver/Script.h - Textual transformation scripts ------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small textual front end for building transformation sequences - the
/// scripting surface of the `irlt-opt` tool. One directive per line (or
/// ';'-separated); loop positions are 1-based as in the paper:
///
/// \code
///   interchange 1 2          ! ReversePermute swapping two loops
///   reverse 2                ! ReversePermute reversing loop 2
///   permute 3 1 2            ! loop k moves to position perm[k]
///   parallelize 1 3          ! listed loops become pardo
///   block 1 3 8 8 8          ! Block(i, j, bsize...) - sizes may be
///                            !   integers or symbolic names
///   coalesce 1 2 [name]      ! Coalesce(i, j), optional new variable
///   interleave 1 2 4 4       ! Interleave(i, j, isize...)
///   stripmine 2 16           ! StripMine(k, size)
///   unimodular 1 1 / 1 0     ! row-major matrix, rows '/'-separated
///   skew 1 2 1               ! Unimodular skew: y_2 += 1 * x_1
/// \endcode
///
/// Directives carry no nest size: it is threaded through the parse, each
/// directive consuming the current size and producing the next - which is
/// why parsing needs only the *initial* loop count.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_DRIVER_SCRIPT_H
#define IRLT_DRIVER_SCRIPT_H

#include "support/ErrorOr.h"
#include "transform/Sequence.h"

#include <string>

namespace irlt {

/// Parses \p Script into a sequence applicable to a nest of
/// \p InitialLoops loops. Recovers after a malformed directive (skipping
/// it, keeping the nest size unchanged) and reports *all* errors: the
/// failure carries one Diag per bad directive, each tagged with its line
/// and directive name.
ErrorOr<TransformSequence> parseTransformScript(const std::string &Script,
                                                unsigned InitialLoops);

} // namespace irlt

#endif // IRLT_DRIVER_SCRIPT_H
