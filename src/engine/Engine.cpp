//===- engine/Engine.cpp - High-throughput batch pipeline engine ---------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "analysis/Analysis.h"
#include "ir/NestHash.h"
#include "support/Json.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace irlt;
using namespace irlt::engine;

const char *engine::stageName(Stage S) {
  switch (S) {
  case Stage::Parse:
    return "parse";
  case Stage::Deps:
    return "deps";
  case Stage::Plan:
    return "plan";
  case Stage::Legality:
    return "legality";
  case Stage::Apply:
    return "apply";
  case Stage::Validate:
    return "validate";
  case Stage::Total:
    return "total";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

uint64_t nsSince(Clock::time_point T0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - T0)
          .count());
}

/// Times one stage and records the sample.
template <typename F>
auto timed(StageSampler &S, Stage St, F &&Fn) -> decltype(Fn()) {
  Clock::time_point T0 = Clock::now();
  if constexpr (std::is_void_v<decltype(Fn())>) {
    Fn();
    S.SamplesNs[static_cast<unsigned>(St)].push_back(nsSince(T0));
  } else {
    auto R = Fn();
    S.SamplesNs[static_cast<unsigned>(St)].push_back(nsSince(T0));
    return R;
  }
}

void writeDiags(json::JsonWriter &W, const std::vector<Diag> &Diags) {
  W.key("diags").beginArray();
  for (const Diag &D : Diags) {
    W.beginObject();
    W.field("severity", D.Severity == DiagSeverity::Error     ? "error"
                        : D.Severity == DiagSeverity::Warning ? "warning"
                                                              : "note");
    if (D.Line)
      W.field("line", static_cast<uint64_t>(D.Line));
    if (D.Stage)
      W.field("stage", static_cast<uint64_t>(D.Stage));
    if (!D.TemplateName.empty())
      W.field("template", D.TemplateName);
    W.field("message", D.Message);
    W.endObject();
  }
  W.endArray();
}

void writeLegality(json::JsonWriter &W, const LegalityResult &L) {
  W.field("legal", L.Legal);
  W.field("reject_kind", rejectKindName(L.Kind));
  if (!L.Legal)
    W.field("reason", L.Reason);
  else
    W.field("final_deps", L.FinalDeps.str());
}

void writeValidation(json::JsonWriter &W, const witness::LadderResult &LR) {
  W.key("validate").beginObject();
  W.field("chosen", static_cast<int64_t>(LR.Chosen));
  W.field("fell_back_to_identity", LR.fellBackToIdentity());
  W.key("outcomes").beginArray();
  for (const witness::CandidateOutcome &O : LR.Outcomes) {
    W.beginObject();
    W.field("status", witness::validateStatusName(O.Status));
    W.field("detail", O.Detail);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

/// Fails \p Out with a structured error record and returns it.
RequestOutcome fail(RequestOutcome &&Out, const EngineOptions &EO,
                    const std::string &Id, const char *Kind,
                    const std::string &Message,
                    const std::vector<Diag> *Diags = nullptr) {
  Out.Error = true;
  Out.ErrorKind = Kind;
  Out.Record = makeErrorRecord(EO.ToolName, Id, Kind, Message, Diags);
  return std::move(Out);
}

} // namespace

std::string engine::makeErrorRecord(const std::string &Tool,
                                    const std::string &Id,
                                    const std::string &Kind,
                                    const std::string &Message,
                                    const std::vector<Diag> *Diags) {
  json::JsonWriter W;
  json::beginToolRecord(W, Tool);
  W.field("id", Id);
  W.field("ok", false);
  W.key("error").beginObject();
  W.field("kind", Kind);
  W.field("message", Message);
  if (Diags)
    writeDiags(W, *Diags);
  W.endObject();
  W.endObject();
  return W.take();
}

RequestOutcome engine::processRequest(api::Pipeline &P,
                                      const EngineOptions &EO,
                                      const std::string &Line, uint64_t LineNo,
                                      StageSampler &Sampler,
                                      const DeadlineToken *DL) {
  RequestOutcome Out;
  std::string LineId = std::to_string(LineNo);

  // Ingestion hardening: refuse pathological lines *before* the JSON
  // parser sees them, as structured per-record diagnostics. The line
  // content is never echoed (an oversized or NUL-ridden line would make
  // the error record itself pathological).
  if (Line.size() > EO.MaxLineBytes)
    return fail(std::move(Out), EO, LineId, errkind::OversizedLine,
                "request line " + LineId + " is " +
                    std::to_string(Line.size()) +
                    " bytes, over the per-line limit of " +
                    std::to_string(EO.MaxLineBytes));
  if (Line.find('\0') != std::string::npos)
    return fail(std::move(Out), EO, LineId, errkind::EmbeddedNul,
                "request line " + LineId + " contains an embedded NUL byte");

  // A deadline can expire before the request is even looked at (queue
  // wait under load); every later check sits on a stage boundary.
  auto deadlineExpired = [&](const char *BeforeStage,
                             const std::string &Id) -> bool {
    if (!DL || !DL->expired())
      return false;
    Out.Error = true;
    Out.ErrorKind = errkind::Deadline;
    Out.Record = makeErrorRecord(
        EO.ToolName, Id, errkind::Deadline,
        std::string("deadline exceeded before stage '") + BeforeStage + "'");
    return true;
  };
  if (deadlineExpired("parse", LineId))
    return Out;

  ErrorOr<BatchRequest> ReqOr = parseRequestLine(Line, LineNo);
  if (!ReqOr)
    return fail(std::move(Out), EO, LineId, errkind::Request, ReqOr.message(),
                &ReqOr.diags());
  BatchRequest Req = ReqOr.take();
  if (EO.ForcedValidateBudget && !Req.ValidateBudget && !Req.ValidateNative)
    Req.ValidateBudget = EO.ForcedValidateBudget;
  if (EO.ForcedValidateNative && !Req.ValidateBudget && !Req.ValidateNative)
    Req.ValidateNative = true;

  // Deterministic fault injection: a worker exception for targeted ids,
  // which the worker loop degrades to a structured "internal" record.
  if (EO.Faults.WorkerThrow &&
      Req.Id.find(WorkerThrowIdMarker) != std::string::npos)
    throw std::runtime_error("injected worker exception (worker-throw) for "
                             "request id '" +
                             Req.Id + "'");

  ErrorOr<LoopNest> NestOr =
      timed(Sampler, Stage::Parse, [&] { return P.loadNest(Req.NestSource); });
  if (!NestOr)
    return fail(std::move(Out), EO, Req.Id, errkind::Nest,
                "nest: " + NestOr.message(), &NestOr.diags());
  LoopNest Nest = NestOr.take();

  if (EO.CollectNestKeys) {
    OverflowGuard Guard;
    std::string Key = canonicalNestKey(Nest);
    // A saturated fingerprint is not a usable cache key (see
    // api::Pipeline); such a request is simply not journaled.
    if (!Guard.triggered()) {
      Out.NestKey = std::move(Key);
      Out.NestSource = Req.NestSource;
      Out.Script = Req.Script;
    }
  }

  if (deadlineExpired("deps", Req.Id))
    return Out;
  bool DepOverflow = false;
  std::shared_ptr<const DepSet> D = timed(
      Sampler, Stage::Deps, [&] { return P.dependences(Nest, &DepOverflow); });
  if (DepOverflow)
    return fail(
        std::move(Out), EO, Req.Id, errkind::DepsOverflow,
        "deps: dependence analysis overflows the int64 coefficient range");

  json::JsonWriter W;
  json::beginToolRecord(W, EO.ToolName);
  W.field("id", Req.Id);
  W.field("ok", true);
  W.field("mode", !Req.Auto.empty() ? "auto" : "script");
  W.field("deps", D->str());

  TransformSequence Seq;
  bool SeqLegal = true; // script mode: result of the legality test

  if (!Req.Auto.empty()) {
    if (deadlineExpired("plan", Req.Id))
      return Out;
    search::SearchOptions SO;
    SO.Obj = Req.Auto == "locality" ? search::Objective::Locality
             : Req.Auto == "par"    ? search::Objective::Parallelism
                                    : search::Objective::Both;
    SO.Beam = Req.Beam;
    SO.Depth = Req.Depth;
    SO.TopK = Req.TopK;
    // One thread per request: the engine parallelizes across requests.
    SO.Threads = 1;
    search::SearchResult SR =
        timed(Sampler, Stage::Plan, [&] { return P.searchAuto(Nest, SO); });
    if (!SR.Error.empty())
      return fail(std::move(Out), EO, Req.Id, errkind::Search,
                  "auto: " + SR.Error);
    W.field("objective", Req.Auto);
    if (SR.Best) {
      Seq = SR.Best->Seq;
      W.key("winner").beginObject();
      W.field("cost", SR.Best->Cost);
      W.field("miss_ratio", SR.Best->MissRatio);
      W.field("par_score", static_cast<int64_t>(SR.Best->ParScore));
      W.key("parallel_loops").beginArray();
      for (unsigned L : SR.Best->ParallelLoops)
        W.value(static_cast<uint64_t>(L));
      W.endArray();
      W.endObject();
    } else {
      W.nullField("winner");
    }
    W.key("search_stats").beginObject();
    W.field("enumerated", SR.Stats.Enumerated);
    W.field("pruned", SR.Stats.Pruned);
    W.field("deduped", SR.Stats.Deduped);
    W.field("leaves", SR.Stats.Leaves);
    W.field("legal", SR.Stats.Legal);
    W.field("analyzer_pruned", SR.Stats.AnalyzerPruned);
    W.endObject();

    if ((Req.ValidateBudget || Req.ValidateNative) && SR.Best) {
      if (deadlineExpired("validate", Req.Id))
        return Out;
      witness::ValidateOptions VO = Req.ValidateNative
                                        ? witness::ValidateOptions::nativeDefaults()
                                        : witness::ValidateOptions::defaults();
      if (Req.ValidateBudget)
        VO.MaxInstances = Req.ValidateBudget;
      VO.ReproDir.clear(); // no filesystem writes from engine workers
      std::vector<TransformSequence> Cands;
      for (const search::ScoredSequence &S : SR.Top)
        Cands.push_back(S.Seq);
      if (Cands.empty())
        Cands.push_back(SR.Best->Seq);
      witness::LadderResult LR =
          timed(Sampler, Stage::Validate,
                [&] { return P.validate(Nest, Cands, VO); });
      writeValidation(W, LR);
      Seq = LR.fellBackToIdentity() ? TransformSequence()
                                    : Cands[static_cast<size_t>(LR.Chosen)];
    }
    if (Req.Reduce) {
      OverflowGuard Guard;
      TransformSequence Red = Seq.reduced();
      if (Guard.triggered())
        return fail(std::move(Out), EO, Req.Id, errkind::ReduceOverflow,
                    "reduce: sequence reduction overflows the int64 range");
      Seq = std::move(Red);
    }
    W.field("sequence", Seq.str());
    if (Req.Analyze) {
      analysis::AnalysisReport AR = P.analyze(Seq, Nest);
      W.key("analysis");
      analysis::writeReport(W, AR);
      if (AR.hasErrors())
        Out.Illegal = true;
    }
    if (deadlineExpired("legality", Req.Id))
      return Out;
    // The winner is legal by construction; re-deriving the verdict here
    // exercises (and fills) the shared legality cache and reports the
    // final mapped dependence set.
    LegalityResult L = timed(Sampler, Stage::Legality,
                             [&] { return P.checkLegality(Seq, Nest); });
    writeLegality(W, L);
    SeqLegal = L.Legal;
  } else {
    if (deadlineExpired("plan", Req.Id))
      return Out;
    ErrorOr<TransformSequence> SeqOr = timed(Sampler, Stage::Plan, [&] {
      return P.parseScript(Req.Script, Nest.numLoops());
    });
    if (!SeqOr)
      return fail(std::move(Out), EO, Req.Id, errkind::Script,
                  "script: " + SeqOr.message(), &SeqOr.diags());
    Seq = SeqOr.take();
    if (Req.Reduce) {
      OverflowGuard Guard;
      TransformSequence Red = Seq.reduced();
      if (Guard.triggered())
        return fail(std::move(Out), EO, Req.Id, errkind::ReduceOverflow,
                    "reduce: sequence reduction overflows the int64 range");
      Seq = std::move(Red);
    }
    W.field("sequence", Seq.str());
    if (Req.Analyze) {
      analysis::AnalysisReport AR = P.analyze(Seq, Nest);
      W.key("analysis");
      analysis::writeReport(W, AR);
      if (AR.hasErrors())
        Out.Illegal = true;
    }

    if (Req.Legality) {
      if (deadlineExpired("legality", Req.Id))
        return Out;
      LegalityResult L = timed(Sampler, Stage::Legality,
                               [&] { return P.checkLegality(Seq, Nest); });
      writeLegality(W, L);
      SeqLegal = L.Legal;
      if (!L.Legal)
        Out.Illegal = true;
    }

    if ((Req.ValidateBudget || Req.ValidateNative) && SeqLegal) {
      if (deadlineExpired("validate", Req.Id))
        return Out;
      witness::ValidateOptions VO = Req.ValidateNative
                                        ? witness::ValidateOptions::nativeDefaults()
                                        : witness::ValidateOptions::defaults();
      if (Req.ValidateBudget)
        VO.MaxInstances = Req.ValidateBudget;
      VO.ReproDir.clear();
      std::vector<TransformSequence> Cands{Seq};
      witness::LadderResult LR =
          timed(Sampler, Stage::Validate,
                [&] { return P.validate(Nest, Cands, VO); });
      writeValidation(W, LR);
      if (LR.fellBackToIdentity())
        Seq = TransformSequence();
    }
  }

  if (!Req.Emit.empty() && SeqLegal) {
    if (deadlineExpired("apply", Req.Id))
      return Out;
    ErrorOr<LoopNest> Applied =
        timed(Sampler, Stage::Apply, [&] { return P.apply(Seq, Nest); });
    if (!Applied)
      return fail(std::move(Out), EO, Req.Id, errkind::Apply,
                  "apply: " + Applied.message(), &Applied.diags());
    W.field("output", P.emit(*Applied, Req.Emit == "c" ? api::EmitKind::C
                                                       : api::EmitKind::Loop));
  }

  W.endObject();
  Out.Record = W.take();
  return Out;
}

StageMetrics engine::summarizeStage(std::vector<uint64_t> &&Samples) {
  StageMetrics M;
  M.Count = Samples.size();
  if (Samples.empty())
    return M;
  for (uint64_t S : Samples)
    M.TotalNs += S;
  std::sort(Samples.begin(), Samples.end());
  M.P50Ns = Samples[(Samples.size() - 1) / 2];
  M.P95Ns = Samples[(Samples.size() - 1) * 95 / 100];
  return M;
}

std::vector<std::string> engine::splitLines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    if (Nl == std::string::npos) {
      if (Pos < Text.size())
        Lines.push_back(Text.substr(Pos));
      break;
    }
    Lines.push_back(Text.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
  // CRLF corpora parse like LF ones (the '\r' would otherwise poison the
  // trailing field of every request line).
  for (std::string &L : Lines)
    if (!L.empty() && L.back() == '\r')
      L.pop_back();
  return Lines;
}

BatchEngine::BatchEngine(EngineOptions O)
    : Opts(O),
      P(api::PipelineOptions{O.EnableCache, {}, O.CacheCapacity}) {}

EngineMetrics
BatchEngine::run(const std::vector<std::string> &Lines,
                 const std::function<void(const std::string &)> &Sink) {
  // Non-blank lines are the work items; 1-based line numbers seed the
  // default request ids.
  std::vector<std::pair<uint64_t, const std::string *>> Work;
  for (size_t I = 0; I < Lines.size(); ++I) {
    bool Blank = Lines[I].find_first_not_of(" \t\r") == std::string::npos;
    if (!Blank)
      Work.emplace_back(I + 1, &Lines[I]);
  }
  size_t N = Work.size();
  unsigned Jobs = std::max(1u, Opts.Jobs);

  /// Per-worker tallies, merged after the run.
  struct WorkerData {
    StageSampler Sampler;
    uint64_t BusyNs = 0;
    uint64_t Errors = 0;
    uint64_t Illegal = 0;
  };

  std::vector<std::string> Results(N);
  std::vector<char> Done(N, 0);
  std::atomic<size_t> Next{0};
  std::mutex Mu;
  std::condition_variable Cv;
  std::vector<WorkerData> Workers(Jobs);

  auto stopped = [&] {
    return Opts.StopFlag && Opts.StopFlag->load(std::memory_order_relaxed);
  };

  api::CacheStats Before = P.cacheStats();
  Clock::time_point Start = Clock::now();

  std::vector<std::thread> Threads;
  Threads.reserve(Jobs);
  for (unsigned J = 0; J < Jobs; ++J) {
    Threads.emplace_back([&, J] {
      WorkerData &WD = Workers[J];
      for (;;) {
        size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= N)
          break;
        RequestOutcome O;
        if (stopped()) {
          // Interrupted: skip unstarted requests (an empty slot tells
          // the flusher where the clean prefix ends). In-flight requests
          // on other workers still finish - no torn records.
          std::lock_guard<std::mutex> Lock(Mu);
          Done[I] = 1;
          Cv.notify_one();
          continue;
        }
        Clock::time_point T0 = Clock::now();
        O = timed(WD.Sampler, Stage::Total, [&]() -> RequestOutcome {
          try {
            return processRequest(P, Opts, *Work[I].second, Work[I].first,
                                  WD.Sampler);
          } catch (const std::exception &E) {
            RequestOutcome Bad;
            Bad.Error = true;
            Bad.ErrorKind = errkind::Internal;
            Bad.Record = makeErrorRecord(
                Opts.ToolName, std::to_string(Work[I].first),
                errkind::Internal,
                std::string("internal: worker exception: ") + E.what());
            return Bad;
          }
        });
        WD.BusyNs += nsSince(T0);
        WD.Errors += O.Error;
        WD.Illegal += O.Illegal;
        {
          std::lock_guard<std::mutex> Lock(Mu);
          Results[I] = std::move(O.Record);
          Done[I] = 1;
        }
        Cv.notify_one();
      }
    });
  }

  // Completed-prefix flusher: emit records in input order as they land.
  // On interruption the first skipped slot ends the stream - the sink
  // always sees a clean prefix, never a gap.
  uint64_t Served = 0;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    for (size_t I = 0; I < N; ++I) {
      Cv.wait(Lock, [&] { return Done[I] != 0; });
      if (Results[I].empty())
        break;
      std::string R = std::move(Results[I]);
      Lock.unlock();
      Sink(R);
      ++Served;
      Lock.lock();
    }
  }
  for (std::thread &T : Threads)
    T.join();

  EngineMetrics M;
  M.Requests = N;
  M.Served = Served;
  M.Interrupted = stopped() && Served < N;
  M.Jobs = Jobs;
  M.WallNs = nsSince(Start);
  api::CacheStats After = P.cacheStats();
  M.Cache.DepHits = After.DepHits - Before.DepHits;
  M.Cache.DepMisses = After.DepMisses - Before.DepMisses;
  M.Cache.LegalityHits = After.LegalityHits - Before.LegalityHits;
  M.Cache.LegalityMisses = After.LegalityMisses - Before.LegalityMisses;
  M.Cache.DepLookups = M.Cache.DepHits + M.Cache.DepMisses;
  M.Cache.LegalityLookups = M.Cache.LegalityHits + M.Cache.LegalityMisses;
  M.Cache.DepInserts = After.DepInserts - Before.DepInserts;
  M.Cache.DepEvictions = After.DepEvictions - Before.DepEvictions;
  M.Cache.LegalityInserts = After.LegalityInserts - Before.LegalityInserts;
  M.Cache.LegalityEvictions =
      After.LegalityEvictions - Before.LegalityEvictions;
  M.Cache.DepEntries = After.DepEntries;
  M.Cache.LegalityEntries = After.LegalityEntries;
  for (unsigned S = 0; S < NumStages; ++S) {
    std::vector<uint64_t> All;
    for (WorkerData &WD : Workers)
      All.insert(All.end(), WD.Sampler.SamplesNs[S].begin(),
                 WD.Sampler.SamplesNs[S].end());
    M.Stages[S] = summarizeStage(std::move(All));
  }
  for (const WorkerData &WD : Workers) {
    M.BusyNs += WD.BusyNs;
    M.Errors += WD.Errors;
    M.Illegal += WD.Illegal;
  }
  return M;
}

std::string BatchEngine::runToString(const std::vector<std::string> &Lines,
                                     EngineMetrics *MetricsOut) {
  std::string Out;
  EngineMetrics M = run(Lines, [&](const std::string &R) {
    Out += R;
    Out += '\n';
  });
  if (MetricsOut)
    *MetricsOut = M;
  return Out;
}

std::string EngineMetrics::toJson() const {
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-batch");
  W.field("record", "metrics");
  W.field("requests", Requests);
  W.field("served", Served);
  W.field("errors", Errors);
  W.field("illegal", Illegal);
  W.field("interrupted", Interrupted);
  W.field("jobs", static_cast<uint64_t>(Jobs));
  W.field("wall_ms", static_cast<double>(WallNs) / 1e6);
  W.field("worker_utilization", workerUtilization());
  W.key("dep_cache").beginObject();
  W.field("hits", Cache.DepHits);
  W.field("misses", Cache.DepMisses);
  W.field("lookups", Cache.DepLookups);
  W.field("inserts", Cache.DepInserts);
  W.field("evictions", Cache.DepEvictions);
  W.field("entries", Cache.DepEntries);
  W.field("hit_rate", Cache.depHitRate());
  W.endObject();
  W.key("legality_cache").beginObject();
  W.field("hits", Cache.LegalityHits);
  W.field("misses", Cache.LegalityMisses);
  W.field("lookups", Cache.LegalityLookups);
  W.field("inserts", Cache.LegalityInserts);
  W.field("evictions", Cache.LegalityEvictions);
  W.field("entries", Cache.LegalityEntries);
  W.field("hit_rate", Cache.legalityHitRate());
  W.endObject();
  W.key("stages").beginArray();
  for (unsigned S = 0; S < NumStages; ++S) {
    const StageMetrics &SM = Stages[S];
    W.beginObject();
    W.field("name", stageName(static_cast<Stage>(S)));
    W.field("count", SM.Count);
    W.field("total_ms", static_cast<double>(SM.TotalNs) / 1e6);
    W.field("p50_us", static_cast<double>(SM.P50Ns) / 1e3);
    W.field("p95_us", static_cast<double>(SM.P95Ns) / 1e3);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}
