//===- engine/Engine.h - High-throughput batch pipeline engine -----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch pipeline engine behind irlt-batch (docs/API.md): accepts a
/// stream of ndjson requests (engine/Wire.h), executes them on a worker
/// pool that shares one api::Pipeline - and therefore shares the
/// dependence-analysis and legality memoization caches - and emits one
/// versioned JSON result record per request.
///
/// Determinism contract: the result stream is *byte-identical for any
/// worker count*. Workers claim requests by atomic index and fill
/// preallocated result slots; the caller's sink receives completed
/// records strictly in input order (a completed-prefix flusher, so
/// emission streams while later requests are still in flight). Every
/// per-request computation is deterministic (search runs with one
/// thread per request - the engine's parallelism is *across* requests -
/// and validation runs with reproducer dumping and wall budgets off),
/// and nothing time- or thread-dependent is written into result records.
///
/// Metrics (requests served, cache hit rates, p50/p95 per-stage latency,
/// worker utilization) are collected per worker and merged after the
/// run; they live outside the result stream precisely because latencies
/// are not deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_ENGINE_ENGINE_H
#define IRLT_ENGINE_ENGINE_H

#include "api/Pipeline.h"
#include "engine/Wire.h"

#include <functional>
#include <string>
#include <vector>

namespace irlt {
namespace engine {

/// Engine configuration.
struct EngineOptions {
  /// Worker threads (>= 1). The result stream is identical for any value.
  unsigned Jobs = 1;
  /// Shared memoization caches (api::PipelineOptions::EnableCache).
  bool EnableCache = true;
  /// Force validation of every request with this instance budget
  /// (irlt-batch --validate[=N]); per-request "validate" fields win.
  uint64_t ForcedValidateBudget = 0;
};

/// Names of the measured pipeline stages, in reporting order.
enum class Stage : unsigned {
  Parse,    ///< loop-language parsing
  Deps,     ///< dependence analysis (cache included)
  Plan,     ///< script parsing or beam search
  Legality, ///< the uniform legality test (cache included)
  Apply,    ///< bounds pipeline + rendering
  Validate, ///< bounded concrete-execution validation
  Total,    ///< whole request
};
inline constexpr unsigned NumStages = 7;
const char *stageName(Stage S);

/// Merged percentile summary of one stage.
struct StageMetrics {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t P50Ns = 0;
  uint64_t P95Ns = 0;
};

/// The post-run metrics block.
struct EngineMetrics {
  uint64_t Requests = 0;
  /// Records with "ok": false (malformed request, parse failure, ...).
  uint64_t Errors = 0;
  /// Script-mode requests whose sequence the legality test rejected
  /// (served successfully; counted for observability).
  uint64_t Illegal = 0;
  unsigned Jobs = 1;
  uint64_t WallNs = 0;
  /// Sum of per-worker busy time; utilization = Busy / (Jobs * Wall).
  uint64_t BusyNs = 0;
  api::CacheStats Cache;
  StageMetrics Stages[NumStages];

  double workerUtilization() const {
    return WallNs && Jobs ? static_cast<double>(BusyNs) /
                                (static_cast<double>(WallNs) * Jobs)
                          : 0.0;
  }

  /// The metrics block as one JSON record (same schema prologue as the
  /// result records, "record": "metrics").
  std::string toJson() const;
};

/// The engine. Reusable: each run() processes one corpus; the caches
/// persist across runs of the same engine instance.
class BatchEngine {
public:
  explicit BatchEngine(EngineOptions Opts = {});

  /// Processes \p Lines (one ndjson request per line; blank lines are
  /// ignored) and calls \p Sink once per request, in input order, with
  /// the result record (no trailing newline). Blocks until done.
  EngineMetrics run(const std::vector<std::string> &Lines,
                    const std::function<void(const std::string &)> &Sink);

  /// Convenience for tests and benchmarks: concatenates all records
  /// (newline-terminated) into one string.
  std::string runToString(const std::vector<std::string> &Lines,
                          EngineMetrics *MetricsOut = nullptr);

  /// The shared pipeline (exposes cache stats and manual cache control).
  api::Pipeline &pipeline() { return P; }

private:
  EngineOptions Opts;
  api::Pipeline P;
};

/// Splits a whole ndjson document into lines (no trailing-newline
/// requirement); shared by the tool and tests.
std::vector<std::string> splitLines(const std::string &Text);

} // namespace engine
} // namespace irlt

#endif // IRLT_ENGINE_ENGINE_H
