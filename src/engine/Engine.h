//===- engine/Engine.h - High-throughput batch pipeline engine -----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch pipeline engine behind irlt-batch (docs/API.md) and the
/// per-request core of irlt-serve (docs/SERVE.md): accepts ndjson
/// requests (engine/Wire.h), executes them on a worker pool that shares
/// one api::Pipeline - and therefore shares the dependence-analysis and
/// legality memoization caches - and emits one versioned JSON result
/// record per request.
///
/// Determinism contract: the result stream is *byte-identical for any
/// worker count*. Workers claim requests by atomic index and fill
/// preallocated result slots; the caller's sink receives completed
/// records strictly in input order (a completed-prefix flusher, so
/// emission streams while later requests are still in flight). Every
/// per-request computation is deterministic (search runs with one
/// thread per request - the engine's parallelism is *across* requests -
/// and validation runs with reproducer dumping and wall budgets off),
/// and nothing time- or thread-dependent is written into result records.
/// The only timing-dependent outcomes are the ones a caller explicitly
/// opts into - a DeadlineToken (irlt-serve) or a stop flag (SIGINT/
/// SIGTERM) - and both produce documented structured records, never a
/// torn one.
///
/// Ingestion is hardened per record: an oversized line, an embedded NUL
/// byte, CR/LF line endings, or a truncated final line each degrade to a
/// structured per-record diagnostic (error kind below) while the rest of
/// the batch keeps going.
///
/// Metrics (requests served, cache hit rates, p50/p95 per-stage latency,
/// worker utilization) are collected per worker and merged after the
/// run; they live outside the result stream precisely because latencies
/// are not deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_ENGINE_ENGINE_H
#define IRLT_ENGINE_ENGINE_H

#include "api/Pipeline.h"
#include "engine/Wire.h"
#include "support/FaultInject.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace irlt {
namespace engine {

/// Engine configuration.
struct EngineOptions {
  /// Worker threads (>= 1). The result stream is identical for any value.
  unsigned Jobs = 1;
  /// Shared memoization caches (api::PipelineOptions::EnableCache).
  bool EnableCache = true;
  /// Per-cache entry bound (api::PipelineOptions::CacheCapacity);
  /// 0 = unbounded. Eviction never changes any result record.
  size_t CacheCapacity = 0;
  /// Force validation of every request with this instance budget
  /// (irlt-batch --validate[=N]); per-request "validate" fields win.
  uint64_t ForcedValidateBudget = 0;
  /// Force native (compile-and-run, docs/CODEGEN.md) validation of
  /// every request (irlt-batch --validate=native); per-request
  /// "validate" fields win.
  bool ForcedValidateNative = false;
  /// Request lines longer than this produce a structured
  /// "oversized_line" error record instead of being parsed (the line
  /// content is never echoed back). Default 1 MiB.
  size_t MaxLineBytes = 1u << 20;
  /// Cooperative interruption (signal handlers set this): workers finish
  /// their in-flight record, skip unstarted ones, and the sink receives
  /// a clean completed prefix of the stream. Null = never interrupted.
  const std::atomic<bool> *StopFlag = nullptr;
  /// Deterministic fault injection (support/FaultInject.h). The engine
  /// honors WorkerThrow: requests whose id contains "boom" throw from
  /// the worker, which degrades to a structured "internal" error record.
  FaultConfig Faults;
  /// The "tool" field of emitted records ("irlt-batch" from the batch
  /// driver, "irlt-serve" from the daemon).
  std::string ToolName = "irlt-batch";
  /// Fill RequestOutcome::NestKey/NestSource/Script on success, so the
  /// serve layer can journal cache-warming sources (docs/SERVE.md).
  bool CollectNestKeys = false;
};

/// Names of the measured pipeline stages, in reporting order.
enum class Stage : unsigned {
  Parse,    ///< loop-language parsing
  Deps,     ///< dependence analysis (cache included)
  Plan,     ///< script parsing or beam search
  Legality, ///< the uniform legality test (cache included)
  Apply,    ///< bounds pipeline + rendering
  Validate, ///< bounded concrete-execution validation
  Total,    ///< whole request
};
inline constexpr unsigned NumStages = 7;
const char *stageName(Stage S);

/// The stable machine-readable failure taxonomy: every "ok": false
/// record carries error.kind with one of these strings (docs/SERVE.md
/// documents the full matrix). Kept as named constants so the engine,
/// the serve layer, and the tests agree by identifier instead of by
/// string literal.
namespace errkind {
inline constexpr const char *Request = "request";        ///< malformed line
inline constexpr const char *OversizedLine = "oversized_line";
inline constexpr const char *EmbeddedNul = "embedded_nul";
inline constexpr const char *Nest = "nest";              ///< nest parse
inline constexpr const char *DepsOverflow = "deps_overflow";
inline constexpr const char *Script = "script";          ///< script parse
inline constexpr const char *Search = "search";
inline constexpr const char *ReduceOverflow = "reduce_overflow";
inline constexpr const char *Apply = "apply";
inline constexpr const char *Deadline = "deadline";
inline constexpr const char *Overloaded = "overloaded";  ///< serve shed
inline constexpr const char *BadFrame = "bad_frame";     ///< serve framing
inline constexpr const char *Draining = "draining";      ///< serve shutdown
inline constexpr const char *ShardDown = "shard_down";   ///< front: worker died
inline constexpr const char *Internal = "internal";      ///< worker exception
} // namespace errkind

/// A per-request cancellation deadline, checked at stage boundaries:
/// a request whose deadline has passed is cut off *between* stages with
/// a structured "deadline" error record - stages themselves always run
/// to completion, so no partial state ever escapes. Deadlines are the
/// serve path's tool; the batch driver never sets one (it would break
/// byte-identical replay).
class DeadlineToken {
public:
  using Clock = std::chrono::steady_clock;

  DeadlineToken() = default;
  explicit DeadlineToken(Clock::time_point Deadline)
      : Armed(true), Deadline(Deadline) {}

  static DeadlineToken afterMillis(uint64_t Millis) {
    return DeadlineToken(Clock::now() + std::chrono::milliseconds(Millis));
  }

  bool armed() const { return Armed; }
  bool expired() const { return Armed && Clock::now() >= Deadline; }

private:
  bool Armed = false;
  Clock::time_point Deadline{};
};

/// Per-worker latency samples, merged into EngineMetrics after a run.
/// Serve workers keep one per worker thread as well.
struct StageSampler {
  std::vector<uint64_t> SamplesNs[NumStages];
};

/// The outcome of one request.
struct RequestOutcome {
  std::string Record; ///< the complete JSON result record
  bool Error = false;
  bool Illegal = false;
  /// error.kind when Error (one of errkind::*); empty otherwise.
  std::string ErrorKind;
  /// Cache-journal sources (only when EngineOptions::CollectNestKeys and
  /// the nest parsed): the canonical fingerprint, the nest source, and
  /// the script text (empty in auto mode).
  std::string NestKey;
  std::string NestSource;
  std::string Script;
};

/// Serves one request line against \p P. Everything deterministic: the
/// record depends only on the line's content (and the engine options),
/// never on timing, worker identity, or cache state - except when \p DL
/// is armed, in which case expiry yields a structured "deadline" record.
/// Throws only under the WorkerThrow fault (callers catch and degrade to
/// an "internal" record; see makeErrorRecord).
RequestOutcome processRequest(api::Pipeline &P, const EngineOptions &EO,
                              const std::string &Line, uint64_t LineNo,
                              StageSampler &Sampler,
                              const DeadlineToken *DL = nullptr);

/// Renders a standalone failure record: the standard prologue for
/// \p Tool, then {"id", "ok": false, "error": {"kind", "message",
/// "diags"?}}. Shared by the engine workers and the serve layer (which
/// needs overload/protocol/drain records without a request to process).
std::string makeErrorRecord(const std::string &Tool, const std::string &Id,
                            const std::string &Kind,
                            const std::string &Message,
                            const std::vector<Diag> *Diags = nullptr);

/// Merged percentile summary of one stage.
struct StageMetrics {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t P50Ns = 0;
  uint64_t P95Ns = 0;
};

/// The post-run metrics block.
struct EngineMetrics {
  uint64_t Requests = 0;
  /// Records actually delivered to the sink (== Requests unless the run
  /// was interrupted).
  uint64_t Served = 0;
  /// Records with "ok": false (malformed request, parse failure, ...).
  uint64_t Errors = 0;
  /// Script-mode requests whose sequence the legality test rejected
  /// (served successfully; counted for observability).
  uint64_t Illegal = 0;
  /// The stop flag fired: the sink received a clean completed prefix and
  /// the rest of the batch was skipped.
  bool Interrupted = false;
  unsigned Jobs = 1;
  uint64_t WallNs = 0;
  /// Sum of per-worker busy time; utilization = Busy / (Jobs * Wall).
  uint64_t BusyNs = 0;
  api::CacheStats Cache;
  StageMetrics Stages[NumStages];

  double workerUtilization() const {
    return WallNs && Jobs ? static_cast<double>(BusyNs) /
                                (static_cast<double>(WallNs) * Jobs)
                          : 0.0;
  }

  /// The metrics block as one JSON record (same schema prologue as the
  /// result records, "record": "metrics").
  std::string toJson() const;
};

/// Merges per-stage latency samples into the percentile summary.
StageMetrics summarizeStage(std::vector<uint64_t> &&SamplesNs);

/// The engine. Reusable: each run() processes one corpus; the caches
/// persist across runs of the same engine instance.
class BatchEngine {
public:
  explicit BatchEngine(EngineOptions Opts = {});

  /// Processes \p Lines (one ndjson request per line; blank lines are
  /// ignored) and calls \p Sink once per request, in input order, with
  /// the result record (no trailing newline). Blocks until done (or
  /// until the stop flag cuts the run short; see EngineMetrics).
  EngineMetrics run(const std::vector<std::string> &Lines,
                    const std::function<void(const std::string &)> &Sink);

  /// Convenience for tests and benchmarks: concatenates all records
  /// (newline-terminated) into one string.
  std::string runToString(const std::vector<std::string> &Lines,
                          EngineMetrics *MetricsOut = nullptr);

  /// The shared pipeline (exposes cache stats and manual cache control).
  api::Pipeline &pipeline() { return P; }

private:
  EngineOptions Opts;
  api::Pipeline P;
};

/// Splits a whole ndjson document into lines (no trailing-newline
/// requirement). A line's trailing '\r' is stripped, so CRLF corpora
/// parse like LF ones; shared by the tool and tests.
std::vector<std::string> splitLines(const std::string &Text);

} // namespace engine
} // namespace irlt

#endif // IRLT_ENGINE_ENGINE_H
