//===- engine/Wire.cpp - ndjson wire format of the batch engine ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "engine/Wire.h"

#include "support/Json.h"

using namespace irlt;
using namespace irlt::engine;

ErrorOr<BatchRequest> engine::parseRequestLine(const std::string &Line,
                                               uint64_t LineNo) {
  ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Line);
  if (!Doc)
    return Failure(Diag::error("request line " + std::to_string(LineNo) +
                               ": " + Doc.message()));
  if (!Doc->isObject())
    return Failure(Diag::error("request line " + std::to_string(LineNo) +
                               ": expected a JSON object"));

  BatchRequest R;
  R.Id = Doc->stringOr("id", std::to_string(LineNo));

  const json::JsonValue *Nest = Doc->find("nest");
  if (!Nest || !Nest->isString())
    return Failure(Diag::error("request line " + std::to_string(LineNo) +
                               ": missing required string field 'nest'"));
  R.NestSource = Nest->asString();

  R.Script = Doc->stringOr("script");
  R.Auto = Doc->stringOr("auto");
  if (!R.Auto.empty() && !R.Script.empty())
    return Failure(Diag::error("request line " + std::to_string(LineNo) +
                               ": 'script' and 'auto' are exclusive"));
  if (!R.Auto.empty() && R.Auto != "locality" && R.Auto != "par" &&
      R.Auto != "both")
    return Failure(Diag::error(
        "request line " + std::to_string(LineNo) +
        ": 'auto' must be locality, par, or both, got '" + R.Auto + "'"));

  R.Legality = Doc->boolOr("legality", true);
  R.Analyze = Doc->boolOr("analyze", false);
  R.Reduce = Doc->boolOr("reduce", false);
  R.Emit = Doc->stringOr("emit");
  if (!R.Emit.empty() && R.Emit != "loop" && R.Emit != "c")
    return Failure(Diag::error("request line " + std::to_string(LineNo) +
                               ": 'emit' must be loop or c, got '" + R.Emit +
                               "'"));

  if (const json::JsonValue *V = Doc->find("validate");
      V && V->isString()) {
    // "validate": "native" - the compile-and-run tier (docs/CODEGEN.md).
    if (V->asString() != "native")
      return Failure(Diag::error("request line " + std::to_string(LineNo) +
                                 ": 'validate' must be an instance budget "
                                 "or \"native\", got '" + V->asString() +
                                 "'"));
    R.ValidateNative = true;
  } else {
    int64_t Validate = Doc->intOr("validate", 0);
    if (Validate < 0)
      return Failure(Diag::error("request line " + std::to_string(LineNo) +
                                 ": 'validate' must be a non-negative "
                                 "instance budget"));
    R.ValidateBudget = static_cast<uint64_t>(Validate);
  }

  int64_t Deadline = Doc->intOr("deadline_ms", 0);
  if (Deadline < 0)
    return Failure(Diag::error("request line " + std::to_string(LineNo) +
                               ": 'deadline_ms' must be non-negative"));
  R.DeadlineMillis = static_cast<uint64_t>(Deadline);

  for (const auto &[Key, Default, Slot] :
       {std::tuple<const char *, unsigned, unsigned *>{"beam", 8U, &R.Beam},
        {"depth", 2U, &R.Depth},
        {"topk", 5U, &R.TopK}}) {
    int64_t V = Doc->intOr(Key, static_cast<int64_t>(Default));
    // "depth" may legitimately be 0 (identity-only search).
    bool ZeroOk = std::string(Key) == "depth";
    if (V < (ZeroOk ? 0 : 1) || V > 1'000'000)
      return Failure(Diag::error("request line " + std::to_string(LineNo) +
                                 ": '" + Key + "' out of range"));
    *Slot = static_cast<unsigned>(V);
  }

  return R;
}
