//===- engine/Wire.h - ndjson wire format of the batch engine ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request side of the batch engine's ndjson wire format
/// (docs/API.md): one JSON object per line, each describing one
/// independent pipeline request. Two modes, mirroring irlt-opt:
///
///   {"id": "r1", "nest": "do i = 1, n\n ...", "script": "interchange 1 2"}
///   {"id": "r2", "nest": "...", "auto": "locality"}
///
/// Optional fields: "legality" (bool, default true - run the uniform
/// legality test in script mode), "analyze" (bool, default false - run
/// the static diagnostic engine and include its findings in the
/// result), "reduce" (bool, default false), "emit" ("loop" or "c":
/// include the transformed nest in the result), "validate" (int
/// instance budget: cross-check by bounded concrete execution; or the
/// string "native" for the compile-and-run tier, docs/CODEGEN.md),
/// "deadline_ms" (per-request deadline, serve mode only), and for auto
/// mode "beam", "depth", "topk".
///
/// The result side is one versioned JSON record per request (the same
/// "schema_version"/"tool" prologue every tool emits, support/Json.h),
/// produced by the engine in deterministic input order.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_ENGINE_WIRE_H
#define IRLT_ENGINE_WIRE_H

#include "support/ErrorOr.h"

#include <cstdint>
#include <string>

namespace irlt {
namespace engine {

/// One parsed request line.
struct BatchRequest {
  /// Echoed into the result record; defaults to the 1-based input line
  /// number.
  std::string Id;
  /// Loop-language source of the nest (required).
  std::string NestSource;
  /// Script mode: transformation script text (may be empty for an
  /// identity request).
  std::string Script;
  /// Auto mode: "locality", "par", or "both"; exclusive with Script.
  std::string Auto;
  /// Script mode: run the uniform legality test (default on).
  bool Legality = true;
  /// Run the static diagnostic engine (src/analysis/) over the request's
  /// sequence and attach the report to the result record.
  bool Analyze = false;
  /// reduce() the sequence before use.
  bool Reduce = false;
  /// "", "loop", or "c": include transformed code in the result.
  std::string Emit;
  /// > 0: validate candidates by bounded concrete execution with this
  /// instance budget.
  uint64_t ValidateBudget = 0;
  /// "validate": "native" - the compile-and-run tier on top of the
  /// interpreted ladder (docs/CODEGEN.md). Native validation Detail
  /// strings are deterministic, preserving the byte-identical-output
  /// contract; without a host C compiler the interpreted verdict is
  /// annotated as native-skipped.
  bool ValidateNative = false;
  /// Per-request deadline in milliseconds (0 = none). Honored by
  /// irlt-serve (docs/SERVE.md); irlt-batch deliberately ignores it so
  /// batch replay stays byte-identical and timing-independent.
  uint64_t DeadlineMillis = 0;
  /// Auto-mode search knobs.
  unsigned Beam = 8;
  unsigned Depth = 2;
  unsigned TopK = 5;
};

/// Parses one ndjson request line. \p LineNo is 1-based and seeds the
/// default Id. Fails with a structured diagnostic on malformed JSON,
/// missing/mistyped fields, or contradictory modes.
ErrorOr<BatchRequest> parseRequestLine(const std::string &Line,
                                       uint64_t LineNo);

} // namespace engine
} // namespace irlt

#endif // IRLT_ENGINE_WIRE_H
