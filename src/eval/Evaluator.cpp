//===- eval/Evaluator.cpp - Loop-nest interpreter --------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"

#include "support/Casting.h"
#include "support/MathUtils.h"
#include "support/Printing.h"

#include <cassert>
#include <chrono>
#include <cmath>

using namespace irlt;

int64_t ArrayStore::read(const std::string &Array,
                         const std::vector<int64_t> &Subs) const {
  auto AIt = Data.find(Array);
  if (AIt == Data.end())
    return 0;
  auto CIt = AIt->second.find(Subs);
  return CIt == AIt->second.end() ? 0 : CIt->second;
}

void ArrayStore::write(const std::string &Array,
                       const std::vector<int64_t> &Subs, int64_t Value) {
  Data[Array][Subs] = Value;
}

size_t ArrayStore::numWrittenCells() const {
  size_t N = 0;
  for (const auto &[Name, Cells] : Data)
    N += Cells.size();
  return N;
}

namespace {

/// Environment threading variable bindings, the store, and the trace.
class RunContext : public ExprEnv {
public:
  RunContext(const LoopNest &Nest, const EvalConfig &Config, ArrayStore &Store,
             EvalResult &Result)
      : Nest(Nest), Config(Config), Store(Store), Result(Result) {
    Result.LevelCounts.assign(Nest.numLoops(), 0);
    Ordinals.assign(Nest.numLoops(), 0);
    if (Config.WallBudgetMillis)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Config.WallBudgetMillis);
  }

  std::optional<int64_t> lookup(const std::string &Name) const override {
    auto It = Vars.find(Name);
    if (It != Vars.end())
      return It->second;
    auto PIt = Config.Params.find(Name);
    if (PIt != Config.Params.end())
      return PIt->second;
    return std::nullopt;
  }

  int64_t call(const std::string &Name,
               const std::vector<int64_t> &Args) const override {
    // Arrays dispatch to the store (reads). Recording happens in
    // evalRHS via collectArrayReads; here we only fetch the value.
    if (Nest.ArrayNames.count(Name)) {
      if (Config.RecordAccesses) {
        Result.Accesses.push_back(MemAccess{false, Name, Args});
        Result.AccessOwner.push_back(InstanceCount - 1);
      }
      return Store.read(Name, Args);
    }
    auto FIt = Config.Funcs.find(Name);
    if (FIt != Config.Funcs.end())
      return FIt->second(Args);
    if (Name == "sqrt") {
      assert(Args.size() == 1 && Args[0] >= 0 && "sqrt of negative value");
      return static_cast<int64_t>(std::sqrt(static_cast<double>(Args[0])));
    }
    if (Name == "abs") {
      assert(Args.size() == 1);
      return std::abs(Args[0]);
    }
    if (Name == "sgn") {
      assert(Args.size() == 1);
      return sign(Args[0]);
    }
    assert(false && "unknown opaque function in evaluation");
    return 0;
  }

  void run() { runLoop(0); }

  bool hitLimit() const { return LimitHit; }

private:
  void runLoop(unsigned Level) {
    if (Level == Nest.numLoops()) {
      runBody();
      return;
    }
    const Loop &L = Nest.Loops[Level];
    int64_t Lo = L.Lower->evaluate(*this);
    int64_t Hi = L.Upper->evaluate(*this);
    int64_t St = L.Step->evaluate(*this);
    assert(St != 0 && "loop step evaluated to zero");
    int64_t Ordinal = 0;
    for (int64_t X = Lo; St > 0 ? X <= Hi : X >= Hi; X += St) {
      if (LimitHit)
        return;
      // Headers count against the budgets too: a huge loop over a
      // zero-trip inner nest never executes a body, and must still stop.
      if (++HeaderCount > Config.MaxInstances) {
        noteLimit(formatStr("iteration budget of %llu exhausted",
                            static_cast<unsigned long long>(
                                Config.MaxInstances)));
        return;
      }
      if (Config.WallBudgetMillis && (HeaderCount & 255) == 0 &&
          std::chrono::steady_clock::now() >= Deadline) {
        noteLimit(formatStr("wall-clock budget of %llu ms exhausted",
                            static_cast<unsigned long long>(
                                Config.WallBudgetMillis)));
        return;
      }
      Vars[L.IndexVar] = X;
      Ordinals[Level] = Ordinal++;
      ++Result.LevelCounts[Level];
      runLoop(Level + 1);
    }
    Vars.erase(L.IndexVar);
  }

  void runBody() {
    if (++InstanceCount > Config.MaxInstances) {
      noteLimit(formatStr("instance budget of %llu exhausted",
                          static_cast<unsigned long long>(
                              Config.MaxInstances)));
      return;
    }
    if (Config.WallBudgetMillis && (InstanceCount & 255) == 0 &&
        std::chrono::steady_clock::now() >= Deadline) {
      noteLimit(formatStr("wall-clock budget of %llu ms exhausted",
                          static_cast<unsigned long long>(
                              Config.WallBudgetMillis)));
      return;
    }
    // Init statements first (they define the original index variables).
    for (const InitStmt &I : Nest.Inits)
      Vars[I.Var] = I.Value->evaluate(*this);

    if (Config.RecordTrace) {
      std::vector<int64_t> Inst;
      Inst.reserve(Nest.BodyIndexVars.size());
      for (const std::string &V : Nest.BodyIndexVars) {
        std::optional<int64_t> Val = lookup(V);
        assert(Val && "body index variable unbound (missing init?)");
        Inst.push_back(*Val);
      }
      Result.Instances.push_back(std::move(Inst));

      std::vector<int64_t> LoopTuple;
      LoopTuple.reserve(Nest.numLoops());
      for (const Loop &L : Nest.Loops)
        LoopTuple.push_back(Vars.at(L.IndexVar));
      Result.LoopTuples.push_back(std::move(LoopTuple));
      Result.OrdinalTuples.push_back(Ordinals);
    }

    if (!Config.ExecuteBody)
      return;
    for (const AssignStmt &S : Nest.Body) {
      int64_t V = S.RHS->evaluate(*this); // reads recorded in call()
      std::vector<int64_t> Subs;
      Subs.reserve(S.LHS.Subscripts.size());
      for (const ExprRef &Sub : S.LHS.Subscripts)
        Subs.push_back(Sub->evaluate(*this));
      if (Config.RecordAccesses) {
        Result.Accesses.push_back(MemAccess{true, S.LHS.Array, Subs});
        Result.AccessOwner.push_back(InstanceCount - 1);
      }
      Store.write(S.LHS.Array, Subs, V);
    }
  }

  void noteLimit(std::string Reason) {
    LimitHit = true;
    Result.LimitHit = true;
    Result.LimitReason = std::move(Reason);
  }

  const LoopNest &Nest;
  const EvalConfig &Config;
  ArrayStore &Store;
  EvalResult &Result;
  std::map<std::string, int64_t> Vars;
  std::vector<int64_t> Ordinals;
  uint64_t InstanceCount = 0;
  uint64_t HeaderCount = 0;
  bool LimitHit = false;
  std::chrono::steady_clock::time_point Deadline;
};

} // namespace

EvalResult irlt::evaluate(const LoopNest &Nest, const EvalConfig &Config,
                          ArrayStore &Store) {
  EvalResult Result;
  RunContext Ctx(Nest, Config, Store, Result);
  Ctx.run();
  return Result;
}

ParallelismStats irlt::parallelismStats(const LoopNest &Nest,
                                        const EvalResult &R) {
  ParallelismStats S;
  S.Instances = R.OrdinalTuples.size();
  if (R.OrdinalTuples.empty())
    return S;
  // Project each iteration-number tuple onto the sequential (non-pardo)
  // positions; distinct projections are the sequential time steps. Using
  // ordinals (not index values) lets iterations of different pardo
  // branches share a time step even when their inner loops run over
  // different value ranges.
  std::vector<unsigned> SeqPos;
  for (unsigned K = 0; K < Nest.numLoops(); ++K)
    if (Nest.Loops[K].Kind == LoopKind::Do)
      SeqPos.push_back(K);
  std::map<std::vector<int64_t>, uint64_t> Steps;
  for (const std::vector<int64_t> &T : R.OrdinalTuples) {
    std::vector<int64_t> Proj;
    Proj.reserve(SeqPos.size());
    for (unsigned K : SeqPos)
      Proj.push_back(T[K]);
    ++Steps[Proj];
  }
  S.SequentialSteps = Steps.size();
  S.AvgParallelism =
      static_cast<double>(S.Instances) / static_cast<double>(Steps.size());
  for (const auto &[Proj, Count] : Steps)
    S.MaxParallelism = std::max(S.MaxParallelism, Count);
  return S;
}
