//===- eval/Evaluator.h - Loop-nest interpreter ----------------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpreter for loop nests: binds symbolic parameters and opaque
/// functions, enumerates the iteration space (bounds may contain min/max,
/// flooring div/mod, symbolic parameters and opaque calls), executes the
/// initialization statements and the body against an array store, and
/// records an execution trace.
///
/// The trace captures, per body execution:
///  - the *original* index tuple (values of BodyIndexVars after the init
///    statements) - the identity of the execution instance (Def. 3.3);
///  - the *loop* index tuple of the nest being run (for tile counting and
///    parallel-order checks);
///  - optionally every memory access (for the cache simulator).
///
/// This is the measurement substrate for every experiment: semantic
/// equivalence of transformed nests, dependence-order preservation,
/// tiles-with-work counts, wavefront parallelism, and cache traces.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_EVAL_EVALUATOR_H
#define IRLT_EVAL_EVALUATOR_H

#include "ir/LoopNest.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace irlt {

/// Sparse integer array storage, keyed by array name and subscript tuple.
class ArrayStore {
public:
  int64_t read(const std::string &Array,
               const std::vector<int64_t> &Subs) const;
  void write(const std::string &Array, const std::vector<int64_t> &Subs,
             int64_t Value);

  bool operator==(const ArrayStore &O) const { return Data == O.Data; }

  size_t numWrittenCells() const;

private:
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Data;
};

/// One recorded memory access.
struct MemAccess {
  bool IsWrite;
  std::string Array;
  std::vector<int64_t> Subs;
};

/// The outcome of running a nest.
struct EvalResult {
  /// True when the run stopped early because an EvalConfig budget
  /// (MaxInstances or WallBudgetMillis) was exhausted; the trace and
  /// store are then incomplete and must not be treated as ground truth.
  bool LimitHit = false;
  /// Which budget stopped the run (empty when LimitHit is false).
  std::string LimitReason;
  /// Original-index tuples (BodyIndexVars values), in execution order.
  std::vector<std::vector<int64_t>> Instances;
  /// Loop-variable tuples of the executed nest, parallel to Instances.
  std::vector<std::vector<int64_t>> LoopTuples;
  /// Iteration-number tuples (Definition 3.3): per body execution, the
  /// 0-based ordinal of each loop within its current activation. Parallel
  /// to Instances. These are the units dependence vectors are defined in.
  std::vector<std::vector<int64_t>> OrdinalTuples;
  /// Iterations entered per loop level (LevelCounts[k] counts headers of
  /// loop k+1's body, i.e. iterations of loop k).
  std::vector<uint64_t> LevelCounts;
  /// All memory accesses in order (empty unless RecordAccesses).
  std::vector<MemAccess> Accesses;
  /// For each access, the 0-based index of the body execution (instance)
  /// it belongs to; parallel to Accesses.
  std::vector<uint64_t> AccessOwner;
};

/// User-supplied opaque function, e.g. colstr or rowidx.
using OpaqueFn = std::function<int64_t(const std::vector<int64_t> &)>;

/// Evaluator configuration and bindings.
struct EvalConfig {
  std::map<std::string, int64_t> Params;   ///< e.g. {"n", 8}
  std::map<std::string, OpaqueFn> Funcs;   ///< e.g. {"colstr", ...}
  bool RecordTrace = true;                 ///< fill Instances/LoopTuples
  bool RecordAccesses = false;             ///< fill Accesses
  bool ExecuteBody = true;                 ///< actually read/write arrays
  uint64_t MaxInstances = 50'000'000;      ///< iteration budget
  /// Wall-clock budget in milliseconds; 0 means unlimited. Checked every
  /// few hundred body executions, so a runaway nest (fuzzer input, a
  /// --verify invocation on a pathological case) stops with LimitHit
  /// instead of hanging.
  uint64_t WallBudgetMillis = 0;
};

/// Runs \p Nest against \p Store. Built-in opaque functions: sqrt (integer
/// square root), abs, sgn; arrays dispatch to the store. Asserts on
/// unbound variables or unknown calls. When a budget in \p Config is
/// exhausted the run stops early with EvalResult::LimitHit set; callers
/// that need ground truth must check it.
EvalResult evaluate(const LoopNest &Nest, const EvalConfig &Config,
                    ArrayStore &Store);

/// Parallelism statistics of a run: distinct "time steps" when pardo
/// loops execute concurrently (projection of loop tuples onto the
/// sequential loop positions).
struct ParallelismStats {
  uint64_t Instances = 0;
  uint64_t SequentialSteps = 0;
  double AvgParallelism = 0.0;
  uint64_t MaxParallelism = 0;
};
ParallelismStats parallelismStats(const LoopNest &Nest, const EvalResult &R);

} // namespace irlt

#endif // IRLT_EVAL_EVALUATOR_H
