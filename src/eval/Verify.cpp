//===- eval/Verify.cpp - Ground-truth transformation verification --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "eval/Verify.h"

#include "support/Printing.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace irlt;

std::vector<std::pair<uint64_t, uint64_t>>
irlt::dependentInstancePairs(const EvalResult &OriginalRun) {
  assert(OriginalRun.Accesses.size() == OriginalRun.AccessOwner.size() &&
         "trace missing access ownership");
  // Group accesses by cell.
  struct CellAccess {
    uint64_t Owner;
    bool IsWrite;
  };
  std::map<std::pair<std::string, std::vector<int64_t>>,
           std::vector<CellAccess>>
      Cells;
  for (size_t I = 0; I < OriginalRun.Accesses.size(); ++I) {
    const MemAccess &A = OriginalRun.Accesses[I];
    Cells[{A.Array, A.Subs}].push_back(
        CellAccess{OriginalRun.AccessOwner[I], A.IsWrite});
  }
  std::set<std::pair<uint64_t, uint64_t>> Pairs;
  for (const auto &[Cell, List] : Cells) {
    for (size_t A = 0; A < List.size(); ++A)
      for (size_t B = A + 1; B < List.size(); ++B) {
        if (!List[A].IsWrite && !List[B].IsWrite)
          continue;
        if (List[A].Owner == List[B].Owner)
          continue; // within one instance: not an iteration-reordering
                    // constraint
        Pairs.emplace(std::min(List[A].Owner, List[B].Owner),
                      std::max(List[A].Owner, List[B].Owner));
      }
  }
  return std::vector<std::pair<uint64_t, uint64_t>>(Pairs.begin(),
                                                    Pairs.end());
}

VerifyResult irlt::verifyTransformed(const LoopNest &Original,
                                     const LoopNest &Transformed,
                                     const EvalConfig &Config) {
  VerifyResult R;
  EvalConfig C = Config;
  C.RecordTrace = true;
  C.RecordAccesses = true;
  C.ExecuteBody = true;

  ArrayStore StoreO, StoreT;
  EvalResult RunO = evaluate(Original, C, StoreO);
  if (RunO.LimitHit) {
    R.BudgetExceeded = true;
    R.Problem = "original nest: " + RunO.LimitReason;
    return R;
  }
  EvalResult RunT = evaluate(Transformed, C, StoreT);
  if (RunT.LimitHit) {
    R.BudgetExceeded = true;
    R.Problem = "transformed nest: " + RunT.LimitReason;
    return R;
  }

  // Check 1: same multiset of execution instances.
  if (RunO.Instances.size() != RunT.Instances.size()) {
    R.Problem = formatStr(
        "instance count mismatch: original executes %zu, transformed %zu",
        RunO.Instances.size(), RunT.Instances.size());
    return R;
  }
  {
    std::vector<std::vector<int64_t>> A = RunO.Instances;
    std::vector<std::vector<int64_t>> B = RunT.Instances;
    std::sort(A.begin(), A.end());
    std::sort(B.begin(), B.end());
    if (A != B) {
      R.Problem = "transformed nest executes a different set of instances";
      return R;
    }
  }

  // Position of each instance in the transformed execution order.
  std::map<std::vector<int64_t>, uint64_t> PosT;
  for (uint64_t I = 0; I < RunT.Instances.size(); ++I) {
    if (!PosT.emplace(RunT.Instances[I], I).second) {
      R.Problem = "transformed nest executes an instance twice";
      return R;
    }
  }

  // Check 2: dependence order. Every dependent pair of the original run
  // must execute in the same relative order in the transformed run, and
  // the two executions must not be unordered under a pardo loop.
  std::vector<std::pair<uint64_t, uint64_t>> Pairs =
      dependentInstancePairs(RunO);
  auto tupleStr = [](const std::vector<int64_t> &T) {
    std::string S = "(";
    for (size_t I = 0; I < T.size(); ++I)
      S += (I ? ", " : "") + std::to_string(T[I]);
    return S + ")";
  };
  for (const auto &[A, B] : Pairs) {
    uint64_t TA = PosT.at(RunO.Instances[A]);
    uint64_t TB = PosT.at(RunO.Instances[B]);
    if (TA >= TB) {
      VerifyCounterexample CE;
      CE.SrcIter = RunO.Instances[A];
      CE.DstIter = RunO.Instances[B];
      CE.SrcPosT = TA;
      CE.DstPosT = TB;
      R.Problem = formatStr(
          "dependent instances reordered: original iteration %s before %s, "
          "transformed positions %llu and %llu",
          tupleStr(CE.SrcIter).c_str(), tupleStr(CE.DstIter).c_str(),
          static_cast<unsigned long long>(TA),
          static_cast<unsigned long long>(TB));
      R.Counterexample = std::move(CE);
      return R;
    }
    // Unordered-parallel check: the first differing transformed loop
    // level between the two executions must be sequential.
    const std::vector<int64_t> &LA = RunT.LoopTuples[TA];
    const std::vector<int64_t> &LB = RunT.LoopTuples[TB];
    for (unsigned K = 0; K < Transformed.numLoops(); ++K) {
      if (LA[K] == LB[K])
        continue;
      if (Transformed.Loops[K].Kind == LoopKind::ParDo) {
        VerifyCounterexample CE;
        CE.SrcIter = RunO.Instances[A];
        CE.DstIter = RunO.Instances[B];
        CE.SrcPosT = TA;
        CE.DstPosT = TB;
        R.Problem = formatStr(
            "dependent instances %s and %s are unordered under pardo loop "
            "%u ('%s')",
            tupleStr(CE.SrcIter).c_str(), tupleStr(CE.DstIter).c_str(),
            K + 1, Transformed.Loops[K].IndexVar.c_str());
        R.Counterexample = std::move(CE);
        return R;
      }
      break;
    }
  }

  // Check 3: identical final stores.
  if (!(StoreO == StoreT)) {
    R.Problem = "final array stores differ";
    return R;
  }

  R.Ok = true;
  return R;
}
