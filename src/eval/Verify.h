//===- eval/Verify.h - Ground-truth transformation verification ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground-truth checking of transformed loop nests by concrete execution.
/// For a given parameter binding this module verifies that a transformed
/// nest:
///
///  1. executes exactly the same multiset of execution instances as the
///     original (the initialization statements recover each instance's
///     original index values);
///  2. orders every pair of dependent instances (same array cell, at
///     least one write, per the original run) consistently with the
///     original execution - where iterations of `pardo` loops count as
///     unordered and therefore must not carry a dependence;
///  3. leaves the array store in the same final state.
///
/// Together with the consistency property tests (Definition 3.4) this is
/// the empirical backstop for every mapping rule in Tables 2-4.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_EVAL_VERIFY_H
#define IRLT_EVAL_VERIFY_H

#include "eval/Evaluator.h"
#include "ir/LoopNest.h"

#include <optional>
#include <string>

namespace irlt {

/// A concrete violating iteration pair backing a failed dependence-order
/// (or pardo-unordered) check: two dependent execution instances named by
/// their original index tuples (BodyIndexVars order), with their
/// positions in the transformed execution order. This is the raw
/// material of a rejection witness - it can be replayed through the
/// Evaluator independently of the verifier that found it.
struct VerifyCounterexample {
  std::vector<int64_t> SrcIter; ///< executes first in the original nest
  std::vector<int64_t> DstIter; ///< executes second in the original nest
  uint64_t SrcPosT = 0; ///< SrcIter's position in the transformed order
  uint64_t DstPosT = 0; ///< DstIter's position in the transformed order
};

/// Outcome of a verification run.
struct VerifyResult {
  bool Ok = false;
  std::string Problem; ///< empty when Ok
  /// True when the verdict is "no verdict": an evaluation budget
  /// (EvalConfig::MaxInstances / WallBudgetMillis) ran out before both
  /// nests finished, so neither equivalence nor inequivalence was
  /// established. Ok is false but Problem names the exhausted budget.
  bool BudgetExceeded = false;
  /// Set when the failure is a dependence-order violation with a
  /// concrete pair of instances to show for it.
  std::optional<VerifyCounterexample> Counterexample;
};

/// Runs both nests under \p Config (trace and access recording forced on)
/// and applies the three checks above. \p Original must be an
/// untransformed source nest (loop variables == BodyIndexVars).
VerifyResult verifyTransformed(const LoopNest &Original,
                               const LoopNest &Transformed,
                               const EvalConfig &Config);

/// The pairs of instance indices (positions in the original trace) that
/// are in dependence: same array cell, at least one write, in distinct
/// instances. Pairs are (earlier, later) by original execution order.
/// Exposed for tests and benches.
std::vector<std::pair<uint64_t, uint64_t>>
dependentInstancePairs(const EvalResult &OriginalRun);

} // namespace irlt

#endif // IRLT_EVAL_VERIFY_H
