//===- front/Front.cpp - Sharded multi-process serve front ---------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "front/Front.h"

#include "api/Pipeline.h"
#include "engine/Engine.h"
#include "ir/NestHash.h"
#include "serve/Client.h"
#include "support/Json.h"
#include "support/Lru.h"
#include "support/MathUtils.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace irlt;
using namespace irlt::front;

namespace {

using Clock = std::chrono::steady_clock;

std::chrono::milliseconds ms(uint64_t N) {
  return std::chrono::milliseconds(N);
}

void setCloexec(int Fd) {
  int Flags = fcntl(Fd, F_GETFD);
  if (Flags >= 0)
    fcntl(Fd, F_SETFD, Flags | FD_CLOEXEC);
}

void setSendTimeout(int Fd, uint64_t Millis) {
  timeval Tv{};
  Tv.tv_sec = static_cast<time_t>(Millis / 1000);
  Tv.tv_usec = static_cast<suseconds_t>((Millis % 1000) * 1000);
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
}

/// The adoption healthz call (ClientConn::call with a timeout) leaves
/// SO_RCVTIMEO armed on the socket. The response reader must block
/// indefinitely - slow requests keep the socket idle for longer than any
/// probe timeout, and the pending-age watchdog (not a socket timeout) is
/// what detects wedged workers - so clear it before adopting the fd.
void clearRecvTimeout(int Fd) {
  timeval Tv{};
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// FNV-1a (64-bit) over raw bytes - the fallback route for requests
/// without a parseable nest. structuralNestHash() is this same function
/// over canonicalNestKey(), so all routing is one hash family.
uint64_t fnv64(std::string_view S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

/// One client connection (identical role to the serve-side Conn): the
/// reader thread and any number of in-flight shard requests share it
/// via shared_ptr; the last reference closes the socket.
struct Conn {
  int Fd = -1;
  uint64_t NextSeq = 0; ///< reader thread only

  /// Reorder buffer: responses are written strictly in request order
  /// even though shards complete out of order.
  std::mutex WriteMu;
  std::map<uint64_t, std::string> Pending;
  uint64_t NextWrite = 0;
  bool Dead = false;

  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
};
using ConnPtr = std::shared_ptr<Conn>;

struct ReaderSlot {
  std::thread T;
  std::atomic<bool> Done{false};
};

/// One request in flight to a worker. The response reader pops these in
/// FIFO order (the worker answers one connection's frames in order - the
/// serve reorder buffer guarantees it).
struct PendingReq {
  ConnPtr C;
  uint64_t Seq = 0;
  std::string Id;
  Clock::time_point Enqueued;
};

/// One worker shard. Mu guards the routing/lifecycle state; OpsMu
/// guards the ops connection (probes and inline-op fan-out). Lock
/// order: OpsMu may be taken alone, Mu may be taken alone, but never
/// Mu -> OpsMu (markDown runs under Mu and must not touch Ops).
struct Shard {
  unsigned Index = 0;
  std::string SockPath;
  std::string PersistPath;

  std::mutex Mu;
  pid_t Pid = -1;
  int OutFd = -1; ///< worker stdout pipe read end (supervisor-owned)
  bool Up = false;
  bool Starting = false; ///< spawned, awaiting its first healthy probe
  Clock::time_point StartDeadline{};
  /// Bumps on every markDown; a response reader that observes a stale
  /// generation exits instead of touching the new incarnation's window.
  uint64_t Generation = 0;
  unsigned ConsecFailures = 0;
  bool RestartPending = false;
  Clock::time_point RestartAt{};
  Clock::time_point LastProbe{};
  /// Request connection. Written under Mu; shut down (not closed) on
  /// markDown - the response reader owns the close, so the fd number
  /// cannot be reused while a read is still blocked on it.
  int DataFd = -1;
  std::deque<PendingReq> Pending;

  std::thread RespReader; ///< start/supervisor/drain threads only

  std::mutex OpsMu;
  serve::ClientConn Ops;

  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> RestartCount{0};
  std::string StdoutBuf; ///< supervisor/drain threads only
};

} // namespace

//===----------------------------------------------------------------------===//
// Impl
//===----------------------------------------------------------------------===//

struct Front::Impl {
  FrontOptions Opts;
  FrontStats Stats;
  FrontDrainSummary Summary;

  /// Nest parsing for routing only. Its caches are disabled: the route
  /// cache below already bounds repeat parses, and the workers own the
  /// real memoization caches.
  api::Pipeline RouteP;
  std::mutex RouteMu;
  LruMap<unsigned> RouteCache;

  int ListenFd = -1;
  int BoundPort = 0;
  int PipeR = -1, PipeW = -1;
  std::atomic<bool> Draining{false};
  std::atomic<bool> StopSupervisor{false};

  std::mutex ConnMu;
  std::set<int> LiveFds;

  std::thread AcceptThread;
  std::vector<std::unique_ptr<ReaderSlot>> Readers; // accept thread only
  std::thread SupervisorThread;

  std::vector<std::unique_ptr<Shard>> Shards;

  explicit Impl(FrontOptions O)
      : Opts(std::move(O)), RouteP(api::PipelineOptions{false, {}, 0}),
        RouteCache(Opts.RouteCacheCapacity) {}

  // Lifecycle.
  ErrorOr<bool> startImpl();
  ErrorOr<bool> bindSocket();
  void cleanupFailedStart();
  std::vector<std::string> workerArgs(const Shard &S) const;
  bool spawnWorker(Shard &S);
  bool tryAdopt(Shard &S);

  // Data path.
  void acceptLoop();
  void readerLoop(ConnPtr C);
  void dispatch(const ConnPtr &C, uint64_t Seq, std::string Payload);
  unsigned routeShard(const std::string &NestSrc, const std::string &Payload);
  int submit(Shard &S, const ConnPtr &C, uint64_t Seq, uint64_t LineNo,
             const std::string &Id, const std::string &Payload);
  void respReaderLoop(Shard &S, uint64_t Gen, int Fd);
  void deliver(const ConnPtr &C, uint64_t Seq, const std::string &Record);

  // Failure handling.
  std::deque<PendingReq> markDownLocked(Shard &S);
  void markDown(Shard &S, uint64_t Gen);
  void flushOrphans(Shard &S, std::deque<PendingReq> &Orphans);
  uint64_t backoffMillis(unsigned Failures) const;

  // Supervision.
  void superviseLoop();
  void superviseShard(Shard &S, Clock::time_point Now);
  void drainWorkerStdout(Shard &S);

  // Inline ops.
  ErrorOr<std::string> opsCall(Shard &S, const std::string &Payload,
                               uint64_t TimeoutMillis);
  std::string healthzRecord(const std::string &Id);
  std::string statzRecord(const std::string &Id);
  std::string persistRecord(const std::string &Id);

  // Drain.
  void shutdownShard(Shard &S);
};

//===----------------------------------------------------------------------===//
// Worker lifecycle: spawn, adopt, fail, back off, respawn
//===----------------------------------------------------------------------===//

std::vector<std::string> Front::Impl::workerArgs(const Shard &S) const {
  std::vector<std::string> A;
  A.push_back(Opts.ServeBinary);
  A.push_back("--socket");
  A.push_back(S.SockPath);
  A.push_back("--jobs");
  A.push_back(std::to_string(Opts.WorkerJobs ? Opts.WorkerJobs : 1));
  if (!Opts.EnableCache)
    A.push_back("--no-cache");
  if (Opts.CacheCapacity) {
    A.push_back("--cache-cap");
    A.push_back(std::to_string(Opts.CacheCapacity));
  }
  A.push_back("--queue-cap");
  A.push_back(std::to_string(Opts.QueueCapacity ? Opts.QueueCapacity : 64));
  if (Opts.DefaultDeadlineMillis) {
    A.push_back("--deadline-ms");
    A.push_back(std::to_string(Opts.DefaultDeadlineMillis));
  }
  if (!S.PersistPath.empty()) {
    A.push_back("--persist");
    A.push_back(S.PersistPath);
    if (Opts.JournalCapacity) {
      A.push_back("--journal-cap");
      A.push_back(std::to_string(Opts.JournalCapacity));
    }
  }
  if (Opts.WriteTimeoutMillis) {
    A.push_back("--write-timeout-ms");
    A.push_back(std::to_string(Opts.WriteTimeoutMillis));
  }
  // The forwarding envelope escapes the payload into a JSON string,
  // which can double it; workers get headroom so forwarding never
  // shrinks the client-visible frame budget.
  A.push_back("--max-frame-bytes");
  A.push_back(std::to_string(2 * Opts.MaxFrameBytes + 4096));
  std::string Spec = renderFaultSpec(Opts.Faults);
  if (!Spec.empty()) {
    A.push_back("--fault");
    A.push_back(Spec);
  }
  return A;
}

bool Front::Impl::spawnWorker(Shard &S) {
  // Argv is fully materialized before the fork: the front is
  // multithreaded, so the child must not allocate between fork and exec.
  std::vector<std::string> Args = workerArgs(S);
  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 1);
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  int Out[2];
  if (::pipe(Out) != 0)
    return false;
  setCloexec(Out[0]);

  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Out[0]);
    ::close(Out[1]);
    return false;
  }
  if (Pid == 0) {
    ::dup2(Out[1], STDOUT_FILENO);
    ::close(Out[1]);
    ::execv(Argv[0], Argv.data());
    _exit(127);
  }
  ::close(Out[1]);
  int Flags = ::fcntl(Out[0], F_GETFL);
  if (Flags >= 0)
    ::fcntl(Out[0], F_SETFL, Flags | O_NONBLOCK);

  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Pid = Pid;
  S.OutFd = Out[0];
  S.Starting = true;
  S.RestartPending = false;
  S.StartDeadline = Clock::now() + ms(Opts.StartupTimeoutMillis);
  return true;
}

/// One adoption attempt against a starting worker: connect, require a
/// healthz answer, wire the data connection and a fresh response
/// reader, open the ops connection. Cheap to call repeatedly while the
/// worker binds (worker-slow-start exercises exactly that).
bool Front::Impl::tryAdopt(Shard &S) {
  // The previous generation's response reader has exited by now (its
  // socket was shut down when the shard went down); reclaim it outside
  // any lock so its final stale-generation markDown can complete.
  if (S.RespReader.joinable())
    S.RespReader.join();

  ErrorOr<serve::ClientConn> Data = serve::connectUnix(S.SockPath);
  if (!Data)
    return false;
  ErrorOr<std::string> Health = Data->call("{\"op\":\"healthz\"}", 1000);
  if (!Health)
    return false;
  ErrorOr<serve::ClientConn> Ops = serve::connectUnix(S.SockPath);
  if (!Ops)
    return false;

  int DataFd = Data->release();
  clearRecvTimeout(DataFd);
  if (Opts.WriteTimeoutMillis)
    setSendTimeout(DataFd, Opts.WriteTimeoutMillis);

  uint64_t Gen;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.DataFd = DataFd;
    S.Up = true;
    S.Starting = false;
    S.RestartPending = false;
    S.ConsecFailures = 0;
    S.LastProbe = Clock::now();
    Gen = S.Generation;
  }
  {
    std::lock_guard<std::mutex> Lock(S.OpsMu);
    S.Ops = std::move(*Ops);
  }
  Shard *SP = &S;
  S.RespReader =
      std::thread([this, SP, Gen, DataFd] { respReaderLoop(*SP, Gen, DataFd); });
  return true;
}

uint64_t Front::Impl::backoffMillis(unsigned Failures) const {
  uint64_t Base = Opts.RestartBackoffMillis ? Opts.RestartBackoffMillis : 1;
  unsigned Shift = Failures < 10 ? Failures : 10;
  uint64_t B = Base << Shift;
  uint64_t Cap = Opts.RestartBackoffMaxMillis ? Opts.RestartBackoffMaxMillis
                                              : Base;
  return B < Cap ? B : Cap;
}

std::deque<PendingReq> Front::Impl::markDownLocked(Shard &S) {
  std::deque<PendingReq> Orphans;
  S.Up = false;
  S.Starting = false;
  ++S.Generation;
  Orphans.swap(S.Pending);
  if (S.DataFd >= 0) {
    // Shut down, never close: the response reader may still be blocked
    // in read() on this fd; it observes the shutdown (or the stale
    // generation) and is the one that closes it.
    ::shutdown(S.DataFd, SHUT_RDWR);
    S.DataFd = -1;
  }
  S.RestartPending = true;
  S.RestartAt = Clock::now() + ms(backoffMillis(S.ConsecFailures));
  ++S.ConsecFailures;
  return Orphans;
}

void Front::Impl::markDown(Shard &S, uint64_t Gen) {
  std::deque<PendingReq> Orphans;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!S.Up || S.Generation != Gen)
      return; // someone else already failed this incarnation
    Orphans = markDownLocked(S);
  }
  flushOrphans(S, Orphans);
}

/// Every request that was in flight to a dead shard gets a structured,
/// retryable answer - never a hang, never a torn frame.
void Front::Impl::flushOrphans(Shard &S, std::deque<PendingReq> &Orphans) {
  for (PendingReq &P : Orphans) {
    ++Stats.ShardDownRejects;
    deliver(P.C, P.Seq,
            engine::makeErrorRecord(
                "irlt-front", P.Id, engine::errkind::ShardDown,
                "shard " + std::to_string(S.Index) +
                    " worker died with the request in flight; retry"));
  }
}

//===----------------------------------------------------------------------===//
// Shard data path: submit + response reader
//===----------------------------------------------------------------------===//

/// 0 = accepted, 1 = window full, 2 = shard down.
int Front::Impl::submit(Shard &S, const ConnPtr &C, uint64_t Seq,
                        uint64_t LineNo, const std::string &Id,
                        const std::string &Payload) {
  json::JsonWriter W;
  W.beginObject();
  W.field("op", "fwd");
  W.field("line_no", LineNo);
  W.field("req", Payload);
  W.endObject();
  std::string Frame = serve::encodeFrame(W.str());

  std::deque<PendingReq> Orphans;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!S.Up)
      return 2;
    if (S.Pending.size() >= Opts.WindowCapacity)
      return 1;
    PendingReq P;
    P.C = C;
    P.Seq = Seq;
    P.Id = Id;
    P.Enqueued = Clock::now();
    S.Pending.push_back(std::move(P));
    // Enqueue-then-write under the lock: the FIFO entry must be visible
    // before any response byte for it can arrive at the reader.
    if (writeAll(S.DataFd, Frame))
      return 0;
    // Write failure: the worker end is gone, or wedged past
    // SO_SNDTIMEO. Fail the shard; the caller reports this request,
    // the orphans are everything else that was in flight.
    S.Pending.pop_back();
    Orphans = markDownLocked(S);
  }
  flushOrphans(S, Orphans);
  return 2;
}

void Front::Impl::respReaderLoop(Shard &S, uint64_t Gen, int Fd) {
  serve::FrameReader FR(2 * Opts.MaxFrameBytes + 4096);
  char Buf[65536];
  bool Fail = false;
  bool Stale = false;
  for (;;) {
    std::string Payload;
    serve::FrameReader::Status St = serve::FrameReader::Status::NeedMore;
    while (!Fail && !Stale &&
           (St = FR.next(Payload)) == serve::FrameReader::Status::Frame) {
      PendingReq P;
      {
        std::lock_guard<std::mutex> Lock(S.Mu);
        if (S.Generation != Gen) {
          Stale = true;
          break;
        }
        if (S.Pending.empty()) {
          // A response with no request outstanding: protocol violation.
          // Fail the shard rather than guess an owner.
          Fail = true;
          break;
        }
        P = std::move(S.Pending.front());
        S.Pending.pop_front();
      }
      ++S.Served;
      ++Stats.Served;
      deliver(P.C, P.Seq, Payload);
      Payload.clear();
    }
    if (Fail || Stale || St == serve::FrameReader::Status::Error)
      break;
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      // EAGAIN means a stray SO_RCVTIMEO fired, not that the worker
      // died; hang detection belongs to the pending-age watchdog.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      break;
    }
    if (N == 0)
      break; // EOF: the worker died (or markDown shut the socket down)
    FR.feed(Buf, static_cast<size_t>(N));
  }
  if (std::getenv("IRLT_FRONT_DEBUG"))
    std::fprintf(stderr,
                 "respReader exit: shard=%u gen=%llu fail=%d stale=%d "
                 "err=%s errno=%d\n",
                 S.Index, (unsigned long long)Gen, (int)Fail, (int)Stale,
                 serve::FrameReader::errorName(FR.error()), errno);
  // A no-op when the supervisor failed this generation first.
  markDown(S, Gen);
  ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Response delivery (per-connection completed-prefix reorder buffer)
//===----------------------------------------------------------------------===//

void Front::Impl::deliver(const ConnPtr &C, uint64_t Seq,
                          const std::string &Record) {
  std::lock_guard<std::mutex> Lock(C->WriteMu);
  C->Pending.emplace(Seq, Record);
  while (!C->Pending.empty() && C->Pending.begin()->first == C->NextWrite) {
    if (!C->Dead) {
      if (!writeAll(C->Fd, serve::encodeFrame(C->Pending.begin()->second))) {
        C->Dead = true;
        ++Stats.WriteFailures;
      }
    }
    C->Pending.erase(C->Pending.begin());
    ++C->NextWrite;
  }
}

//===----------------------------------------------------------------------===//
// Routing
//===----------------------------------------------------------------------===//

unsigned Front::Impl::routeShard(const std::string &NestSrc,
                                 const std::string &Payload) {
  unsigned N = static_cast<unsigned>(Shards.size());
  if (N <= 1)
    return 0;
  if (NestSrc.empty())
    return static_cast<unsigned>(fnv64(Payload) % N);

  std::lock_guard<std::mutex> Lock(RouteMu);
  if (std::shared_ptr<const unsigned> Hit = RouteCache.lookup(NestSrc))
    return *Hit;
  unsigned Idx;
  {
    // Adversarial nests can saturate the bounds math; the guard makes
    // that a deterministic route instead of UB, and an unparseable nest
    // routes by its source hash - any shard renders the identical
    // structured error, so correctness never depends on the parse.
    OverflowGuard Guard;
    ErrorOr<LoopNest> Nest = RouteP.loadNest(NestSrc);
    Idx = static_cast<unsigned>(
        (Nest ? structuralNestHash(*Nest) : fnv64(NestSrc)) % N);
  }
  RouteCache.insert(NestSrc, std::make_shared<unsigned>(Idx));
  return Idx;
}

//===----------------------------------------------------------------------===//
// Dispatch (client reader thread)
//===----------------------------------------------------------------------===//

void Front::Impl::dispatch(const ConnPtr &C, uint64_t Seq,
                           std::string Payload) {
  uint64_t LineNo = Seq + 1;
  std::string Id = std::to_string(LineNo);
  std::string NestSrc;

  // One shallow parse. Only the aggregate ops are answered here;
  // everything else - unknown ops and unparseable requests included -
  // is forwarded, so the worker renders the exact record a direct
  // irlt-serve would and the byte-identity contract holds.
  ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Payload);
  if (Doc && Doc->isObject()) {
    Id = Doc->stringOr("id", Id);
    std::string Op = Doc->stringOr("op");
    if (Op == "healthz" || Op == "statz" || Op == "persist") {
      ++Stats.InlineOps;
      if (Op == "healthz")
        deliver(C, Seq, healthzRecord(Id));
      else if (Op == "statz")
        deliver(C, Seq, statzRecord(Id));
      else
        deliver(C, Seq, persistRecord(Id));
      return;
    }
    NestSrc = Doc->stringOr("nest");
  }

  if (Draining.load()) {
    ++Stats.DrainRejects;
    deliver(C, Seq,
            engine::makeErrorRecord("irlt-front", Id, engine::errkind::Draining,
                                    "front is draining; request rejected"));
    return;
  }

  unsigned Idx = routeShard(NestSrc, Payload);
  ++Stats.Routed;
  int R = submit(*Shards[Idx], C, Seq, LineNo, Id, Payload);
  if (R == 0)
    return;
  if (R == 1) {
    ++Stats.WindowShed;
    deliver(C, Seq,
            engine::makeErrorRecord(
                "irlt-front", Id, engine::errkind::Overloaded,
                "shard " + std::to_string(Idx) + " window full (" +
                    std::to_string(Opts.WindowCapacity) +
                    " outstanding); retry later"));
    return;
  }
  ++Stats.ShardDownRejects;
  deliver(C, Seq,
          engine::makeErrorRecord(
              "irlt-front", Id, engine::errkind::ShardDown,
              "shard " + std::to_string(Idx) +
                  " is down (worker restarting); retry"));
}

//===----------------------------------------------------------------------===//
// Client reader thread: socket -> FrameReader -> dispatch
//===----------------------------------------------------------------------===//

void Front::Impl::readerLoop(ConnPtr C) {
  serve::FrameReader FR(Opts.MaxFrameBytes);
  char Buf[4096];
  size_t ReadLen = Opts.Faults.ShortRead ? 1 : sizeof(Buf);

  for (;;) {
    ssize_t N = ::read(C->Fd, Buf, ReadLen);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (N == 0) {
      if (FR.midFrame()) {
        ++Stats.BadFrames;
        deliver(C, C->NextSeq++,
                engine::makeErrorRecord(
                    "irlt-front", "-", engine::errkind::BadFrame,
                    "truncated frame: connection closed with " +
                        std::to_string(FR.bufferedBytes()) +
                        " bytes of an incomplete frame"));
      }
      break;
    }
    FR.feed(Buf, static_cast<size_t>(N));
    std::string Payload;
    serve::FrameReader::Status S;
    while ((S = FR.next(Payload)) == serve::FrameReader::Status::Frame) {
      ++Stats.FramesIn;
      uint64_t Seq = C->NextSeq++;
      dispatch(C, Seq, std::move(Payload));
      Payload.clear();
    }
    if (S == serve::FrameReader::Status::Error) {
      ++Stats.BadFrames;
      deliver(C, C->NextSeq++,
              engine::makeErrorRecord(
                  "irlt-front", "-", engine::errkind::BadFrame,
                  std::string("framing error: ") +
                      serve::FrameReader::errorName(FR.error())));
      break;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    LiveFds.erase(C->Fd);
  }
}

//===----------------------------------------------------------------------===//
// Supervision
//===----------------------------------------------------------------------===//

void Front::Impl::drainWorkerStdout(Shard &S) {
  int Fd;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Fd = S.OutFd;
  }
  if (Fd < 0)
    return;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N > 0) {
      S.StdoutBuf.append(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    break; // EOF, or EAGAIN on the nonblocking pipe
  }
}

void Front::Impl::superviseShard(Shard &S, Clock::time_point Now) {
  pid_t Pid;
  bool Up, Starting, RestartPending;
  uint64_t Gen;
  Clock::time_point RestartAt, StartDeadline, LastProbe;
  bool HavePending = false;
  Clock::time_point Oldest{};
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Pid = S.Pid;
    Up = S.Up;
    Starting = S.Starting;
    RestartPending = S.RestartPending;
    Gen = S.Generation;
    RestartAt = S.RestartAt;
    StartDeadline = S.StartDeadline;
    LastProbe = S.LastProbe;
    if (!S.Pending.empty()) {
      HavePending = true;
      Oldest = S.Pending.front().Enqueued;
    }
  }

  // 1. Reap: a worker exit is the strongest down signal.
  if (Pid > 0) {
    int Status = 0;
    if (::waitpid(Pid, &Status, WNOHANG) == Pid) {
      drainWorkerStdout(S);
      {
        std::lock_guard<std::mutex> Lock(S.Mu);
        S.Pid = -1;
        if (S.OutFd >= 0) {
          ::close(S.OutFd);
          S.OutFd = -1;
        }
      }
      if (Up) {
        markDown(S, Gen);
      } else {
        // Died while starting (exec failure, startup crash): schedule
        // the next attempt with backoff.
        std::lock_guard<std::mutex> Lock(S.Mu);
        S.Starting = false;
        S.RestartPending = true;
        S.RestartAt = Now + ms(backoffMillis(S.ConsecFailures));
        ++S.ConsecFailures;
      }
      return;
    }
  }

  if (Up) {
    // 2. Hang watchdog. A wedged worker *thread* still answers probes
    // (the serve reader thread answers them inline), so liveness of the
    // oldest in-flight request is the signal that catches real hangs.
    if (Opts.PendingTimeoutMillis && HavePending &&
        Now - Oldest >= ms(Opts.PendingTimeoutMillis)) {
      ++Stats.HangKills;
      if (Pid > 0)
        ::kill(Pid, SIGKILL);
      markDown(S, Gen);
      return;
    }
    // 3. Health probe on the dedicated ops connection.
    if (Opts.ProbeIntervalMillis &&
        Now - LastProbe >= ms(Opts.ProbeIntervalMillis)) {
      {
        std::lock_guard<std::mutex> Lock(S.Mu);
        S.LastProbe = Now;
      }
      bool Ok = false;
      ErrorOr<std::string> R =
          opsCall(S, "{\"op\":\"healthz\"}", Opts.ProbeTimeoutMillis);
      if (R) {
        ErrorOr<json::JsonValue> D = json::JsonValue::parse(*R);
        Ok = D && D->isObject() && D->boolOr("ok", false);
      }
      if (!Ok) {
        ++Stats.ProbeFailures;
        if (Pid > 0)
          ::kill(Pid, SIGKILL);
        markDown(S, Gen);
      }
    }
    return;
  }

  if (Draining.load())
    return; // no restarts while the front is shutting down

  // 4. A starting worker: poll for its first healthy probe.
  if (Starting) {
    if (tryAdopt(S))
      return;
    if (Now >= StartDeadline) {
      if (Pid > 0)
        ::kill(Pid, SIGKILL); // reaped by step 1 next tick
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Starting = false;
      S.RestartPending = true;
      S.RestartAt = Now + ms(backoffMillis(S.ConsecFailures));
      ++S.ConsecFailures;
    }
    return;
  }

  // 5. A down shard whose worker process is still alive: the data path
  // failed without the process dying (write failure, protocol
  // violation, torn stream). That incarnation is unreachable either
  // way, so kill the orphan; step 1 reaps it next tick and the respawn
  // below then proceeds. Without this the Pid < 0 guard would wedge the
  // shard forever.
  if (RestartPending && Pid > 0) {
    ::kill(Pid, SIGKILL);
    return;
  }

  // 6. Backoff elapsed: respawn (warm - the worker replays its journal).
  if (RestartPending && Pid < 0 && Now >= RestartAt) {
    ++Stats.Restarts;
    ++S.RestartCount;
    if (!spawnWorker(S)) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.RestartAt = Now + ms(backoffMillis(S.ConsecFailures));
      ++S.ConsecFailures;
    }
  }
}

void Front::Impl::superviseLoop() {
  while (!StopSupervisor.load()) {
    std::this_thread::sleep_for(ms(20));
    Clock::time_point Now = Clock::now();
    for (auto &SP : Shards)
      superviseShard(*SP, Now);
  }
}

//===----------------------------------------------------------------------===//
// Inline ops: per-shard fan-out, one aggregated record
//===----------------------------------------------------------------------===//

ErrorOr<std::string> Front::Impl::opsCall(Shard &S, const std::string &Payload,
                                          uint64_t TimeoutMillis) {
  std::lock_guard<std::mutex> Lock(S.OpsMu);
  if (!S.Ops.valid()) {
    ErrorOr<serve::ClientConn> C = serve::connectUnix(S.SockPath);
    if (!C)
      return Failure(Diag::error("front: shard " + std::to_string(S.Index) +
                                 " unreachable: " + C.message()));
    S.Ops = std::move(*C);
  }
  ErrorOr<std::string> R = S.Ops.call(Payload, TimeoutMillis);
  if (!R)
    S.Ops = serve::ClientConn(); // poisoned: a late response would desync
  return R;
}

std::string Front::Impl::healthzRecord(const std::string &Id) {
  uint64_t UpCount = 0;
  std::vector<char> Up(Shards.size(), 0);
  for (size_t I = 0; I < Shards.size(); ++I) {
    ErrorOr<std::string> R =
        opsCall(*Shards[I], "{\"op\":\"healthz\"}", Opts.ProbeTimeoutMillis);
    if (R) {
      ErrorOr<json::JsonValue> D = json::JsonValue::parse(*R);
      if (D && D->isObject() && D->boolOr("ok", false)) {
        Up[I] = 1;
        ++UpCount;
      }
    }
  }
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-front");
  W.field("record", "healthz");
  W.field("id", Id);
  W.field("ok", UpCount == Shards.size() && !Draining.load());
  W.field("draining", Draining.load());
  W.field("shards", static_cast<uint64_t>(Shards.size()));
  W.field("shards_up", UpCount);
  W.key("shard_status").beginArray();
  for (size_t I = 0; I < Shards.size(); ++I) {
    W.beginObject();
    W.field("shard", static_cast<uint64_t>(I));
    W.field("up", Up[I] != 0);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string Front::Impl::statzRecord(const std::string &Id) {
  struct Peek {
    bool Up = false;
    pid_t Pid = -1;
    uint64_t Restarts = 0;
    uint64_t PendingCount = 0;
    uint64_t Served = 0;
    bool WorkerReachable = false;
    uint64_t WorkerServed = 0;
    uint64_t WorkerErrors = 0;
    uint64_t WorkerQueueDepth = 0;
    uint64_t WorkerJournalEntries = 0;
  };
  std::vector<Peek> Peeks(Shards.size());
  for (size_t I = 0; I < Shards.size(); ++I) {
    Shard &S = *Shards[I];
    Peek &P = Peeks[I];
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      P.Up = S.Up;
      P.Pid = S.Pid;
      P.PendingCount = S.Pending.size();
    }
    P.Restarts = S.RestartCount.load();
    P.Served = S.Served.load();
    // The workers' own counters cannot be embedded verbatim (JsonWriter
    // has no raw splice), so the interesting fields are re-emitted.
    ErrorOr<std::string> R =
        opsCall(S, "{\"op\":\"statz\"}", Opts.ProbeTimeoutMillis);
    if (R) {
      ErrorOr<json::JsonValue> D = json::JsonValue::parse(*R);
      if (D && D->isObject()) {
        P.WorkerReachable = true;
        P.WorkerQueueDepth = static_cast<uint64_t>(D->intOr("queue_depth", 0));
        if (const json::JsonValue *Ctr = D->find("counters")) {
          P.WorkerServed = static_cast<uint64_t>(Ctr->intOr("served", 0));
          P.WorkerErrors = static_cast<uint64_t>(Ctr->intOr("errors", 0));
        }
        if (const json::JsonValue *J = D->find("journal"))
          P.WorkerJournalEntries =
              static_cast<uint64_t>(J->intOr("entries", 0));
      }
    }
  }
  uint64_t UpCount = 0;
  for (const Peek &P : Peeks)
    if (P.Up)
      ++UpCount;

  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-front");
  W.field("record", "statz");
  W.field("id", Id);
  W.field("ok", true);
  W.field("draining", Draining.load());
  W.field("shards", static_cast<uint64_t>(Shards.size()));
  W.field("shards_up", UpCount);
  W.key("counters").beginObject();
  W.field("conns_accepted", Stats.ConnsAccepted.load());
  W.field("conns_rejected", Stats.ConnsRejected.load());
  W.field("frames_in", Stats.FramesIn.load());
  W.field("inline_ops", Stats.InlineOps.load());
  W.field("routed", Stats.Routed.load());
  W.field("window_shed", Stats.WindowShed.load());
  W.field("drain_rejects", Stats.DrainRejects.load());
  W.field("shard_down_rejects", Stats.ShardDownRejects.load());
  W.field("served", Stats.Served.load());
  W.field("bad_frames", Stats.BadFrames.load());
  W.field("write_failures", Stats.WriteFailures.load());
  W.field("restarts", Stats.Restarts.load());
  W.field("probe_failures", Stats.ProbeFailures.load());
  W.field("hang_kills", Stats.HangKills.load());
  W.endObject();
  W.key("shard_status").beginArray();
  for (size_t I = 0; I < Peeks.size(); ++I) {
    const Peek &P = Peeks[I];
    W.beginObject();
    W.field("shard", static_cast<uint64_t>(I));
    W.field("up", P.Up);
    W.field("pid", static_cast<int64_t>(P.Pid));
    W.field("restarts", P.Restarts);
    W.field("pending", P.PendingCount);
    W.field("window_capacity", static_cast<uint64_t>(Opts.WindowCapacity));
    W.field("served", P.Served);
    W.key("worker").beginObject();
    W.field("reachable", P.WorkerReachable);
    W.field("served", P.WorkerServed);
    W.field("errors", P.WorkerErrors);
    W.field("queue_depth", P.WorkerQueueDepth);
    W.field("journal_entries", P.WorkerJournalEntries);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.take();
}

std::string Front::Impl::persistRecord(const std::string &Id) {
  if (Opts.PersistPath.empty())
    return engine::makeErrorRecord(
        "irlt-front", Id, engine::errkind::Request,
        "persist: persistence is disabled (front started without --persist)");
  uint64_t Entries = 0, Failed = 0;
  for (auto &SP : Shards) {
    // A journal dump can outlast a health probe; give it extra room.
    ErrorOr<std::string> R = opsCall(*SP, "{\"op\":\"persist\"}",
                                     Opts.ProbeTimeoutMillis * 5);
    bool Ok = false;
    if (R) {
      ErrorOr<json::JsonValue> D = json::JsonValue::parse(*R);
      if (D && D->isObject() && D->boolOr("ok", false)) {
        Ok = true;
        Entries += static_cast<uint64_t>(D->intOr("entries", 0));
      }
    }
    if (!Ok)
      ++Failed;
  }
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-front");
  W.field("record", "persist");
  W.field("id", Id);
  W.field("ok", Failed == 0);
  W.field("shards", static_cast<uint64_t>(Shards.size()));
  W.field("entries", Entries);
  W.field("failed_shards", Failed);
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

void Front::Impl::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {PipeR, POLLIN, 0}};
    if (::poll(Fds, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents) {
      Draining.store(true);
      break;
    }
    if (!(Fds[0].revents & POLLIN))
      continue;

    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    setCloexec(Fd);

    for (size_t I = 0; I < Readers.size();) {
      if (Readers[I]->Done.load()) {
        Readers[I]->T.join();
        Readers.erase(Readers.begin() + static_cast<ptrdiff_t>(I));
      } else {
        ++I;
      }
    }

    if (Opts.WriteTimeoutMillis)
      setSendTimeout(Fd, Opts.WriteTimeoutMillis);

    if (Readers.size() >= Opts.MaxConns) {
      ++Stats.ConnsRejected;
      writeAll(Fd, serve::encodeFrame(engine::makeErrorRecord(
                       "irlt-front", "-", engine::errkind::Overloaded,
                       "connection limit reached (" +
                           std::to_string(Opts.MaxConns) + ")")));
      ::close(Fd);
      continue;
    }

    ++Stats.ConnsAccepted;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      LiveFds.insert(Fd);
    }
    auto Slot = std::make_unique<ReaderSlot>();
    ReaderSlot *Raw = Slot.get();
    Raw->T = std::thread([this, C, Raw]() mutable {
      readerLoop(std::move(C));
      Raw->Done.store(true);
    });
    Readers.push_back(std::move(Slot));
  }

  ::close(ListenFd);
  ListenFd = -1;
}

//===----------------------------------------------------------------------===//
// Startup / shutdown
//===----------------------------------------------------------------------===//

ErrorOr<bool> Front::Impl::bindSocket() {
  if (!Opts.SocketPath.empty() && Opts.TcpPort >= 0)
    return Failure(Diag::error("front: --socket and --port are exclusive"));
  if (Opts.SocketPath.empty() && Opts.TcpPort < 0)
    return Failure(Diag::error("front: need --socket PATH or --port N"));

  if (!Opts.SocketPath.empty()) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
      return Failure(Diag::error("front: socket path too long: '" +
                                 Opts.SocketPath + "'"));
    std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
                Opts.SocketPath.size() + 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Failure(Diag::error("front: socket(AF_UNIX) failed"));
    setCloexec(ListenFd);
    ::unlink(Opts.SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0)
      return Failure(Diag::error("front: cannot bind '" + Opts.SocketPath +
                                 "': " + std::strerror(errno)));
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Failure(Diag::error("front: socket(AF_INET) failed"));
    setCloexec(ListenFd);
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0)
      return Failure(Diag::error(
          "front: cannot bind 127.0.0.1:" + std::to_string(Opts.TcpPort) +
          ": " + std::strerror(errno)));
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) ==
        0)
      BoundPort = ntohs(Bound.sin_port);
  }

  if (::listen(ListenFd, 64) < 0)
    return Failure(Diag::error(std::string("front: listen failed: ") +
                               std::strerror(errno)));
  return true;
}

void Front::Impl::cleanupFailedStart() {
  for (auto &SP : Shards) {
    Shard &S = *SP;
    uint64_t Gen;
    pid_t Pid;
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      Gen = S.Generation;
      Pid = S.Pid;
    }
    markDown(S, Gen);
    if (S.RespReader.joinable())
      S.RespReader.join();
    {
      std::lock_guard<std::mutex> Lock(S.OpsMu);
      S.Ops = serve::ClientConn();
    }
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int Status = 0;
      ::waitpid(Pid, &Status, 0);
    }
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Pid = -1;
      if (S.OutFd >= 0) {
        ::close(S.OutFd);
        S.OutFd = -1;
      }
    }
  }
  Shards.clear();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!Opts.SocketPath.empty())
    ::unlink(Opts.SocketPath.c_str());
}

ErrorOr<bool> Front::Impl::startImpl() {
  if (Opts.Shards < 1)
    return Failure(Diag::error("front: --shards must be >= 1"));
  if (Opts.ServeBinary.empty())
    return Failure(
        Diag::error("front: need the worker binary path (--serve-bin)"));
  if (::access(Opts.ServeBinary.c_str(), X_OK) != 0)
    return Failure(Diag::error("front: worker binary '" + Opts.ServeBinary +
                               "' is not executable: " +
                               std::strerror(errno)));

  std::string Base = Opts.ShardPathBase;
  if (Base.empty())
    Base = !Opts.SocketPath.empty()
               ? Opts.SocketPath
               : "/tmp/irlt-front." + std::to_string(::getpid());
  for (unsigned I = 0; I < Opts.Shards; ++I) {
    auto S = std::make_unique<Shard>();
    S->Index = I;
    S->SockPath = Base + ".w" + std::to_string(I);
    if (!Opts.PersistPath.empty())
      S->PersistPath = Opts.PersistPath + ".shard" + std::to_string(I);
    Shards.push_back(std::move(S));
  }

  ErrorOr<bool> Bound = bindSocket();
  if (!Bound) {
    cleanupFailedStart();
    return Bound;
  }

  // Spawn every worker first, then wait for each: they boot
  // concurrently, so startup is bounded by the slowest worker, not the
  // sum (worker-slow-start pins this).
  for (auto &SP : Shards) {
    if (!spawnWorker(*SP)) {
      cleanupFailedStart();
      return Failure(Diag::error("front: cannot spawn worker for shard " +
                                 std::to_string(SP->Index)));
    }
  }
  for (auto &SP : Shards) {
    Shard &S = *SP;
    bool Healthy = false;
    bool Died = false;
    Clock::time_point Deadline = Clock::now() + ms(Opts.StartupTimeoutMillis);
    while (Clock::now() < Deadline && !Died) {
      if (tryAdopt(S)) {
        Healthy = true;
        break;
      }
      pid_t Pid;
      {
        std::lock_guard<std::mutex> Lock(S.Mu);
        Pid = S.Pid;
      }
      int Status = 0;
      if (Pid > 0 && ::waitpid(Pid, &Status, WNOHANG) == Pid) {
        std::lock_guard<std::mutex> Lock(S.Mu);
        S.Pid = -1;
        Died = true; // fail fast: exec failure or startup crash
      }
      if (!Died)
        std::this_thread::sleep_for(ms(20));
    }
    if (!Healthy) {
      cleanupFailedStart();
      return Failure(Diag::error(
          "front: shard " + std::to_string(S.Index) + " worker ('" +
          Opts.ServeBinary + "') did not become healthy within " +
          std::to_string(Opts.StartupTimeoutMillis) + " ms"));
    }
  }

  int Pipe[2];
  if (::pipe(Pipe) != 0) {
    cleanupFailedStart();
    return Failure(Diag::error("front: pipe() failed"));
  }
  PipeR = Pipe[0];
  PipeW = Pipe[1];
  setCloexec(PipeR);
  setCloexec(PipeW);

  SupervisorThread = std::thread([this] { superviseLoop(); });
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Front::Impl::shutdownShard(Shard &S) {
  uint64_t Gen;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Gen = S.Generation;
  }
  markDown(S, Gen); // pending is empty by now; fail safe if not
  if (S.RespReader.joinable())
    S.RespReader.join();
  {
    std::lock_guard<std::mutex> Lock(S.OpsMu);
    S.Ops = serve::ClientConn();
  }

  pid_t Pid;
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    Pid = S.Pid;
  }
  int Status = 0;
  bool HaveStatus = false;
  if (Pid > 0) {
    ::kill(Pid, SIGTERM); // the worker drains and persists its journal
    for (int I = 0; I < 150 && !HaveStatus; ++I) {
      if (::waitpid(Pid, &Status, WNOHANG) == Pid) {
        HaveStatus = true;
      } else {
        drainWorkerStdout(S); // keep the pipe from filling mid-drain
        std::this_thread::sleep_for(ms(100));
      }
    }
    if (!HaveStatus) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, &Status, 0);
      HaveStatus = true;
    }
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Pid = -1;
  }

  drainWorkerStdout(S);
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (S.OutFd >= 0) {
      ::close(S.OutFd);
      S.OutFd = -1;
    }
  }

  ++Summary.ShardCount;
  if (HaveStatus && WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
    ++Summary.CleanExits;

  // The worker's stdout is ndjson; the last "drained" record carries
  // its final counters and journal-dump size (earlier generations may
  // have printed their own on clean exits - the last one is this
  // incarnation's).
  std::string LastDrained;
  size_t Start = 0;
  while (Start <= S.StdoutBuf.size()) {
    size_t End = S.StdoutBuf.find('\n', Start);
    size_t Len = (End == std::string::npos ? S.StdoutBuf.size() : End) - Start;
    std::string Line = S.StdoutBuf.substr(Start, Len);
    if (!Line.empty()) {
      ErrorOr<json::JsonValue> D = json::JsonValue::parse(Line);
      if (D && D->isObject() && D->stringOr("record") == "drained")
        LastDrained = Line;
    }
    if (End == std::string::npos)
      break;
    Start = End + 1;
  }
  if (!LastDrained.empty()) {
    ErrorOr<json::JsonValue> D = json::JsonValue::parse(LastDrained);
    Summary.WorkerServed += static_cast<uint64_t>(D->intOr("served", 0));
    Summary.WorkerShed += static_cast<uint64_t>(D->intOr("shed", 0));
    Summary.WorkerErrors += static_cast<uint64_t>(D->intOr("errors", 0));
    Summary.WorkerBadFrames +=
        static_cast<uint64_t>(D->intOr("bad_frames", 0));
    Summary.WorkerWriteFailures +=
        static_cast<uint64_t>(D->intOr("write_failures", 0));
    Summary.PersistedEntries +=
        static_cast<uint64_t>(D->intOr("persisted_entries", 0));
  }
}

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

Front::Front(FrontOptions Opts) : M(std::make_unique<Impl>(std::move(Opts))) {}

Front::~Front() {
  // Safety net for a started-but-never-run() front: drain so every
  // thread and worker is reclaimed before members are torn down.
  if (M->AcceptThread.joinable()) {
    requestDrain();
    run();
  }
  if (M->PipeR >= 0)
    ::close(M->PipeR);
  if (M->PipeW >= 0)
    ::close(M->PipeW);
  if (M->ListenFd >= 0)
    ::close(M->ListenFd);
  if (!M->Opts.SocketPath.empty())
    ::unlink(M->Opts.SocketPath.c_str());
}

ErrorOr<bool> Front::start() { return M->startImpl(); }

bool Front::run() {
  Impl &I = *M;
  I.AcceptThread.join();

  // Drain, phase 1: wake every blocked client reader; buffered complete
  // frames still dispatch ("draining" rejects from here on).
  {
    std::lock_guard<std::mutex> Lock(I.ConnMu);
    for (int Fd : I.LiveFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (auto &Slot : I.Readers)
    Slot->T.join();
  I.Readers.clear();

  // Phase 2: every routed request resolves. The supervisor stays up so
  // a worker that dies or wedges mid-drain still fails structured
  // (markDown / the pending-age watchdog) instead of stalling forever.
  for (;;) {
    bool AnyPending = false;
    for (auto &SP : I.Shards) {
      std::lock_guard<std::mutex> Lock(SP->Mu);
      if (!SP->Pending.empty()) {
        AnyPending = true;
        break;
      }
    }
    if (!AnyPending)
      break;
    std::this_thread::sleep_for(ms(10));
  }

  I.StopSupervisor.store(true);
  if (I.SupervisorThread.joinable())
    I.SupervisorThread.join();

  // Phase 3: SIGTERM every worker (each drains and persists its own
  // journal), reap, and aggregate their drained records.
  for (auto &SP : I.Shards)
    I.shutdownShard(*SP);

  return I.Stats.WriteFailures.load() == 0;
}

void Front::requestDrain() {
  if (M->PipeW >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(M->PipeW, &B, 1);
  }
}

int Front::boundPort() const { return M->BoundPort; }

unsigned Front::shardCount() const {
  return static_cast<unsigned>(M->Shards.size());
}

std::vector<pid_t> Front::shardPids() const {
  std::vector<pid_t> P;
  P.reserve(M->Shards.size());
  for (auto &SP : M->Shards) {
    std::lock_guard<std::mutex> Lock(SP->Mu);
    P.push_back(SP->Up ? SP->Pid : -1);
  }
  return P;
}

const FrontStats &Front::stats() const { return M->Stats; }

const FrontDrainSummary &Front::drainSummary() const { return M->Summary; }
