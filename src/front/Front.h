//===- front/Front.h - Sharded multi-process serve front -----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded front behind tools/irlt-front (docs/FRONT.md): a
/// supervisor that spawns N irlt-serve worker processes (each with its
/// own Unix socket and cache journal), speaks the unchanged IRL1 framed
/// protocol on its own socket, and routes every request frame to the
/// shard owning its canonicalNestKey hash - so each worker's memoization
/// caches stay hot on a disjoint keyspace, and one crashed or wedged
/// worker never takes the whole service down.
///
/// Routing: the nest source of each request is parsed (through a bounded
/// route cache) and FNV-1a(canonicalNestKey) % shards picks the worker;
/// requests without a parseable nest route by a hash of the raw payload -
/// still deterministic, and any shard renders the identical error record.
/// Each routed frame is wrapped in the serve layer's forwarding envelope
/// ({"op":"fwd","line_no":N,"req":...}) carrying the front-side line
/// number, which keeps default ids and parse-error messages - and
/// therefore whole response streams - byte-identical to a direct
/// single-process irlt-serve run.
///
/// Robustness structure (the supervisor thread):
///
///   probes      every ProbeIntervalMillis each worker answers healthz
///               on a dedicated ops connection within ProbeTimeoutMillis,
///               or it is SIGKILLed and restarted
///   crashes     a worker exit (waitpid) or a dropped data connection
///               fails the shard: every in-flight request on it is
///               answered with a structured, retryable "shard_down"
///               record - never a hang, never a torn frame
///   hangs       a wedged worker thread answers probes (the serve reader
///               thread is what answers them), so the watchdog also
///               bounds the *oldest pending request age*
///               (PendingTimeoutMillis) and SIGKILLs past it
///   restarts    capped exponential backoff (RestartBackoffMillis
///               doubling up to RestartBackoffMaxMillis); a restarted
///               worker replays its own cache journal, so it comes back
///               warm; requests routed to a down shard are rejected
///               "shard_down" immediately while it restarts
///   windows     per-shard outstanding requests are bounded
///               (WindowCapacity); past it the front sheds with the
///               same structured "overloaded" taxonomy as the workers
///   drain       requestDrain() (async-signal-safe) stops accepting,
///               lets every in-flight request finish (or fail
///               structured), SIGTERMs every worker so each persists
///               its journal, and aggregates their drained records
///
/// Inline ops fan out: healthz / statz / persist are answered by
/// querying every live worker and aggregating one "irlt-front" record.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FRONT_FRONT_H
#define IRLT_FRONT_FRONT_H

#include "serve/Frame.h"
#include "support/ErrorOr.h"
#include "support/FaultInject.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <sys/types.h>
#include <vector>

namespace irlt {
namespace front {

/// Front configuration.
struct FrontOptions {
  /// Front Unix-domain socket path; exclusive with TcpPort.
  std::string SocketPath;
  /// >= 0: listen on 127.0.0.1:TcpPort instead (0 = kernel-assigned).
  int TcpPort = -1;
  /// Worker processes to shard across (>= 1).
  unsigned Shards = 2;
  /// Path to the irlt-serve binary to spawn.
  std::string ServeBinary;
  /// Base for per-shard worker socket (and default journal) paths;
  /// shard i listens on <base>.w<i>. Defaults to SocketPath, or a
  /// /tmp/irlt-front.<pid> base in TCP mode.
  std::string ShardPathBase;

  /// Per-worker knobs, passed through on the worker command line.
  unsigned WorkerJobs = 1;
  bool EnableCache = true;
  size_t CacheCapacity = 0;
  size_t QueueCapacity = 64;
  uint64_t DefaultDeadlineMillis = 0;
  /// Cache-journal base path; empty disables persistence. Shard i
  /// journals to <PersistPath>.shard<i>.
  std::string PersistPath;
  size_t JournalCapacity = 0;

  /// Front-side bounds (same meaning as ServeOptions).
  unsigned MaxConns = 64;
  size_t MaxFrameBytes = serve::DefaultMaxPayloadBytes;
  uint64_t WriteTimeoutMillis = 5000;
  /// Per-shard outstanding-request window; past it the front sheds with
  /// a structured "overloaded" record.
  size_t WindowCapacity = 128;
  /// Bounded route cache (nest source -> shard index); 0 = unbounded.
  size_t RouteCacheCapacity = 4096;

  /// Supervision cadence.
  uint64_t ProbeIntervalMillis = 500;
  uint64_t ProbeTimeoutMillis = 2000;
  /// Oldest-pending-request age past which a shard counts as wedged and
  /// is SIGKILLed (0 disables the watchdog).
  uint64_t PendingTimeoutMillis = 30000;
  uint64_t RestartBackoffMillis = 100;
  uint64_t RestartBackoffMaxMillis = 5000;
  /// Bound on one worker start (spawn to healthy probe).
  uint64_t StartupTimeoutMillis = 15000;

  /// Deterministic fault injection. Forwarded verbatim to every worker
  /// command line (renderFaultSpec); the front itself honors ShortRead
  /// on its own socket reads.
  FaultConfig Faults;
};

/// Monotonic counters (statz / the tool's exit record). Reconciliation:
///   FramesIn == InlineOps + Routed + DrainRejects
///   Routed   == Served + WindowShed + ShardDownRejects   (after drain)
struct FrontStats {
  std::atomic<uint64_t> ConnsAccepted{0};
  std::atomic<uint64_t> ConnsRejected{0};
  std::atomic<uint64_t> FramesIn{0};
  std::atomic<uint64_t> InlineOps{0};
  std::atomic<uint64_t> Routed{0};
  std::atomic<uint64_t> WindowShed{0};       ///< "overloaded" rejects
  std::atomic<uint64_t> DrainRejects{0};     ///< "draining" rejects
  std::atomic<uint64_t> ShardDownRejects{0}; ///< "shard_down" rejects
  std::atomic<uint64_t> Served{0};           ///< worker responses relayed
  std::atomic<uint64_t> BadFrames{0};
  std::atomic<uint64_t> WriteFailures{0};
  std::atomic<uint64_t> Restarts{0};      ///< worker restarts performed
  std::atomic<uint64_t> ProbeFailures{0}; ///< failed/timed-out probes
  std::atomic<uint64_t> HangKills{0};     ///< pending-age SIGKILLs
};

/// Aggregated from every worker's drained record (plus exit statuses)
/// when the front drains.
struct FrontDrainSummary {
  uint64_t ShardCount = 0;
  uint64_t CleanExits = 0; ///< workers that drained to exit 0
  uint64_t WorkerServed = 0;
  uint64_t WorkerShed = 0;
  uint64_t WorkerErrors = 0;
  uint64_t WorkerBadFrames = 0;
  uint64_t WorkerWriteFailures = 0;
  uint64_t PersistedEntries = 0;
};

/// The front. Lifecycle mirrors serve::Server: construct, start()
/// (spawns workers, binds, spawns threads), run() (blocks until a drain
/// completes), requestDrain() from any thread or signal handler.
class Front {
public:
  explicit Front(FrontOptions Opts);
  ~Front();

  Front(const Front &) = delete;
  Front &operator=(const Front &) = delete;

  /// Spawns and health-probes every worker, binds the front socket,
  /// starts the accept loop and the supervisor.
  ErrorOr<bool> start();

  /// Blocks until a drain completes. Returns false if any client-side
  /// response write failed.
  bool run();

  /// Async-signal-safe drain trigger.
  void requestDrain();

  /// The bound TCP port (after start(), TCP mode only; else 0).
  int boundPort() const;

  unsigned shardCount() const;
  /// Current worker pids, -1 for a shard that is down (after start()).
  std::vector<pid_t> shardPids() const;

  const FrontStats &stats() const;
  /// Valid after run() returns.
  const FrontDrainSummary &drainSummary() const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

} // namespace front
} // namespace irlt

#endif // IRLT_FRONT_FRONT_H
