//===- fuzz/Differential.cpp - Differential fuzzing oracle ----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"

#include "analysis/Analysis.h"
#include "cgen/NativeCheck.h"
#include "dependence/DepAnalysis.h"
#include "deps/CrossCheck.h"
#include "deps/DepOracle.h"
#include "driver/Script.h"
#include "eval/Verify.h"
#include "fuzz/ScriptGen.h"
#include "ir/Parser.h"
#include "search/Search.h"
#include "support/MathUtils.h"
#include "transform/Sequence.h"
#include "transform/TypeState.h"

#include <optional>

using namespace irlt;
using namespace irlt::fuzz;

const char *irlt::fuzz::categoryName(Category C) {
  switch (C) {
  case Category::Legal:
    return "legal";
  case Category::Illegal:
    return "illegal";
  case Category::RejectedPrecondition:
    return "rejected-by-precondition";
  case Category::OverflowRejected:
    return "overflow-rejected";
  case Category::ParseRejected:
    return "parse-rejected";
  case Category::SourceSkipped:
    return "source-skipped";
  case Category::BudgetExceeded:
    return "budget-exceeded";
  case Category::FastPathUnsound:
    return "FAST-PATH-UNSOUND";
  case Category::OracleFailure:
    return "ORACLE-FAILURE";
  }
  return "?";
}

DifferentialOptions DifferentialOptions::defaults() {
  DifferentialOptions O;
  O.Bindings = {{{"n", 6}, {"m", 4}, {"b", 2}},
                {{"n", 9}, {"m", 5}, {"b", 3}}};
  return O;
}

namespace {

CaseOutcome outcome(Category Cat, std::string Detail = "") {
  return CaseOutcome{Cat, std::move(Detail)};
}

/// Does any diagnostic of a failed result mention overflow? Overflow
/// rejections travel as rendered diagnostics (the guard saturates and the
/// failing stage reports), so the bucketing is textual by design.
bool mentionsOverflow(const std::string &Message) {
  return Message.find("overflow") != std::string::npos;
}

} // namespace

CaseOutcome irlt::fuzz::runCase(const FuzzCase &C,
                                const DifferentialOptions &Opts) {
  // 1. Parse the rendered nest. The generator emits valid source by
  // construction, so a parse error is itself an oracle failure.
  ErrorOr<LoopNest> NestOr = parseLoopNest(C.Nest.render());
  if (!NestOr)
    return outcome(Category::OracleFailure,
                   "generated nest failed to parse: " + NestOr.message());
  LoopNest Nest = NestOr.take();

  // 2. Dependence analysis through the production oracle backend
  // (deps/DepOracle.h), which runs guarded: huge bounds can overflow the
  // distance arithmetic, in which case the summaries are saturated and
  // nothing downstream may be trusted.
  deps::DepResult DR = deps::pipelineOracle().analyze(Nest);
  if (DR.Overflowed)
    return outcome(Category::OverflowRejected,
                   "dependence analysis overflowed");
  DepSet D = std::move(DR.Deps);
  // Direction summaries are conservative; a generated source nest they
  // cannot prove valid is skipped, not failed.
  if (!D.allLexNonNegative())
    return outcome(Category::SourceSkipped,
                   "conservative summaries reject the source nest");

  // 3. Parse the script. Corrupted cases must fail with >= one diagnostic
  // per corrupted line (multi-error recovery); clean cases must parse.
  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(joinScript(C.Script), Nest.numLoops());
  if (C.CorruptedLines > 0) {
    if (SeqOr)
      return outcome(Category::OracleFailure,
                     "parser accepted a script with " +
                         std::to_string(C.CorruptedLines) +
                         " corrupted line(s)");
    if (SeqOr.diags().size() < C.CorruptedLines)
      return outcome(
          Category::OracleFailure,
          "parser reported " + std::to_string(SeqOr.diags().size()) +
              " diagnostic(s) for " + std::to_string(C.CorruptedLines) +
              " corrupted line(s): " + SeqOr.message());
    return outcome(Category::ParseRejected, SeqOr.message());
  }
  if (!SeqOr) {
    if (mentionsOverflow(SeqOr.message()))
      return outcome(Category::OverflowRejected, SeqOr.message());
    // Clean generated scripts parse by construction, but the shrinker
    // may drop a nest loop out from under a position-bearing directive;
    // that mismatch is a rejection, not an oracle failure (and it makes
    // such shrink candidates self-rejecting).
    return outcome(Category::ParseRejected, SeqOr.message());
  }
  TransformSequence Seq = SeqOr.take();

  // 4. Differential legality: the fast path must never accept what the
  // full test rejects. An overflow rejection carries no verdict - the
  // full test's own arithmetic saturated - so it is excluded from the
  // comparison (the fast path does none of that arithmetic and may
  // legitimately still accept). These are deliberate calls to the raw
  // isLegal()/isLegalFast() entry points rather than api::Pipeline: the
  // oracle diffs the two engine modes against each other, and both now
  // route through the prefix-memoized engine, so the fuzzer doubles as
  // its cache-soundness stressor.
  LegalityResult L = isLegal(Seq, Nest, D);

  // 4b. Analyzer oracle: the static diagnostic engine replays the same
  // walk without executing anything (docs/ANALYSIS.md), so its
  // error-class verdict must agree with the full test on every case -
  // an error-clean report on an illegal sequence or an error finding on
  // a legal one are both soundness bugs in the analyzer.
  analysis::AnalysisReport AR = analysis::analyzeSequence(Seq, Nest, D);
  if (L.Legal && AR.hasErrors()) {
    std::string First;
    for (const analysis::Finding &F : AR.Findings)
      if (F.Severity == analysis::FindingSeverity::Error) {
        First = std::string(F.RuleId) + ": " + F.Message;
        break;
      }
    return outcome(Category::OracleFailure,
                   "analyzer: error-class finding on a legal sequence: " +
                       First);
  }
  if (!L.Legal && !AR.hasErrors())
    return outcome(
        Category::OracleFailure,
        "analyzer: error-clean report for an illegal sequence: " + L.Reason);

  if (!L.Legal && L.Kind == LegalityResult::RejectKind::Overflow)
    return outcome(Category::OverflowRejected, L.Reason);
  LegalityResult LF = isLegalFast(Seq, Nest, D);
  if (LF.Legal && !L.Legal)
    return outcome(Category::FastPathUnsound,
                   "fast path accepted what the full test rejects: " +
                       L.Reason);
  if (!L.Legal) {
    switch (L.Kind) {
    case LegalityResult::RejectKind::Overflow:
      return outcome(Category::OverflowRejected, L.Reason);
    case LegalityResult::RejectKind::LexNegative:
      return outcome(Category::Illegal, L.Reason);
    case LegalityResult::RejectKind::BoundsPrecondition:
    case LegalityResult::RejectKind::DependencePrecondition:
    case LegalityResult::RejectKind::ApplyFailure:
      return outcome(Category::RejectedPrecondition, L.Reason);
    case LegalityResult::RejectKind::None:
      return outcome(Category::OracleFailure,
                     "illegal verdict without a reject kind: " + L.Reason);
    }
  }

  // 5. Accepted: the generated code must exist...
  ErrorOr<LoopNest> Out = applySequence(Seq, Nest);
  if (!Out) {
    if (mentionsOverflow(Out.message()))
      return outcome(Category::OverflowRejected, Out.message());
    return outcome(Category::OracleFailure,
                   "apply failed after a legal verdict: " + Out.message());
  }

  // ...and so must the reduced sequence's (fusion can overflow when
  // multiplying huge matrices - guarded).
  TransformSequence Red;
  {
    OverflowGuard G;
    Red = Seq.reduced();
    if (G.triggered())
      return outcome(Category::OverflowRejected,
                     "sequence reduction overflowed");
  }
  ErrorOr<LoopNest> OutR = applySequence(Red, Nest);
  if (!OutR) {
    if (mentionsOverflow(OutR.message()))
      return outcome(Category::OverflowRejected, OutR.message());
    // Fusion changes the syntactic route through the Table 3/4
    // preconditions: a fused Unimodular generates its bounds in a single
    // FM pass without the per-stage simplification the chain benefits
    // from, so a later stage's (syntactic) precondition may cleanly
    // reject the reduced form where the chain applied. That makes the
    // metamorphic check vacuous - but only when the legality test
    // confirms a precondition-kind rejection; a lex-negative divergence
    // or an unexplained apply failure is still an oracle failure.
    LegalityResult LR = isLegal(Red, Nest, D);
    if (!LR.Legal &&
        (LR.Kind == LegalityResult::RejectKind::BoundsPrecondition ||
         LR.Kind == LegalityResult::RejectKind::DependencePrecondition ||
         LR.Kind == LegalityResult::RejectKind::ApplyFailure ||
         LR.Kind == LegalityResult::RejectKind::Overflow))
      return outcome(Category::RejectedPrecondition,
                     "reduced form cleanly rejected: " + OutR.message());
    return outcome(Category::OracleFailure,
                   "reduced sequence failed to apply: " + OutR.message());
  }

  // The analyzer's fix-it rewrite (identity stages stripped, reducible
  // pairs fused) must stay semantically equivalent too. Like the reduced
  // form above, a fused stage may be cleanly rejected by a syntactic
  // Table 3/4 precondition - that makes the check vacuous - but the fix
  // never changes the composite iteration mapping, so a lex-negative
  // rejection or an unexplained apply failure is an oracle failure.
  std::optional<LoopNest> OutF;
  if (AR.Fixed) {
    ErrorOr<LoopNest> OutFOr = applySequence(*AR.Fixed, Nest);
    if (!OutFOr) {
      if (mentionsOverflow(OutFOr.message()))
        return outcome(Category::OverflowRejected, OutFOr.message());
      LegalityResult LFX = isLegal(*AR.Fixed, Nest, D);
      if (LFX.Legal ||
          LFX.Kind == LegalityResult::RejectKind::LexNegative ||
          LFX.Kind == LegalityResult::RejectKind::None)
        return outcome(Category::OracleFailure,
                       "analyzer: fix-it sequence failed to apply: " +
                           OutFOr.message());
    } else {
      OutF = OutFOr.take();
    }
  }

  // 6. Ground truth + metamorphic check under every binding set.
  for (const auto &Binding : Opts.Bindings) {
    EvalConfig EC;
    EC.Params = Binding;
    EC.MaxInstances = Opts.MaxInstances;
    EC.WallBudgetMillis = Opts.WallBudgetMillis;

    OverflowGuard G;
    VerifyResult V = verifyTransformed(Nest, *Out, EC);
    if (G.triggered())
      return outcome(Category::OverflowRejected,
                     "evaluation arithmetic overflowed");
    if (V.BudgetExceeded)
      return outcome(Category::BudgetExceeded, V.Problem);
    if (!V.Ok)
      return outcome(Category::OracleFailure,
                     "legal sequence is not equivalence-preserving: " +
                         V.Problem);

    VerifyResult VR = verifyTransformed(Nest, *OutR, EC);
    if (G.triggered())
      return outcome(Category::OverflowRejected,
                     "evaluation arithmetic overflowed (reduced)");
    if (VR.BudgetExceeded)
      return outcome(Category::BudgetExceeded, VR.Problem);
    if (!VR.Ok)
      return outcome(Category::OracleFailure,
                     "reduced sequence diverged: " + VR.Problem);

    if (OutF) {
      VerifyResult VF = verifyTransformed(Nest, *OutF, EC);
      if (G.triggered())
        return outcome(Category::OverflowRejected,
                       "evaluation arithmetic overflowed (fix-it)");
      if (VF.BudgetExceeded)
        return outcome(Category::BudgetExceeded, VF.Problem);
      if (!VF.Ok)
        return outcome(Category::OracleFailure,
                       "analyzer: fix-it sequence diverged: " + VF.Problem);
    }
  }

  return outcome(Category::Legal);
}

CaseOutcome irlt::fuzz::runSearchCase(const FuzzCase &C,
                                      const DifferentialOptions &Opts) {
  ErrorOr<LoopNest> NestOr = parseLoopNest(C.Nest.render());
  if (!NestOr)
    return outcome(Category::OracleFailure,
                   "generated nest failed to parse: " + NestOr.message());
  LoopNest Nest = NestOr.take();

  deps::DepResult DR = deps::pipelineOracle().analyze(Nest);
  if (DR.Overflowed)
    return outcome(Category::OverflowRejected,
                   "dependence analysis overflowed");
  DepSet D = std::move(DR.Deps);
  if (!D.allLexNonNegative())
    return outcome(Category::SourceSkipped,
                   "conservative summaries reject the source nest");

  // A small but real slice of the search space: one step plus the
  // trailing Parallelize, beam 4. The cost model runs under the first
  // binding set so huge generated bounds stay inside the trace budget.
  search::SearchOptions SO;
  SO.Obj = search::Objective::Both;
  SO.Depth = 1;
  SO.Beam = 4;
  SO.TopK = 3;
  SO.MaxTraceInstances = Opts.MaxInstances;
  if (!Opts.Bindings.empty())
    SO.CostParams = Opts.Bindings.front();

  search::SearchResult R = search::searchTransformations(Nest, D, SO);
  if (!R.Error.empty()) {
    // Nests the cost model cannot execute (opaque calls) still go through
    // the parallelism-only objective, which never runs the nest.
    SO.Obj = search::Objective::Parallelism;
    R = search::searchTransformations(Nest, D, SO);
    if (!R.Error.empty())
      return outcome(Category::SourceSkipped, R.Error);
  }

  // Determinism: a second run with two workers must be byte-identical.
  search::SearchOptions SO2 = SO;
  SO2.Threads = 2;
  search::SearchResult R2 = search::searchTransformations(Nest, D, SO2);
  if (R.Best.has_value() != R2.Best.has_value() ||
      (R.Best && R.Best->Key != R2.Best->Key) ||
      R.Top.size() != R2.Top.size() ||
      R.Stats.Enumerated != R2.Stats.Enumerated ||
      R.Stats.Pruned != R2.Stats.Pruned ||
      R.Stats.Deduped != R2.Stats.Deduped ||
      R.Stats.Leaves != R2.Stats.Leaves || R.Stats.Legal != R2.Stats.Legal ||
      R.Stats.AnalyzerPruned != R2.Stats.AnalyzerPruned)
    return outcome(Category::OracleFailure,
                   "search result differs between 1 and 2 threads");

  // No candidate is a legitimate outcome (e.g. fully serial nests under
  // the parallelism objective).
  if (!R.Best)
    return outcome(Category::Legal, "search returned no candidate");

  for (const search::ScoredSequence &S : R.Top) {
    LegalityResult L = isLegal(S.Seq, Nest, D);
    if (!L.Legal)
      return outcome(Category::OracleFailure,
                     "search reported an illegal candidate <" + S.Key +
                         ">: " + L.Reason);
    ErrorOr<LoopNest> Out = applySequence(S.Seq, Nest);
    if (!Out)
      return outcome(Category::OracleFailure,
                     "search candidate <" + S.Key +
                         "> failed to apply: " + Out.message());
    for (const auto &Binding : Opts.Bindings) {
      EvalConfig EC;
      EC.Params = Binding;
      EC.MaxInstances = Opts.MaxInstances;
      EC.WallBudgetMillis = Opts.WallBudgetMillis;
      OverflowGuard G;
      VerifyResult V = verifyTransformed(Nest, *Out, EC);
      if (G.triggered())
        return outcome(Category::OverflowRejected,
                       "evaluation arithmetic overflowed (search)");
      if (V.BudgetExceeded)
        return outcome(Category::BudgetExceeded, V.Problem);
      if (!V.Ok)
        return outcome(Category::OracleFailure,
                       "search candidate <" + S.Key +
                           "> is not equivalence-preserving: " + V.Problem);
    }
  }
  return outcome(Category::Legal);
}

CaseOutcome irlt::fuzz::runDepsCase(const FuzzCase &C) {
  ErrorOr<LoopNest> NestOr = parseLoopNest(C.Nest.render());
  if (!NestOr)
    return outcome(Category::OracleFailure,
                   "generated nest failed to parse: " + NestOr.message());
  LoopNest Nest = NestOr.take();

  deps::DepResult Fast = deps::pipelineOracle().analyze(Nest);
  deps::DepResult Exact = deps::fmExactOracle().analyze(Nest);
  deps::CrossCheckResult CC = deps::crossCheckDeps(Fast, Exact);
  switch (CC.Stat) {
  case deps::CrossCheckResult::Status::Skipped:
    return outcome(Category::OverflowRejected,
                   "a dependence backend saturated its arithmetic");
  case deps::CrossCheckResult::Status::Soundness:
    // The production analyzer under-reports: every legality verdict
    // computed from its set is suspect. Dump with full context.
    return outcome(Category::FastPathUnsound,
                   "dependence " + CC.str() +
                       "; pipeline = " + Fast.Deps.str() +
                       ", fm-exact = " + Exact.Deps.str());
  case deps::CrossCheckResult::Status::PrecisionGap: {
    CaseOutcome O = outcome(Category::Legal, "dependence " + CC.str());
    O.DepsExtraVectors = static_cast<unsigned>(CC.Extra.size());
    return O;
  }
  case deps::CrossCheckResult::Status::Agree:
    break;
  }
  return outcome(Category::Legal);
}

CaseOutcome irlt::fuzz::runNativeCase(const FuzzCase &C,
                                      const DifferentialOptions &Opts,
                                      const std::string &Compiler) {
  CaseOutcome O = runCase(C, Opts);
  if (O.Cat != Category::Legal)
    return O;

  // Re-derive the transformed nest; runCase just proved every step of
  // this pipeline succeeds for the case.
  ErrorOr<LoopNest> NestOr = parseLoopNest(C.Nest.render());
  if (!NestOr)
    return O;
  ErrorOr<TransformSequence> SeqOr =
      parseTransformScript(joinScript(C.Script), NestOr->numLoops());
  if (!SeqOr)
    return O;
  ErrorOr<LoopNest> Out = [&]() -> ErrorOr<LoopNest> {
    OverflowGuard G;
    ErrorOr<LoopNest> R = applySequence(*SeqOr, *NestOr);
    if (G.triggered())
      return Failure("overflow");
    return R;
  }();
  if (!Out)
    return O;

  cgen::NativeCheckOptions NC;
  NC.Bindings = Opts.Bindings.front();
  // Serial and small: fuzz throughput wants compile time, not threads,
  // and generated nests are tiny at the fuzz bindings anyway.
  NC.UseOpenMP = false;
  NC.MaxCells = 1u << 20;
  NC.InterpMaxInstances = Opts.MaxInstances;
  NC.CrossCheckInterpreter = true;
  NC.Runner.Compiler = Compiler;
  NC.Runner.OpenMP = false;
  cgen::NativeCheckResult N = cgen::checkNative(*NestOr, &*Out, NC);

  switch (N.Status) {
  case cgen::NativeCheckStatus::Match:
    O.Native = CaseOutcome::NativeTier::Checked;
    return O;
  case cgen::NativeCheckStatus::Skipped:
  case cgen::NativeCheckStatus::Unavailable:
    O.Native = CaseOutcome::NativeTier::Skipped;
    return O;
  case cgen::NativeCheckStatus::Mismatch:
    // The legality test, the interpreter, and the analyzer all accepted
    // this case; compiled execution disagreeing with itself means the
    // emitted code is wrong.
    return CaseOutcome{Category::OracleFailure,
                       "native differential harness disagrees on a case "
                       "every interpreted oracle accepts: " +
                           N.Detail,
                       "native", CaseOutcome::NativeTier::Checked};
  case cgen::NativeCheckStatus::InterpDiverged:
    return CaseOutcome{Category::OracleFailure,
                       "interpreter and native execution disagree on the "
                       "final memory image: " +
                           N.Detail,
                       "both", CaseOutcome::NativeTier::Checked};
  case cgen::NativeCheckStatus::Failed:
    // Emitted code must always compile and run; an infrastructure
    // failure on a Legal case is a codegen bug, not noise.
    return CaseOutcome{Category::OracleFailure,
                       "native pipeline failed on emitted code: " + N.Detail,
                       "native", CaseOutcome::NativeTier::Checked};
  }
  return O;
}
