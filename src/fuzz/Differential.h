//===- fuzz/Differential.h - Differential fuzzing oracle ------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle of irlt-fuzz: runs one generated (nest, script) case
/// through the full legality pipeline and cross-checks every redundant
/// path the framework offers:
///
///  1. *Differential legality*: the Section 4.3 type-state fast path may
///     be more conservative than the uniform test, but must never accept
///     a sequence the full test rejects.
///  2. *Ground truth*: for sequences the full test accepts, applySequence
///     + verifyTransformed must prove instance-set, dependence-order and
///     final-store equivalence under several parameter bindings.
///  3. *Metamorphic reduction*: the reduced() sequence must produce an
///     equivalent nest (Section 2's fusion rules are semantics-
///     preserving).
///  4. *Parser recovery*: deliberately corrupted scripts must fail with
///     at least one diagnostic per corrupted line.
///  5. *Search winners* (--search mode): every candidate the beam search
///     reports for a generated nest must pass the full uniform legality
///     test and concrete-execution verification, and the whole result
///     must be invariant under the worker thread count.
///  6. *Dependence oracles* (--deps mode): the production dependence
///     analyzer is diffed against the first-principles fm-exact backend
///     (deps/DepOracle.h). An exact vector the pipeline does not cover
///     is a soundness bug (dumped as a reproducer); pipeline vectors
///     beyond the exact set are counted as precision gaps.
///
/// Arithmetic overflow anywhere in the pipeline (huge generated
/// coefficients) must surface as a clean rejection - OverflowGuard
/// saturation is detected and the case is bucketed OverflowRejected
/// rather than trusted or crashed on.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FUZZ_DIFFERENTIAL_H
#define IRLT_FUZZ_DIFFERENTIAL_H

#include "fuzz/NestGen.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace irlt {
namespace fuzz {

/// How a fuzz case resolved. Everything except OracleFailure is a normal,
/// expected outcome.
enum class Category {
  Legal,                ///< accepted; all equivalence checks passed
  Illegal,              ///< rejected by the final lexicographic test
  RejectedPrecondition, ///< rejected by a Table 3/4 bounds precondition
  OverflowRejected,     ///< rejected because coefficients left int64
  ParseRejected,        ///< script failed to parse (corruption cases)
  SourceSkipped,        ///< generated source nest unusable (conservative
                        ///< direction summaries); case skipped
  BudgetExceeded,       ///< evaluation budget ran out; no verdict
  FastPathUnsound,      ///< isLegalFast accepted what full isLegal
                        ///< rejects - a fast-path soundness bug, dump a
                        ///< reproducer (counted separately so soundness
                        ///< regressions are visible at a glance)
  OracleFailure,        ///< an invariant broke - a bug, dump a reproducer
};

const char *categoryName(Category C);

/// A reproducible fuzz case: everything needed to re-run it, and to dump
/// it as an irlt-opt-replayable reproducer.
struct FuzzCase {
  uint64_t Seed = 0;
  NestSpec Nest;
  std::vector<std::string> Script;
  /// Lines deliberately corrupted by the generator; the parse must fail
  /// with at least this many diagnostics.
  unsigned CorruptedLines = 0;
};

/// Oracle configuration.
struct DifferentialOptions {
  /// Parameter bindings the equivalence checks run under; every binding
  /// set must bind every symbol the generators emit (n, m, b).
  std::vector<std::map<std::string, int64_t>> Bindings;
  uint64_t MaxInstances = 200'000;
  uint64_t WallBudgetMillis = 0; ///< 0 = rely on the instance budget

  /// Two binding pools exercising distinct extents and block sizes.
  static DifferentialOptions defaults();
};

struct CaseOutcome {
  Category Cat = Category::Legal;
  /// Explanation: the rejection reason, or for OracleFailure the broken
  /// invariant with enough context to debug from the reproducer.
  std::string Detail;
  /// Which oracle tier produced an OracleFailure verdict: "interpreter"
  /// (the classic oracles), "native" (compiled execution disagreed with
  /// itself or failed on emitted code), or "both" (interpreter and
  /// native execution disagree with each other). Recorded in the
  /// reproducer dump so replays target the right backend.
  std::string Tier = "interpreter";
  /// Whether the native cross-check ran on this case (--native mode).
  enum class NativeTier { NotRun, Checked, Skipped } Native =
      NativeTier::NotRun;
  /// --deps mode: pipeline vectors the exact backend does not cover on
  /// this case (a Legal outcome with a nonzero count is a precision gap,
  /// not a bug; the run aggregates these).
  unsigned DepsExtraVectors = 0;
};

/// Runs one case through the oracle.
CaseOutcome runCase(const FuzzCase &C, const DifferentialOptions &Opts);

/// Runs one case through the classic oracle and, when it lands Legal,
/// additionally compiles and runs the emitted differential harness
/// (docs/CODEGEN.md) with \p Compiler, requiring the native checksums to
/// match each other *and* the interpreter's on identically seeded
/// images. Unemittable or over-budget cases stay Legal with
/// Native == Skipped; any disagreement is an OracleFailure whose Tier
/// says which backend broke.
CaseOutcome runNativeCase(const FuzzCase &C, const DifferentialOptions &Opts,
                          const std::string &Compiler);

/// Runs one *search-mode* case: the generated nest (the script is
/// ignored) is handed to the transformation search engine, and every
/// reported candidate must pass the full legality test and
/// verifyTransformed under each binding set; the winner, top-k keys and
/// stats must also be identical for 1 and 2 worker threads.
CaseOutcome runSearchCase(const FuzzCase &C, const DifferentialOptions &Opts);

/// Runs one *deps-mode* case: the generated nest (the script is ignored)
/// is analyzed by the production pipeline backend and the
/// first-principles fm-exact backend, and the results are cross-checked
/// (deps/CrossCheck.h). Exact vectors the pipeline misses land in
/// FastPathUnsound (a dependence-analysis soundness bug); extra pipeline
/// vectors land in DepsExtraVectors on a Legal outcome; overflow on
/// either side is OverflowRejected.
CaseOutcome runDepsCase(const FuzzCase &C);

} // namespace fuzz
} // namespace irlt

#endif // IRLT_FUZZ_DIFFERENTIAL_H
