//===- fuzz/Fuzzer.cpp - The irlt-fuzz main loop --------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "cgen/NativeRunner.h"
#include "fuzz/ScriptGen.h"
#include "fuzz/Shrink.h"
#include "support/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace irlt;
using namespace irlt::fuzz;

namespace {

/// Writes a reproducer trio (nest, script, note) for a failing case.
/// Returns false when the directory or files cannot be created; the
/// failure is still reported, just without files.
bool dumpReproducer(const FuzzOptions &Opts, const FuzzCase &C,
                    const std::string &Detail, FailureRecord &Rec) {
  std::string Stem = "case-" + std::to_string(C.Seed);
  std::string NestPath = Opts.ReproDir + "/" + Stem + ".nest";
  std::string ScriptPath = Opts.ReproDir + "/" + Stem + ".script";
  std::vector<std::string> Replay;
  if (Opts.DepsMode)
    Replay.push_back("irlt-opt " + NestPath + " --deps-diff");
  else if (Opts.SearchMode)
    Replay.push_back("irlt-search " + NestPath +
                     " --objective both --depth 1 --beam 4 --topk 3 "
                     "--explain");
  else {
    Replay.push_back("irlt-opt " + NestPath + " -f " + ScriptPath +
                     " --legality --verify n=6,m=4,b=2");
    Replay.push_back("irlt-opt " + NestPath + " -f " + ScriptPath +
                     " --fast-legality");
    if (Rec.Tier != "interpreter")
      Replay.push_back("irlt-cgen " + NestPath + " -f " + ScriptPath +
                       " --run --no-openmp --bind n=6,m=4,b=2");
  }
  std::string Note = "seed: " + std::to_string(C.Seed) +
                     "\ncorrupted-lines: " +
                     std::to_string(C.CorruptedLines) + "\ndetail: " + Detail;
  if (writeReproducer(Opts.ReproDir, Stem, C.Nest.render(),
                      joinScript(C.Script), Note, Replay, Rec.Tier)
          .empty())
    return false;
  Rec.NestPath = NestPath;
  Rec.ScriptPath = ScriptPath;
  return true;
}

} // namespace

std::string irlt::fuzz::writeReproducer(
    const std::string &Dir, const std::string &Stem,
    const std::string &NestSource, const std::string &ScriptSource,
    const std::string &Detail, const std::vector<std::string> &ReplayLines,
    const std::string &Tier) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "";
  std::string Base = Dir + "/" + Stem;
  std::string NestPath = Base + ".nest";
  {
    std::ofstream Out(NestPath);
    if (!Out)
      return "";
    Out << NestSource;
  }
  {
    std::ofstream Out(Base + ".script");
    if (!Out)
      return "";
    Out << ScriptSource;
  }
  {
    std::ofstream Out(Base + ".txt");
    if (!Out)
      return "";
    Out << "irlt reproducer\noracle-tier: " << Tier << "\n"
        << Detail << "\n\nreplay:\n";
    for (const std::string &Line : ReplayLines)
      Out << "  " << Line << "\n";
  }
  {
    // Machine-readable twin of the .txt reproducer, in the shared
    // versioned record schema (docs/API.md): one self-contained object a
    // triage script can load without re-parsing the prose layout.
    std::ofstream Out(Base + ".json");
    if (!Out)
      return "";
    json::JsonWriter W;
    json::beginToolRecord(W, "irlt-fuzz");
    W.field("record", "reproducer");
    W.field("stem", Stem);
    W.field("oracle_tier", Tier);
    W.field("detail", Detail);
    W.field("nest", NestSource);
    W.field("script", ScriptSource);
    W.key("replay").beginArray();
    for (const std::string &Line : ReplayLines)
      W.value(Line);
    W.endArray();
    W.endObject();
    Out << W.take() << "\n";
  }
  return NestPath;
}

FuzzCase irlt::fuzz::generateCase(const FuzzOptions &Opts, uint64_t Index) {
  FuzzCase C;
  C.Seed = caseSeed(Opts.Seed, Index);
  Rng R(C.Seed);

  bool Overflow = R.percent(Opts.OverflowPercent);
  bool Corrupt = !Overflow && R.percent(Opts.CorruptPercent);

  NestGenOptions NG;
  NG.MaxDepth = Opts.MaxDepth;
  NG.OverflowMode = Overflow;
  C.Nest = generateNest(R, NG);

  ScriptGenOptions SG;
  SG.MaxSteps = Opts.MaxSteps;
  SG.OverflowMode = Overflow;
  SG.CorruptLines = Corrupt ? 1 + static_cast<unsigned>(R.below(2)) : 0;
  GeneratedScript S = generateScript(R, C.Nest.depth(), SG);
  C.Script = std::move(S.Lines);
  C.CorruptedLines = S.CorruptedLines;
  return C;
}

FuzzStats irlt::fuzz::runFuzzer(const FuzzOptions &Opts) {
  DifferentialOptions DO = DifferentialOptions::defaults();
  DO.MaxInstances = Opts.MaxInstances;
  DO.WallBudgetMillis = Opts.TimeBudgetMillis;

  FuzzStats Stats;
  // Probe the host compiler once per run; --native degrades to the
  // interpreter-only oracle (reported, never silently green) without one.
  std::string NativeCC;
  bool NativeMode = Opts.NativeMode && !Opts.SearchMode && !Opts.DepsMode;
  if (NativeMode) {
    NativeCC = cgen::probeCompiler();
    if (NativeCC.empty()) {
      Stats.NativeUnavailable = true;
      NativeMode = false;
    }
  }
  for (uint64_t Index = 0; Index < Opts.Cases; ++Index) {
    // Cooperative interruption: checked between cases only, so every
    // counted case ran to completion and any reproducer dump is whole.
    if (Opts.StopFlag && Opts.StopFlag->load(std::memory_order_relaxed)) {
      Stats.Interrupted = true;
      break;
    }
    FuzzCase C = generateCase(Opts, Index);
    CaseOutcome O = Opts.DepsMode     ? runDepsCase(C)
                    : Opts.SearchMode ? runSearchCase(C, DO)
                    : NativeMode      ? runNativeCase(C, DO, NativeCC)
                                      : runCase(C, DO);
    ++Stats.Count[static_cast<unsigned>(O.Cat)];
    if (O.DepsExtraVectors) {
      ++Stats.DepsPrecisionGaps;
      Stats.DepsExtraVectors += O.DepsExtraVectors;
    }
    if (O.Native == CaseOutcome::NativeTier::Checked)
      ++Stats.NativeChecked;
    else if (O.Native == CaseOutcome::NativeTier::Skipped)
      ++Stats.NativeSkipped;

    if (Opts.Verbose)
      std::printf("case %llu (seed %llu): %s%s%s\n",
                  static_cast<unsigned long long>(Index),
                  static_cast<unsigned long long>(C.Seed),
                  categoryName(O.Cat), O.Detail.empty() ? "" : " - ",
                  O.Detail.c_str());

    if (O.Cat != Category::OracleFailure &&
        O.Cat != Category::FastPathUnsound)
      continue;

    FailureRecord Rec;
    Rec.CaseIndex = Index;
    Rec.CaseSeed = C.Seed;
    Rec.Detail = O.Detail;
    Rec.Tier = O.Tier;

    FuzzCase Min = C;
    // The shrinker minimizes against the script oracle; search- and
    // deps-mode failures are dumped as-is (the script plays no part in
    // them), and so are native-tier failures (re-running the compiler
    // per shrink step would swamp the run, and the interpreted oracle
    // the shrinker replays cannot even see the disagreement).
    if (Opts.Shrink && !Opts.SearchMode && !Opts.DepsMode &&
        Rec.Tier == "interpreter") {
      Min = shrinkCase(C, DO, O.Cat);
      // The shrunk case's own detail is the one worth reporting.
      CaseOutcome MO = runCase(Min, DO);
      if (MO.Cat == O.Cat)
        Rec.Detail = MO.Detail;
      else
        Min = C; // cap hit mid-pass; fall back to the original
    }
    dumpReproducer(Opts, Min, Rec.Detail, Rec);

    std::fprintf(stderr,
                 "FAILURE: case %llu (seed %llu): %s\n"
                 "  nest:\n%s  script: %s\n%s",
                 static_cast<unsigned long long>(Index),
                 static_cast<unsigned long long>(C.Seed), Rec.Detail.c_str(),
                 Min.Nest.render().c_str(),
                 joinScript(Min.Script).c_str(),
                 Rec.NestPath.empty()
                     ? "  (reproducer dump failed)\n"
                     : ("  reproducer: " + Rec.NestPath + "\n").c_str());
    Stats.Failures.push_back(std::move(Rec));
  }
  return Stats;
}
