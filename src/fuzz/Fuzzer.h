//===- fuzz/Fuzzer.h - The irlt-fuzz main loop ----------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded, deterministic fuzzing loop behind the irlt-fuzz tool.
/// Case K of a run with seed S is fully determined by (S, K): the case
/// seed is splitmix-derived, generation uses a platform-independent
/// xorshift stream, and the evaluation budget is instance-based by
/// default - so a run's categories and failures are identical on every
/// machine, and any failure can be replayed from its seed alone.
///
/// A small share of cases is steered into targeted modes: huge
/// coefficients (overflow hardening) and deliberately corrupted scripts
/// (parser recovery). Failures are shrunk (fuzz/Shrink.h) and dumped as
/// irlt-opt-replayable reproducers: a nest file, a script file, and a
/// note with the oracle detail and the exact replay command.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FUZZ_FUZZER_H
#define IRLT_FUZZ_FUZZER_H

#include "fuzz/Differential.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace irlt {
namespace fuzz {

struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Cases = 100;
  bool Shrink = true;
  /// Directory reproducers are written to (created on demand; nothing is
  /// written unless a case fails).
  std::string ReproDir = "irlt-fuzz-repro";
  unsigned MaxDepth = 3;
  unsigned MaxSteps = 4;
  uint64_t MaxInstances = 200'000;
  /// Optional wall-clock budget per evaluation; 0 keeps runs fully
  /// deterministic (the instance budget alone bounds work).
  uint64_t TimeBudgetMillis = 0;
  bool Verbose = false;
  /// Percent of cases run in overflow / corrupt-script mode.
  unsigned OverflowPercent = 6;
  unsigned CorruptPercent = 8;
  /// Search mode: feed each generated nest to the beam search and check
  /// every reported candidate (full legality + execution verify +
  /// thread-count invariance) instead of fuzzing scripts.
  bool SearchMode = false;
  /// Deps mode (--deps, docs/DEPENDENCE.md): diff the production
  /// dependence analyzer against the first-principles fm-exact backend
  /// on each generated nest instead of fuzzing scripts. Pipeline
  /// under-reporting is a dumped soundness failure; over-reporting is
  /// aggregated as precision statistics.
  bool DepsMode = false;
  /// Native mode (--native, docs/CODEGEN.md): Legal cases are
  /// additionally compiled and executed, and the native checksums must
  /// match the interpreter's on identically seeded arrays. When no host
  /// C compiler exists the run degrades to interpreter-only and the
  /// stats carry NativeUnavailable (reported, never silently green).
  bool NativeMode = false;
  /// Cooperative interruption (the tool's SIGINT/SIGTERM handler sets
  /// this): the loop finishes the in-flight case - including any shrink
  /// and reproducer dump in progress - then stops, and the stats carry
  /// Interrupted. Null = never interrupted.
  const std::atomic<bool> *StopFlag = nullptr;
};

struct FailureRecord {
  uint64_t CaseIndex = 0;
  uint64_t CaseSeed = 0;
  std::string Detail;
  std::string NestPath;   ///< empty when the dump failed
  std::string ScriptPath;
  /// Oracle tier that produced the disagreement: "interpreter",
  /// "native", or "both" (mirrored in the reproducer dump).
  std::string Tier = "interpreter";
};

struct FuzzStats {
  uint64_t Count[9] = {}; ///< indexed by Category
  std::vector<FailureRecord> Failures;
  /// The stop flag fired: the counts cover a clean prefix of the run's
  /// cases (every started case finished; none was torn).
  bool Interrupted = false;
  /// --native bookkeeping: cases that went through the compiled
  /// differential check, cases that could not (unemittable, cell cap),
  /// and whether the whole run fell back for lack of a host compiler.
  uint64_t NativeChecked = 0;
  uint64_t NativeSkipped = 0;
  bool NativeUnavailable = false;
  /// --deps bookkeeping: cases where the pipeline was strictly more
  /// conservative than the exact backend, and the total number of
  /// pipeline vectors the exact set did not cover across those cases.
  /// (Agreeing cases are Legal minus the gap count; soundness
  /// divergences land in FastPathUnsound and Failures.)
  uint64_t DepsPrecisionGaps = 0;
  uint64_t DepsExtraVectors = 0;

  uint64_t total() const {
    uint64_t N = 0;
    for (uint64_t C : Count)
      N += C;
    return N;
  }
};

/// Runs the fuzzing loop; progress and failures go to stdout/stderr.
FuzzStats runFuzzer(const FuzzOptions &Opts);

/// Generates case \p Index of a run seeded \p RunSeed (exposed for tests
/// and for --replay-case).
FuzzCase generateCase(const FuzzOptions &Opts, uint64_t Index);

/// Writes a replayable reproducer trio into \p Dir: <stem>.nest (loop
/// nest source), <stem>.script (transformation script, may be empty),
/// <stem>.txt (a note carrying \p Detail plus \p ReplayLines, one
/// command per line), and <stem>.json (the same content as one
/// schema-versioned record, see docs/API.md). Shared by the fuzzer and
/// the witness-validation
/// layer so every disproof dump replays the same way. \p Tier records
/// which oracle produced the disagreement - "interpreter", "native", or
/// "both" (docs/CODEGEN.md) - so replays target the right backend.
/// \returns the nest path, or an empty string when the directory or
/// files cannot be created (reporting continues without files).
std::string writeReproducer(const std::string &Dir, const std::string &Stem,
                            const std::string &NestSource,
                            const std::string &ScriptSource,
                            const std::string &Detail,
                            const std::vector<std::string> &ReplayLines,
                            const std::string &Tier = "interpreter");

} // namespace fuzz
} // namespace irlt

#endif // IRLT_FUZZ_FUZZER_H
