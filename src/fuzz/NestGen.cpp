//===- fuzz/NestGen.cpp - Random loop-nest generation ---------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/NestGen.h"

using namespace irlt;
using namespace irlt::fuzz;

static const char *VarNames[] = {"i", "j", "k", "l"};

/// 2^62: large enough that skewing or blocking coefficients derived from
/// it leave the int64 range, small enough to render as a plain literal.
static const char *HugeBound = "4611686018427387904";

std::string NestSpec::render() const {
  std::string Src;
  std::string Subs;
  for (unsigned K = 0; K < depth(); ++K) {
    const LoopSpec &L = Loops[K];
    Src += std::string(2 * K, ' ') + "do " + L.Var + " = " + L.Lo + ", " +
           L.Hi;
    if (L.Step != 1)
      Src += ", " + std::to_string(L.Step);
    Src += "\n";
    Subs += (K ? ", " : "") + L.Var;
  }
  std::string Indent(2 * depth(), ' ');
  std::string Rhs = "a(" + Subs + ")";
  for (const ReadSpec &Read : Reads) {
    std::string Ref;
    for (unsigned K = 0; K < depth(); ++K) {
      std::string Term = Loops[K].Var;
      int64_t Off = K < Read.Off.size() ? Read.Off[K] : 0;
      if (Off > 0)
        Term += " + " + std::to_string(Off);
      if (Off < 0)
        Term += " - " + std::to_string(-Off);
      Ref += (K ? ", " : "") + Term;
    }
    Rhs += " + a(" + Ref + ")";
  }
  Src += Indent + "a(" + Subs + ") = " + Rhs + "\n";
  if (SecondStmt)
    Src += Indent + "c(" + Subs + ") = a(" + Subs + ") + 3\n";
  for (unsigned K = depth(); K-- > 0;)
    Src += std::string(2 * K, ' ') + "enddo\n";
  return Src;
}

NestSpec irlt::fuzz::generateNest(Rng &R, const NestGenOptions &Opts) {
  NestSpec Spec;
  unsigned MaxDepth = Opts.MaxDepth ? Opts.MaxDepth : 1;
  if (MaxDepth > 4)
    MaxDepth = 4;
  unsigned Depth = 1 + static_cast<unsigned>(R.below(MaxDepth));

  for (unsigned K = 0; K < Depth; ++K) {
    LoopSpec L;
    L.Var = VarNames[K];

    // Lower bound: mostly 1, sometimes a small constant, a parameter, or
    // (inner loops only) a triangular reference to an outer variable.
    uint64_t LoPick = R.below(100);
    if (LoPick < 55)
      L.Lo = "1";
    else if (LoPick < 70)
      L.Lo = std::to_string(R.range(0, 3));
    else if (LoPick < 80)
      L.Lo = "m";
    else if (K > 0) {
      L.Lo = Spec.Loops[R.below(K)].Var;
      if (R.flip())
        L.Lo += " + 1";
    } else {
      L.Lo = "1";
    }

    // Upper bound: mostly the parameter n, sometimes m, a constant, or a
    // triangular reference.
    uint64_t HiPick = R.below(100);
    if (HiPick < 55)
      L.Hi = "n";
    else if (HiPick < 70)
      L.Hi = "m";
    else if (HiPick < 85 || K == 0)
      L.Hi = std::to_string(R.range(5, 12));
    else
      L.Hi = Spec.Loops[R.below(K)].Var;

    // Constant positive step, usually 1.
    L.Step = R.percent(80) ? 1 : R.range(2, 3);

    Spec.Loops.push_back(std::move(L));
  }

  if (Opts.OverflowMode) {
    // Rectangular loop with a 2^62 extent: any skew or blocking
    // coefficient folded against it must overflow-reject, not wrap.
    LoopSpec &L = Spec.Loops[R.below(Depth)];
    L.Lo = "1";
    L.Hi = HugeBound;
    L.Step = 1;
  }

  // 1-3 reads at lexicographically non-negative dependence offsets: the
  // leading nonzero offset is negative, so the source iteration precedes
  // the reading one.
  unsigned NumReads = 1 + static_cast<unsigned>(R.below(3));
  for (unsigned T = 0; T < NumReads; ++T) {
    ReadSpec Read;
    Read.Off.assign(Depth, 0);
    if (!R.percent(20)) { // 20%: same-instance read (zero offsets)
      unsigned Lead = static_cast<unsigned>(R.below(Depth));
      for (unsigned K = 0; K < Depth; ++K) {
        if (K == Lead)
          Read.Off[K] = -R.range(1, 2);
        else if (K > Lead)
          Read.Off[K] = R.range(-1, 1);
      }
    }
    Spec.Reads.push_back(std::move(Read));
  }

  Spec.SecondStmt = R.percent(25);
  return Spec;
}
