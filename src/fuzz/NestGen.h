//===- fuzz/NestGen.h - Random loop-nest generation -----------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured random loop-nest generation for irlt-fuzz. Nests are built
/// as a NestSpec - a small declarative description that renders to loop
/// language source - rather than as source text directly, so the shrinker
/// can apply semantic reductions (drop a read, rectangularize a bound,
/// drop the innermost loop) instead of blind text mutations.
///
/// Generated nests are valid by construction: read offsets are chosen
/// lexicographically non-negative, triangular bounds only reference outer
/// loop variables, and every symbolic bound uses a parameter from the
/// fuzzer's binding pool (n, m).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FUZZ_NESTGEN_H
#define IRLT_FUZZ_NESTGEN_H

#include "fuzz/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace irlt {
namespace fuzz {

/// One loop of a generated nest. Bounds are rendered verbatim, so they
/// may be integer literals, parameter names (n, m), or an outer loop
/// variable with a small offset ("i + 1").
struct LoopSpec {
  std::string Var;
  std::string Lo;
  std::string Hi;
  int64_t Step = 1; ///< positive compile-time constant
};

/// One read of array `a` in the body, described by per-depth subscript
/// offsets relative to the loop variables (a(i + Off[0], j + Off[1])).
struct ReadSpec {
  std::vector<int64_t> Off;
};

/// Declarative description of a generated source nest.
struct NestSpec {
  std::vector<LoopSpec> Loops;
  std::vector<ReadSpec> Reads;
  /// Adds a second statement `c(subs) = a(subs) + <k>` creating
  /// cross-statement (but intra-instance) accesses.
  bool SecondStmt = false;

  unsigned depth() const { return static_cast<unsigned>(Loops.size()); }

  /// Renders the spec to loop-language source.
  std::string render() const;
};

/// Options steering nest generation.
struct NestGenOptions {
  unsigned MaxDepth = 3;
  /// When set, bounds occasionally use huge integer constants so that
  /// coefficient arithmetic in the transformation pipeline overflows;
  /// such cases must be rejected cleanly (LegalityResult Overflow), never
  /// crash.
  bool OverflowMode = false;
};

/// Generates a random nest spec: varying depth, constant / symbolic /
/// triangular bounds, constant steps, and a dependence-bearing stencil
/// body (one write to `a` plus 1-3 reads at lexicographically
/// non-negative offsets).
NestSpec generateNest(Rng &R, const NestGenOptions &Opts);

} // namespace fuzz
} // namespace irlt

#endif // IRLT_FUZZ_NESTGEN_H
