//===- fuzz/Rng.h - Deterministic random numbers for the fuzzer -----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, platform-independent random number generation for
/// irlt-fuzz. A xorshift64 stream (the same recurrence the property tests
/// use) plus a splitmix64 mixer for deriving statistically independent
/// per-case seeds from (run seed, case index) - so case K of seed S is
/// identical on every machine and every run, which is what makes dumped
/// reproducers replayable.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FUZZ_RNG_H
#define IRLT_FUZZ_RNG_H

#include <cstdint>

namespace irlt {
namespace fuzz {

/// splitmix64 finalizer: a strong 64-bit mixer, used to turn structured
/// inputs (run seed XOR case index) into well-distributed stream seeds.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Deterministic xorshift64 generator; reproducible across platforms.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform in [0, N). N must be nonzero.
  uint64_t below(uint64_t N) { return next() % N; }

  /// Uniform in [Lo, Hi] (inclusive).
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  bool flip() { return next() & 1; }

  /// True with probability Percent / 100.
  bool percent(unsigned Percent) { return below(100) < Percent; }

private:
  uint64_t State;
};

/// The seed of case \p Index in a run started with \p RunSeed.
inline uint64_t caseSeed(uint64_t RunSeed, uint64_t Index) {
  return mix64(RunSeed ^ mix64(Index + 1));
}

} // namespace fuzz
} // namespace irlt

#endif // IRLT_FUZZ_RNG_H
