//===- fuzz/ScriptGen.cpp - Random transformation-script generation -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ScriptGen.h"

using namespace irlt;
using namespace irlt::fuzz;

namespace {

/// A coefficient for skews / matrix entries / sizes: small normally, huge
/// in overflow mode (2^31-ish, so products of two leave int64).
int64_t coefficient(Rng &R, bool Overflow) {
  if (Overflow)
    return INT64_C(3037000500) + static_cast<int64_t>(R.below(997));
  int64_t C = R.range(-2, 2);
  return C ? C : 1;
}

/// Emits one directive for a nest of Size loops and returns the size of
/// the transformed nest. Appends the directive text to Lines.
unsigned emitDirective(Rng &R, unsigned Size, const ScriptGenOptions &Opts,
                       std::vector<std::string> &Lines) {
  bool CanGrow = Size < Opts.SizeCap;
  for (;;) {
    switch (R.below(10)) {
    case 0: { // interchange a b
      if (Size < 2)
        break;
      unsigned A = 1 + static_cast<unsigned>(R.below(Size));
      unsigned B = 1 + static_cast<unsigned>(R.below(Size));
      if (A == B)
        B = A % Size + 1;
      Lines.push_back("interchange " + std::to_string(A) + " " +
                      std::to_string(B));
      return Size;
    }
    case 1: { // reverse k
      Lines.push_back("reverse " +
                      std::to_string(1 + R.below(Size)));
      return Size;
    }
    case 2: { // permute: a full random permutation
      std::vector<unsigned> Perm(Size);
      for (unsigned K = 0; K < Size; ++K)
        Perm[K] = K + 1;
      for (unsigned K = Size; K > 1; --K)
        std::swap(Perm[K - 1], Perm[R.below(K)]);
      std::string L = "permute";
      for (unsigned P : Perm)
        L += " " + std::to_string(P);
      Lines.push_back(std::move(L));
      return Size;
    }
    case 3: { // parallelize a nonempty subset
      std::string L = "parallelize";
      unsigned Count = 0;
      for (unsigned K = 1; K <= Size; ++K)
        if (R.flip()) {
          L += " " + std::to_string(K);
          ++Count;
        }
      if (!Count)
        L += " " + std::to_string(1 + R.below(Size));
      Lines.push_back(std::move(L));
      return Size;
    }
    case 4: { // block i j sizes...
      if (!CanGrow)
        break;
      unsigned Span = 1 + static_cast<unsigned>(
                              R.below(std::min(Size, Opts.SizeCap - Size)));
      unsigned I = 1 + static_cast<unsigned>(R.below(Size - Span + 1));
      unsigned J = I + Span - 1;
      std::string L = "block " + std::to_string(I) + " " + std::to_string(J);
      for (unsigned K = I; K <= J; ++K) {
        if (!Opts.OverflowMode && R.percent(20))
          L += " b"; // symbolic block size from the binding pool
        else
          L += " " + std::to_string(
                         Opts.OverflowMode ? coefficient(R, true)
                                           : R.range(2, 4));
      }
      Lines.push_back(std::move(L));
      return Size + Span;
    }
    case 5: { // coalesce i j
      if (Size < 2)
        break;
      unsigned I = 1 + static_cast<unsigned>(R.below(Size - 1));
      unsigned J = I + 1 +
                   static_cast<unsigned>(R.below(Size - I));
      Lines.push_back("coalesce " + std::to_string(I) + " " +
                      std::to_string(J));
      return Size - (J - I);
    }
    case 6: { // interleave i j sizes...
      if (!CanGrow)
        break;
      unsigned Span = 1 + static_cast<unsigned>(
                              R.below(std::min(Size, Opts.SizeCap - Size)));
      unsigned I = 1 + static_cast<unsigned>(R.below(Size - Span + 1));
      unsigned J = I + Span - 1;
      std::string L =
          "interleave " + std::to_string(I) + " " + std::to_string(J);
      for (unsigned K = I; K <= J; ++K)
        L += " " + std::to_string(Opts.OverflowMode ? coefficient(R, true)
                                                    : R.range(2, 3));
      Lines.push_back(std::move(L));
      return Size + Span;
    }
    case 7: { // stripmine k size
      if (!CanGrow)
        break;
      Lines.push_back("stripmine " + std::to_string(1 + R.below(Size)) + " " +
                      std::to_string(Opts.OverflowMode ? coefficient(R, true)
                                                       : R.range(2, 5)));
      return Size + 1;
    }
    case 8: { // skew a b f
      if (Size < 2)
        break;
      unsigned A = 1 + static_cast<unsigned>(R.below(Size));
      unsigned B = 1 + static_cast<unsigned>(R.below(Size));
      if (A == B)
        B = A % Size + 1;
      Lines.push_back("skew " + std::to_string(A) + " " + std::to_string(B) +
                      " " + std::to_string(coefficient(R, Opts.OverflowMode)));
      return Size;
    }
    default: { // unimodular: identity hit with 1-2 elementary row ops
      std::vector<std::vector<int64_t>> M(
          Size, std::vector<int64_t>(Size, 0));
      for (unsigned K = 0; K < Size; ++K)
        M[K][K] = 1;
      unsigned Ops = 1 + static_cast<unsigned>(R.below(2));
      for (unsigned Op = 0; Op < Ops; ++Op) {
        unsigned A = static_cast<unsigned>(R.below(Size));
        switch (Size < 2 ? 1u : static_cast<unsigned>(R.below(3))) {
        case 0: { // row_b += c * row_a
          unsigned B = static_cast<unsigned>(R.below(Size));
          if (B == A)
            B = (B + 1) % Size;
          int64_t C = coefficient(R, Opts.OverflowMode);
          for (unsigned K = 0; K < Size; ++K)
            M[B][K] += C * M[A][K];
          break;
        }
        case 1: // negate a row
          for (unsigned K = 0; K < Size; ++K)
            M[A][K] = -M[A][K];
          break;
        default: { // swap two rows
          unsigned B = static_cast<unsigned>(R.below(Size));
          if (B == A)
            B = (B + 1) % Size;
          std::swap(M[A], M[B]);
          break;
        }
        }
      }
      std::string L = "unimodular";
      for (unsigned Row = 0; Row < Size; ++Row) {
        if (Row)
          L += " /";
        for (unsigned Col = 0; Col < Size; ++Col)
          L += " " + std::to_string(M[Row][Col]);
      }
      Lines.push_back(std::move(L));
      return Size;
    }
    }
  }
}

/// Rewrites Lines[Idx] into a directive guaranteed to fail parsing,
/// independent of nest size except where SizeAt provides it.
void corruptLine(Rng &R, std::vector<std::string> &Lines, unsigned Idx,
                 unsigned SizeAt) {
  switch (R.below(5)) {
  case 0: // unknown directive name
    Lines[Idx] = "frobnicate 1 2";
    break;
  case 1: // position past the end of the nest
    Lines[Idx] = "reverse " + std::to_string(SizeAt + 7);
    break;
  case 2: // 0-based position (the language is 1-based)
    Lines[Idx] = "reverse 0";
    break;
  case 3: // arity error: interchange needs two positions
    Lines[Idx] = "interchange 1";
    break;
  default: // non-square unimodular matrix
    Lines[Idx] = "unimodular 1 2 / 3";
    break;
  }
}

} // namespace

GeneratedScript irlt::fuzz::generateScript(Rng &R, unsigned InitialLoops,
                                           const ScriptGenOptions &Opts) {
  GeneratedScript S;
  unsigned MaxSteps = Opts.MaxSteps ? Opts.MaxSteps : 1;
  unsigned Steps = 1 + static_cast<unsigned>(R.below(MaxSteps));
  unsigned Size = InitialLoops;
  std::vector<unsigned> SizeAtLine;
  for (unsigned K = 0; K < Steps; ++K) {
    SizeAtLine.push_back(Size);
    Size = emitDirective(R, Size, Opts, S.Lines);
  }
  unsigned Corrupt =
      std::min<unsigned>(Opts.CorruptLines,
                         static_cast<unsigned>(S.Lines.size()));
  // Corrupt distinct lines, lowest first, so SizeAtLine stays accurate
  // for every corrupted position.
  std::vector<unsigned> Idx(S.Lines.size());
  for (unsigned K = 0; K < Idx.size(); ++K)
    Idx[K] = K;
  for (unsigned K = static_cast<unsigned>(Idx.size()); K > 1; --K)
    std::swap(Idx[K - 1], Idx[R.below(K)]);
  for (unsigned K = 0; K < Corrupt; ++K)
    corruptLine(R, S.Lines, Idx[K], SizeAtLine[Idx[K]]);
  S.CorruptedLines = Corrupt;
  return S;
}

std::string irlt::fuzz::joinScript(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}
