//===- fuzz/ScriptGen.h - Random transformation-script generation ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random transformation scripts for irlt-fuzz, in the textual directive
/// language of driver/Script.h - so every fuzz case is replayable with
/// `irlt-opt FILE -f SCRIPT`. Generation tracks the evolving nest size
/// exactly as the parser threads it (each directive consumes the current
/// loop count and produces the next), covering all six Table 1 kernel
/// templates plus the StripMine extension.
///
/// Two special modes support targeted fuzzing:
///  - OverflowMode emits huge skew factors / matrix entries / block
///    sizes, to drive the overflow-checked arithmetic paths;
///  - CorruptLines rewrites N lines of a well-formed script into
///    guaranteed-invalid directives, to exercise the parser's multi-error
///    recovery (the parse must report at least one Diag per bad line).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FUZZ_SCRIPTGEN_H
#define IRLT_FUZZ_SCRIPTGEN_H

#include "fuzz/Rng.h"

#include <string>
#include <vector>

namespace irlt {
namespace fuzz {

/// Options steering script generation.
struct ScriptGenOptions {
  unsigned MaxSteps = 4;
  /// Never grow the nest beyond this many loops (Block / Interleave /
  /// StripMine multiply iteration counts fast).
  unsigned SizeCap = 6;
  /// Emit huge coefficients (skew factors, matrix entries, block sizes).
  bool OverflowMode = false;
  /// Rewrite this many lines into guaranteed-invalid directives.
  unsigned CorruptLines = 0;
};

/// A generated script plus the metadata the oracle needs.
struct GeneratedScript {
  std::vector<std::string> Lines;
  /// Number of lines rewritten to be invalid; the parse must fail with at
  /// least this many diagnostics.
  unsigned CorruptedLines = 0;
};

/// Generates a random script for a nest of \p InitialLoops loops.
GeneratedScript generateScript(Rng &R, unsigned InitialLoops,
                               const ScriptGenOptions &Opts);

/// Joins script lines with newlines (the canonical reproducer form).
std::string joinScript(const std::vector<std::string> &Lines);

} // namespace fuzz
} // namespace irlt

#endif // IRLT_FUZZ_SCRIPTGEN_H
