//===- fuzz/Shrink.cpp - Automatic fuzz-case minimization -----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Shrink.h"

namespace {

using namespace irlt;
using namespace irlt::fuzz;

class Shrinker {
public:
  Shrinker(const DifferentialOptions &Opts, Category Target, unsigned MaxRuns)
      : Opts(Opts), Target(Target), MaxRuns(MaxRuns) {}

  FuzzCase shrink(FuzzCase C) {
    bool Progress = true;
    while (Progress && Runs < MaxRuns) {
      Progress = false;
      Progress |= dropScriptLines(C);
      Progress |= dropInnermostLoop(C);
      Progress |= dropReads(C);
      Progress |= dropSecondStmt(C);
      Progress |= simplifyBounds(C);
    }
    return C;
  }

private:
  bool stillFails(const FuzzCase &C) {
    if (Runs >= MaxRuns)
      return false;
    ++Runs;
    return runCase(C, Opts).Cat == Target;
  }

  bool dropScriptLines(FuzzCase &C) {
    bool Any = false;
    for (size_t K = 0; K < C.Script.size();) {
      if (C.Script.size() == 1)
        break; // keep at least one directive: empty scripts test nothing
      FuzzCase Cand = C;
      Cand.Script.erase(Cand.Script.begin() + K);
      if (stillFails(Cand)) {
        C = std::move(Cand);
        Any = true;
      } else {
        ++K;
      }
    }
    return Any;
  }

  bool dropInnermostLoop(FuzzCase &C) {
    bool Any = false;
    while (C.Nest.Loops.size() > 1) {
      FuzzCase Cand = C;
      Cand.Nest.Loops.pop_back();
      for (ReadSpec &Read : Cand.Nest.Reads)
        if (Read.Off.size() > Cand.Nest.Loops.size())
          Read.Off.resize(Cand.Nest.Loops.size());
      if (!stillFails(Cand))
        break;
      C = std::move(Cand);
      Any = true;
    }
    return Any;
  }

  bool dropReads(FuzzCase &C) {
    bool Any = false;
    for (size_t K = 0; K < C.Nest.Reads.size();) {
      FuzzCase Cand = C;
      Cand.Nest.Reads.erase(Cand.Nest.Reads.begin() + K);
      if (stillFails(Cand)) {
        C = std::move(Cand);
        Any = true;
      } else {
        ++K;
      }
    }
    return Any;
  }

  bool dropSecondStmt(FuzzCase &C) {
    if (!C.Nest.SecondStmt)
      return false;
    FuzzCase Cand = C;
    Cand.Nest.SecondStmt = false;
    if (!stillFails(Cand))
      return false;
    C = std::move(Cand);
    return true;
  }

  bool simplifyBounds(FuzzCase &C) {
    bool Any = false;
    for (size_t K = 0; K < C.Nest.Loops.size(); ++K) {
      if (C.Nest.Loops[K].Lo != "1") {
        FuzzCase Cand = C;
        Cand.Nest.Loops[K].Lo = "1";
        if (stillFails(Cand)) {
          C = std::move(Cand);
          Any = true;
        }
      }
      if (C.Nest.Loops[K].Hi != "n") {
        FuzzCase Cand = C;
        // Huge literals shrink to a small constant first, anything else
        // straight to the rectangular default.
        Cand.Nest.Loops[K].Hi = C.Nest.Loops[K].Hi.size() > 4 &&
                                        C.Nest.Loops[K].Hi.find_first_not_of(
                                            "0123456789") ==
                                            std::string::npos
                                    ? "8"
                                    : "n";
        if (Cand.Nest.Loops[K].Hi != C.Nest.Loops[K].Hi &&
            stillFails(Cand)) {
          C = std::move(Cand);
          Any = true;
        }
      }
      if (C.Nest.Loops[K].Step != 1) {
        FuzzCase Cand = C;
        Cand.Nest.Loops[K].Step = 1;
        if (stillFails(Cand)) {
          C = std::move(Cand);
          Any = true;
        }
      }
    }
    return Any;
  }

  const DifferentialOptions &Opts;
  const Category Target;
  const unsigned MaxRuns;
  unsigned Runs = 0;
};

} // namespace

FuzzCase irlt::fuzz::shrinkCase(const FuzzCase &C,
                                const DifferentialOptions &Opts,
                                Category Target, unsigned MaxRuns) {
  return Shrinker(Opts, Target, MaxRuns).shrink(C);
}
