//===- fuzz/Shrink.h - Automatic fuzz-case minimization -------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy structural shrinking of failing fuzz cases. Each candidate
/// reduction is accepted only when the reduced case still produces an
/// OracleFailure, so the dumped reproducer shows the *minimal* nest and
/// script that break the invariant. Reductions, in order of payoff:
///
///   - drop a script directive,
///   - drop the innermost loop (truncating read offsets),
///   - drop a body read / the second statement,
///   - rectangularize a bound (lower -> 1, upper -> n, step -> 1),
///   - replace a huge constant bound with 8.
///
/// The total number of oracle re-runs is capped; shrinking is best-effort
/// and deterministic (no randomness).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_FUZZ_SHRINK_H
#define IRLT_FUZZ_SHRINK_H

#include "fuzz/Differential.h"

namespace irlt {
namespace fuzz {

/// Shrinks \p C, which must currently produce \p Target (a failure
/// category: OracleFailure or FastPathUnsound) under \p Opts. A
/// reduction is accepted only when it reproduces the *same* category, so
/// shrinking cannot morph one bug into a different one. Returns the
/// smallest failing case found within \p MaxRuns oracle evaluations.
FuzzCase shrinkCase(const FuzzCase &C, const DifferentialOptions &Opts,
                    Category Target = Category::OracleFailure,
                    unsigned MaxRuns = 200);

} // namespace fuzz
} // namespace irlt

#endif // IRLT_FUZZ_SHRINK_H
