//===- ir/Expr.cpp - Integer expression trees -----------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include "support/MathUtils.h"
#include "support/Printing.h"

#include <cassert>

using namespace irlt;

Expr::~Expr() = default;

//===----------------------------------------------------------------------===
// Factories
//===----------------------------------------------------------------------===

ExprRef Expr::intConst(int64_t V) { return std::make_shared<IntConstExpr>(V); }

ExprRef Expr::var(const std::string &Name) {
  assert(!Name.empty() && "variable with empty name");
  return std::make_shared<VarExpr>(Name);
}

ExprRef Expr::add(ExprRef L, ExprRef R) {
  return std::make_shared<BinaryExpr>(Kind::Add, std::move(L), std::move(R));
}

ExprRef Expr::sub(ExprRef L, ExprRef R) {
  return std::make_shared<BinaryExpr>(Kind::Sub, std::move(L), std::move(R));
}

ExprRef Expr::mul(ExprRef L, ExprRef R) {
  return std::make_shared<BinaryExpr>(Kind::Mul, std::move(L), std::move(R));
}

ExprRef Expr::floorDivE(ExprRef L, ExprRef R) {
  return std::make_shared<BinaryExpr>(Kind::Div, std::move(L), std::move(R));
}

ExprRef Expr::modE(ExprRef L, ExprRef R) {
  return std::make_shared<BinaryExpr>(Kind::Mod, std::move(L), std::move(R));
}

ExprRef Expr::minE(std::vector<ExprRef> Ops) {
  assert(!Ops.empty() && "min() of nothing");
  if (Ops.size() == 1)
    return Ops.front();
  return std::make_shared<MinMaxExpr>(Kind::Min, std::move(Ops));
}

ExprRef Expr::maxE(std::vector<ExprRef> Ops) {
  assert(!Ops.empty() && "max() of nothing");
  if (Ops.size() == 1)
    return Ops.front();
  return std::make_shared<MinMaxExpr>(Kind::Max, std::move(Ops));
}

ExprRef Expr::call(const std::string &Name, std::vector<ExprRef> Args) {
  return std::make_shared<CallExpr>(Name, std::move(Args));
}

ExprRef Expr::ceilDivByConst(ExprRef E, int64_t C) {
  assert(C > 0 && "ceilDivByConst requires a positive constant divisor");
  if (C == 1)
    return E;
  return floorDivE(add(std::move(E), intConst(C - 1)), intConst(C));
}

//===----------------------------------------------------------------------===
// Queries
//===----------------------------------------------------------------------===

std::optional<int64_t> Expr::constValue() const {
  if (const auto *IC = dyn_cast<IntConstExpr>(this))
    return IC->value();
  return std::nullopt;
}

bool Expr::equals(const Expr &O) const {
  if (TheKind != O.TheKind)
    return false;
  switch (TheKind) {
  case Kind::IntConst:
    return cast<IntConstExpr>(this)->value() == cast<IntConstExpr>(&O)->value();
  case Kind::Var:
    return cast<VarExpr>(this)->name() == cast<VarExpr>(&O)->name();
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::Div:
  case Kind::Mod: {
    const auto *A = cast<BinaryExpr>(this);
    const auto *B = cast<BinaryExpr>(&O);
    return A->lhs()->equals(*B->lhs()) && A->rhs()->equals(*B->rhs());
  }
  case Kind::Min:
  case Kind::Max: {
    const auto *A = cast<MinMaxExpr>(this);
    const auto *B = cast<MinMaxExpr>(&O);
    if (A->operands().size() != B->operands().size())
      return false;
    for (size_t I = 0; I < A->operands().size(); ++I)
      if (!A->operands()[I]->equals(*B->operands()[I]))
        return false;
    return true;
  }
  case Kind::Call: {
    const auto *A = cast<CallExpr>(this);
    const auto *B = cast<CallExpr>(&O);
    if (A->callee() != B->callee() || A->args().size() != B->args().size())
      return false;
    for (size_t I = 0; I < A->args().size(); ++I)
      if (!A->args()[I]->equals(*B->args()[I]))
        return false;
    return true;
  }
  }
  return false;
}

bool Expr::containsVar(const std::string &Name) const {
  switch (TheKind) {
  case Kind::IntConst:
    return false;
  case Kind::Var:
    return cast<VarExpr>(this)->name() == Name;
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::Div:
  case Kind::Mod: {
    const auto *B = cast<BinaryExpr>(this);
    return B->lhs()->containsVar(Name) || B->rhs()->containsVar(Name);
  }
  case Kind::Min:
  case Kind::Max: {
    for (const ExprRef &Op : cast<MinMaxExpr>(this)->operands())
      if (Op->containsVar(Name))
        return true;
    return false;
  }
  case Kind::Call: {
    for (const ExprRef &Arg : cast<CallExpr>(this)->args())
      if (Arg->containsVar(Name))
        return true;
    return false;
  }
  }
  return false;
}

void Expr::collectVars(std::set<std::string> &Out) const {
  switch (TheKind) {
  case Kind::IntConst:
    return;
  case Kind::Var:
    Out.insert(cast<VarExpr>(this)->name());
    return;
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::Div:
  case Kind::Mod: {
    const auto *B = cast<BinaryExpr>(this);
    B->lhs()->collectVars(Out);
    B->rhs()->collectVars(Out);
    return;
  }
  case Kind::Min:
  case Kind::Max:
    for (const ExprRef &Op : cast<MinMaxExpr>(this)->operands())
      Op->collectVars(Out);
    return;
  case Kind::Call:
    for (const ExprRef &Arg : cast<CallExpr>(this)->args())
      Arg->collectVars(Out);
    return;
  }
}

ExprRef Expr::substitute(const ExprRef &E,
                         const std::map<std::string, ExprRef> &Map) {
  assert(E && "substitute on null expression");
  switch (E->kind()) {
  case Kind::IntConst:
    return E;
  case Kind::Var: {
    auto It = Map.find(cast<VarExpr>(E.get())->name());
    return It == Map.end() ? E : It->second;
  }
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::Div:
  case Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    ExprRef L = substitute(B->lhs(), Map);
    ExprRef R = substitute(B->rhs(), Map);
    if (L == B->lhs() && R == B->rhs())
      return E;
    return std::make_shared<BinaryExpr>(E->kind(), std::move(L), std::move(R));
  }
  case Kind::Min:
  case Kind::Max: {
    const auto *M = cast<MinMaxExpr>(E.get());
    std::vector<ExprRef> Ops;
    Ops.reserve(M->operands().size());
    bool Changed = false;
    for (const ExprRef &Op : M->operands()) {
      Ops.push_back(substitute(Op, Map));
      Changed |= Ops.back() != Op;
    }
    if (!Changed)
      return E;
    return std::make_shared<MinMaxExpr>(E->kind(), std::move(Ops));
  }
  case Kind::Call: {
    const auto *C = cast<CallExpr>(E.get());
    std::vector<ExprRef> Args;
    Args.reserve(C->args().size());
    bool Changed = false;
    for (const ExprRef &Arg : C->args()) {
      Args.push_back(substitute(Arg, Map));
      Changed |= Args.back() != Arg;
    }
    if (!Changed)
      return E;
    return std::make_shared<CallExpr>(C->callee(), std::move(Args));
  }
  }
  return E;
}

//===----------------------------------------------------------------------===
// Evaluation
//===----------------------------------------------------------------------===

int64_t Expr::evaluate(const ExprEnv &Env) const {
  switch (TheKind) {
  case Kind::IntConst:
    return cast<IntConstExpr>(this)->value();
  case Kind::Var: {
    std::optional<int64_t> V = Env.lookup(cast<VarExpr>(this)->name());
    assert(V && "unbound variable in expression evaluation");
    return *V;
  }
  case Kind::Add:
  case Kind::Sub:
  case Kind::Mul:
  case Kind::Div:
  case Kind::Mod: {
    const auto *B = cast<BinaryExpr>(this);
    int64_t L = B->lhs()->evaluate(Env);
    int64_t R = B->rhs()->evaluate(Env);
    switch (TheKind) {
    case Kind::Add:
      return addChecked(L, R);
    case Kind::Sub:
      return addChecked(L, -R);
    case Kind::Mul:
      return mulChecked(L, R);
    case Kind::Div:
      return floorDiv(L, R);
    case Kind::Mod:
      return floorMod(L, R);
    default:
      break;
    }
    assert(false && "unreachable binary kind");
    return 0;
  }
  case Kind::Min:
  case Kind::Max: {
    const auto *M = cast<MinMaxExpr>(this);
    int64_t Best = M->operands().front()->evaluate(Env);
    for (size_t I = 1; I < M->operands().size(); ++I) {
      int64_t V = M->operands()[I]->evaluate(Env);
      Best = M->isMin() ? std::min(Best, V) : std::max(Best, V);
    }
    return Best;
  }
  case Kind::Call: {
    const auto *C = cast<CallExpr>(this);
    std::vector<int64_t> Args;
    Args.reserve(C->args().size());
    for (const ExprRef &Arg : C->args())
      Args.push_back(Arg->evaluate(Env));
    return Env.call(C->callee(), Args);
  }
  }
  assert(false && "unreachable expression kind");
  return 0;
}

//===----------------------------------------------------------------------===
// Printing
//===----------------------------------------------------------------------===

// Binding powers: additive = 10, multiplicative = 20. Atoms are 100.
static int precedenceOf(Expr::Kind K) {
  switch (K) {
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
    return 10;
  case Expr::Kind::Mul:
  case Expr::Kind::Div:
    return 20;
  default:
    return 100;
  }
}

std::string IntConstExpr::print(int ParentPrec) const {
  if (Value < 0 && ParentPrec > 0)
    return "(" + std::to_string(Value) + ")";
  return std::to_string(Value);
}

std::string VarExpr::print(int) const { return Name; }

std::string BinaryExpr::print(int ParentPrec) const {
  // Mod prints in call syntax to keep flooring semantics unambiguous.
  if (kind() == Kind::Mod)
    return "mod(" + LHS->print(0) + ", " + RHS->print(0) + ")";

  // Negation sugar: (-1)*x prints as -x.
  if (kind() == Kind::Mul) {
    std::optional<int64_t> LC = LHS->constValue();
    if (LC && *LC == -1) {
      std::string S = "-" + RHS->print(precedenceOf(Kind::Mul));
      if (ParentPrec > 10) // bind like an additive term
        return "(" + S + ")";
      return S;
    }
  }

  int Prec = precedenceOf(kind());
  const char *Op = nullptr;
  switch (kind()) {
  case Kind::Add:
    Op = " + ";
    break;
  case Kind::Sub:
    Op = " - ";
    break;
  case Kind::Mul:
    Op = "*";
    break;
  case Kind::Div:
    Op = " / ";
    break;
  default:
    assert(false && "unexpected binary kind");
  }
  // Right operand of - and / needs a strictly-higher binding power.
  bool RightAssocGuard = kind() == Kind::Sub || kind() == Kind::Div;
  std::string S =
      LHS->print(Prec) + Op + RHS->print(RightAssocGuard ? Prec + 1 : Prec);
  if (Prec < ParentPrec)
    return "(" + S + ")";
  return S;
}

std::string MinMaxExpr::print(int) const {
  std::vector<std::string> Parts;
  Parts.reserve(Operands.size());
  for (const ExprRef &Op : Operands)
    Parts.push_back(Op->print(0));
  return std::string(isMin() ? "min" : "max") + "(" + join(Parts, ", ") + ")";
}

std::string CallExpr::print(int) const {
  std::vector<std::string> Parts;
  Parts.reserve(Args.size());
  for (const ExprRef &Arg : Args)
    Parts.push_back(Arg->print(0));
  return Callee + "(" + join(Parts, ", ") + ")";
}
