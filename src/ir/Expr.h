//===- ir/Expr.h - Integer expression trees for loop bounds --------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable integer expression trees. These are the values of loop bound
/// expressions, step expressions, array subscripts, and initialization
/// statements throughout the framework.
///
/// Division (`Div`) and modulus (`Mod`) use *flooring* semantics (round
/// toward negative infinity), matching the `div`/`mod` operators the paper
/// uses to define the Block and Coalesce iteration mappings. Ceiling
/// division by a positive constant is expressed as
/// `floorDiv(E + C - 1, C)` and never needs its own node.
///
/// Nodes are shared immutable objects referenced through `ExprRef`
/// (shared_ptr<const Expr>), so transformed loop nests can share subtrees
/// with their originals freely - a property the paper relies on when it
/// argues that alternative transformations can be explored without
/// mutating the loop nest (Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_IR_EXPR_H
#define IRLT_IR_EXPR_H

#include "support/Casting.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace irlt {

class Expr;
/// Shared reference to an immutable expression node.
using ExprRef = std::shared_ptr<const Expr>;

/// Callback environment for evaluating expressions: provides variable
/// bindings and implementations for opaque calls (e.g. `colstr`, `sqrt`).
class ExprEnv {
public:
  virtual ~ExprEnv() = default;

  /// \returns the value bound to \p Name, or nullopt if unbound.
  virtual std::optional<int64_t> lookup(const std::string &Name) const = 0;

  /// Evaluates the opaque call \p Name(\p Args). Asserts on unknown names.
  virtual int64_t call(const std::string &Name,
                       const std::vector<int64_t> &Args) const = 0;
};

/// Base class of all expression nodes.
class Expr {
public:
  enum class Kind {
    IntConst, ///< Integer literal.
    Var,      ///< Named variable: a loop index or a symbolic parameter.
    Add,
    Sub,
    Mul,
    Div, ///< Flooring division.
    Mod, ///< Flooring modulus (result sign follows the divisor).
    Min, ///< n-ary minimum.
    Max, ///< n-ary maximum.
    Call ///< Opaque call, e.g. colstr(j) or sqrt(i).
  };

  virtual ~Expr();

  Kind kind() const { return TheKind; }

  /// Structural equality.
  bool equals(const Expr &O) const;
  bool equals(const ExprRef &O) const { return O && equals(*O); }

  /// True if variable \p Name occurs anywhere in this tree.
  bool containsVar(const std::string &Name) const;

  /// Inserts every variable name occurring in this tree into \p Out.
  void collectVars(std::set<std::string> &Out) const;

  /// Renders the expression in the framework's loop-language syntax.
  std::string str() const { return print(0); }

  /// Evaluates against \p Env. Asserts if a variable is unbound.
  int64_t evaluate(const ExprEnv &Env) const;

  /// \returns the literal value if this is an IntConst node.
  std::optional<int64_t> constValue() const;

  //===--- Factories ------------------------------------------------------===
  static ExprRef intConst(int64_t V);
  static ExprRef var(const std::string &Name);
  static ExprRef add(ExprRef L, ExprRef R);
  static ExprRef sub(ExprRef L, ExprRef R);
  static ExprRef mul(ExprRef L, ExprRef R);
  static ExprRef floorDivE(ExprRef L, ExprRef R);
  static ExprRef modE(ExprRef L, ExprRef R);
  static ExprRef minE(std::vector<ExprRef> Ops);
  static ExprRef maxE(std::vector<ExprRef> Ops);
  static ExprRef call(const std::string &Name, std::vector<ExprRef> Args);
  static ExprRef neg(ExprRef E) { return mul(intConst(-1), std::move(E)); }

  /// Ceiling division by a *positive integer constant* divisor, expressed
  /// via flooring division: ceil(E / C) == floor((E + C - 1) / C).
  static ExprRef ceilDivByConst(ExprRef E, int64_t C);

  /// Substitutes variables by expressions; unmapped variables are kept.
  static ExprRef substitute(const ExprRef &E,
                            const std::map<std::string, ExprRef> &Map);

  /// Renders with enough parentheses for re-parsing. \p ParentPrec is the
  /// binding power of the enclosing operator.
  virtual std::string print(int ParentPrec) const = 0;

protected:
  explicit Expr(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

/// Integer literal.
class IntConstExpr : public Expr {
public:
  explicit IntConstExpr(int64_t V) : Expr(Kind::IntConst), Value(V) {}
  int64_t value() const { return Value; }
  std::string print(int ParentPrec) const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::IntConst; }

private:
  int64_t Value;
};

/// Named variable: either a loop index variable or a nest-invariant
/// symbolic parameter - the distinction is contextual (a name is an index
/// variable iff some enclosing loop binds it).
class VarExpr : public Expr {
public:
  explicit VarExpr(std::string Name) : Expr(Kind::Var), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  std::string print(int ParentPrec) const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::Var; }

private:
  std::string Name;
};

/// Binary arithmetic node (Add/Sub/Mul/Div/Mod).
class BinaryExpr : public Expr {
public:
  BinaryExpr(Kind K, ExprRef L, ExprRef R)
      : Expr(K), LHS(std::move(L)), RHS(std::move(R)) {}
  const ExprRef &lhs() const { return LHS; }
  const ExprRef &rhs() const { return RHS; }
  std::string print(int ParentPrec) const override;
  static bool classof(const Expr *E) {
    switch (E->kind()) {
    case Kind::Add:
    case Kind::Sub:
    case Kind::Mul:
    case Kind::Div:
    case Kind::Mod:
      return true;
    default:
      return false;
    }
  }

private:
  ExprRef LHS, RHS;
};

/// n-ary min or max.
class MinMaxExpr : public Expr {
public:
  MinMaxExpr(Kind K, std::vector<ExprRef> Ops)
      : Expr(K), Operands(std::move(Ops)) {}
  const std::vector<ExprRef> &operands() const { return Operands; }
  bool isMin() const { return kind() == Kind::Min; }
  std::string print(int ParentPrec) const override;
  static bool classof(const Expr *E) {
    return E->kind() == Kind::Min || E->kind() == Kind::Max;
  }

private:
  std::vector<ExprRef> Operands;
};

/// Opaque call such as `colstr(j)`. The framework treats these as
/// uninterpreted (and therefore nonlinear) terms; the evaluator resolves
/// them through ExprEnv::call.
class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprRef> Args)
      : Expr(Kind::Call), Callee(std::move(Callee)), Args(std::move(Args)) {}
  const std::string &callee() const { return Callee; }
  const std::vector<ExprRef> &args() const { return Args; }
  std::string print(int ParentPrec) const override;
  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprRef> Args;
};

} // namespace irlt

#endif // IRLT_IR_EXPR_H
