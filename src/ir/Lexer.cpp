//===- ir/Lexer.cpp - Tokenizer for the loop language ----------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Lexer.h"

#include "support/Printing.h"

#include <cctype>

using namespace irlt;

Lexer::Lexer(std::string Source) : Source(std::move(Source)) {}

const char *irlt::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Ident:
    return "identifier";
  case TokKind::Int:
    return "integer";
  case TokKind::KwDo:
    return "'do'";
  case TokKind::KwParDo:
    return "'pardo'";
  case TokKind::KwEndDo:
    return "'enddo'";
  case TokKind::KwArrays:
    return "'arrays'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Newline:
    return "end of line";
  case TokKind::Eof:
    return "end of input";
  }
  return "?";
}

std::string Lexer::tokenize(std::vector<Token> &Out) {
  unsigned Line = 1, Col = 1;
  size_t I = 0;
  const size_t N = Source.size();
  bool LineHasToken = false;

  auto push = [&](TokKind K, std::string Text, unsigned TokCol) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = Line;
    T.Col = TokCol;
    Out.push_back(std::move(T));
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      // Collapse blank lines: only emit Newline after a token-bearing line.
      if (LineHasToken)
        push(TokKind::Newline, "\\n", Col);
      LineHasToken = false;
      ++I;
      ++Line;
      Col = 1;
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r') {
      ++I;
      ++Col;
      continue;
    }
    if (C == '!') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    LineHasToken = true;
    unsigned TokCol = Col;
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_')) {
        ++I;
        ++Col;
      }
      std::string Word = Source.substr(Start, I - Start);
      TokKind K = TokKind::Ident;
      if (Word == "do")
        K = TokKind::KwDo;
      else if (Word == "pardo")
        K = TokKind::KwParDo;
      else if (Word == "enddo")
        K = TokKind::KwEndDo;
      else if (Word == "arrays")
        K = TokKind::KwArrays;
      push(K, std::move(Word), TokCol);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I]))) {
        ++I;
        ++Col;
      }
      std::string Digits = Source.substr(Start, I - Start);
      Token T;
      T.Kind = TokKind::Int;
      T.Text = Digits;
      T.IntValue = std::stoll(Digits);
      T.Line = Line;
      T.Col = TokCol;
      Out.push_back(std::move(T));
      continue;
    }
    switch (C) {
    case '(':
      push(TokKind::LParen, "(", TokCol);
      break;
    case ')':
      push(TokKind::RParen, ")", TokCol);
      break;
    case ',':
      push(TokKind::Comma, ",", TokCol);
      break;
    case '=':
      push(TokKind::Assign, "=", TokCol);
      break;
    case '+':
      if (I + 1 < N && Source[I + 1] == '=') {
        push(TokKind::PlusAssign, "+=", TokCol);
        ++I;
        ++Col;
      } else {
        push(TokKind::Plus, "+", TokCol);
      }
      break;
    case '-':
      push(TokKind::Minus, "-", TokCol);
      break;
    case '*':
      push(TokKind::Star, "*", TokCol);
      break;
    case '/':
      push(TokKind::Slash, "/", TokCol);
      break;
    default:
      return formatStr("line %u, col %u: unexpected character '%c'", Line,
                       TokCol, C);
    }
    ++I;
    ++Col;
  }
  if (LineHasToken)
    push(TokKind::Newline, "\\n", Col);
  push(TokKind::Eof, "", Col);
  return std::string();
}
