//===- ir/Lexer.h - Tokenizer for the loop language ------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Fortran-flavoured loop language used by the paper's
/// figures:
///
/// \code
///   do i = 2, n - 1
///     do j = 2, n - 1
///       a(i, j) = (a(i, j) + a(i - 1, j)) / 5
///     enddo
///   enddo
/// \endcode
///
/// Comments run from `!` to end of line. Newlines are significant (they
/// terminate statements).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_IR_LEXER_H
#define IRLT_IR_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace irlt {

/// Token categories of the loop language.
enum class TokKind {
  Ident,
  Int,
  KwDo,
  KwParDo,
  KwEndDo,
  KwArrays,
  LParen,
  RParen,
  Comma,
  Assign,     ///< '='
  PlusAssign, ///< '+='
  Plus,
  Minus,
  Star,
  Slash,
  Newline,
  Eof
};

/// One token with its source position (1-based line/column).
struct Token {
  TokKind Kind;
  std::string Text;
  int64_t IntValue = 0;
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Converts source text into a token stream. Lexical errors surface as a
/// diagnostic string; the token list is still usable up to the error.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Tokenizes the whole input. \returns empty string on success, else a
  /// diagnostic.
  std::string tokenize(std::vector<Token> &Out);

private:
  std::string Source;
};

/// Human-readable token kind name, for diagnostics.
const char *tokKindName(TokKind K);

} // namespace irlt

#endif // IRLT_IR_LEXER_H
