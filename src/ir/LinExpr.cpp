//===- ir/LinExpr.cpp - Linear combinations over expression atoms --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "ir/LinExpr.h"

#include "support/Casting.h"
#include "support/MathUtils.h"

#include <cassert>

using namespace irlt;

//===----------------------------------------------------------------------===
// Construction
//===----------------------------------------------------------------------===

void LinExpr::addVar(const std::string &Name, int64_t Coef) {
  addAtom(Expr::var(Name), Coef);
}

void LinExpr::addAtom(const ExprRef &Atom, int64_t Coef) {
  if (Coef == 0)
    return;
  std::string Key = Atom->str();
  auto It = Terms.find(Key);
  if (It == Terms.end()) {
    Terms.emplace(std::move(Key), Term{Atom, Coef});
    return;
  }
  It->second.Coef = addChecked(It->second.Coef, Coef);
  if (It->second.Coef == 0)
    Terms.erase(It);
}

LinExpr LinExpr::fromExpr(const ExprRef &E) {
  assert(E && "linearizing null expression");
  LinExpr L;
  switch (E->kind()) {
  case Expr::Kind::IntConst:
    L.Const = cast<IntConstExpr>(E.get())->value();
    return L;
  case Expr::Kind::Var:
    L.addAtom(E, 1);
    return L;
  case Expr::Kind::Add: {
    const auto *B = cast<BinaryExpr>(E.get());
    return fromExpr(B->lhs()) + fromExpr(B->rhs());
  }
  case Expr::Kind::Sub: {
    const auto *B = cast<BinaryExpr>(E.get());
    return fromExpr(B->lhs()) - fromExpr(B->rhs());
  }
  case Expr::Kind::Mul: {
    const auto *B = cast<BinaryExpr>(E.get());
    LinExpr LHS = fromExpr(B->lhs());
    LinExpr RHS = fromExpr(B->rhs());
    if (LHS.isConst())
      return RHS.scaled(LHS.Const);
    if (RHS.isConst())
      return LHS.scaled(RHS.Const);
    // Product of two non-constants: opaque.
    L.addAtom(E, 1);
    return L;
  }
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    LinExpr LHS = fromExpr(B->lhs());
    LinExpr RHS = fromExpr(B->rhs());
    if (LHS.isConst() && RHS.isConst() && RHS.Const != 0) {
      L.Const = E->kind() == Expr::Kind::Div ? floorDiv(LHS.Const, RHS.Const)
                                             : floorMod(LHS.Const, RHS.Const);
      return L;
    }
    // Flooring division does not distribute over sums; keep opaque.
    L.addAtom(E, 1);
    return L;
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    const auto *M = cast<MinMaxExpr>(E.get());
    bool AllConst = true;
    int64_t Best = 0;
    for (size_t I = 0; I < M->operands().size(); ++I) {
      LinExpr OpL = fromExpr(M->operands()[I]);
      if (!OpL.isConst()) {
        AllConst = false;
        break;
      }
      Best = I == 0 ? OpL.Const
                    : (M->isMin() ? std::min(Best, OpL.Const)
                                  : std::max(Best, OpL.Const));
    }
    if (AllConst) {
      L.Const = Best;
      return L;
    }
    L.addAtom(E, 1);
    return L;
  }
  case Expr::Kind::Call:
    L.addAtom(E, 1);
    return L;
  }
  assert(false && "unreachable expression kind");
  return L;
}

//===----------------------------------------------------------------------===
// Queries
//===----------------------------------------------------------------------===

int64_t LinExpr::coeffOf(const std::string &Name) const {
  auto It = Terms.find(Name);
  if (It == Terms.end() || !isa<VarExpr>(It->second.Atom.get()))
    return 0;
  return It->second.Coef;
}

bool LinExpr::dependsOn(const std::string &Name) const {
  for (const auto &[Key, T] : Terms)
    if (T.Atom->containsVar(Name))
      return true;
  return false;
}

bool LinExpr::hasVarInsideOpaqueAtom(const std::string &Name) const {
  for (const auto &[Key, T] : Terms) {
    if (isa<VarExpr>(T.Atom.get()))
      continue;
    if (T.Atom->containsVar(Name))
      return true;
  }
  return false;
}

bool LinExpr::allAtomsAreVars() const {
  for (const auto &[Key, T] : Terms)
    if (!isa<VarExpr>(T.Atom.get()))
      return false;
  return true;
}

int64_t LinExpr::extractVar(const std::string &Name) {
  auto It = Terms.find(Name);
  if (It == Terms.end() || !isa<VarExpr>(It->second.Atom.get()))
    return 0;
  int64_t C = It->second.Coef;
  Terms.erase(It);
  return C;
}

bool LinExpr::equals(const LinExpr &O) const {
  if (Const != O.Const || Terms.size() != O.Terms.size())
    return false;
  auto ItA = Terms.begin();
  auto ItB = O.Terms.begin();
  for (; ItA != Terms.end(); ++ItA, ++ItB)
    if (ItA->first != ItB->first || ItA->second.Coef != ItB->second.Coef)
      return false;
  return true;
}

//===----------------------------------------------------------------------===
// Arithmetic
//===----------------------------------------------------------------------===

LinExpr LinExpr::operator+(const LinExpr &O) const {
  LinExpr R = *this;
  R.Const = addChecked(R.Const, O.Const);
  for (const auto &[Key, T] : O.Terms)
    R.addAtom(T.Atom, T.Coef);
  return R;
}

LinExpr LinExpr::operator-(const LinExpr &O) const {
  return *this + O.scaled(-1);
}

LinExpr LinExpr::scaled(int64_t F) const {
  LinExpr R;
  if (F == 0)
    return R;
  R.Const = mulChecked(Const, F);
  for (const auto &[Key, T] : Terms)
    R.Terms.emplace(Key, Term{T.Atom, mulChecked(T.Coef, F)});
  return R;
}

LinExpr LinExpr::substituted(const std::map<std::string, LinExpr> &Map) const {
  LinExpr R;
  R.Const = Const;
  for (const auto &[Key, T] : Terms) {
    const auto *V = dyn_cast<VarExpr>(T.Atom.get());
    if (V) {
      auto It = Map.find(V->name());
      if (It != Map.end()) {
        R = R + It->second.scaled(T.Coef);
        continue;
      }
    }
    R.addAtom(T.Atom, T.Coef);
  }
  return R;
}

//===----------------------------------------------------------------------===
// Rebuilding expressions
//===----------------------------------------------------------------------===

ExprRef LinExpr::toExpr() const {
  ExprRef Acc;
  auto appendTerm = [&Acc](const ExprRef &Atom, int64_t Coef) {
    assert(Coef != 0 && "zero-coefficient term survived");
    int64_t AbsCoef = Coef < 0 ? negChecked(Coef) : Coef;
    ExprRef Piece =
        AbsCoef == 1 ? Atom : Expr::mul(Expr::intConst(AbsCoef), Atom);
    if (!Acc) {
      Acc = Coef < 0 ? Expr::neg(Piece) : Piece;
      return;
    }
    Acc = Coef < 0 ? Expr::sub(Acc, Piece) : Expr::add(Acc, Piece);
  };

  // Lead with a positive-coefficient term when one exists, so "jj - ii"
  // prints instead of "-ii + jj".
  const std::string *LeadKey = nullptr;
  for (const auto &[Key, T] : Terms)
    if (T.Coef > 0) {
      LeadKey = &Key;
      break;
    }
  if (LeadKey)
    appendTerm(Terms.at(*LeadKey).Atom, Terms.at(*LeadKey).Coef);
  for (const auto &[Key, T] : Terms) {
    if (LeadKey && Key == *LeadKey)
      continue;
    appendTerm(T.Atom, T.Coef);
  }

  if (!Acc)
    return Expr::intConst(Const);
  if (Const > 0)
    return Expr::add(Acc, Expr::intConst(Const));
  if (Const < 0)
    return Expr::sub(Acc, Expr::intConst(negChecked(Const)));
  return Acc;
}

//===----------------------------------------------------------------------===
// Simplification
//===----------------------------------------------------------------------===

namespace {

/// Recursively simplifies the children of \p E and rebuilds the node.
ExprRef simplifyChildren(const ExprRef &E) {
  switch (E->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::Var:
    return E;
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul:
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    ExprRef L = simplify(B->lhs());
    ExprRef R = simplify(B->rhs());
    if (L == B->lhs() && R == B->rhs())
      return E;
    return std::make_shared<BinaryExpr>(E->kind(), std::move(L), std::move(R));
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    const auto *M = cast<MinMaxExpr>(E.get());
    std::vector<ExprRef> Ops;
    for (const ExprRef &Op : M->operands())
      Ops.push_back(simplify(Op));
    return std::make_shared<MinMaxExpr>(E->kind(), std::move(Ops));
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E.get());
    std::vector<ExprRef> Args;
    for (const ExprRef &Arg : C->args())
      Args.push_back(simplify(Arg));
    return std::make_shared<CallExpr>(C->callee(), std::move(Args));
  }
  }
  return E;
}

} // namespace

ExprRef irlt::simplify(const ExprRef &E) {
  assert(E && "simplifying null expression");
  ExprRef S = simplifyChildren(E);
  switch (S->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::Var:
  case Expr::Kind::Call:
    return S;
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul:
    // Canonicalize through the linear form (merges like terms, folds
    // constants, drops *1 and +0).
    return LinExpr::fromExpr(S).toExpr();
  case Expr::Kind::Div: {
    const auto *B = cast<BinaryExpr>(S.get());
    std::optional<int64_t> LC = B->lhs()->constValue();
    std::optional<int64_t> RC = B->rhs()->constValue();
    if (LC && RC && *RC != 0)
      return Expr::intConst(floorDiv(*LC, *RC));
    if (RC && *RC == 1)
      return B->lhs();
    if (LC && *LC == 0)
      return Expr::intConst(0);
    return S;
  }
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(S.get());
    std::optional<int64_t> LC = B->lhs()->constValue();
    std::optional<int64_t> RC = B->rhs()->constValue();
    if (LC && RC && *RC != 0)
      return Expr::intConst(floorMod(*LC, *RC));
    if (RC && (*RC == 1 || *RC == -1))
      return Expr::intConst(0);
    return S;
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    const auto *M = cast<MinMaxExpr>(S.get());
    bool IsMin = M->isMin();
    std::vector<ExprRef> Ops;
    std::optional<int64_t> ConstAcc;
    std::optional<size_t> ConstPos; // keep the first constant's position
    // Flatten nested same-kind nodes, fold constants, drop duplicates.
    std::vector<ExprRef> Work(M->operands().begin(), M->operands().end());
    for (size_t I = 0; I < Work.size(); ++I) {
      // Copy: the insert below may reallocate Work.
      ExprRef Op = Work[I];
      if (Op->kind() == S->kind()) {
        const auto *Inner = cast<MinMaxExpr>(Op.get());
        Work.insert(Work.end(), Inner->operands().begin(),
                    Inner->operands().end());
        continue;
      }
      if (std::optional<int64_t> C = Op->constValue()) {
        ConstAcc = ConstAcc ? (IsMin ? std::min(*ConstAcc, *C)
                                     : std::max(*ConstAcc, *C))
                            : *C;
        if (!ConstPos)
          ConstPos = Ops.size();
        continue;
      }
      bool Dup = false;
      for (const ExprRef &Seen : Ops)
        if (Seen->equals(*Op)) {
          Dup = true;
          break;
        }
      if (!Dup)
        Ops.push_back(Op);
    }
    if (ConstAcc)
      Ops.insert(Ops.begin() + static_cast<ptrdiff_t>(
                                   std::min(*ConstPos, Ops.size())),
                 Expr::intConst(*ConstAcc));
    assert(!Ops.empty() && "min/max lost all operands");
    if (Ops.size() == 1)
      return Ops.front();
    return std::make_shared<MinMaxExpr>(S->kind(), std::move(Ops));
  }
  default:
    return S;
  }
}
