//===- ir/LinExpr.h - Linear combinations over expression atoms ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LinExpr is the canonical linear form used everywhere the paper needs
/// "linear with compile-time-constant coefficients": the type() lattice of
/// Section 4.1, the LB/UB/STEP coefficient matrices of Section 4.3, the
/// symbolic Fourier-Motzkin bounds generator behind the Unimodular
/// template, and the affine subscript analysis in the dependence analyzer.
///
/// A LinExpr is  Const + sum_k Coef_k * Atom_k  where every Coef is an
/// int64 and every Atom is an expression tree that the linearizer refused
/// to open up: a plain variable, or an opaque subtree (call, div, mod,
/// min/max, or a product of two non-constants). This mirrors the paper's
/// bounds-matrix convention: linear terms get integer coefficient entries,
/// and "the terms involving [a] nonlinear [variable] are combined into the
/// (i, 0) entry" - here, into opaque atoms.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_IR_LINEXPR_H
#define IRLT_IR_LINEXPR_H

#include "ir/Expr.h"

#include <cstdint>
#include <map>
#include <string>

namespace irlt {

/// Canonical linear combination of expression atoms.
class LinExpr {
public:
  /// One linear term: an atom with its integer coefficient.
  struct Term {
    ExprRef Atom;
    int64_t Coef;
  };

  LinExpr() = default;
  /*implicit*/ LinExpr(int64_t C) : Const(C) {}

  /// Linearizes \p E. Never fails: an un-linearizable subtree becomes a
  /// single opaque atom (so `sqrt(i)/2` is one atom with coefficient 1...
  /// divided - see below: Div distributes over a constant divisor only when
  /// exactness cannot be guaranteed it stays opaque).
  static LinExpr fromExpr(const ExprRef &E);

  /// The constant part.
  int64_t constant() const { return Const; }

  /// The coefficient of the *plain variable* \p Name (0 if absent as a
  /// direct variable atom; occurrences buried inside opaque atoms do not
  /// count - use dependsOn / hasVarInsideOpaqueAtom for those).
  int64_t coeffOf(const std::string &Name) const;

  /// True if \p Name occurs anywhere, including inside opaque atoms.
  bool dependsOn(const std::string &Name) const;

  /// True if \p Name occurs inside an atom that is not the plain variable
  /// itself - i.e. the dependence on \p Name is nonlinear.
  bool hasVarInsideOpaqueAtom(const std::string &Name) const;

  /// True if there are no atoms at all (a compile-time constant).
  bool isConst() const { return Terms.empty(); }

  /// True if every atom is a plain variable (no opaque subtrees).
  bool allAtomsAreVars() const;

  const std::map<std::string, Term> &terms() const { return Terms; }

  /// Removes the term for plain variable \p Name and returns its
  /// coefficient (0 if absent).
  int64_t extractVar(const std::string &Name);

  /// Adds Coef * Var(Name).
  void addVar(const std::string &Name, int64_t Coef);

  /// Adds Coef * Atom for an arbitrary atom expression.
  void addAtom(const ExprRef &Atom, int64_t Coef);

  void addConst(int64_t C) { Const += C; }

  LinExpr operator+(const LinExpr &O) const;
  LinExpr operator-(const LinExpr &O) const;
  LinExpr scaled(int64_t F) const;

  /// Substitutes plain-variable atoms by LinExprs. Atoms that are not
  /// plain variables are left untouched (callers guarantee, via the
  /// paper's preconditions, that substituted variables do not occur inside
  /// opaque atoms when exactness matters).
  LinExpr substituted(const std::map<std::string, LinExpr> &Map) const;

  /// Rebuilds a (simplified, deterministic) expression tree.
  ExprRef toExpr() const;

  bool equals(const LinExpr &O) const;

  std::string str() const { return toExpr()->str(); }

private:
  // Keyed by the atom's canonical rendering so equal atoms merge.
  std::map<std::string, Term> Terms;
  int64_t Const = 0;
};

/// Simplifies \p E by round-tripping through LinExpr where profitable and
/// recursively simplifying opaque subtrees. Constant folding included.
ExprRef simplify(const ExprRef &E);

} // namespace irlt

#endif // IRLT_IR_LINEXPR_H
