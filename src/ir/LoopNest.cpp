//===- ir/LoopNest.cpp - Perfect loop nests --------------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "ir/LoopNest.h"

#include "support/Casting.h"
#include "support/Printing.h"

#include <cassert>

using namespace irlt;

std::string irlt::ArrayRef::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Subscripts.size());
  for (const ExprRef &S : Subscripts)
    Parts.push_back(S->str());
  return Array + "(" + join(Parts, ", ") + ")";
}

std::string AssignStmt::str() const { return LHS.str() + " = " + RHS->str(); }

std::string InitStmt::str() const { return Var + " = " + Value->str(); }

int LoopNest::loopIndexOf(const std::string &Var) const {
  for (size_t I = 0; I < Loops.size(); ++I)
    if (Loops[I].IndexVar == Var)
      return static_cast<int>(I);
  return -1;
}

void irlt::collectArrayReads(const ExprRef &E,
                             const std::set<std::string> &ArrayNames,
                             std::vector<irlt::ArrayRef> &Out) {
  switch (E->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul:
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    collectArrayReads(B->lhs(), ArrayNames, Out);
    collectArrayReads(B->rhs(), ArrayNames, Out);
    return;
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max:
    for (const ExprRef &Op : cast<MinMaxExpr>(E.get())->operands())
      collectArrayReads(Op, ArrayNames, Out);
    return;
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E.get());
    if (ArrayNames.count(C->callee()))
      Out.push_back(irlt::ArrayRef{C->callee(), C->args()});
    // Subscripts may themselves read arrays (e.g. a(idx(i))).
    for (const ExprRef &Arg : C->args())
      collectArrayReads(Arg, ArrayNames, Out);
    return;
  }
  }
}

void LoopNest::collectWrites(std::vector<irlt::ArrayRef> &Out) const {
  for (const AssignStmt &S : Body)
    Out.push_back(S.LHS);
}

void LoopNest::collectReads(std::vector<irlt::ArrayRef> &Out) const {
  for (const AssignStmt &S : Body)
    collectArrayReads(S.RHS, ArrayNames, Out);
}

void LoopNest::sealAsSource() {
  BodyIndexVars.clear();
  BodyIndexVars.reserve(Loops.size());
  for (const Loop &L : Loops)
    BodyIndexVars.push_back(L.IndexVar);
}

std::string LoopNest::validate() const {
  std::set<std::string> Seen;
  for (size_t K = 0; K < Loops.size(); ++K) {
    const Loop &L = Loops[K];
    if (L.IndexVar.empty())
      return formatStr("loop %zu has no index variable", K + 1);
    if (!Seen.insert(L.IndexVar).second)
      return formatStr("index variable '%s' bound twice", L.IndexVar.c_str());
    if (!L.Lower || !L.Upper || !L.Step)
      return formatStr("loop %zu ('%s') is missing a bound expression", K + 1,
                       L.IndexVar.c_str());
    // Bounds of loop k may reference index variables of loops 1..k-1 only.
    for (const ExprRef &E : {L.Lower, L.Upper, L.Step}) {
      std::set<std::string> Vars;
      E->collectVars(Vars);
      for (const std::string &V : Vars) {
        int Pos = loopIndexOf(V);
        if (Pos >= 0 && static_cast<size_t>(Pos) >= K)
          return formatStr(
              "bound of loop %zu ('%s') references non-outer index '%s'",
              K + 1, L.IndexVar.c_str(), V.c_str());
      }
    }
  }
  return std::string();
}

std::string LoopNest::str() const {
  IndentedWriter W;
  for (const Loop &L : Loops) {
    std::string Head =
        std::string(L.Kind == LoopKind::ParDo ? "pardo " : "do ") +
        L.IndexVar + " = " + L.Lower->str() + ", " + L.Upper->str();
    std::optional<int64_t> StepC = L.Step->constValue();
    if (!StepC || *StepC != 1)
      Head += ", " + L.Step->str();
    W.line(Head);
    W.indent();
  }
  for (const InitStmt &I : Inits)
    W.line(I.str());
  for (const AssignStmt &S : Body)
    W.line(S.str());
  for (size_t I = 0; I < Loops.size(); ++I) {
    W.outdent();
    W.line("enddo");
  }
  return W.str();
}
