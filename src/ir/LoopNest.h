//===- ir/LoopNest.h - Perfect loop nests ---------------------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perfect loop nest that iteration-reordering transformations map
/// between (Figure 3 of the paper): n loops (each `do` or `pardo`, with
/// lower/upper/step expressions that may reference outer index variables),
/// a list of initialization statements that define the *original* index
/// variables as functions of the new ones, and a body of array assignment
/// statements.
///
/// Array reads inside right-hand sides are represented as CallExpr nodes
/// whose callee is an array name registered in the nest; the dependence
/// analyzer and the evaluator both dispatch on that set.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_IR_LOOPNEST_H
#define IRLT_IR_LOOPNEST_H

#include "ir/Expr.h"

#include <set>
#include <string>
#include <vector>

namespace irlt {

/// Whether a loop executes its iterations sequentially (`do`) or in
/// parallel (`pardo`). The paper treats Parallelize as just another
/// iteration-reordering transformation; the flag is the whole effect.
enum class LoopKind { Do, ParDo };

/// One loop statement: `do x = Lower, Upper, Step`.
struct Loop {
  std::string IndexVar;
  ExprRef Lower;
  ExprRef Upper;
  ExprRef Step;
  LoopKind Kind = LoopKind::Do;

  Loop() = default;
  Loop(std::string IndexVar, ExprRef Lower, ExprRef Upper, ExprRef Step,
       LoopKind Kind = LoopKind::Do)
      : IndexVar(std::move(IndexVar)), Lower(std::move(Lower)),
        Upper(std::move(Upper)), Step(std::move(Step)), Kind(Kind) {}
};

/// Reference to an array element: `Array(Subscripts...)`.
struct ArrayRef {
  std::string Array;
  std::vector<ExprRef> Subscripts;

  std::string str() const;
};

/// Body statement `LHS = RHS` where RHS may read arrays via CallExpr
/// nodes whose callee is a registered array name.
struct AssignStmt {
  ArrayRef LHS;
  ExprRef RHS;

  std::string str() const;
};

/// Initialization statement `Var = Value`, emitted at the top of the loop
/// body; recovers an original index variable from the new ones.
struct InitStmt {
  std::string Var;
  ExprRef Value;

  std::string str() const;
};

/// A perfect loop nest plus its body.
class LoopNest {
public:
  /// The loops, outermost first.
  std::vector<Loop> Loops;

  /// Initialization statements (Section 4, Figure 3): emitted before the
  /// body, in this order. Empty for an untransformed nest.
  std::vector<InitStmt> Inits;

  /// The loop body proper. Transformations never change it.
  std::vector<AssignStmt> Body;

  /// Names that denote arrays when they appear in call position in RHS
  /// expressions.
  std::set<std::string> ArrayNames;

  /// The index variables the *body* was written against, in the original
  /// nest order (outermost first). For an untransformed nest this equals
  /// the loop variables; transformations keep it fixed, and the
  /// initialization statements guarantee these variables hold the original
  /// iteration's values whenever the body runs. The evaluator uses this
  /// tuple as the identity of an execution instance (Definition 3.3).
  std::vector<std::string> BodyIndexVars;

  unsigned numLoops() const { return static_cast<unsigned>(Loops.size()); }

  /// \returns the position (0-based, outermost = 0) of the loop binding
  /// \p Var, or -1 if no loop binds it.
  int loopIndexOf(const std::string &Var) const;

  /// True if \p Name is bound by some loop of this nest.
  bool bindsVar(const std::string &Name) const {
    return loopIndexOf(Name) >= 0;
  }

  /// Collects all array references in the body: the write (LHS) refs and
  /// the read refs found in RHS trees.
  void collectWrites(std::vector<ArrayRef> &Out) const;
  void collectReads(std::vector<ArrayRef> &Out) const;

  /// Structural sanity checks for a *source* nest (before transformation):
  /// distinct index variables, bounds of loop k reference only outer index
  /// variables, body mentions only bound index variables or invariants.
  /// \returns an empty string if valid, else a description of the problem.
  std::string validate() const;

  /// Renders the nest in the loop language (parsable by Parser).
  std::string str() const;

  /// Convenience: sets BodyIndexVars to the loop variables (call after
  /// building an original nest by hand).
  void sealAsSource();
};

/// Collects array-read references appearing in \p E (CallExpr nodes whose
/// callee is in \p ArrayNames) into \p Out.
void collectArrayReads(const ExprRef &E, const std::set<std::string> &ArrayNames,
                       std::vector<ArrayRef> &Out);

} // namespace irlt

#endif // IRLT_IR_LOOPNEST_H
