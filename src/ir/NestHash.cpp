//===- ir/NestHash.cpp - Canonical structural nest fingerprints ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "ir/NestHash.h"

#include "ir/LinExpr.h"
#include "support/Casting.h"

#include <algorithm>
#include <map>
#include <vector>

using namespace irlt;

namespace {

using RenameMap = std::map<std::string, std::string>;

std::string canonExpr(const ExprRef &E, const RenameMap &Rename);

/// Canonical rendering of an opaque (non-linear) node. Commutative
/// operators sort their canonicalized operands; everything else keeps
/// structural order.
std::string canonOpaque(const Expr &E, const RenameMap &Rename) {
  switch (E.kind()) {
  case Expr::Kind::IntConst:
    return std::to_string(cast<IntConstExpr>(&E)->value());
  case Expr::Kind::Var: {
    const std::string &Name = cast<VarExpr>(&E)->name();
    auto It = Rename.find(Name);
    return It == Rename.end() ? Name : It->second;
  }
  case Expr::Kind::Mul: {
    // A non-constant product (a constant factor would have been folded
    // into the linear form). Multiplication commutes, so sort.
    const auto *B = cast<BinaryExpr>(&E);
    std::string L = canonExpr(B->lhs(), Rename);
    std::string R = canonExpr(B->rhs(), Rename);
    if (R < L)
      std::swap(L, R);
    return "(* " + L + " " + R + ")";
  }
  case Expr::Kind::Add:
  case Expr::Kind::Sub: {
    // Only reachable inside opaque subtrees (the linearizer opens +/- at
    // the top level); go back through the linear form for normalization.
    const auto *B = cast<BinaryExpr>(&E);
    const char *Op = E.kind() == Expr::Kind::Add ? "(+ " : "(- ";
    return Op + canonExpr(B->lhs(), Rename) + " " +
           canonExpr(B->rhs(), Rename) + ")";
  }
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(&E);
    const char *Op = E.kind() == Expr::Kind::Div ? "(div " : "(mod ";
    return Op + canonExpr(B->lhs(), Rename) + " " +
           canonExpr(B->rhs(), Rename) + ")";
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    const auto *M = cast<MinMaxExpr>(&E);
    std::vector<std::string> Ops;
    Ops.reserve(M->operands().size());
    for (const ExprRef &O : M->operands())
      Ops.push_back(canonExpr(O, Rename));
    // min/max are commutative and associative; sorted operands make
    // min(n, m) and min(m, n) agree.
    std::sort(Ops.begin(), Ops.end());
    std::string Out = M->isMin() ? "(min" : "(max";
    for (const std::string &O : Ops)
      Out += " " + O;
    return Out + ")";
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(&E);
    std::string Out = "(call " + C->callee();
    for (const ExprRef &A : C->args()) {
      Out += ' ';
      Out += canonExpr(A, Rename);
    }
    return Out + ")";
  }
  }
  return "?";
}

/// Canonicalizes \p E through the linear form: constant first, then the
/// linear terms sorted by their canonical atom rendering. This merges
/// like terms, folds constants, and erases source-order differences
/// (`i + 1` vs `1 + i`, `2*i` vs `i + i`).
std::string canonExpr(const ExprRef &E, const RenameMap &Rename) {
  LinExpr L = LinExpr::fromExpr(E);
  std::vector<std::pair<std::string, int64_t>> Terms;
  Terms.reserve(L.terms().size());
  for (const auto &[Key, T] : L.terms()) {
    (void)Key; // keyed by the *un-renamed* rendering; re-key canonically
    if (T.Coef == 0)
      continue;
    Terms.emplace_back(canonOpaque(*T.Atom, Rename), T.Coef);
  }
  std::sort(Terms.begin(), Terms.end());
  std::string Out = "lin(" + std::to_string(L.constant());
  int64_t PendingCoef = 0;
  std::string PendingAtom;
  bool HavePending = false;
  auto flush = [&] {
    if (!HavePending || PendingCoef == 0)
      return;
    Out += ' ';
    Out += std::to_string(PendingCoef);
    Out += '*';
    Out += PendingAtom;
  };
  for (const auto &[Atom, Coef] : Terms) {
    if (HavePending && Atom == PendingAtom) {
      // Two source atoms that canonicalize identically (e.g. a*b and
      // b*a appearing as separate terms) merge here.
      PendingCoef += Coef;
      continue;
    }
    flush();
    PendingAtom = Atom;
    PendingCoef = Coef;
    HavePending = true;
  }
  flush();
  return Out + ")";
}

} // namespace

std::string irlt::canonicalExprKey(const ExprRef &E, const RenameMap &Rename) {
  return canonExpr(E, Rename);
}

std::string irlt::canonicalNestKey(const LoopNest &Nest) {
  // Positional renaming: loop index variables become @0, @1, ...
  // (outermost first); body index variables not bound by any loop (the
  // original variables of a transformed nest, recovered by Inits) become
  // $0, $1, ... Free parameters keep their names.
  RenameMap Rename;
  for (unsigned K = 0; K < Nest.numLoops(); ++K)
    Rename[Nest.Loops[K].IndexVar] = '@' + std::to_string(K);
  for (size_t K = 0; K < Nest.BodyIndexVars.size(); ++K) {
    const std::string &V = Nest.BodyIndexVars[K];
    if (!Rename.count(V))
      Rename[V] = '$' + std::to_string(K);
  }

  std::string Out = "nest/v1;";
  Out += "loops=" + std::to_string(Nest.numLoops()) + ";";
  for (unsigned K = 0; K < Nest.numLoops(); ++K) {
    const Loop &L = Nest.Loops[K];
    Out += L.Kind == LoopKind::ParDo ? "pardo " : "do ";
    Out += '@';
    Out += std::to_string(K);
    Out += " lb=" + canonExpr(L.Lower, Rename);
    Out += " ub=" + canonExpr(L.Upper, Rename);
    Out += " st=" + canonExpr(L.Step, Rename);
    Out += ";";
  }
  // The body-index-variable tuple identifies execution instances; record
  // which loop position (or $-slot) each element maps to.
  Out += "bodyvars=";
  for (size_t K = 0; K < Nest.BodyIndexVars.size(); ++K) {
    auto It = Rename.find(Nest.BodyIndexVars[K]);
    Out += (K ? "," : "") +
           (It == Rename.end() ? Nest.BodyIndexVars[K] : It->second);
  }
  Out += ";";
  for (const InitStmt &I : Nest.Inits) {
    auto It = Rename.find(I.Var);
    Out += "init " + (It == Rename.end() ? I.Var : It->second) + "=" +
           canonExpr(I.Value, Rename) + ";";
  }
  for (const AssignStmt &S : Nest.Body) {
    Out += S.LHS.Array + "(";
    for (size_t K = 0; K < S.LHS.Subscripts.size(); ++K) {
      if (K)
        Out += ',';
      Out += canonExpr(S.LHS.Subscripts[K], Rename);
    }
    Out += ")=" + canonExpr(S.RHS, Rename) + ";";
  }
  // Array-name registry: membership decides what counts as an array read.
  Out += "arrays=";
  bool FirstArr = true;
  for (const std::string &A : Nest.ArrayNames) {
    Out += (FirstArr ? "" : ",") + A;
    FirstArr = false;
  }
  return Out;
}

uint64_t irlt::structuralNestHash(const LoopNest &Nest) {
  std::string Key = canonicalNestKey(Nest);
  uint64_t H = 1469598103934665603ULL; // FNV offset basis
  for (char C : Key) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL; // FNV prime
  }
  return H;
}
