//===- ir/NestHash.h - Canonical structural nest fingerprints ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A canonical structural fingerprint for loop nests, used as the
/// memoization key of the api::Pipeline caches (dependence analysis and
/// legality verdicts) and the batch engine built on them.
///
/// Two nests get the same fingerprint when they are structurally
/// equivalent up to
///
///  - *alpha-renaming of index variables*: loop index variables (and the
///    body index variables they shadow) are renamed to positional names,
///    so `do i = 1, n` and `do x = 1, n` agree; free symbolic parameters
///    (n, m, b) keep their names - binding them differently is a
///    semantic difference;
///  - *reordered-but-equivalent bound terms*: every bound, step,
///    subscript, and right-hand-side expression is canonicalized through
///    the LinExpr linear form (like terms merged, constants folded,
///    terms sorted), and commutative opaque operators (min, max, and
///    non-constant products) sort their operands - so `i + 1` and
///    `1 + i`, or `min(n, m)` and `min(m, n)`, agree.
///
/// The fingerprint is *conservative*: everything the dependence analyzer
/// or the legality test can observe (loop kinds, steps, array names,
/// statement order, init statements) is part of the key, so a fingerprint
/// collision between semantically different nests cannot happen short of
/// a 64-bit hash collision - and cache consumers that key on the full
/// fingerprint string (as api::Pipeline does) are immune even to that.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_IR_NESTHASH_H
#define IRLT_IR_NESTHASH_H

#include "ir/LoopNest.h"

#include <cstdint>
#include <string>

namespace irlt {

/// The canonical fingerprint string of \p Nest. Deterministic across
/// runs and platforms; equal for alpha-renamed / bound-term-reordered
/// variants of the same nest, distinct for structurally different nests.
std::string canonicalNestKey(const LoopNest &Nest);

/// FNV-1a (64-bit) of canonicalNestKey(). A compact digest for metrics
/// and logs; cache keys should prefer the full string.
uint64_t structuralNestHash(const LoopNest &Nest);

/// Canonicalizes one expression under an index-variable renaming; exposed
/// for unit tests. \p Rename maps variable names to their positional
/// replacements; unmapped names are kept verbatim.
std::string canonicalExprKey(const ExprRef &E,
                             const std::map<std::string, std::string> &Rename);

} // namespace irlt

#endif // IRLT_IR_NESTHASH_H
