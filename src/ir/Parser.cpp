//===- ir/Parser.cpp - Parser for the loop language -------------------------//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "support/Printing.h"

#include <cassert>

using namespace irlt;

namespace {

class ParserImpl {
public:
  explicit ParserImpl(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  ErrorOr<LoopNest> parseNest() {
    LoopNest Nest;
    skipNewlines();
    if (peek().Kind == TokKind::KwArrays) {
      if (std::string E = parseArraysHeader(Nest); !E.empty())
        return Failure(E);
    }
    skipNewlines();
    if (std::string E = parseLoop(Nest); !E.empty())
      return Failure(E);
    skipNewlines();
    if (peek().Kind != TokKind::Eof)
      return Failure(errHere("expected end of input after outermost enddo"));
    if (std::string E = Nest.validate(); !E.empty())
      return Failure("invalid loop nest: " + E);
    Nest.sealAsSource();
    return Nest;
  }

  ErrorOr<ExprRef> parseSingleExpr() {
    std::string Err;
    ExprRef E = parseExpression(Err);
    if (!E)
      return Failure(Err);
    skipNewlines();
    if (peek().Kind != TokKind::Eof)
      return Failure(errHere("trailing tokens after expression"));
    return E;
  }

private:
  std::vector<Token> Toks;
  size_t Pos = 0;

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    if (I >= Toks.size())
      I = Toks.size() - 1; // Eof sentinel.
    return Toks[I];
  }

  const Token &advance() {
    const Token &T = Toks[Pos];
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  bool accept(TokKind K) {
    if (peek().Kind != K)
      return false;
    advance();
    return true;
  }

  std::string errHere(const std::string &Msg) const {
    const Token &T = peek();
    return formatStr("line %u, col %u: %s (found %s '%s')", T.Line, T.Col,
                     Msg.c_str(), tokKindName(T.Kind), T.Text.c_str());
  }

  std::string expect(TokKind K) {
    if (accept(K))
      return std::string();
    return errHere(std::string("expected ") + tokKindName(K));
  }

  void skipNewlines() {
    while (peek().Kind == TokKind::Newline)
      advance();
  }

  std::string parseArraysHeader(LoopNest &Nest) {
    advance(); // 'arrays'
    do {
      if (peek().Kind != TokKind::Ident)
        return errHere("expected array name");
      Nest.ArrayNames.insert(advance().Text);
    } while (accept(TokKind::Comma));
    return expect(TokKind::Newline);
  }

  /// Parses one loop (header, body, enddo) and appends to \p Nest.
  std::string parseLoop(LoopNest &Nest) {
    LoopKind Kind;
    if (accept(TokKind::KwDo))
      Kind = LoopKind::Do;
    else if (accept(TokKind::KwParDo))
      Kind = LoopKind::ParDo;
    else
      return errHere("expected 'do' or 'pardo'");

    if (peek().Kind != TokKind::Ident)
      return errHere("expected loop index variable");
    std::string Var = advance().Text;
    if (std::string E = expect(TokKind::Assign); !E.empty())
      return E;

    std::string Err;
    ExprRef Lower = parseExpression(Err);
    if (!Lower)
      return Err;
    if (std::string E = expect(TokKind::Comma); !E.empty())
      return E;
    ExprRef Upper = parseExpression(Err);
    if (!Upper)
      return Err;
    ExprRef Step = Expr::intConst(1);
    if (accept(TokKind::Comma)) {
      Step = parseExpression(Err);
      if (!Step)
        return Err;
    }
    if (std::string E = expect(TokKind::Newline); !E.empty())
      return E;
    Nest.Loops.emplace_back(Var, Lower, Upper, Step, Kind);

    skipNewlines();
    if (peek().Kind == TokKind::KwDo || peek().Kind == TokKind::KwParDo) {
      // Perfect nesting: exactly one inner loop, then this loop's enddo.
      if (std::string E = parseLoop(Nest); !E.empty())
        return E;
    } else {
      // Innermost level: one or more assignment statements.
      while (peek().Kind == TokKind::Ident) {
        if (std::string E = parseStmt(Nest); !E.empty())
          return E;
        skipNewlines();
      }
      if (Nest.Body.empty())
        return errHere("loop body has no statements");
    }
    skipNewlines();
    if (std::string E = expect(TokKind::KwEndDo); !E.empty())
      return E;
    if (peek().Kind == TokKind::Newline)
      advance();
    return std::string();
  }

  std::string parseStmt(LoopNest &Nest) {
    assert(peek().Kind == TokKind::Ident);
    std::string Array = advance().Text;
    if (std::string E = expect(TokKind::LParen); !E.empty())
      return E;
    std::vector<ExprRef> Subs;
    std::string Err;
    do {
      ExprRef S = parseExpression(Err);
      if (!S)
        return Err;
      Subs.push_back(std::move(S));
    } while (accept(TokKind::Comma));
    if (std::string E = expect(TokKind::RParen); !E.empty())
      return E;

    bool IsPlusAssign = false;
    if (accept(TokKind::PlusAssign))
      IsPlusAssign = true;
    else if (std::string E = expect(TokKind::Assign); !E.empty())
      return E;

    ExprRef RHS = parseExpression(Err);
    if (!RHS)
      return Err;
    if (std::string E = expect(TokKind::Newline); !E.empty())
      return E;

    Nest.ArrayNames.insert(Array);
    if (IsPlusAssign) // a(...) += e  desugars to  a(...) = a(...) + e
      RHS = Expr::add(Expr::call(Array, Subs), std::move(RHS));
    Nest.Body.push_back(AssignStmt{irlt::ArrayRef{Array, Subs}, std::move(RHS)});
    return std::string();
  }

  //===--- Expressions ----------------------------------------------------===

  ExprRef parseExpression(std::string &Err) { return parseAdditive(Err); }

  ExprRef parseAdditive(std::string &Err) {
    ExprRef L = parseMultiplicative(Err);
    if (!L)
      return nullptr;
    while (true) {
      if (accept(TokKind::Plus)) {
        ExprRef R = parseMultiplicative(Err);
        if (!R)
          return nullptr;
        L = Expr::add(std::move(L), std::move(R));
      } else if (accept(TokKind::Minus)) {
        ExprRef R = parseMultiplicative(Err);
        if (!R)
          return nullptr;
        L = Expr::sub(std::move(L), std::move(R));
      } else {
        return L;
      }
    }
  }

  ExprRef parseMultiplicative(std::string &Err) {
    ExprRef L = parseUnary(Err);
    if (!L)
      return nullptr;
    while (true) {
      if (accept(TokKind::Star)) {
        ExprRef R = parseUnary(Err);
        if (!R)
          return nullptr;
        L = Expr::mul(std::move(L), std::move(R));
      } else if (accept(TokKind::Slash)) {
        ExprRef R = parseUnary(Err);
        if (!R)
          return nullptr;
        L = Expr::floorDivE(std::move(L), std::move(R));
      } else {
        return L;
      }
    }
  }

  ExprRef parseUnary(std::string &Err) {
    if (accept(TokKind::Minus)) {
      ExprRef E = parseUnary(Err);
      if (!E)
        return nullptr;
      // Fold negated literals so "-1" is an IntConst (steps rely on it).
      if (std::optional<int64_t> C = E->constValue())
        return Expr::intConst(-*C);
      return Expr::neg(std::move(E));
    }
    return parseAtom(Err);
  }

  ExprRef parseAtom(std::string &Err) {
    const Token &T = peek();
    switch (T.Kind) {
    case TokKind::Int:
      advance();
      return Expr::intConst(T.IntValue);
    case TokKind::LParen: {
      advance();
      ExprRef E = parseExpression(Err);
      if (!E)
        return nullptr;
      if (std::string E2 = expect(TokKind::RParen); !E2.empty()) {
        Err = E2;
        return nullptr;
      }
      return E;
    }
    case TokKind::Ident: {
      std::string Name = advance().Text;
      if (!accept(TokKind::LParen))
        return Expr::var(Name);
      std::vector<ExprRef> Args;
      do {
        ExprRef A = parseExpression(Err);
        if (!A)
          return nullptr;
        Args.push_back(std::move(A));
      } while (accept(TokKind::Comma));
      if (std::string E2 = expect(TokKind::RParen); !E2.empty()) {
        Err = E2;
        return nullptr;
      }
      // Builtins parse to dedicated nodes; everything else is opaque.
      if (Name == "min")
        return Expr::minE(std::move(Args));
      if (Name == "max")
        return Expr::maxE(std::move(Args));
      if (Name == "mod") {
        if (Args.size() != 2) {
          Err = errHere("mod() takes exactly two arguments");
          return nullptr;
        }
        return Expr::modE(Args[0], Args[1]);
      }
      return Expr::call(Name, std::move(Args));
    }
    default:
      Err = errHere("expected expression");
      return nullptr;
    }
  }
};

} // namespace

ErrorOr<LoopNest> irlt::parseLoopNest(const std::string &Source) {
  Lexer Lex(Source);
  std::vector<Token> Toks;
  if (std::string E = Lex.tokenize(Toks); !E.empty())
    return Failure(E);
  ParserImpl P(std::move(Toks));
  return P.parseNest();
}

ErrorOr<ExprRef> irlt::parseExpr(const std::string &Source) {
  Lexer Lex(Source);
  std::vector<Token> Toks;
  if (std::string E = Lex.tokenize(Toks); !E.empty())
    return Failure(E);
  ParserImpl P(std::move(Toks));
  return P.parseSingleExpr();
}
