//===- ir/Parser.h - Parser for the loop language ---------------------------//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser building LoopNest values from loop-language
/// source. Grammar (newline-terminated statements):
///
/// \code
///   program := ['arrays' ident (',' ident)* NL] loop
///   loop    := ('do'|'pardo') ident '=' expr ',' expr [',' expr] NL
///              (loop | stmt+) 'enddo' NL
///   stmt    := ident '(' expr (',' expr)* ')' ('='|'+=') expr NL
///   expr    := additive with unary minus, '*', '/' (flooring),
///              calls  min(...) max(...) mod(a,b)  and opaque calls
/// \endcode
///
/// Any identifier used as an assignment target is registered as an array
/// name; the optional `arrays` header registers read-only arrays (so that
/// `b(j)` parses as an array read rather than an opaque call).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_IR_PARSER_H
#define IRLT_IR_PARSER_H

#include "ir/Lexer.h"
#include "ir/LoopNest.h"
#include "support/ErrorOr.h"

#include <string>

namespace irlt {

/// Parses a whole loop nest. On success the nest is validated and sealed
/// (BodyIndexVars = loop variables).
ErrorOr<LoopNest> parseLoopNest(const std::string &Source);

/// Parses a single expression (for tests and tools).
ErrorOr<ExprRef> parseExpr(const std::string &Source);

} // namespace irlt

#endif // IRLT_IR_PARSER_H
