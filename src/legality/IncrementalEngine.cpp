//===- legality/IncrementalEngine.cpp - Prefix-memoized legality ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "legality/IncrementalEngine.h"

#include "ir/NestHash.h"
#include "support/MathUtils.h"

#include <utility>

using namespace irlt;
using namespace irlt::legality;

//===----------------------------------------------------------------------===//
// The legacy whole-sequence walks, verbatim. These are the ground truth
// the incremental paths below must match byte for byte - same operation
// order, same Diag strings, same stage attribution - and the uncached
// "legacy" series in the benchmarks. Do not restructure them without
// restructuring extendFull()/extendFast() identically.
//===----------------------------------------------------------------------===//

static LegalityResult referenceFull(const TransformSequence &T,
                                    const LoopNest &Nest, const DepSet &D) {
  LegalityResult R;
  using RK = LegalityResult::RejectKind;

  // Part (b): loop-bounds preconditions, stage by stage. Each stage's
  // preconditions are evaluated against the nest produced by the previous
  // stages, so the bounds pipeline runs alongside; the dependence set is
  // threaded along for the anchor-dependence side condition (see
  // checkAnchorDependence). Coefficient overflow at any stage degrades to
  // a clean Overflow rejection rather than UB.
  LoopNest Cur = Nest;
  DepSet CurDeps = D;
  unsigned Stage = 0;
  for (const TemplateRef &Step : T.steps()) {
    ++Stage;
    OverflowGuard Guard;
    auto overflowed = [&]() {
      if (!Guard.triggered())
        return false;
      R.reject(RK::Overflow,
               Diag::error("coefficient arithmetic overflows the int64 "
                           "range (bounds overflow)")
                   .atStage(Stage)
                   .inTemplate(Step->name()));
      return true;
    };
    std::string E = Step->checkPreconditions(Cur);
    if (overflowed())
      return R;
    if (!E.empty()) {
      R.reject(RK::BoundsPrecondition,
               Diag::error("bounds precondition violated: " + E)
                   .atStage(Stage)
                   .inTemplate(Step->name()));
      return R;
    }
    E = checkAnchorDependence(*Step, NestTypeState::fromNest(Cur), CurDeps);
    if (overflowed())
      return R;
    if (!E.empty()) {
      R.reject(RK::DependencePrecondition,
               Diag::error("dependence precondition violated: " + E)
                   .atStage(Stage)
                   .inTemplate(Step->name()));
      return R;
    }
    ErrorOr<LoopNest> Next = Step->apply(Cur);
    if (overflowed())
      return R;
    if (!Next) {
      R.reject(RK::ApplyFailure, Diag::error(Next.message())
                                     .atStage(Stage)
                                     .inTemplate(Step->str()));
      return R;
    }
    Cur = Next.take();
    CurDeps = Step->mapDependences(CurDeps);
    if (overflowed())
      return R;
  }

  // Part (a): the dependence test on the *final* mapped set only -
  // intermediate sets may be lexicographically negative (Section 3.2).
  R.FinalDeps = std::move(CurDeps);
  for (const DepVector &V : R.FinalDeps.vectors()) {
    if (V.canBeLexNegative()) {
      R.reject(RK::LexNegative,
               Diag::error("transformed dependence vector " + V.str() +
                           " admits a lexicographically negative tuple"));
      return R;
    }
  }
  R.Legal = true;
  return R;
}

static LegalityResult referenceFast(const TransformSequence &T,
                                    const LoopNest &Nest, const DepSet &D) {
  LegalityResult R;
  using RK = LegalityResult::RejectKind;
  NestTypeState State = NestTypeState::fromNest(Nest);

  // Lazy fallback materialization for extension templates: Applied tracks
  // the concrete nest up to (but excluding) step NextToApply.
  LoopNest Applied = Nest;
  size_t AppliedThrough = 0;

  DepSet CurDeps = D;
  unsigned Stage = 0;
  for (const TemplateRef &Step : T.steps()) {
    ++Stage;
    OverflowGuard Guard;
    auto overflowed = [&]() {
      if (!Guard.triggered())
        return false;
      R.reject(RK::Overflow,
               Diag::error("coefficient arithmetic overflows the int64 "
                           "range (bounds overflow)")
                   .atStage(Stage)
                   .inTemplate(Step->name()));
      return true;
    };
    std::string E = checkAnchorDependence(*Step, State, CurDeps);
    if (overflowed())
      return R;
    if (!E.empty()) {
      R.reject(RK::DependencePrecondition,
               Diag::error("dependence precondition violated: " + E)
                   .atStage(Stage)
                   .inTemplate(Step->name()));
      return R;
    }
    std::optional<ErrorOr<NestTypeState>> Next = mapTypes(*Step, State);
    if (overflowed())
      return R;
    if (Next) {
      if (!*Next) {
        R.reject(RK::BoundsPrecondition,
                 Diag::error("bounds precondition violated: " +
                             Next->message())
                     .atStage(Stage)
                     .inTemplate(Step->name()));
        return R;
      }
      State = Next->take();
      CurDeps = Step->mapDependences(CurDeps);
      if (overflowed())
        return R;
      continue;
    }
    // No type rule: materialize the concrete nest up to this stage and
    // apply the step for real.
    for (size_t I = AppliedThrough; I + 1 < Stage; ++I) {
      ErrorOr<LoopNest> NextNest = T.steps()[I]->apply(Applied);
      if (overflowed())
        return R;
      if (!NextNest) {
        R.reject(RK::ApplyFailure,
                 Diag::error(NextNest.message())
                     .atStage(static_cast<unsigned>(I + 1))
                     .inTemplate(T.steps()[I]->str()));
        return R;
      }
      Applied = NextNest.take();
    }
    ErrorOr<LoopNest> NextNest = Step->apply(Applied);
    if (overflowed())
      return R;
    if (!NextNest) {
      R.reject(RK::ApplyFailure, Diag::error(NextNest.message())
                                     .atStage(Stage)
                                     .inTemplate(Step->str()));
      return R;
    }
    Applied = NextNest.take();
    AppliedThrough = Stage;
    State = NestTypeState::fromNest(Applied);
    CurDeps = Step->mapDependences(CurDeps);
    if (overflowed())
      return R;
  }

  // The uniform dependence test on the final mapped set.
  R.FinalDeps = std::move(CurDeps);
  for (const DepVector &V : R.FinalDeps.vectors()) {
    if (V.canBeLexNegative()) {
      R.reject(RK::LexNegative,
               Diag::error("transformed dependence vector " + V.str() +
                           " admits a lexicographically negative tuple"));
      return R;
    }
  }
  R.Legal = true;
  return R;
}

LegalityResult IncrementalEngine::reference(const TransformSequence &T,
                                            const LoopNest &Nest,
                                            const DepSet &D, Mode M) {
  return M == Mode::Full ? referenceFull(T, Nest, D)
                         : referenceFast(T, Nest, D);
}

//===----------------------------------------------------------------------===//
// One-stage extension: the per-stage bodies of the walks above, lifted to
// operate on a PrefixState. A successful stage is saturation-free by
// construction (the guard check after every operation rejects first), so
// only Overflow verdicts carry Saturated.
//===----------------------------------------------------------------------===//

namespace {

struct ExtendComputed {
  /// Set when the prefix survives the stage.
  std::optional<PrefixState> NewState;
  /// The stage rejection otherwise.
  LegalityResult Fail;
  /// The OverflowGuard tripped during this stage: do not cache.
  bool Saturated = false;
};

ExtendComputed extendFull(const PrefixState &P, const TemplateRef &Step,
                          unsigned Stage) {
  ExtendComputed C;
  LegalityResult &R = C.Fail;
  using RK = LegalityResult::RejectKind;
  OverflowGuard Guard;
  auto overflowed = [&]() {
    if (!Guard.triggered())
      return false;
    C.Saturated = true;
    R.reject(RK::Overflow,
             Diag::error("coefficient arithmetic overflows the int64 "
                         "range (bounds overflow)")
                 .atStage(Stage)
                 .inTemplate(Step->name()));
    return true;
  };
  std::string E = Step->checkPreconditions(P.Nest);
  if (overflowed())
    return C;
  if (!E.empty()) {
    R.reject(RK::BoundsPrecondition,
             Diag::error("bounds precondition violated: " + E)
                 .atStage(Stage)
                 .inTemplate(Step->name()));
    return C;
  }
  E = checkAnchorDependence(*Step, NestTypeState::fromNest(P.Nest), P.Deps);
  if (overflowed())
    return C;
  if (!E.empty()) {
    R.reject(RK::DependencePrecondition,
             Diag::error("dependence precondition violated: " + E)
                 .atStage(Stage)
                 .inTemplate(Step->name()));
    return C;
  }
  ErrorOr<LoopNest> Next = Step->apply(P.Nest);
  if (overflowed())
    return C;
  if (!Next) {
    R.reject(RK::ApplyFailure, Diag::error(Next.message())
                                   .atStage(Stage)
                                   .inTemplate(Step->str()));
    return C;
  }
  PrefixState NS;
  NS.Len = Stage;
  NS.Nest = Next.take();
  NS.Deps = Step->mapDependences(P.Deps);
  if (overflowed())
    return C;
  C.NewState = std::move(NS);
  return C;
}

ExtendComputed extendFast(const PrefixState &P,
                          const std::vector<TemplateRef> &Steps,
                          const TemplateRef &Step, unsigned Stage) {
  ExtendComputed C;
  LegalityResult &R = C.Fail;
  using RK = LegalityResult::RejectKind;
  OverflowGuard Guard;
  auto overflowed = [&]() {
    if (!Guard.triggered())
      return false;
    C.Saturated = true;
    R.reject(RK::Overflow,
             Diag::error("coefficient arithmetic overflows the int64 "
                         "range (bounds overflow)")
                 .atStage(Stage)
                 .inTemplate(Step->name()));
    return true;
  };
  std::string E = checkAnchorDependence(*Step, P.Types, P.Deps);
  if (overflowed())
    return C;
  if (!E.empty()) {
    R.reject(RK::DependencePrecondition,
             Diag::error("dependence precondition violated: " + E)
                 .atStage(Stage)
                 .inTemplate(Step->name()));
    return C;
  }
  std::optional<ErrorOr<NestTypeState>> Next = mapTypes(*Step, P.Types);
  if (overflowed())
    return C;
  if (Next) {
    if (!*Next) {
      R.reject(RK::BoundsPrecondition,
               Diag::error("bounds precondition violated: " + Next->message())
                   .atStage(Stage)
                   .inTemplate(Step->name()));
      return C;
    }
    PrefixState NS;
    NS.Len = Stage;
    NS.Nest = P.Nest;
    NS.AppliedThrough = P.AppliedThrough;
    NS.Types = Next->take();
    NS.Deps = Step->mapDependences(P.Deps);
    if (overflowed())
      return C;
    C.NewState = std::move(NS);
    return C;
  }
  // No type rule: materialize the concrete nest up to this stage (the
  // builder carries the as-written prefix stages) and apply for real.
  LoopNest Applied = P.Nest;
  for (size_t I = P.AppliedThrough; I + 1 < Stage; ++I) {
    ErrorOr<LoopNest> NextNest = Steps[I]->apply(Applied);
    if (overflowed())
      return C;
    if (!NextNest) {
      R.reject(RK::ApplyFailure,
               Diag::error(NextNest.message())
                   .atStage(static_cast<unsigned>(I + 1))
                   .inTemplate(Steps[I]->str()));
      return C;
    }
    Applied = NextNest.take();
  }
  ErrorOr<LoopNest> NextNest = Step->apply(Applied);
  if (overflowed())
    return C;
  if (!NextNest) {
    R.reject(RK::ApplyFailure, Diag::error(NextNest.message())
                                   .atStage(Stage)
                                   .inTemplate(Step->str()));
    return C;
  }
  PrefixState NS;
  NS.Len = Stage;
  NS.Nest = NextNest.take();
  NS.AppliedThrough = Stage;
  NS.Types = NestTypeState::fromNest(NS.Nest);
  NS.Deps = Step->mapDependences(P.Deps);
  if (overflowed())
    return C;
  C.NewState = std::move(NS);
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// SequenceBuilder
//===----------------------------------------------------------------------===//

SequenceBuilder SequenceBuilder::failed(LegalityResult Verdict) {
  SequenceBuilder B;
  B.Failed = true;
  B.FailR = std::move(Verdict);
  return B;
}

const DepSet &SequenceBuilder::deps() const {
  static const DepSet Empty;
  return Cur ? Cur->Deps : Empty;
}

unsigned SequenceBuilder::outputLoops() const {
  if (!Cur)
    return 0;
  if (M == Mode::Fast && Cur->AppliedThrough < Cur->Len)
    return Cur->Types.numLoops();
  return Cur->Nest.numLoops();
}

bool SequenceBuilder::extend(const TemplateRef &Step) {
  if (Failed)
    return false;
  Steps.push_back(Step);
  unsigned Stage = Cur->Len + 1;

  std::string NewKey;
  if (Cacheable) {
    // Key extension mirrors the Pipeline's rule: built under a guard so a
    // rendering that saturates (it should not, but templates are
    // extensible) makes the rest of this builder uncacheable.
    OverflowGuard Guard;
    NewKey = Key + '\x02' + Step->str();
    if (Guard.triggered()) {
      Cacheable = false;
      NewKey.clear();
    }
  }

  const bool UseCache = Cacheable && E && E->Opts.EnableCache;
  if (UseCache) {
    if (std::shared_ptr<const IncrementalEngine::Entry> Hit =
            E->lookup(NewKey)) {
      E->Hits.fetch_add(1, std::memory_order_relaxed);
      if (Hit->State) {
        Cur = Hit->State;
        Key = std::move(NewKey);
        return true;
      }
      Failed = true;
      FailR = *Hit->Fail;
      return false;
    }
    E->Misses.fetch_add(1, std::memory_order_relaxed);
  }

  ExtendComputed C = M == Mode::Full ? extendFull(*Cur, Step, Stage)
                                     : extendFast(*Cur, Steps, Step, Stage);
  if (C.Saturated && E)
    E->Uncacheable.fetch_add(1, std::memory_order_relaxed);

  if (C.NewState) {
    auto NS = std::make_shared<const PrefixState>(std::move(*C.NewState));
    if (UseCache && !C.Saturated) {
      IncrementalEngine::Entry En;
      En.State = NS;
      std::shared_ptr<const IncrementalEngine::Entry> Stored =
          E->insert(NewKey, std::move(En));
      NS = Stored->State; // insert-race: first entry wins
    }
    Cur = std::move(NS);
    Key = std::move(NewKey);
    return true;
  }

  Failed = true;
  FailR = std::move(C.Fail);
  if (UseCache && !C.Saturated) {
    IncrementalEngine::Entry En;
    En.Fail = std::make_shared<const LegalityResult>(FailR);
    E->insert(NewKey, std::move(En));
  }
  return false;
}

LegalityResult SequenceBuilder::finish() const {
  if (Failed)
    return FailR;
  LegalityResult R;
  R.FinalDeps = Cur->Deps;
  for (const DepVector &V : R.FinalDeps.vectors()) {
    if (V.canBeLexNegative()) {
      R.reject(LegalityResult::RejectKind::LexNegative,
               Diag::error("transformed dependence vector " + V.str() +
                           " admits a lexicographically negative tuple"));
      return R;
    }
  }
  R.Legal = true;
  return R;
}

//===----------------------------------------------------------------------===//
// IncrementalEngine
//===----------------------------------------------------------------------===//

IncrementalEngine::IncrementalEngine(Options O)
    : Opts(O), Map(O.CacheCapacity) {}

std::shared_ptr<const IncrementalEngine::Entry>
IncrementalEngine::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.lookup(Key);
}

std::shared_ptr<const IncrementalEngine::Entry>
IncrementalEngine::insert(const std::string &Key, Entry E) {
  auto Val = std::make_shared<const Entry>(std::move(E));
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.insert(Key, std::move(Val));
}

SequenceBuilder IncrementalEngine::open(const LoopNest &Nest, const DepSet &D,
                                        Mode M) {
  SequenceBuilder B;
  B.E = this;
  B.M = M;
  auto Root = std::make_shared<PrefixState>();
  Root->Nest = Nest;
  Root->Deps = D;
  if (M == Mode::Fast)
    Root->Types = NestTypeState::fromNest(Nest);
  B.Cur = std::move(Root);
  // Root key: nest fingerprint + rendered dependence set + mode. A
  // saturated fingerprint could collide with a different root's, so such
  // a root is simply not cacheable (the api::Pipeline rule).
  OverflowGuard Guard;
  B.Key = canonicalNestKey(Nest);
  B.Key += '\x01';
  B.Key += D.str();
  B.Key += '\x01';
  B.Key += M == Mode::Fast ? 'F' : 'L';
  B.Cacheable = !Guard.triggered();
  if (!B.Cacheable) {
    Uncacheable.fetch_add(1, std::memory_order_relaxed);
    B.Key.clear();
  }
  return B;
}

LegalityResult IncrementalEngine::check(const TransformSequence &T,
                                        const LoopNest &Nest, const DepSet &D,
                                        Mode M) {
  SequenceBuilder B = open(Nest, D, M);
  for (const TemplateRef &Step : T.steps())
    if (!B.extend(Step))
      return B.failure();
  return B.finish();
}

IncrementalEngine::Stats IncrementalEngine::stats() const {
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Uncacheable = Uncacheable.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(Mu);
  S.Inserts = Map.inserts();
  S.Evictions = Map.evictions();
  S.Entries = Map.size();
  return S;
}

void IncrementalEngine::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Map.clear();
}

IncrementalEngine &IncrementalEngine::global() {
  static IncrementalEngine *G = new IncrementalEngine();
  return *G;
}

//===----------------------------------------------------------------------===//
// The whole-sequence entry points, now thin shims over the engine. The
// declarations stay in transform/Sequence.h and transform/TypeState.h;
// every caller - search leaves, witness certify/check, the analyzer's
// goldens, the fuzz oracles, the Pipeline caches - funnels through the
// one engine and shares its prefix cache.
//===----------------------------------------------------------------------===//

LegalityResult irlt::isLegal(const TransformSequence &T, const LoopNest &Nest,
                             const DepSet &D) {
  return IncrementalEngine::global().check(T, Nest, D, Mode::Full);
}

LegalityResult irlt::isLegalFast(const TransformSequence &T,
                                 const LoopNest &Nest, const DepSet &D) {
  return IncrementalEngine::global().check(T, Nest, D, Mode::Fast);
}
