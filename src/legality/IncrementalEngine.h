//===- legality/IncrementalEngine.h - Prefix-memoized legality -----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental legality engine (docs/LEGALITY.md). The uniform test
/// of Section 3.2 walks a sequence stage by stage, and every per-stage
/// quantity - the concrete nest (full mode), the Section 4.3 type state
/// (fast mode), and the mapped dependence set - depends only on the root
/// (nest, dependence set) and the stages consumed so far. This engine
/// memoizes exactly that: a bounded, concurrency-safe cache of surviving
/// prefix states plus stage-rejection verdicts, keyed per prefix, so
/// extending a sequence by one stage pays only that stage's mapping cost
/// instead of re-walking the whole chain. The whole-sequence entry
/// points isLegal() / isLegalFast() are thin shims over check() below;
/// their verdicts - RejectKind, Diag provenance, rendered Reason, final
/// mapped set - are byte-identical to the legacy walks, which are kept
/// verbatim as reference() and pinned against check() by the
/// IncrementalEquivalence property suite.
///
/// Cache key discipline (the soundness core):
///
///  - The root key is canonicalNestKey(Nest) + the rendered dependence
///    set + the mode. The dependence set is part of the key because the
///    same nest shape is routinely checked against synthetic sets (the
///    fuzzer, the benchmarks); fingerprinting the nest alone would merge
///    them.
///  - Prefixes are keyed on the stages *as written* (each stage's
///    str()), never on the reduced() form: legality is not
///    reduction-invariant (Figure 1's skew+interchange is rejected
///    staged but legal merged), so reduced() remains the search
///    frontier's dedup key and nothing more. Spellings that render to
///    the same stages still share entries.
///  - Saturation is uncacheable, mirroring the api::Pipeline fingerprint
///    rule: a root whose fingerprint saturated the OverflowGuard could
///    collide with a different root's, and a stage whose arithmetic
///    saturated produced a RejectKind::Overflow verdict through
///    saturating arithmetic - neither is ever inserted. Surviving states
///    are saturation-free by construction (the legacy walk rejects a
///    stage the moment its guard trips, so only guard-clean states
///    survive a stage).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_LEGALITY_INCREMENTALENGINE_H
#define IRLT_LEGALITY_INCREMENTALENGINE_H

#include "support/Lru.h"
#include "transform/Sequence.h"
#include "transform/TypeState.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace irlt {
namespace legality {

/// Which legacy walk the engine replicates. The two differ in per-stage
/// operation order and in what they materialize (Full generates concrete
/// bounds each stage; Fast propagates type states and only materializes
/// for extension templates without a type rule), so their states are
/// cached under distinct keys.
enum class Mode {
  Full, ///< isLegal(): checkPreconditions / anchor / apply / map
  Fast, ///< isLegalFast(): anchor / mapTypes, lazy materialization
};

/// The immutable snapshot of the legality walk after a surviving prefix.
/// Shared across builders via shared_ptr<const>; never mutated after
/// construction.
struct PrefixState {
  /// Stages consumed.
  unsigned Len = 0;
  /// Full mode: the concrete nest after the prefix. Fast mode: the
  /// materialized nest through AppliedThrough stages (the lazy fallback
  /// for extension templates), i.e. still the root nest until a Custom
  /// stage forces materialization.
  LoopNest Nest;
  /// Fast mode: the Section 4.3 type state after the prefix. (Full mode
  /// recomputes the state from Nest per stage, exactly like the legacy
  /// walk.)
  NestTypeState Types;
  /// The dependence set mapped through the prefix.
  DepSet Deps;
  /// Fast mode: how many stages Nest has materialized.
  size_t AppliedThrough = 0;
};

class IncrementalEngine;

/// A handle on an open prefix: extend() consumes one stage and reports
/// whether it survived; failure() carries the structured stage rejection
/// (RejectKind + Diag with stage index and template - the witness
/// provenance); finish() runs the final lexicographic test and returns
/// the whole-sequence verdict. The verdict surface is byte-identical to
/// the legacy whole-sequence walk over the same stages.
///
/// A builder is a cheap value (a shared pointer into the engine's cache
/// plus the as-written stage list); copying one forks the prefix, which
/// is how a search expands several extensions of one state. Builders are
/// not thread-safe individually, but any number of builders may extend
/// concurrently against the same engine.
class SequenceBuilder {
public:
  /// A builder that is already failed (e.g. the dependence analysis
  /// overflowed before any stage could run): extend() refuses every
  /// stage and finish() returns \p Verdict.
  static SequenceBuilder failed(LegalityResult Verdict);

  /// Consumes one stage. Returns true when the prefix survives; false
  /// when the stage was rejected (or the builder had already failed), in
  /// which case failure() holds the verdict and every further extend()
  /// keeps returning false.
  bool extend(const TemplateRef &Step);

  /// Whole-sequence verdict of the stages consumed so far: the sticky
  /// stage rejection when failed, else the final lexicographic test on
  /// the current mapped set (Section 3.2 part (a)).
  LegalityResult finish() const;

  bool hasFailed() const { return Failed; }
  /// The sticky stage rejection; only meaningful when hasFailed().
  const LegalityResult &failure() const { return FailR; }

  /// Stages consumed (including the rejected one when failed).
  unsigned length() const { return static_cast<unsigned>(Steps.size()); }
  /// The dependence set mapped through the surviving prefix.
  const DepSet &deps() const;
  /// Loop count after the surviving prefix.
  unsigned outputLoops() const;
  /// The stages consumed so far, as written.
  const std::vector<TemplateRef> &steps() const { return Steps; }

private:
  friend class IncrementalEngine;
  SequenceBuilder() = default;

  IncrementalEngine *E = nullptr;
  Mode M = Mode::Full;
  std::shared_ptr<const PrefixState> Cur;
  std::vector<TemplateRef> Steps;
  /// Root key + '\x02' + stage renderings; empty when not Cacheable.
  std::string Key;
  bool Cacheable = false;
  bool Failed = false;
  LegalityResult FailR;
};

/// Engine knobs (namespace scope: a nested aggregate cannot be a `= {}`
/// default argument of its enclosing class under GCC 12).
struct EngineOptions {
  /// Prefix-entry bound; 0 = unbounded. Eviction recomputes on next
  /// use to a byte-identical value - a memory knob, never correctness.
  size_t CacheCapacity = 1 << 15;
  /// Off turns every extend into a plain computation (the equivalence
  /// tests diff the two configurations).
  bool EnableCache = true;
};

/// Cache counters. Reconciliation invariants (pinned by tests):
///   Hits + Misses == Lookups; Inserts - Evictions == Entries.
struct EngineStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;
  /// Extensions whose result was computed but not inserted because the
  /// root fingerprint or the stage arithmetic saturated.
  uint64_t Uncacheable = 0;
};

/// The prefix-memoized engine: one bounded LRU cache of prefix states
/// and stage rejections under a mutex, with insert-race first-wins
/// semantics (both computations produced identical values). All entry
/// points are safe to call from multiple threads concurrently; cache
/// on/off, capacity, and thread count never change a verdict byte.
class IncrementalEngine {
public:
  using Options = EngineOptions;
  using Stats = EngineStats;

  explicit IncrementalEngine(Options O = {});

  IncrementalEngine(const IncrementalEngine &) = delete;
  IncrementalEngine &operator=(const IncrementalEngine &) = delete;

  /// Opens a builder rooted at (\p Nest, \p D). Cheap: the root state is
  /// built directly, only extensions consult the cache.
  SequenceBuilder open(const LoopNest &Nest, const DepSet &D,
                       Mode M = Mode::Full);

  /// The whole-sequence test through the prefix cache: open + extend per
  /// stage + finish. This is what the isLegal()/isLegalFast() shims
  /// call; byte-identical to reference() on every input.
  LegalityResult check(const TransformSequence &T, const LoopNest &Nest,
                       const DepSet &D, Mode M);

  /// The legacy whole-sequence walks, kept verbatim as the uncached
  /// ground truth (and as the "legacy" series in BENCH_search.json). The
  /// IncrementalEquivalence suite pins check() == reference() over the
  /// fuzz corpus.
  static LegalityResult reference(const TransformSequence &T,
                                  const LoopNest &Nest, const DepSet &D,
                                  Mode M);

  Stats stats() const;
  void clear();

  /// The process-wide engine behind the isLegal()/isLegalFast() shims -
  /// shared by every thread, which is what lets concurrent search
  /// workers reuse each other's prefixes.
  static IncrementalEngine &global();

private:
  friend class SequenceBuilder;

  /// A cache slot: exactly one of State (the prefix survived) or Fail
  /// (the stage rejected) is set.
  struct Entry {
    std::shared_ptr<const PrefixState> State;
    std::shared_ptr<const LegalityResult> Fail;
  };

  std::shared_ptr<const Entry> lookup(const std::string &Key);
  std::shared_ptr<const Entry> insert(const std::string &Key, Entry E);

  Options Opts;
  mutable std::mutex Mu;
  LruMap<Entry> Map;
  std::atomic<uint64_t> Hits{0}, Misses{0}, Uncacheable{0};
};

} // namespace legality
} // namespace irlt

#endif // IRLT_LEGALITY_INCREMENTALENGINE_H
