//===- search/AutoPar.cpp - AutoPar/AutoVec as search presets -------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
// The original standalone AutoPar enumerator is gone: autoParallelize and
// autoVectorize are now depth-1 presets of the general search engine
// (search/Search.h) with the parallelism objective, restricted to the
// candidate families the old enumerator walked - signed permutations and
// wavefront skews, no Block/Interleave. The engine's (cost, canonical
// key) tie-break reproduces the old "first best, cheaper template wins"
// ordering: Parallelize-only keys sort before ReversePermute keys, which
// sort before Unimodular keys, and wavefronts already lose the +1
// cheap-base point.
//
//===----------------------------------------------------------------------===//

#include "transform/AutoPar.h"

#include "search/Search.h"

using namespace irlt;

namespace {

AutoParResult runPreset(const LoopNest &Nest, const DepSet &D,
                        const AutoParOptions &Options, search::ParMode Mode) {
  search::SearchOptions SO;
  SO.Obj = search::Objective::Parallelism;
  SO.Par = Mode;
  SO.Depth = 1;
  SO.Beam = 1;
  SO.TopK = 1;
  SO.Threads = 1;
  SO.Candidates.Permutations = true;
  SO.Candidates.Reversals = Options.TryReversals;
  SO.Candidates.FullPermuteLimit = 6;
  SO.Candidates.Wavefronts = Options.TryWavefronts;
  SO.Candidates.MaxSkew = Options.MaxSkew;
  SO.Candidates.WavefrontLimit = 6;
  SO.Candidates.TileSizes.clear();
  SO.Candidates.InterleaveFactors.clear();

  search::SearchResult SR = search::searchTransformations(Nest, D, SO);

  AutoParResult Result;
  Result.Enumerated = static_cast<unsigned>(SR.Stats.Enumerated);
  Result.Legal = static_cast<unsigned>(SR.Stats.Legal);
  if (SR.Best) {
    AutoParCandidate C;
    C.Seq = std::move(SR.Best->Seq);
    C.ParallelLoops = std::move(SR.Best->ParallelLoops);
    C.Score = SR.Best->ParScore;
    Result.Best = std::move(C);
  }
  return Result;
}

} // namespace

AutoParResult irlt::autoParallelize(const LoopNest &Nest, const DepSet &D,
                                    const AutoParOptions &Options) {
  return runPreset(Nest, D, Options, search::ParMode::Greedy);
}

AutoParResult irlt::autoVectorize(const LoopNest &Nest, const DepSet &D,
                                  const AutoParOptions &Options) {
  return runPreset(Nest, D, Options, search::ParMode::InnermostOnly);
}
