//===- search/Candidates.cpp - Search-space candidate generation ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "search/Candidates.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <functional>
#include <optional>

using namespace irlt;
using namespace irlt::search;

namespace {

/// Completes hyperplane row \p H (which must contain a +-1 entry) into a
/// unimodular matrix: H first, then unit rows for every position except
/// the pivot. Mirrors the AutoPar wavefront construction so the engine's
/// parallelism preset reproduces its candidate space exactly.
std::optional<UnimodularMatrix>
completeWavefront(const std::vector<int64_t> &H) {
  unsigned N = static_cast<unsigned>(H.size());
  unsigned Pivot = N;
  for (unsigned K = 0; K < N; ++K)
    if (H[K] == 1 || H[K] == -1) {
      Pivot = K;
      break;
    }
  if (Pivot == N)
    return std::nullopt;
  UnimodularMatrix M(N);
  for (unsigned C = 0; C < N; ++C)
    M.set(0, C, H[C]);
  unsigned Row = 1;
  for (unsigned K = 0; K < N; ++K) {
    if (K == Pivot)
      continue;
    M.set(Row++, K, 1);
  }
  if (!M.isUnimodular())
    return std::nullopt;
  return M;
}

void addPermutations(unsigned N, const CandidateOptions &Opts,
                     std::vector<TemplateRef> &Out) {
  if (N < 1)
    return;
  if (N <= Opts.FullPermuteLimit) {
    // Full signed permutations, identity excluded (it is the empty step).
    std::vector<unsigned> Perm(N);
    for (unsigned K = 0; K < N; ++K)
      Perm[K] = K;
    do {
      unsigned RevCount = Opts.Reversals ? (1u << N) : 1u;
      for (unsigned RevMask = 0; RevMask < RevCount; ++RevMask) {
        std::vector<bool> Rev(N);
        for (unsigned K = 0; K < N; ++K)
          Rev[K] = (RevMask >> K) & 1;
        bool Identity = RevMask == 0;
        for (unsigned K = 0; K < N && Identity; ++K)
          Identity = Perm[K] == K;
        if (Identity)
          continue;
        Out.push_back(makeReversePermute(N, Rev, Perm));
      }
    } while (std::next_permutation(Perm.begin(), Perm.end()));
    return;
  }
  // Deep nests: pairwise interchanges and single reversals only.
  for (unsigned A = 0; A < N; ++A)
    for (unsigned B = A + 1; B < N; ++B)
      Out.push_back(makeInterchange(N, A, B));
  if (Opts.Reversals)
    for (unsigned K = 0; K < N; ++K) {
      std::vector<bool> Rev(N, false);
      Rev[K] = true;
      std::vector<unsigned> Perm(N);
      for (unsigned P = 0; P < N; ++P)
        Perm[P] = P;
      Out.push_back(makeReversePermute(N, Rev, Perm));
    }
}

void addWavefronts(unsigned N, const CandidateOptions &Opts,
                   std::vector<TemplateRef> &Out) {
  if (N < 2 || N > Opts.WavefrontLimit)
    return;
  std::vector<int64_t> H(N, 0);
  std::function<void(unsigned)> Recurse = [&](unsigned K) {
    if (K == N) {
      unsigned NonZero = 0;
      int64_t G = 0;
      for (int64_t V : H) {
        NonZero += V != 0;
        G = gcd(G, V);
      }
      if (NonZero < 2 || G != 1)
        return;
      if (std::optional<UnimodularMatrix> M = completeWavefront(H))
        Out.push_back(makeUnimodular(N, *M));
      return;
    }
    for (int64_t V = 0; V <= Opts.MaxSkew; ++V) {
      H[K] = V;
      Recurse(K + 1);
    }
    H[K] = 0;
  };
  Recurse(0);
}

void addBlocks(unsigned N, const CandidateOptions &Opts,
               std::vector<TemplateRef> &Out) {
  if (N < 2 || Opts.TileSizes.empty())
    return;
  // Contiguous ranges [I..J] (1-based), length >= 2, uniform tile size.
  for (unsigned I = 1; I <= N; ++I)
    for (unsigned J = I + 1; J <= N; ++J) {
      if (N + (J - I + 1) > Opts.MaxLoops)
        continue;
      for (int64_t T : Opts.TileSizes) {
        std::vector<ExprRef> BSize(J - I + 1, Expr::intConst(T));
        Out.push_back(makeBlock(N, I, J, std::move(BSize)));
      }
    }
}

void addInterleaves(unsigned N, const CandidateOptions &Opts,
                    std::vector<TemplateRef> &Out) {
  if (N < 1 || Opts.InterleaveFactors.empty())
    return;
  for (unsigned K = 1; K <= N; ++K) {
    if (N + 1 > Opts.MaxLoops)
      continue;
    for (int64_t F : Opts.InterleaveFactors)
      Out.push_back(makeInterleave(N, K, K, {Expr::intConst(F)}));
  }
}

} // namespace

std::vector<TemplateRef>
irlt::search::stepCandidates(unsigned N, const CandidateOptions &Opts) {
  std::vector<TemplateRef> Out;
  if (Opts.Permutations)
    addPermutations(N, Opts, Out);
  if (Opts.Wavefronts)
    addWavefronts(N, Opts, Out);
  addBlocks(N, Opts, Out);
  addInterleaves(N, Opts, Out);
  return Out;
}
