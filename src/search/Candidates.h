//===- search/Candidates.h - Search-space candidate generation -----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-step candidate generation for the transformation search engine
/// (docs/SEARCH.md). Each step of a candidate sequence is one kernel
/// template instantiation drawn from a bounded space:
///
///  - ReversePermute: all signed permutations when the nest is shallow,
///    degrading to pairwise interchanges + single reversals on deep
///    (post-Block) nests - the factorial space must not be walked at
///    depth 5+ (cf. Acharya & Bondhugula, arXiv:1803.10726);
///  - Unimodular: wavefront/skew matrices with small non-negative
///    hyperplane coefficients, completed to a unimodular basis;
///  - Block: every contiguous loop range of length >= 2, each with a
///    uniform tile size drawn from the candidate set;
///  - Interleave: single-loop phase splits with the same factor set.
///
/// Parallelize is *not* generated here: it is always the trailing step,
/// chosen greedily against the final mapped dependence set by the
/// driver (src/search/Search.cpp).
///
/// Enumeration order is deterministic and documented: template family
/// order as listed above, then lexicographic within the family. The
/// parallel beam driver relies on that order being reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SEARCH_CANDIDATES_H
#define IRLT_SEARCH_CANDIDATES_H

#include "transform/Templates.h"

#include <cstdint>
#include <vector>

namespace irlt {
namespace search {

/// Knobs bounding the per-step candidate space.
struct CandidateOptions {
  /// Include ReversePermute candidates (perms and reversals).
  bool Permutations = true;
  /// Include reversal bits in permutation candidates.
  bool Reversals = true;
  /// Full signed-permutation enumeration up to this many loops; deeper
  /// nests fall back to pairwise interchanges and single reversals.
  unsigned FullPermuteLimit = 4;
  /// Include wavefront (skewing) Unimodular candidates.
  bool Wavefronts = true;
  /// Largest hyperplane coefficient tried for wavefronts.
  int64_t MaxSkew = 2;
  /// Wavefronts are only enumerated up to this many loops (the space is
  /// (MaxSkew+1)^n).
  unsigned WavefrontLimit = 4;
  /// Tile sizes tried for Block; empty disables Block candidates.
  std::vector<int64_t> TileSizes = {8, 16};
  /// Interleave factors tried for single loops; empty disables.
  std::vector<int64_t> InterleaveFactors = {};
  /// Candidates whose output nest would exceed this many loops are not
  /// generated (Block/Interleave grow the nest).
  unsigned MaxLoops = 8;
};

/// Enumerates the candidate templates for one search step on a nest of
/// \p N loops, in the deterministic order documented above.
std::vector<TemplateRef> stepCandidates(unsigned N,
                                        const CandidateOptions &Opts);

} // namespace search
} // namespace irlt

#endif // IRLT_SEARCH_CANDIDATES_H
