//===- search/CostModel.cpp - Simulated-locality cost model ---------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "search/CostModel.h"

#include "eval/Evaluator.h"
#include "support/Casting.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <map>

using namespace irlt;
using namespace irlt::search;

namespace {

/// Collects the callee names of every CallExpr in \p E.
void collectCallNames(const ExprRef &E, std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::Var:
    return;
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
  case Expr::Kind::Mul:
  case Expr::Kind::Div:
  case Expr::Kind::Mod: {
    const auto *B = cast<BinaryExpr>(E.get());
    collectCallNames(B->lhs(), Out);
    collectCallNames(B->rhs(), Out);
    return;
  }
  case Expr::Kind::Min:
  case Expr::Kind::Max:
    for (const ExprRef &Op : cast<MinMaxExpr>(E.get())->operands())
      collectCallNames(Op, Out);
    return;
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E.get());
    Out.insert(C->callee());
    for (const ExprRef &Arg : C->args())
      collectCallNames(Arg, Out);
    return;
  }
  }
}

/// Every expression of the nest, for whole-nest walks.
template <typename Fn> void forEachExpr(const LoopNest &Nest, Fn F) {
  for (const Loop &L : Nest.Loops) {
    F(L.Lower);
    F(L.Upper);
    F(L.Step);
  }
  for (const InitStmt &I : Nest.Inits)
    F(I.Value);
  for (const AssignStmt &S : Nest.Body) {
    for (const ExprRef &Sub : S.LHS.Subscripts)
      F(Sub);
    F(S.RHS);
  }
}

/// Names the evaluator resolves without user bindings.
bool isBuiltinFn(const std::string &Name) {
  return Name == "sqrt" || Name == "abs" || Name == "sgn";
}

} // namespace

std::map<std::string, int64_t>
CostModel::defaultBindings(const LoopNest &Nest) {
  std::set<std::string> Vars;
  forEachExpr(Nest, [&](const ExprRef &E) {
    if (E)
      E->collectVars(Vars);
  });
  std::map<std::string, int64_t> Bindings;
  for (const std::string &V : Vars) {
    if (Nest.bindsVar(V))
      continue;
    if (std::find(Nest.BodyIndexVars.begin(), Nest.BodyIndexVars.end(), V) !=
        Nest.BodyIndexVars.end())
      continue;
    bool InitDefined = false;
    for (const InitStmt &I : Nest.Inits)
      InitDefined |= I.Var == V;
    if (InitDefined)
      continue;
    Bindings[V] = 24;
  }
  return Bindings;
}

CostModel::CostModel(const LoopNest &Nest, CostModelOptions Opts)
    : Nest(Nest), Opts(std::move(Opts)) {
  std::set<std::string> Calls;
  forEachExpr(Nest, [&](const ExprRef &E) { collectCallNames(E, Calls); });
  for (const std::string &C : Calls)
    if (!Nest.ArrayNames.count(C) && !isBuiltinFn(C)) {
      Unusable = "nest calls opaque function '" + C +
                 "' which the cost model cannot execute";
      return;
    }
  if (this->Opts.Params.empty())
    this->Opts.Params = defaultBindings(Nest);
}

std::optional<double> CostModel::baseline() {
  TransformSequence Empty;
  return missRatio(Empty, Empty.str());
}

std::optional<double> CostModel::missRatio(const TransformSequence &Seq,
                                           const std::string &Key) {
  {
    std::lock_guard<std::mutex> Lock(MemoMutex);
    auto It = Memo.find(Key);
    if (It != Memo.end())
      return It->second;
  }
  // Measure outside the lock: concurrent workers may race on the same key,
  // but the measurement is deterministic, so whichever insert wins stores
  // the same value.
  std::optional<double> Ratio = measure(Seq);
  std::lock_guard<std::mutex> Lock(MemoMutex);
  Memo.emplace(Key, Ratio);
  return Ratio;
}

std::optional<double> CostModel::measure(const TransformSequence &Seq) {
  if (!Unusable.empty())
    return std::nullopt;

  OverflowGuard Guard;
  ErrorOr<LoopNest> Transformed = applySequence(Seq, Nest);
  if (Guard.triggered() || !Transformed)
    return std::nullopt;

  EvalConfig Config;
  Config.Params = Opts.Params;
  Config.RecordTrace = false;
  Config.RecordAccesses = true;
  Config.MaxInstances = Opts.MaxInstances;
  // Deliberately no wall-clock budget: a time-based cutoff would make the
  // cost (and hence the search winner) machine-dependent.
  ArrayStore Store;
  EvalResult R = evaluate(*Transformed, Config, Store);
  if (Guard.triggered() || R.LimitHit)
    return std::nullopt;
  if (R.Accesses.empty())
    return 0.0;

  // Infer a layout from the trace itself: per array, the min/max subscript
  // seen along each dimension. This avoids requiring declared extents and
  // adapts to whatever bindings are in force.
  struct Extent {
    std::vector<int64_t> Lows, Highs;
  };
  std::map<std::string, Extent> Extents;
  for (const MemAccess &A : R.Accesses) {
    auto [It, New] = Extents.try_emplace(A.Array);
    Extent &E = It->second;
    if (New) {
      E.Lows = A.Subs;
      E.Highs = A.Subs;
      continue;
    }
    if (E.Lows.size() != A.Subs.size())
      return std::nullopt; // inconsistent arity; layout undefined
    for (size_t D = 0; D < A.Subs.size(); ++D) {
      E.Lows[D] = std::min(E.Lows[D], A.Subs[D]);
      E.Highs[D] = std::max(E.Highs[D], A.Subs[D]);
    }
  }
  ArrayLayout Layout;
  for (auto &[Name, E] : Extents)
    Layout.declare(Name, E.Lows, E.Highs);
  return replayTrace(R.Accesses, Layout, Opts.Cache);
}
