//===- search/CostModel.h - Simulated-locality cost model ----------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The effectiveness half of the Section 5/6 optimizer story: rank legal
/// transformation alternatives without committing to any. A candidate
/// sequence is applied to a scratch copy of the nest, executed by the
/// evaluator under *small* parameter bindings with access recording on,
/// and the trace replayed through the set-associative cache simulator
/// (src/cachesim/); the resulting miss ratio is the locality cost.
///
/// Measurements are memoized on the sequence's reduce()-canonicalized
/// rendering, so peephole-equivalent prefixes (e.g. two adjacent
/// Unimodular steps and their fused form) are costed exactly once across
/// the whole beam - including across worker threads; the memo is
/// mutex-guarded and a cache entry's value is deterministic because the
/// evaluator and simulator are.
///
/// Parallelize never changes the sequential trace, so the trailing
/// Parallelize step the driver appends shares the prefix's measurement.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SEARCH_COSTMODEL_H
#define IRLT_SEARCH_COSTMODEL_H

#include "cachesim/Cache.h"
#include "transform/Sequence.h"

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace irlt {
namespace search {

/// Configuration of the locality measurement.
struct CostModelOptions {
  /// Parameter bindings the evaluator runs under. Must bind every free
  /// (non-index) symbol of the nest; defaultBindings() fills them in.
  std::map<std::string, int64_t> Params;
  /// Geometry of the simulated cache.
  CacheConfig Cache{8 * 1024, 64, 4};
  /// Evaluator instance budget per measurement; a candidate whose trace
  /// exceeds it gets no cost (and is pruned by the driver).
  uint64_t MaxInstances = 1'000'000;
};

/// Memoizing miss-ratio oracle for one source nest.
class CostModel {
public:
  CostModel(const LoopNest &Nest, CostModelOptions Opts);

  /// Simulated miss ratio of Seq(Nest) in [0, 1], or nullopt when the
  /// sequence cannot be applied/executed under the bindings (apply
  /// failure, overflow, instance budget). Memoized on \p Key, which must
  /// be the reduce()-canonical rendering of \p Seq. Thread-safe.
  std::optional<double> missRatio(const TransformSequence &Seq,
                                  const std::string &Key);

  /// Miss ratio of the untransformed nest (the empty sequence).
  std::optional<double> baseline();

  /// Why the model cannot run at all (e.g. the nest calls an opaque
  /// function the evaluator cannot bind); empty when usable.
  const std::string &unusableReason() const { return Unusable; }

  /// Default small bindings: every free (non-index) symbol of \p Nest
  /// mapped to 24 - big enough that a 3-deep nest's working set spills a
  /// tiny cache, small enough to trace in milliseconds.
  static std::map<std::string, int64_t> defaultBindings(const LoopNest &Nest);

private:
  const LoopNest &Nest;
  CostModelOptions Opts;
  std::string Unusable;
  std::mutex MemoMutex;
  std::unordered_map<std::string, std::optional<double>> Memo;

  std::optional<double> measure(const TransformSequence &Seq);
};

} // namespace search
} // namespace irlt

#endif // IRLT_SEARCH_COSTMODEL_H
