//===- search/Search.cpp - Cost-model-guided transformation search --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "search/Search.h"

#include "analysis/Analysis.h"
#include "support/MathUtils.h"
#include "transform/Templates.h"
#include "transform/TypeState.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>

using namespace irlt;
using namespace irlt::search;

namespace {

/// One node of the beam: a transformation prefix that survived the fast
/// legality pruning, carried entirely in mapped form (type state and
/// dependence set) - the nest itself is never touched during expansion,
/// exactly the paper's Section 4.3 efficiency argument.
struct BeamState {
  TransformSequence Seq;
  /// reduce()-canonical rendering: the dedup and tie-break key.
  std::string Key;
  NestTypeState Types;
  DepSet Deps;
  unsigned OutN = 0;
  /// Leaf cost of this prefix; ranks the beam.
  double Cost = 0.0;
};

/// Worker count actually worth spawning: a CPU-bound deterministic
/// workload cannot gain from oversubscription, and the measured
/// BM_SearchMatmulDepth2Threads inversion on a 1-CPU host was exactly
/// 4 threads time-slicing one core plus allocator contention. Requests
/// beyond the hardware are clamped; the determinism contract makes this
/// unobservable in the results.
unsigned effectiveThreads(unsigned Requested) {
  unsigned HW = std::thread::hardware_concurrency();
  if (HW == 0) // unknown: trust the caller
    return Requested;
  return std::min(Requested, HW);
}

/// Deterministic work distribution: workers pull indices from an atomic
/// counter but only ever write to their own index's slot, so the merged
/// result is independent of scheduling.
void parallelFor(size_t Count, unsigned Threads,
                 const std::function<void(size_t)> &Fn) {
  if (Threads <= 1 || Count <= 1) {
    for (size_t I = 0; I < Count; ++I)
      Fn(I);
    return;
  }
  std::atomic<size_t> Next{0};
  size_t NumWorkers = std::min<size_t>(Threads, Count);
  std::vector<std::thread> Workers;
  Workers.reserve(NumWorkers);
  for (size_t W = 0; W < NumWorkers; ++W)
    Workers.emplace_back([&] {
      for (size_t I = Next.fetch_add(1); I < Count; I = Next.fetch_add(1))
        Fn(I);
    });
  for (std::thread &T : Workers)
    T.join();
}

/// Greedy outside-in parallelization on the mapped dependence set
/// (AutoPar's chooser), or the innermost-only variant for vectorization.
std::vector<bool> chooseFlags(const DepSet &Mapped, unsigned OutN,
                              ParMode Mode) {
  std::vector<bool> Flags(OutN, false);
  if (OutN == 0)
    return Flags;
  if (Mode == ParMode::InnermostOnly) {
    Flags[OutN - 1] = true;
    if (!makeParallelize(OutN, Flags)
             ->mapDependences(Mapped)
             .allLexNonNegative())
      Flags[OutN - 1] = false;
    return Flags;
  }
  for (unsigned K = 0; K < OutN; ++K) {
    Flags[K] = true;
    if (!makeParallelize(OutN, Flags)
             ->mapDependences(Mapped)
             .allLexNonNegative())
      Flags[K] = false;
  }
  return Flags;
}

/// AutoPar's lexicographic score: parallel loops first, outer positions
/// worth more, +1 when the base machinery is cheap (Section 4.2).
long parScoreOf(const std::vector<unsigned> &ParallelLoops, unsigned OutN,
                bool CheapBase) {
  long S = 0;
  for (unsigned P : ParallelLoops)
    S += 1000 + 10 * static_cast<long>(OutN - P);
  if (CheapBase)
    S += 1;
  return S;
}

/// Outcome of finishing one state into a reportable candidate.
struct LeafEval {
  /// The state stays in the beam (its cost is meaningful).
  bool StateAlive = false;
  double StateCost = 0.0;
  /// The analyzer pre-filter rejected the finished candidate before it
  /// could be submitted to the full legality test.
  bool AnalyzerPruned = false;
  /// A finished candidate was submitted to the full legality test.
  bool Submitted = false;
  /// ... and confirmed legal.
  bool Legal = false;
  ScoredSequence Cand;
};

LeafEval finishState(const BeamState &St, const LoopNest &Nest, const DepSet &D,
                     const SearchOptions &Opts, CostModel *CM) {
  LeafEval E;

  // A trailing Parallelize, chosen greedily against the final mapped
  // dependence set - never enumerated as a search step.
  std::vector<bool> Flags(St.OutN, false);
  if (Opts.Obj != Objective::Locality)
    Flags = chooseFlags(St.Deps, St.OutN, Opts.Par);
  std::vector<unsigned> ParallelLoops;
  for (unsigned K = 0; K < St.OutN; ++K)
    if (Flags[K])
      ParallelLoops.push_back(K);

  bool CheapBase = true;
  for (const TemplateRef &T : St.Seq.steps())
    CheapBase &= T->kind() == TransformTemplate::Kind::ReversePermute;
  long Score =
      ParallelLoops.empty() ? 0 : parScoreOf(ParallelLoops, St.OutN, CheapBase);

  double Miss = -1.0;
  if (Opts.Obj != Objective::Parallelism) {
    // Parallelize does not change the sequential trace, so the prefix's
    // canonical key shares the measurement with the finished leaf.
    std::optional<double> M = CM->missRatio(St.Seq, St.Key);
    if (!M)
      return E; // unmeasurable: drop the state entirely
    Miss = *M;
  }

  switch (Opts.Obj) {
  case Objective::Locality:
    E.StateCost = Miss;
    break;
  case Objective::Parallelism:
    E.StateCost = -static_cast<double>(Score);
    break;
  case Objective::Both:
    E.StateCost = Miss - 1e-4 * static_cast<double>(Score);
    break;
  }
  E.StateAlive = true;

  // A parallelism-objective leaf with nothing parallel is not an answer
  // (mirrors AutoPar returning no candidate), but the prefix may still be
  // worth expanding.
  if (Opts.Obj == Objective::Parallelism && ParallelLoops.empty())
    return E;

  // Analyzer pre-filter (docs/ANALYSIS.md): the fast pruning already
  // validated this prefix's per-stage preconditions, so the only verdict
  // the full test can add is the final lexicographic check (rule E100).
  // Running it directly on the final mapped set skips the whole isLegal
  // walk for candidates that are certain to be rejected. Overflow falls
  // through to isLegal, which classifies it properly.
  {
    OverflowGuard Guard;
    DepSet Final = ParallelLoops.empty()
                       ? St.Deps
                       : makeParallelize(St.OutN, Flags)
                             ->mapDependences(St.Deps);
    if (!Guard.triggered() && analysis::finalDepsRejectable(Final)) {
      E.AnalyzerPruned = true;
      return E;
    }
  }

  TransformSequence LeafSeq = St.Seq;
  if (!ParallelLoops.empty())
    LeafSeq.append(makeParallelize(St.OutN, Flags));

  E.Submitted = true;
  // Leaves are re-confirmed with the *full* uniform legality test: the
  // fast path pruned on types only, and the lexicographic test never ran
  // on intermediate stages. isLegal() is the prefix-memoized engine
  // (legality/IncrementalEngine.h), so leaves sharing a prefix - the
  // common case in a beam, including across worker threads - pay only
  // the trailing Parallelize stage plus the final lexicographic test.
  LegalityResult L = isLegal(LeafSeq, Nest, D);
  if (!L.Legal)
    return E;
  E.Legal = true;
  E.Cand.Key = LeafSeq.reduced().str();
  E.Cand.Seq = std::move(LeafSeq);
  E.Cand.Cost = E.StateCost;
  E.Cand.MissRatio = Miss;
  E.Cand.ParScore = Score;
  E.Cand.ParallelLoops = std::move(ParallelLoops);
  return E;
}

bool candidateLess(const ScoredSequence &A, const ScoredSequence &B) {
  if (A.Cost != B.Cost)
    return A.Cost < B.Cost;
  return A.Key < B.Key;
}

} // namespace

SearchResult irlt::search::searchTransformations(const LoopNest &Nest,
                                                 const DepSet &D,
                                                 const SearchOptions &Opts) {
  SearchResult R;
  unsigned N = Nest.numLoops();
  if (N == 0)
    return R;

  std::unique_ptr<CostModel> CM;
  if (Opts.Obj != Objective::Parallelism) {
    CostModelOptions CO;
    CO.Params = Opts.CostParams;
    CO.Cache = Opts.Cache;
    CO.MaxInstances = Opts.MaxTraceInstances;
    CM = std::make_unique<CostModel>(Nest, std::move(CO));
    if (!CM->unusableReason().empty()) {
      R.Error = CM->unusableReason();
      return R;
    }
    if (!CM->baseline()) {
      R.Error = "cost model cannot execute the source nest under the "
                "chosen parameter bindings";
      return R;
    }
  }

  SearchStats &S = R.Stats;
  std::vector<ScoredSequence> All;
  const unsigned Threads = effectiveThreads(Opts.Threads);

  // Evaluates every state's leaf in parallel (per-index slots), then
  // merges stats and candidates in index order; returns the per-state
  // evaluations so the caller can filter/rank the beam.
  auto finishAll = [&](const std::vector<BeamState> &States) {
    std::vector<LeafEval> Evals(States.size());
    parallelFor(States.size(), Threads, [&](size_t I) {
      Evals[I] = finishState(States[I], Nest, D, Opts, CM.get());
    });
    for (LeafEval &E : Evals) {
      if (E.AnalyzerPruned)
        ++S.AnalyzerPruned;
      if (!E.Submitted)
        continue;
      ++S.Leaves;
      if (E.Legal) {
        ++S.Legal;
        All.push_back(std::move(E.Cand));
      }
    }
    return Evals;
  };

  BeamState Root;
  Root.Key = Root.Seq.str();
  Root.Types = NestTypeState::fromNest(Nest);
  Root.Deps = D;
  Root.OutN = N;
  S.Enumerated = 1;

  std::vector<BeamState> Frontier;
  {
    std::vector<BeamState> RootVec;
    RootVec.push_back(std::move(Root));
    std::vector<LeafEval> Evals = finishAll(RootVec);
    RootVec[0].Cost = Evals[0].StateCost;
    if (Evals[0].StateAlive)
      Frontier.push_back(std::move(RootVec[0]));
  }

  std::set<std::string> Visited;
  if (!Frontier.empty())
    Visited.insert(Frontier[0].Key);

  for (unsigned Level = 1; Level <= Opts.Depth && !Frontier.empty(); ++Level) {
    // Expansion: each frontier state's step candidates are pruned with
    // the fast path - type-state propagation (stage bounds preconditions
    // on types alone) plus the anchor-dependence side condition on the
    // *current* mapped set. The lexicographic test is deliberately
    // absent here: intermediate stages need not be legal.
    //
    // The work unit is one (frontier state, candidate) pair, not one
    // frontier state: a frontier of beam-width states expands to
    // hundreds of prefix extensions whose costs vary wildly (a pruned
    // type check is microseconds, a surviving reduce() is not), and
    // whole-state units left workers idle behind the one state with the
    // expensive extensions. The atomic-counter loop in parallelFor
    // steals pairs instead, and the per-pair slot keeps the merge order
    // - state-major, then candidate order - byte-identical to the
    // serial walk. Candidate lists depend only on the loop count, so
    // one list per distinct width is enumerated up front and shared
    // read-only by all workers.
    std::map<unsigned, std::vector<TemplateRef>> CandsByN;
    for (const BeamState &St : Frontier)
      if (!CandsByN.count(St.OutN))
        CandsByN.emplace(St.OutN, stepCandidates(St.OutN, Opts.Candidates));
    std::vector<size_t> Offset(Frontier.size() + 1, 0);
    for (size_t I = 0; I < Frontier.size(); ++I)
      Offset[I + 1] = Offset[I] + CandsByN.at(Frontier[I].OutN).size();

    // One slot per pair: engaged iff the extension survived the pruning.
    std::vector<std::optional<BeamState>> PairSlots(Offset.back());
    parallelFor(Offset.back(), Threads, [&](size_t P) {
      size_t I = static_cast<size_t>(
          std::upper_bound(Offset.begin(), Offset.end(), P) - Offset.begin() -
          1);
      const BeamState &St = Frontier[I];
      const TemplateRef &T = CandsByN.at(St.OutN)[P - Offset[I]];
      OverflowGuard Guard;
      std::optional<ErrorOr<NestTypeState>> MT = mapTypes(*T, St.Types);
      if (Guard.triggered() || !MT || !*MT)
        return;
      std::string AnchorErr = checkAnchorDependence(*T, St.Types, St.Deps);
      if (Guard.triggered() || !AnchorErr.empty())
        return;
      DepSet Mapped = T->mapDependences(St.Deps);
      if (Guard.triggered())
        return;
      BeamState NS;
      NS.Seq = St.Seq;
      NS.Seq.append(T);
      NS.Key = NS.Seq.reduced().str();
      if (Guard.triggered()) // reduce() multiplies matrices
        return;
      NS.Types = MT->take();
      NS.Deps = std::move(Mapped);
      NS.OutN = T->outputSize();
      PairSlots[P] = std::move(NS);
    });

    // Deterministic merge in (frontier, candidate) order; peephole-
    // equivalent states (same canonical key, at this or any earlier
    // level) collapse to the first occurrence.
    std::vector<BeamState> Fresh;
    for (size_t I = 0; I < Frontier.size(); ++I) {
      S.Enumerated += Offset[I + 1] - Offset[I];
      for (size_t P = Offset[I]; P < Offset[I + 1]; ++P) {
        if (!PairSlots[P]) {
          ++S.Pruned;
          continue;
        }
        BeamState &NS = *PairSlots[P];
        if (!Visited.insert(NS.Key).second) {
          ++S.Deduped;
          continue;
        }
        Fresh.push_back(std::move(NS));
      }
    }

    // Finish every fresh state (cost + leaf confirmation), then keep the
    // best Beam of them as the next frontier.
    std::vector<LeafEval> Evals = finishAll(Fresh);
    std::vector<BeamState> Next;
    for (size_t I = 0; I < Fresh.size(); ++I) {
      if (!Evals[I].StateAlive)
        continue;
      Fresh[I].Cost = Evals[I].StateCost;
      Next.push_back(std::move(Fresh[I]));
    }
    std::sort(Next.begin(), Next.end(),
              [](const BeamState &A, const BeamState &B) {
                if (A.Cost != B.Cost)
                  return A.Cost < B.Cost;
                return A.Key < B.Key;
              });
    if (Next.size() > Opts.Beam)
      Next.resize(Opts.Beam);
    Frontier = std::move(Next);
  }

  std::sort(All.begin(), All.end(), candidateLess);
  All.erase(std::unique(All.begin(), All.end(),
                        [](const ScoredSequence &A, const ScoredSequence &B) {
                          return A.Key == B.Key;
                        }),
            All.end());
  if (All.size() > Opts.TopK)
    All.resize(Opts.TopK);
  R.Top = std::move(All);
  if (!R.Top.empty())
    R.Best = R.Top.front();
  return R;
}
