//===- search/Search.h - Cost-model-guided transformation search ---------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5 optimizer story, realized: "the loop nest remains
/// unchanged while the transformation system considers the legality and
/// effectiveness of applying various alternative transformations". This
/// is a beam search over transformation *sequences* built from the kernel
/// templates (candidate generation in search/Candidates.h), pruned by the
/// Section 4.3 fast legality machinery, and ranked by the simulated-cache
/// cost model (search/CostModel.h).
///
/// Pruning semantics follow the paper exactly: an intermediate stage need
/// NOT be legal - a prefix is kept alive as long as its per-stage bounds
/// preconditions hold (TypeState propagation) and the anchor-dependence
/// side condition passes; the lexicographic dependence test only gates
/// *finished* candidates, and every accepted leaf is re-confirmed with
/// the full uniform legality test isLegal() before it can be reported.
///
/// Parallelize is never enumerated as a step: each frontier state is
/// finished by greedily parallelizing its final mapped dependence set
/// (outside-in, as AutoPar does), so the engine subsumes AutoPar/AutoVec
/// - those entry points are now thin presets of this driver.
///
/// Determinism contract (docs/SEARCH.md): for fixed inputs and options,
/// the result - winner, top-k order, and stats - is byte-identical
/// regardless of Threads. Workers only fill preallocated per-index slots;
/// merging, deduplication (on reduce()-canonical keys) and beam selection
/// happen in deterministic index order, and ties are broken by the
/// canonical sequence key.
///
/// Threading model: the expansion work unit is one (frontier state,
/// candidate template) pair - a per-prefix extension - pulled from an
/// atomic counter, so workers steal fine-grained units instead of
/// queueing behind whole states. Requested thread counts are clamped to
/// the hardware concurrency (oversubscribing a deterministic CPU-bound
/// search only adds scheduling overhead), which the contract above makes
/// unobservable. Leaf confirmations run through the process-wide
/// prefix-memoized legality engine (legality/IncrementalEngine.h), so
/// concurrent workers share each other's surviving prefixes.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SEARCH_SEARCH_H
#define IRLT_SEARCH_SEARCH_H

#include "search/Candidates.h"
#include "search/CostModel.h"
#include "transform/Sequence.h"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace irlt {
namespace search {

/// What the search optimizes.
enum class Objective {
  Locality,    ///< minimize simulated cache miss ratio
  Parallelism, ///< maximize parallel loops (AutoPar's score)
  Both         ///< locality first, parallelism as a weighted bonus
};

/// How a state is finished with a trailing Parallelize.
enum class ParMode {
  Greedy,        ///< flag every position that stays lex-non-negative
  InnermostOnly, ///< flag only the innermost position (vectorization)
};

/// Search configuration.
struct SearchOptions {
  Objective Obj = Objective::Both;
  /// Frontier width kept per depth level.
  unsigned Beam = 8;
  /// Maximum number of (non-Parallelize) steps in a candidate sequence.
  unsigned Depth = 2;
  /// Worker threads; results are identical for any value >= 1. Values
  /// beyond std::thread::hardware_concurrency() are clamped.
  unsigned Threads = 1;
  /// How many ranked candidates to report.
  unsigned TopK = 5;
  ParMode Par = ParMode::Greedy;
  /// Per-step candidate space knobs.
  CandidateOptions Candidates;
  /// Cost model: parameter bindings (empty selects defaults), simulated
  /// cache geometry, and the trace budget.
  std::map<std::string, int64_t> CostParams;
  CacheConfig Cache{8 * 1024, 64, 4};
  uint64_t MaxTraceInstances = 1'000'000;
};

/// One ranked candidate sequence (includes any trailing Parallelize).
struct ScoredSequence {
  TransformSequence Seq;
  /// reduce()-canonical rendering; the deterministic tie-break key.
  std::string Key;
  /// Objective cost; lower is better.
  double Cost = 0.0;
  /// Simulated miss ratio, or -1 when the objective never measured it.
  double MissRatio = -1.0;
  /// AutoPar-compatible parallelism score of the trailing Parallelize.
  long ParScore = 0;
  /// Parallel output positions (0-based) after the sequence.
  std::vector<unsigned> ParallelLoops;
};

/// Deterministic search statistics (identical for any thread count).
struct SearchStats {
  uint64_t Enumerated = 0; ///< states considered: root + candidate steps
  uint64_t Pruned = 0;     ///< steps rejected by type-state/anchor/overflow
  uint64_t Deduped = 0;    ///< states merged by canonical key
  uint64_t Leaves = 0;     ///< finished candidates submitted to isLegal
  uint64_t Legal = 0;      ///< leaves the full legality test confirmed
  /// Finished candidates the analyzer pre-filter (rule E100 on the final
  /// mapped dependence set) rejected without submitting to isLegal.
  uint64_t AnalyzerPruned = 0;
};

/// The search outcome.
struct SearchResult {
  /// Best legal candidate (same object as Top.front() when present).
  std::optional<ScoredSequence> Best;
  /// Up to TopK legal candidates, best first.
  std::vector<ScoredSequence> Top;
  SearchStats Stats;
  /// Non-empty when the search could not run at all (e.g. a locality
  /// objective on a nest the cost model cannot execute).
  std::string Error;
};

/// Searches for a legal transformation sequence of \p Nest (dependence
/// set \p D) optimizing \p Opts.Obj. Never mutates the nest.
SearchResult searchTransformations(const LoopNest &Nest, const DepSet &D,
                                   const SearchOptions &Opts = {});

} // namespace search
} // namespace irlt

#endif // IRLT_SEARCH_SEARCH_H
