//===- serve/Client.cpp - Framed-protocol client helpers -----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace irlt;
using namespace irlt::serve;

/// Client sockets must not leak into worker processes the front forks:
/// an inherited fd would hold a dead shard's connection open and mask
/// the EOF its response reader relies on for crash detection.
static void setCloexecFd(int Fd) {
  int Flags = fcntl(Fd, F_GETFD);
  if (Flags >= 0)
    fcntl(Fd, F_SETFD, Flags | FD_CLOEXEC);
}

ClientConn &ClientConn::operator=(ClientConn &&O) noexcept {
  if (this != &O) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = O.Fd;
    O.Fd = -1;
    Reader = FrameReader();
  }
  return *this;
}

ClientConn::~ClientConn() {
  if (Fd >= 0)
    ::close(Fd);
}

static bool writeAllFd(int Fd, const char *Data, size_t Len) {
  size_t Off = 0;
  while (Off < Len) {
    ssize_t N = ::send(Fd, Data + Off, Len - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

bool ClientConn::sendFrame(std::string_view Payload, uint64_t StallMillis) {
  std::string Frame = encodeFrame(Payload);
  if (!StallMillis)
    return writeAllFd(Fd, Frame.data(), Frame.size());
  for (char B : Frame) {
    std::this_thread::sleep_for(std::chrono::milliseconds(StallMillis));
    if (!writeAllFd(Fd, &B, 1))
      return false;
  }
  return true;
}

bool ClientConn::sendRaw(std::string_view Bytes) {
  return writeAllFd(Fd, Bytes.data(), Bytes.size());
}

void ClientConn::finishWrites() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_WR);
}

ErrorOr<std::string> ClientConn::recvFrame(uint64_t RecvTimeoutMillis) {
  if (RecvTimeoutMillis) {
    timeval Tv{};
    Tv.tv_sec = static_cast<time_t>(RecvTimeoutMillis / 1000);
    Tv.tv_usec = static_cast<suseconds_t>((RecvTimeoutMillis % 1000) * 1000);
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  }
  std::string Payload;
  for (;;) {
    FrameReader::Status S = Reader.next(Payload);
    if (S == FrameReader::Status::Frame)
      return Payload;
    if (S == FrameReader::Status::Error)
      return Failure(Diag::error(
          std::string("client: response framing error: ") +
          FrameReader::errorName(Reader.error())));
    char Buf[4096];
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Failure(Diag::error("client: timed out waiting for response"));
      return Failure(Diag::error(std::string("client: read failed: ") +
                                 std::strerror(errno)));
    }
    if (N == 0)
      return Failure(Diag::error(
          Reader.midFrame()
              ? "client: connection closed mid-frame (truncated response)"
              : "client: connection closed"));
    Reader.feed(Buf, static_cast<size_t>(N));
  }
}

ErrorOr<std::string> ClientConn::call(std::string_view Payload,
                                      uint64_t RecvTimeoutMillis) {
  if (!sendFrame(Payload))
    return Failure(Diag::error("client: send failed"));
  return recvFrame(RecvTimeoutMillis);
}

ErrorOr<ClientConn> serve::connectUnix(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Failure(Diag::error("client: socket path too long: '" + Path + "'"));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Failure(Diag::error("client: socket(AF_UNIX) failed"));
  setCloexecFd(Fd);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int E = errno;
    ::close(Fd);
    return Failure(Diag::error("client: cannot connect to '" + Path +
                               "': " + std::strerror(E)));
  }
  return ClientConn(Fd);
}

ErrorOr<ClientConn> serve::connectTcp(int Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Failure(Diag::error("client: socket(AF_INET) failed"));
  setCloexecFd(Fd);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int E = errno;
    ::close(Fd);
    return Failure(Diag::error("client: cannot connect to 127.0.0.1:" +
                               std::to_string(Port) + ": " +
                               std::strerror(E)));
  }
  return ClientConn(Fd);
}
