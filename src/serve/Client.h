//===- serve/Client.h - Framed-protocol client helpers -------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client side of the irlt-serve wire protocol, shared by
/// tools/irlt-servectl, the serve integration tests, and
/// bench/bench_serve. Deliberately low-level (a connected fd plus
/// frame send/recv) so the fault-injection paths of servectl can also
/// write deliberately broken bytes on the same socket.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SERVE_CLIENT_H
#define IRLT_SERVE_CLIENT_H

#include "serve/Frame.h"
#include "support/ErrorOr.h"

#include <string>
#include <string_view>

namespace irlt {
namespace serve {

/// A connected client socket (RAII). Obtain via connectUnix/connectTcp.
class ClientConn {
public:
  ClientConn() = default;
  explicit ClientConn(int Fd) : Fd(Fd) {}
  ClientConn(ClientConn &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  ClientConn &operator=(ClientConn &&O) noexcept;
  ~ClientConn();

  ClientConn(const ClientConn &) = delete;
  ClientConn &operator=(const ClientConn &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Frames \p Payload and writes it. Under \p StallMillis > 0 the bytes
  /// go out one at a time with that delay between them - the slow-client
  /// fault shape (the server's SO_SNDTIMEO is on its *writes*; slow
  /// request bytes must merely be tolerated).
  bool sendFrame(std::string_view Payload, uint64_t StallMillis = 0);

  /// Writes raw bytes verbatim (the broken-frame fault shapes).
  bool sendRaw(std::string_view Bytes);

  /// Half-closes the write side, signalling "no more requests" while
  /// responses keep flowing.
  void finishWrites();

  /// Reads the next response frame's payload. Fails on EOF, a framing
  /// error, or (RecvTimeoutMillis > 0) a receive timeout.
  ErrorOr<std::string> recvFrame(uint64_t RecvTimeoutMillis = 0);

  /// sendFrame + recvFrame in one shot - the health-probe and inline-op
  /// fan-out shape irlt-front reuses on its long-lived per-shard
  /// connections. Requires no frames outstanding on this connection.
  ErrorOr<std::string> call(std::string_view Payload,
                            uint64_t RecvTimeoutMillis = 0);

  /// Detaches and returns the fd (the caller owns it; this connection
  /// becomes invalid). The front hands the fd to a dedicated response-
  /// reader thread while request writes keep targeting the raw fd.
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }

private:
  int Fd = -1;
  FrameReader Reader;
};

/// Connects to a Unix-domain serve socket.
ErrorOr<ClientConn> connectUnix(const std::string &Path);
/// Connects to a loopback TCP serve socket.
ErrorOr<ClientConn> connectTcp(int Port);

} // namespace serve
} // namespace irlt

#endif // IRLT_SERVE_CLIENT_H
