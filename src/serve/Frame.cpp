//===- serve/Frame.cpp - Length-prefixed wire framing for irlt-serve -----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Frame.h"

#include <cassert>
#include <cstring>

using namespace irlt;
using namespace irlt::serve;

std::string serve::encodeFrame(std::string_view Payload) {
  std::string Out;
  Out.reserve(FrameHeaderBytes + Payload.size());
  Out.append(FrameMagic, sizeof(FrameMagic));
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  // Little-endian length, written byte by byte for platform independence.
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((Len >> (8 * I)) & 0xff));
  Out.append(Payload.data(), Payload.size());
  return Out;
}

const char *FrameReader::errorName(Error E) {
  switch (E) {
  case Error::None:
    return "none";
  case Error::BadMagic:
    return "bad_magic";
  case Error::Oversized:
    return "oversized_frame";
  }
  return "?";
}

void FrameReader::feed(const char *Data, size_t Len) {
  if (Err != Error::None)
    return;
  // Bounded buffering: a complete header plus one maximal payload is all
  // a well-formed stream can require before next() drains it; anything
  // beyond that is accepted too (multiple small frames per feed), but an
  // oversized *declared* length errors out in next() before its payload
  // is ever awaited, so a length-prefix lie cannot balloon memory.
  Buf.append(Data, Len);
}

FrameReader::Status FrameReader::next(std::string &PayloadOut) {
  if (Err != Error::None)
    return Status::Error;
  if (Buf.size() < FrameHeaderBytes)
    return Status::NeedMore;
  if (std::memcmp(Buf.data(), FrameMagic, sizeof(FrameMagic)) != 0) {
    Err = Error::BadMagic;
    return Status::Error;
  }
  uint32_t Len = 0;
  for (int I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<unsigned char>(Buf[4 + I]))
           << (8 * I);
  if (Len > MaxPayload) {
    Err = Error::Oversized;
    return Status::Error;
  }
  if (Buf.size() < FrameHeaderBytes + Len)
    return Status::NeedMore;
  PayloadOut.assign(Buf, FrameHeaderBytes, Len);
  Buf.erase(0, FrameHeaderBytes + Len);
  return Status::Frame;
}
