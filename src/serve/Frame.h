//===- serve/Frame.h - Length-prefixed wire framing for irlt-serve -------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol of irlt-serve (docs/SERVE.md). One frame is
///
///   offset 0   4-byte magic "IRL1"
///   offset 4   u32 little-endian payload length (bounded by the
///              receiver's MaxPayloadBytes)
///   offset 8   payload: one JSON object, the same ndjson record bodies
///              the batch engine speaks (engine/Wire.h, schema_version 1)
///
/// The parser is a pure incremental state machine - no sockets, no
/// timing - so the exact same code path handles a maximally fragmented
/// stream (one byte per feed), a byte-exact round-trip of the emitter's
/// output, and adversarial input. Error taxonomy:
///
///   BadMagic        the stream is not positioned at a frame; since the
///                   byte stream cannot be resynchronized, the
///                   connection must be closed after reporting
///   Oversized       the declared length exceeds the receiver's bound;
///                   detected *before* buffering the payload, so a
///                   length-prefix lie cannot balloon memory
///   (short read)    end-of-stream mid-frame is the transport's signal;
///                   midFrame() lets the caller classify it
///
/// Parse-reject symmetry (pinned by irlt-fuzz --wire): encodeFrame's
/// output always parses back to the identical payload, and every stream
/// the parser rejects is rejected deterministically at the same byte on
/// every run.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SERVE_FRAME_H
#define IRLT_SERVE_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace irlt {
namespace serve {

/// The 4 magic bytes every frame starts with.
inline constexpr char FrameMagic[4] = {'I', 'R', 'L', '1'};
inline constexpr size_t FrameHeaderBytes = 8;

/// Default per-frame payload bound (4 MiB).
inline constexpr size_t DefaultMaxPayloadBytes = 4u << 20;

/// Renders one frame (header + payload).
std::string encodeFrame(std::string_view Payload);

/// Incremental frame parser. feed() bytes as they arrive, then next()
/// until it stops returning Frame. Bounded memory: at most header +
/// MaxPayloadBytes are ever buffered.
class FrameReader {
public:
  explicit FrameReader(size_t MaxPayloadBytes = DefaultMaxPayloadBytes)
      : MaxPayload(MaxPayloadBytes) {}

  enum class Status {
    NeedMore, ///< no complete frame buffered yet
    Frame,    ///< one frame extracted into the out-param
    Error,    ///< unrecoverable stream error; see error()
  };

  enum class Error {
    None,
    BadMagic,  ///< bytes at the frame position are not a frame header
    Oversized, ///< declared payload length exceeds the receiver's bound
  };

  /// Appends raw transport bytes. No-op after an error (the stream is
  /// dead; the caller reports and closes).
  void feed(const char *Data, size_t Len);
  void feed(std::string_view Data) { feed(Data.data(), Data.size()); }

  /// Extracts the next complete frame's payload.
  Status next(std::string &PayloadOut);

  Error error() const { return Err; }
  /// A human-readable rendering of error() for structured rejects.
  static const char *errorName(Error E);

  /// True when the stream ended (caller saw EOF) in the middle of a
  /// frame - the "short read / truncated frame" classification.
  bool midFrame() const { return Err == Error::None && !Buf.empty(); }

  /// Bytes currently buffered (bounded by header + max payload).
  size_t bufferedBytes() const { return Buf.size(); }

  size_t maxPayloadBytes() const { return MaxPayload; }

private:
  size_t MaxPayload;
  std::string Buf;
  Error Err = Error::None;
};

} // namespace serve
} // namespace irlt

#endif // IRLT_SERVE_FRAME_H
