//===- serve/Journal.cpp - Crash-safe cache-warmth persistence -----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Journal.h"

#include "engine/Engine.h"
#include "ir/NestHash.h"
#include "support/Json.h"
#include "support/MathUtils.h"

#include <cstdio>
#include <fstream>
#include <unistd.h>

using namespace irlt;
using namespace irlt::serve;

// Map key: canonicalNestKey '\x01' script. '\x01' cannot occur in a
// fingerprint (it renders printable structure), so the split is
// unambiguous and distinct scripts against one nest journal separately.
static std::string mapKey(const std::string &NestKey,
                          const std::string &Script) {
  return NestKey + '\x01' + Script;
}

void CacheJournal::record(const std::string &NestKey,
                          const std::string &NestSource,
                          const std::string &Script) {
  if (NestKey.empty())
    return;
  JournalEntry E;
  E.NestSource = NestSource;
  E.Script = Script;
  std::lock_guard<std::mutex> Lock(Mu);
  Map.insert(mapKey(NestKey, Script),
             std::make_shared<const JournalEntry>(std::move(E)));
}

size_t CacheJournal::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

ErrorOr<uint64_t> CacheJournal::dump(const std::string &Path,
                                     const FaultConfig &Faults) const {
  // Snapshot under the lock, write outside it (file I/O must not stall
  // the serve workers' record() calls).
  struct Row {
    std::string NestKey;
    std::string NestSource;
    std::string Script;
  };
  std::vector<Row> Rows;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Rows.reserve(Map.size());
    Map.forEachLruToMru([&](const std::string &Key, const JournalEntry &E) {
      Rows.push_back({Key.substr(0, Key.find('\x01')), E.NestSource, E.Script});
    });
  }

  // Temp file in the same directory, so rename() is atomic (same fs).
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Failure(
          Diag::error("cache dump: cannot open '" + Tmp + "' for writing"));

    json::JsonWriter Header;
    json::beginToolRecord(Header, "irlt-serve");
    Header.field("record", "cache_dump");
    Header.field("entries", static_cast<uint64_t>(Rows.size()));
    Header.endObject();
    Out << Header.str() << '\n';

    uint64_t Written = 0;
    for (const Row &R : Rows) {
      // The deterministic SIGKILL-mid-dump stand-in: half the entries
      // land in the temp file, then the process dies before the rename.
      // Recovery must see the previous complete dump (or none), and a
      // load pointed directly at this temp file must keep its prefix.
      if (Faults.DumpPartial && Written == Rows.size() / 2 + 1) {
        Out.flush();
        _exit(137);
      }
      json::JsonWriter W;
      W.beginObject();
      W.field("record", "entry");
      W.field("key", R.NestKey);
      W.field("nest", R.NestSource);
      W.field("script", R.Script);
      W.endObject();
      Out << W.str() << '\n';
      ++Written;
    }

    json::JsonWriter End;
    End.beginObject();
    End.field("record", "cache_dump_end");
    End.field("entries", Written);
    End.endObject();
    Out << End.str() << '\n';
    Out.flush();
    if (!Out)
      return Failure(Diag::error("cache dump: write to '" + Tmp + "' failed"));
  }

  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Failure(Diag::error("cache dump: rename '" + Tmp + "' -> '" + Path +
                               "' failed"));
  }
  return static_cast<uint64_t>(Rows.size());
}

JournalLoadResult CacheJournal::loadAndReplay(const std::string &Path,
                                              api::Pipeline &P,
                                              const FaultConfig &Faults) {
  JournalLoadResult R;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return R;
  R.FileFound = true;
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());

  bool SawEnd = false;
  for (std::string &Line : engine::splitLines(Text)) {
    if (Line.empty())
      continue;
    bool IsEntry = Line.find("\"entry\"") != std::string::npos;
    // Deterministic corruption fault: mangle every entry line's leading
    // byte so it fails to parse, driving the discard path end to end.
    if (Faults.CacheCorrupt && IsEntry)
      Line[0] = '#';

    ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Line);
    if (!Doc || !Doc->isObject()) {
      ++R.Discarded;
      continue;
    }
    std::string Kind = Doc->stringOr("record");
    if (Kind == "cache_dump") // header
      continue;
    if (Kind == "cache_dump_end") {
      SawEnd = true;
      continue;
    }
    if (Kind != "entry") {
      ++R.Discarded;
      continue;
    }

    std::string Key = Doc->stringOr("key");
    std::string NestSource = Doc->stringOr("nest");
    std::string Script = Doc->stringOr("script");
    if (Key.empty() || NestSource.empty()) {
      ++R.Discarded;
      continue;
    }
    ++R.Loaded;

    // Replay: recompute everything from the recorded sources. The
    // journaled key is cross-checked against the freshly computed
    // fingerprint - a stale or tampered entry warms nothing.
    ErrorOr<LoopNest> NestOr = P.loadNest(NestSource);
    if (!NestOr) {
      ++R.Discarded;
      continue;
    }
    LoopNest Nest = NestOr.take();
    {
      OverflowGuard Guard;
      std::string Fresh = canonicalNestKey(Nest);
      if (Guard.triggered() || Fresh != Key) {
        ++R.Discarded;
        continue;
      }
    }
    bool DepOverflow = false;
    P.dependences(Nest, &DepOverflow);
    if (DepOverflow) {
      ++R.Discarded;
      continue;
    }
    if (!Script.empty()) {
      ErrorOr<TransformSequence> SeqOr = P.parseScript(Script, Nest.numLoops());
      if (!SeqOr) {
        ++R.Discarded;
        continue;
      }
      P.checkLegality(*SeqOr, Nest); // warms the legality cache
    }
    ++R.Replayed;
    record(Key, NestSource, Script);
  }
  R.Truncated = !SawEnd;
  return R;
}
