//===- serve/Journal.h - Crash-safe cache-warmth persistence -------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache persistence for irlt-serve (docs/SERVE.md). The daemon's value
/// is its warm fingerprint-keyed memoization caches (BENCH_batch: 239 ->
/// 419 req/s at 98%/95% hit rates); this journal carries that warmth
/// across restarts *without ever trusting serialized analysis results*:
/// it records the cache-warming **sources** - canonicalNestKey, the nest
/// source text, and the script text - and a restart replays them through
/// the Pipeline, recomputing dependence sets and legality verdicts from
/// scratch. Recompute-on-load makes the persistence layer sound by
/// construction (a corrupt or stale entry can at worst waste replay
/// time, never poison a verdict) and keeps the serve determinism
/// contract trivial: responses are byte-identical with a cold, warm, or
/// restored cache.
///
/// Crash safety: dump() writes a temp file in the target directory and
/// atomically rename()s it over the destination, so a SIGKILL mid-dump
/// leaves the previous complete dump (or no file) - never a torn one.
/// load() is nevertheless fully tolerant of torn/corrupt files (a
/// partial temp file could be mistaken for a dump by an operator, and
/// disks corrupt): every line is independently validated and bad lines
/// are counted and skipped, so the daemon always starts.
///
/// File format (ndjson, schema_version 1):
///
///   {"schema_version":1,"tool":"irlt-serve","record":"cache_dump", ...}
///   {"record":"entry","key":K,"nest":N,"script":S}      (LRU -> MRU)
///   {"record":"cache_dump_end","entries":N}
///
//======---------------------------------------------------------------------//

#ifndef IRLT_SERVE_JOURNAL_H
#define IRLT_SERVE_JOURNAL_H

#include "api/Pipeline.h"
#include "support/FaultInject.h"
#include "support/Lru.h"

#include <cstdint>
#include <mutex>
#include <string>

namespace irlt {
namespace serve {

/// One journaled cache-warming source.
struct JournalEntry {
  std::string NestSource;
  /// Empty for auto-mode requests (replay then only warms the
  /// dependence cache - the proven lever).
  std::string Script;
};

/// What load() did; surfaced in /statz and the startup log record.
struct JournalLoadResult {
  bool FileFound = false;
  uint64_t Loaded = 0;    ///< entries accepted from the file
  uint64_t Replayed = 0;  ///< entries that replayed cleanly
  uint64_t Discarded = 0; ///< malformed lines / failed replays skipped
  /// The file ended without its cache_dump_end trailer (torn write by a
  /// non-atomic writer, or a partial temp file): valid prefix kept.
  bool Truncated = false;
};

/// Thread-safe bounded journal of cache-warming sources. The serve
/// workers record() every successfully parsed request; dump()/load()
/// persist across restarts.
class CacheJournal {
public:
  /// \p Capacity bounds resident entries (LRU eviction); 0 = unbounded.
  explicit CacheJournal(size_t Capacity) : Map(Capacity) {}

  /// Records one cache-warming source, keyed by canonicalNestKey plus
  /// the script rendering (so distinct scripts against one nest each
  /// persist). No-op on an empty key.
  void record(const std::string &NestKey, const std::string &NestSource,
              const std::string &Script);

  size_t size() const;

  /// Atomically writes the journal to \p Path (temp file + rename).
  /// Under FaultConfig::DumpPartial, writes roughly half the entries to
  /// the temp file and _exit()s - the deterministic stand-in for a
  /// SIGKILL mid-dump, which the crash-recovery integration test uses.
  /// Returns the number of entries dumped, or a diagnostic on I/O error.
  ErrorOr<uint64_t> dump(const std::string &Path,
                         const FaultConfig &Faults = {}) const;

  /// Loads \p Path (tolerantly; see file comment), replays every valid
  /// entry through \p P to rewarm its caches, and records the entries
  /// into this journal so the next dump carries them forward. Under
  /// FaultConfig::CacheCorrupt every entry line is deterministically
  /// corrupted first (exercising the discard path end to end).
  JournalLoadResult loadAndReplay(const std::string &Path, api::Pipeline &P,
                                  const FaultConfig &Faults = {});

private:
  mutable std::mutex Mu;
  LruMap<JournalEntry> Map;
};

} // namespace serve
} // namespace irlt

#endif // IRLT_SERVE_JOURNAL_H
