//===- serve/Server.cpp - The irlt-serve daemon core ---------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "engine/Engine.h"
#include "support/Json.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace irlt;
using namespace irlt::serve;

namespace {

void setCloexec(int Fd) {
  int Flags = fcntl(Fd, F_GETFD);
  if (Flags >= 0)
    fcntl(Fd, F_SETFD, Flags | FD_CLOEXEC);
}

/// Writes all of \p Data, riding out partial writes and EINTR. The
/// socket carries SO_SNDTIMEO, so a stalled client surfaces as a write
/// error here instead of wedging a worker.
bool writeAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One client connection. The reader thread and any number of queued
/// jobs share it via shared_ptr; the destructor (last reference) closes
/// the socket, so responses can still flow after the client half-closes
/// its write side.
struct Conn {
  int Fd = -1;
  /// Next sequence number to assign (reader thread only).
  uint64_t NextSeq = 0;

  /// Reorder buffer: responses are written strictly in request order.
  std::mutex WriteMu;
  std::map<uint64_t, std::string> Pending;
  uint64_t NextWrite = 0;
  bool Dead = false;

  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }
};
using ConnPtr = std::shared_ptr<Conn>;

/// One admitted request. LineNo is the request's *logical* line number:
/// Seq + 1 for a directly connected client, or the line_no a "fwd"
/// envelope carried (irlt-front multiplexes many client connections onto
/// one worker connection, so the worker-side sequence number would
/// otherwise leak into default ids and parse-error messages and break
/// the byte-identity contract).
struct Job {
  ConnPtr C;
  uint64_t Seq = 0;
  uint64_t LineNo = 0;
  std::string Payload;
  std::string Id;
  engine::DeadlineToken Deadline;
};

/// Reader-thread bookkeeping: joined opportunistically by the accept
/// loop (Done) and finally at drain.
struct ReaderSlot {
  std::thread T;
  std::atomic<bool> Done{false};
};

} // namespace

struct Server::Impl {
  ServeOptions Opts;
  engine::EngineOptions EO;
  api::Pipeline P;
  CacheJournal Journal;
  ServerStats Stats;
  JournalLoadResult Loaded;
  std::atomic<uint64_t> Persisted{0};

  int ListenFd = -1;
  int BoundPort = 0;
  int PipeR = -1, PipeW = -1;

  std::atomic<bool> Draining{false};

  // Admission queue.
  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<Job> Queue;
  bool ReadersDone = false;

  // Live reader-side sockets, so drain can wake blocked reads.
  std::mutex ConnMu;
  std::set<int> LiveFds;

  std::thread AcceptThread;
  std::vector<std::unique_ptr<ReaderSlot>> Readers; // accept thread only
  std::vector<std::thread> Workers;

  explicit Impl(ServeOptions O)
      : Opts(std::move(O)),
        P(api::PipelineOptions{Opts.EnableCache, {}, Opts.CacheCapacity}),
        Journal(Opts.JournalCapacity) {
    EO.EnableCache = Opts.EnableCache;
    EO.CacheCapacity = Opts.CacheCapacity;
    EO.MaxLineBytes = Opts.MaxLineBytes;
    EO.Faults = Opts.Faults;
    EO.ToolName = "irlt-serve";
    EO.CollectNestKeys = !Opts.PersistPath.empty();
  }

  ErrorOr<bool> bindSocket();
  void acceptLoop();
  void readerLoop(ConnPtr C);
  void workerLoop();
  void dispatch(const ConnPtr &C, uint64_t Seq, std::string Payload);
  void deliver(const ConnPtr &C, uint64_t Seq, const std::string &Record);
  std::string healthzRecord(const std::string &Id);
  std::string statzRecord(const std::string &Id);
  std::string persistRecord(const std::string &Id);
};

//===----------------------------------------------------------------------===//
// Socket setup
//===----------------------------------------------------------------------===//

ErrorOr<bool> Server::Impl::bindSocket() {
  if (!Opts.SocketPath.empty() && Opts.TcpPort >= 0)
    return Failure(Diag::error("serve: --socket and --port are exclusive"));
  if (Opts.SocketPath.empty() && Opts.TcpPort < 0)
    return Failure(Diag::error("serve: need --socket PATH or --port N"));

  if (!Opts.SocketPath.empty()) {
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    if (Opts.SocketPath.size() >= sizeof(Addr.sun_path))
      return Failure(Diag::error("serve: socket path too long: '" +
                                 Opts.SocketPath + "'"));
    std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
                Opts.SocketPath.size() + 1);
    ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Failure(Diag::error("serve: socket(AF_UNIX) failed"));
    setCloexec(ListenFd);
    ::unlink(Opts.SocketPath.c_str()); // stale socket from a crashed run
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0)
      return Failure(Diag::error("serve: cannot bind '" + Opts.SocketPath +
                                 "': " + std::strerror(errno)));
  } else {
    ListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return Failure(Diag::error("serve: socket(AF_INET) failed"));
    setCloexec(ListenFd);
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(static_cast<uint16_t>(Opts.TcpPort));
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0)
      return Failure(
          Diag::error("serve: cannot bind 127.0.0.1:" +
                      std::to_string(Opts.TcpPort) + ": " +
                      std::strerror(errno)));
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) ==
        0)
      BoundPort = ntohs(Bound.sin_port);
  }

  if (::listen(ListenFd, 64) < 0)
    return Failure(Diag::error(std::string("serve: listen failed: ") +
                               std::strerror(errno)));
  return true;
}

//===----------------------------------------------------------------------===//
// Response delivery (per-connection completed-prefix reorder buffer)
//===----------------------------------------------------------------------===//

void Server::Impl::deliver(const ConnPtr &C, uint64_t Seq,
                           const std::string &Record) {
  std::lock_guard<std::mutex> Lock(C->WriteMu);
  C->Pending.emplace(Seq, Record);
  while (!C->Pending.empty() && C->Pending.begin()->first == C->NextWrite) {
    if (!C->Dead) {
      if (!writeAll(C->Fd, encodeFrame(C->Pending.begin()->second))) {
        C->Dead = true;
        ++Stats.WriteFailures;
      }
    }
    C->Pending.erase(C->Pending.begin());
    ++C->NextWrite;
  }
}

//===----------------------------------------------------------------------===//
// Inline ops
//===----------------------------------------------------------------------===//

std::string Server::Impl::healthzRecord(const std::string &Id) {
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-serve");
  W.field("record", "healthz");
  W.field("id", Id);
  W.field("ok", true);
  W.field("draining", Draining.load());
  W.endObject();
  return W.take();
}

std::string Server::Impl::statzRecord(const std::string &Id) {
  size_t Depth;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Depth = Queue.size();
  }
  api::CacheStats CS = P.cacheStats();
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-serve");
  W.field("record", "statz");
  W.field("id", Id);
  W.field("ok", true);
  W.field("draining", Draining.load());
  W.field("queue_depth", static_cast<uint64_t>(Depth));
  W.field("queue_capacity", static_cast<uint64_t>(Opts.QueueCapacity));
  W.field("jobs", static_cast<uint64_t>(Opts.Jobs));
  W.key("counters").beginObject();
  W.field("conns_accepted", Stats.ConnsAccepted.load());
  W.field("conns_rejected", Stats.ConnsRejected.load());
  W.field("frames_in", Stats.FramesIn.load());
  W.field("inline_ops", Stats.InlineOps.load());
  W.field("admitted", Stats.Admitted.load());
  W.field("shed", Stats.Shed.load());
  W.field("drain_rejects", Stats.DrainRejects.load());
  W.field("deadline", Stats.Deadline.load());
  W.field("served", Stats.Served.load());
  W.field("errors", Stats.Errors.load());
  W.field("bad_frames", Stats.BadFrames.load());
  W.field("write_failures", Stats.WriteFailures.load());
  W.endObject();
  W.key("cache").beginObject();
  W.field("dep_hits", CS.DepHits);
  W.field("dep_misses", CS.DepMisses);
  W.field("dep_lookups", CS.DepLookups);
  W.field("dep_inserts", CS.DepInserts);
  W.field("dep_evictions", CS.DepEvictions);
  W.field("dep_entries", CS.DepEntries);
  W.field("legality_hits", CS.LegalityHits);
  W.field("legality_misses", CS.LegalityMisses);
  W.field("legality_lookups", CS.LegalityLookups);
  W.field("legality_inserts", CS.LegalityInserts);
  W.field("legality_evictions", CS.LegalityEvictions);
  W.field("legality_entries", CS.LegalityEntries);
  W.endObject();
  W.key("journal").beginObject();
  W.field("enabled", !Opts.PersistPath.empty());
  W.field("entries", static_cast<uint64_t>(Journal.size()));
  W.field("load_found", Loaded.FileFound);
  W.field("load_loaded", Loaded.Loaded);
  W.field("load_replayed", Loaded.Replayed);
  W.field("load_discarded", Loaded.Discarded);
  W.field("load_truncated", Loaded.Truncated);
  W.endObject();
  W.endObject();
  return W.take();
}

std::string Server::Impl::persistRecord(const std::string &Id) {
  if (Opts.PersistPath.empty())
    return engine::makeErrorRecord(
        "irlt-serve", Id, engine::errkind::Request,
        "persist: persistence is disabled (daemon started without "
        "--persist)");
  ErrorOr<uint64_t> N = Journal.dump(Opts.PersistPath, Opts.Faults);
  if (!N)
    return engine::makeErrorRecord("irlt-serve", Id, engine::errkind::Internal,
                                   N.message());
  json::JsonWriter W;
  json::beginToolRecord(W, "irlt-serve");
  W.field("record", "persist");
  W.field("id", Id);
  W.field("ok", true);
  W.field("entries", *N);
  W.endObject();
  return W.take();
}

//===----------------------------------------------------------------------===//
// Dispatch (reader thread): inline ops, drain rejects, admission
//===----------------------------------------------------------------------===//

void Server::Impl::dispatch(const ConnPtr &C, uint64_t Seq,
                            std::string Payload) {
  uint64_t LineNo = Seq + 1;
  uint64_t DeadlineMs = Opts.DefaultDeadlineMillis;

  // One shallow pre-parse for routing fields; a request that fails to
  // parse here is still admitted, so the engine renders the exact
  // structured "request" error irlt-batch would.
  ErrorOr<json::JsonValue> Doc = json::JsonValue::parse(Payload);

  // The forwarding envelope: irlt-front wraps each routed request as
  // {"op":"fwd","line_no":N,"req":"<original payload>"} so the worker
  // processes the *original* bytes under the *front-side* line number -
  // default ids and parse-error messages come out byte-identical to a
  // direct single-process run. Unwrapped in a loop so a client payload
  // that is itself an envelope behaves the same whether it arrives
  // directly or re-wrapped by the front (the innermost line_no wins,
  // exactly as in the direct case). Each level strips envelope bytes,
  // so the frame bound terminates the loop.
  while (Doc && Doc->isObject() && Doc->stringOr("op") == "fwd") {
    int64_t Ln = Doc->intOr("line_no", 0);
    if (Ln > 0)
      LineNo = static_cast<uint64_t>(Ln);
    Payload = Doc->stringOr("req");
    Doc = json::JsonValue::parse(Payload);
  }

  std::string Id = std::to_string(LineNo);
  if (Doc && Doc->isObject()) {
    Id = Doc->stringOr("id", Id);
    std::string Op = Doc->stringOr("op");
    if (!Op.empty()) {
      ++Stats.InlineOps;
      if (Op == "healthz")
        deliver(C, Seq, healthzRecord(Id));
      else if (Op == "statz")
        deliver(C, Seq, statzRecord(Id));
      else if (Op == "persist")
        deliver(C, Seq, persistRecord(Id));
      else
        deliver(C, Seq,
                engine::makeErrorRecord("irlt-serve", Id,
                                        engine::errkind::Request,
                                        "unknown op '" + Op + "'"));
      return;
    }
    int64_t D = Doc->intOr("deadline_ms", -1);
    if (D >= 0)
      DeadlineMs = static_cast<uint64_t>(D);
  }

  if (Draining.load()) {
    ++Stats.DrainRejects;
    deliver(C, Seq,
            engine::makeErrorRecord("irlt-serve", Id,
                                    engine::errkind::Draining,
                                    "server is draining; request rejected"));
    return;
  }

  Job J;
  J.C = C;
  J.Seq = Seq;
  J.LineNo = LineNo;
  J.Payload = std::move(Payload);
  J.Id = Id;
  // Deadlines are measured from arrival: queue wait burns budget, so an
  // overloaded-but-not-shedding server still bounds client latency.
  if (DeadlineMs)
    J.Deadline = engine::DeadlineToken::afterMillis(DeadlineMs);

  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Queue.size() < Opts.QueueCapacity) {
      Queue.push_back(std::move(J));
      ++Stats.Admitted;
      QueueCv.notify_one();
      return;
    }
  }
  ++Stats.Shed;
  deliver(C, Seq,
          engine::makeErrorRecord(
              "irlt-serve", Id, engine::errkind::Overloaded,
              "admission queue full (" + std::to_string(Opts.QueueCapacity) +
                  " pending); retry later"));
}

//===----------------------------------------------------------------------===//
// Reader thread: socket -> FrameReader -> dispatch
//===----------------------------------------------------------------------===//

void Server::Impl::readerLoop(ConnPtr C) {
  FrameReader FR(Opts.MaxFrameBytes);
  char Buf[4096];
  // The short-read fault degrades the transport to one byte per read;
  // the frame parser must produce identical results (it is a pure
  // incremental state machine), which the fault-matrix test pins.
  size_t ReadLen = Opts.Faults.ShortRead ? 1 : sizeof(Buf);

  for (;;) {
    ssize_t N = ::read(C->Fd, Buf, ReadLen);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break; // connection error: drop
    }
    if (N == 0) {
      // EOF. Mid-frame, that is the "truncated frame" case: report it
      // on the (possibly still open) write side, then close.
      if (FR.midFrame()) {
        ++Stats.BadFrames;
        deliver(C, C->NextSeq++,
                engine::makeErrorRecord(
                    "irlt-serve", "-", engine::errkind::BadFrame,
                    "truncated frame: connection closed with " +
                        std::to_string(FR.bufferedBytes()) +
                        " bytes of an incomplete frame"));
      }
      break;
    }
    FR.feed(Buf, static_cast<size_t>(N));
    std::string Payload;
    FrameReader::Status S;
    while ((S = FR.next(Payload)) == FrameReader::Status::Frame) {
      ++Stats.FramesIn;
      uint64_t Seq = C->NextSeq++;
      dispatch(C, Seq, std::move(Payload));
      Payload.clear();
    }
    if (S == FrameReader::Status::Error) {
      // The byte stream cannot be resynchronized after a framing
      // error: one structured reject, then close.
      ++Stats.BadFrames;
      deliver(C, C->NextSeq++,
              engine::makeErrorRecord(
                  "irlt-serve", "-", engine::errkind::BadFrame,
                  std::string("framing error: ") +
                      FrameReader::errorName(FR.error())));
      break;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    LiveFds.erase(C->Fd);
  }
}

//===----------------------------------------------------------------------===//
// Worker pool
//===----------------------------------------------------------------------===//

void Server::Impl::workerLoop() {
  engine::StageSampler Sampler;
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock, [&] { return !Queue.empty() || ReadersDone; });
      if (Queue.empty())
        return; // drained: readers are done and nothing is pending
      J = std::move(Queue.front());
      Queue.pop_front();
    }

    // The worker-hang fault: wedge this worker thread *before* any
    // response exists for the marked request, so the front's pending-age
    // watchdog (not a healthz probe - the reader thread still answers
    // those) is what has to detect it and SIGKILL the process.
    if (Opts.Faults.WorkerHang &&
        J.Id.find(WorkerHangIdMarker) != std::string::npos)
      std::this_thread::sleep_for(std::chrono::hours(1));

    std::string Record;
    bool IsError = false;
    bool IsDeadline = false;
    if (J.Deadline.expired()) {
      // Expired while queued: never start work the client gave up on.
      Record = engine::makeErrorRecord(
          "irlt-serve", J.Id, engine::errkind::Deadline,
          "deadline expired before processing started");
      IsError = IsDeadline = true;
    } else {
      try {
        engine::RequestOutcome O = engine::processRequest(
            P, EO, J.Payload, J.LineNo, Sampler,
            J.Deadline.armed() ? &J.Deadline : nullptr);
        Record = std::move(O.Record);
        IsError = O.Error;
        IsDeadline = O.ErrorKind == engine::errkind::Deadline;
        if (!O.NestKey.empty())
          Journal.record(O.NestKey, O.NestSource, O.Script);
      } catch (const std::exception &E) {
        Record = engine::makeErrorRecord(
            "irlt-serve", J.Id, engine::errkind::Internal,
            std::string("internal: worker exception: ") + E.what());
        IsError = true;
      }
    }
    if (IsError)
      ++Stats.Errors;
    if (IsDeadline)
      ++Stats.Deadline;
    ++Stats.Served;
    deliver(J.C, J.Seq, Record);

    // The worker-kill fault: crash the whole process right *after* the
    // marked request's response went out (so that response is already
    // byte-identical to a fault-free run) but with every other in-flight
    // request on this process stranded - exactly the recovery surface
    // the front must cover with "shard_down" rejects and a restart. The
    // journal is dumped first so the restart is warm, standing in for
    // the periodic persist a production deployment would run.
    if (Opts.Faults.WorkerKill &&
        J.Id.find(WorkerKillIdMarker) != std::string::npos) {
      if (!Opts.PersistPath.empty())
        (void)Journal.dump(Opts.PersistPath, FaultConfig());
      _exit(137);
    }
  }
}

//===----------------------------------------------------------------------===//
// Accept loop + drain
//===----------------------------------------------------------------------===//

void Server::Impl::acceptLoop() {
  for (;;) {
    pollfd Fds[2] = {{ListenFd, POLLIN, 0}, {PipeR, POLLIN, 0}};
    if (::poll(Fds, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Fds[1].revents) {
      Draining.store(true);
      break;
    }
    if (!(Fds[0].revents & POLLIN))
      continue;

    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    setCloexec(Fd);

    // Reap finished readers so MaxConns gates *live* connections.
    for (size_t I = 0; I < Readers.size();) {
      if (Readers[I]->Done.load()) {
        Readers[I]->T.join();
        Readers.erase(Readers.begin() + static_cast<ptrdiff_t>(I));
      } else {
        ++I;
      }
    }

    if (Opts.WriteTimeoutMillis) {
      timeval Tv{};
      Tv.tv_sec = static_cast<time_t>(Opts.WriteTimeoutMillis / 1000);
      Tv.tv_usec =
          static_cast<suseconds_t>((Opts.WriteTimeoutMillis % 1000) * 1000);
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
    }

    if (Readers.size() >= Opts.MaxConns) {
      ++Stats.ConnsRejected;
      writeAll(Fd, encodeFrame(engine::makeErrorRecord(
                       "irlt-serve", "-", engine::errkind::Overloaded,
                       "connection limit reached (" +
                           std::to_string(Opts.MaxConns) + ")")));
      ::close(Fd);
      continue;
    }

    ++Stats.ConnsAccepted;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      LiveFds.insert(Fd);
    }
    auto Slot = std::make_unique<ReaderSlot>();
    ReaderSlot *Raw = Slot.get();
    Raw->T = std::thread([this, C, Raw]() mutable {
      readerLoop(std::move(C));
      Raw->Done.store(true);
    });
    Readers.push_back(std::move(Slot));
  }

  ::close(ListenFd);
  ListenFd = -1;
}

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

Server::Server(ServeOptions Opts) : M(std::make_unique<Impl>(std::move(Opts))) {}

Server::~Server() {
  // Safety net for a started-but-never-run() server (error paths in the
  // tool): drain so every thread is joined before members are torn down.
  if (M->AcceptThread.joinable()) {
    requestDrain();
    run();
  }
  if (M->PipeR >= 0)
    ::close(M->PipeR);
  if (M->PipeW >= 0)
    ::close(M->PipeW);
  if (M->ListenFd >= 0)
    ::close(M->ListenFd);
  if (!M->Opts.SocketPath.empty())
    ::unlink(M->Opts.SocketPath.c_str());
}

ErrorOr<bool> Server::start() {
  ErrorOr<bool> Bound = M->bindSocket();
  if (!Bound)
    return Bound;

  int Pipe[2];
  if (::pipe(Pipe) != 0)
    return Failure(Diag::error("serve: pipe() failed"));
  M->PipeR = Pipe[0];
  M->PipeW = Pipe[1];
  setCloexec(M->PipeR);
  setCloexec(M->PipeW);

  if (!M->Opts.PersistPath.empty())
    M->Loaded =
        M->Journal.loadAndReplay(M->Opts.PersistPath, M->P, M->Opts.Faults);

  unsigned Jobs = M->Opts.Jobs ? M->Opts.Jobs : 1;
  for (unsigned I = 0; I < Jobs; ++I)
    M->Workers.emplace_back([this] { M->workerLoop(); });
  M->AcceptThread = std::thread([this] { M->acceptLoop(); });
  return true;
}

bool Server::run() {
  M->AcceptThread.join();

  // Drain: wake every blocked reader; buffered complete frames still
  // dispatch ("draining" rejects from here on), then readers exit.
  {
    std::lock_guard<std::mutex> Lock(M->ConnMu);
    for (int Fd : M->LiveFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (auto &Slot : M->Readers)
    Slot->T.join();
  M->Readers.clear();

  // Every admitted request completes: workers exit only on empty queue.
  {
    std::lock_guard<std::mutex> Lock(M->QueueMu);
    M->ReadersDone = true;
  }
  M->QueueCv.notify_all();
  for (std::thread &W : M->Workers)
    W.join();
  M->Workers.clear();

  if (!M->Opts.PersistPath.empty()) {
    ErrorOr<uint64_t> N = M->Journal.dump(M->Opts.PersistPath, M->Opts.Faults);
    if (N)
      M->Persisted.store(*N);
  }
  return M->Stats.WriteFailures.load() == 0;
}

void Server::requestDrain() {
  // write() is async-signal-safe; this is the whole point of the pipe.
  if (M->PipeW >= 0) {
    char B = 1;
    [[maybe_unused]] ssize_t N = ::write(M->PipeW, &B, 1);
  }
}

int Server::boundPort() const { return M->BoundPort; }
const ServerStats &Server::stats() const { return M->Stats; }
const JournalLoadResult &Server::journalLoad() const { return M->Loaded; }
uint64_t Server::persistedEntries() const { return M->Persisted.load(); }
