//===- serve/Server.h - The irlt-serve daemon core -----------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived service core behind tools/irlt-serve (docs/SERVE.md):
/// accepts framed connections (serve/Frame.h) on a Unix-domain or
/// loopback TCP socket, admits request frames into a bounded queue, and
/// executes them on a worker pool that shares one api::Pipeline - the
/// same engine::processRequest core as irlt-batch, so a given request
/// line produces a byte-identical result record in both tools, with a
/// cold, warm, or journal-restored cache, at any worker count.
///
/// Robustness structure:
///
///   admission    the queue is bounded (QueueCapacity); a full queue
///                sheds the request with a structured "overloaded"
///                record instead of queueing unboundedly
///   deadlines    each request carries deadline_ms (or the server
///                default), measured from *arrival*; expiry cancels at
///                stage boundaries with a structured "deadline" record
///   ordering     responses are delivered per-connection in request
///                order (sequence numbers + a completed-prefix reorder
///                buffer), so clients can pipeline frames
///   slow clients writes carry SO_SNDTIMEO; a stalled client loses its
///                connection, never a worker
///   bad frames   framing errors produce one structured "bad_frame"
///                record and a close - a broken client cannot wedge the
///                daemon
///   drain        requestDrain() (async-signal-safe; SIGTERM/SIGINT
///                handlers call it) stops accepting, completes every
///                admitted request, flushes every response, persists
///                the cache journal, and run() returns - zero in-flight
///                requests lost
///   persistence  serve/Journal.h: crash-safe dump on drain (and on the
///                "persist" op), tolerant replay on start
///
/// Inline ops (answered without queueing, but in-order with the
/// connection's requests): {"op":"healthz"}, {"op":"statz"},
/// {"op":"persist"}.
///
/// Forwarding envelope: {"op":"fwd","line_no":N,"req":"<payload>"}
/// processes <payload> exactly as if it had arrived as the N-th request
/// line of its connection. irlt-front (docs/FRONT.md) multiplexes many
/// client connections onto one worker connection per shard and uses the
/// envelope to keep default ids and parse-error messages - both derived
/// from the line number - byte-identical to a direct single-process run.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SERVE_SERVER_H
#define IRLT_SERVE_SERVER_H

#include "serve/Frame.h"
#include "serve/Journal.h"
#include "support/FaultInject.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace irlt {
namespace serve {

/// Daemon configuration.
struct ServeOptions {
  /// Unix-domain socket path; exclusive with TcpPort.
  std::string SocketPath;
  /// >= 0: listen on 127.0.0.1:TcpPort instead (0 = kernel-assigned,
  /// reported by Server::boundPort()).
  int TcpPort = -1;
  /// Worker threads executing requests.
  unsigned Jobs = 1;
  /// api::Pipeline cache knobs (shared across all requests).
  bool EnableCache = true;
  size_t CacheCapacity = 0;
  /// Admission-queue bound; a full queue sheds with "overloaded".
  size_t QueueCapacity = 64;
  /// Concurrent-connection bound; excess connections get one
  /// "overloaded" record and a close.
  unsigned MaxConns = 64;
  /// Deadline applied to requests that carry none (0 = none).
  uint64_t DefaultDeadlineMillis = 0;
  /// Per-frame payload bound (serve/Frame.h).
  size_t MaxFrameBytes = DefaultMaxPayloadBytes;
  /// Engine per-line bound (oversized_line taxonomy, under the frame
  /// bound so both layers are reachable).
  size_t MaxLineBytes = 1u << 20;
  /// SO_SNDTIMEO for response writes (0 = no timeout).
  uint64_t WriteTimeoutMillis = 5000;
  /// Cache-journal file; empty disables persistence.
  std::string PersistPath;
  /// Journal capacity (entries); 0 = unbounded.
  size_t JournalCapacity = 0;
  /// Deterministic fault injection (support/FaultInject.h). The server
  /// honors ShortRead (1-byte socket reads), WorkerThrow (via the
  /// engine), DumpPartial and CacheCorrupt (via the journal), and the
  /// front-recovery faults WorkerKill (journal dump + _exit(137) after
  /// delivering a response whose id contains "kill") and WorkerHang
  /// (worker thread sleeps before processing an id containing "hang").
  FaultConfig Faults;
};

/// Monotonic counters, readable while the server runs (statz) and after
/// run() returns (the tool's exit record). Reconciliation invariant:
///   FramesIn == InlineOps + Admitted + Shed + DrainRejects
///   Admitted == Served(results) with no request lost on drain
struct ServerStats {
  std::atomic<uint64_t> ConnsAccepted{0};
  std::atomic<uint64_t> ConnsRejected{0}; ///< over MaxConns
  std::atomic<uint64_t> FramesIn{0};
  std::atomic<uint64_t> InlineOps{0};
  std::atomic<uint64_t> Admitted{0};
  std::atomic<uint64_t> Shed{0};         ///< "overloaded" rejects
  std::atomic<uint64_t> DrainRejects{0}; ///< "draining" rejects
  std::atomic<uint64_t> Deadline{0};     ///< "deadline" records
  std::atomic<uint64_t> Served{0};       ///< result records written
  std::atomic<uint64_t> Errors{0};       ///< "ok": false results
  std::atomic<uint64_t> BadFrames{0};    ///< framing errors
  std::atomic<uint64_t> WriteFailures{0};
};

/// The daemon. Lifecycle: construct, start() (binds, spawns threads; a
/// structured diagnostic on failure), run() (blocks until drained),
/// with requestDrain() callable from any thread or signal handler.
class Server {
public:
  explicit Server(ServeOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket, loads/replays the cache journal, spawns the
  /// accept loop and the worker pool.
  ErrorOr<bool> start();

  /// Blocks until a drain completes. Returns false if any response
  /// write failed (the tool maps that to a nonzero exit).
  bool run();

  /// Async-signal-safe drain trigger (writes one byte to a self-pipe).
  void requestDrain();

  /// The bound TCP port (after start(), TCP mode only; else 0).
  int boundPort() const;

  const ServerStats &stats() const;
  /// What loading PersistPath did at start().
  const JournalLoadResult &journalLoad() const;
  /// Entries dumped by the drain-time persist (0 when disabled).
  uint64_t persistedEntries() const;

private:
  struct Impl;
  std::unique_ptr<Impl> M;
};

} // namespace serve
} // namespace irlt

#endif // IRLT_SERVE_SERVER_H
