//===- serve/WireFuzz.cpp - Deterministic framing-parser fuzzing ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "serve/WireFuzz.h"

#include "fuzz/Rng.h"
#include "serve/Frame.h"

#include <algorithm>
#include <vector>

using namespace irlt;
using namespace irlt::serve;

namespace {

/// Everything observable about one parse of one byte stream.
struct ParseResult {
  std::vector<std::string> Frames;
  FrameReader::Error Err = FrameReader::Error::None;
  bool MidFrame = false;
  bool operator==(const ParseResult &O) const {
    return Frames == O.Frames && Err == O.Err && MidFrame == O.MidFrame;
  }
};

/// Parses \p Stream feeding chunk sizes drawn from \p NextChunk, draining
/// completely between feeds (the transport contract). Also checks the
/// bounded-buffering promise: outside an error state, the parser never
/// retains more than one header plus one maximal payload after a drain.
template <typename ChunkFn>
ParseResult parseWith(const std::string &Stream, size_t MaxPayload,
                      ChunkFn &&NextChunk, std::string *BoundBug) {
  FrameReader FR(MaxPayload);
  ParseResult R;
  size_t Off = 0;
  while (Off < Stream.size()) {
    size_t N = NextChunk();
    if (N > Stream.size() - Off)
      N = Stream.size() - Off;
    FR.feed(Stream.data() + Off, N);
    Off += N;
    std::string Payload;
    FrameReader::Status S;
    while ((S = FR.next(Payload)) == FrameReader::Status::Frame)
      R.Frames.push_back(Payload);
    if (S == FrameReader::Status::Error) {
      R.Err = FR.error();
      break;
    }
    if (BoundBug && FR.bufferedBytes() > FrameHeaderBytes + MaxPayload)
      *BoundBug = "parser buffered " + std::to_string(FR.bufferedBytes()) +
                  " bytes, over the header+payload bound";
  }
  R.MidFrame = FR.midFrame();
  return R;
}

} // namespace

WireFuzzStats serve::runWireFuzz(const WireFuzzOptions &Opts) {
  WireFuzzStats St;
  auto failCase = [&](uint64_t Seed, const std::string &What) {
    ++St.Failures;
    if (St.FirstFailure.empty()) {
      St.FirstFailure = What;
      St.FirstFailureSeed = Seed;
    }
  };

  for (uint64_t Case = 0; Case < Opts.Cases; ++Case) {
    ++St.Cases;
    uint64_t Seed = fuzz::caseSeed(Opts.Seed, Case);
    fuzz::Rng R(Seed);

    // Build a stream of 1..4 valid frames.
    std::vector<std::string> Payloads;
    std::string Stream;
    uint64_t NumFrames = 1 + R.below(4);
    for (uint64_t I = 0; I < NumFrames; ++I) {
      // Mostly small payloads; occasionally near the bound so the
      // oversized check's boundary is exercised from the valid side.
      size_t Len = R.percent(10)
                       ? Opts.MaxPayloadBytes - R.below(4)
                       : R.below(64);
      std::string P;
      P.reserve(Len);
      for (size_t B = 0; B < Len; ++B)
        P.push_back(static_cast<char>(R.below(256)));
      Stream += encodeFrame(P);
      Payloads.push_back(std::move(P));
    }

    // Half the cases stay clean (round-trip law); half get one mutation
    // (reject-determinism law).
    bool Mutated = R.flip();
    if (Mutated) {
      ++St.MutatedStreams;
      switch (R.below(5)) {
      case 0: // truncate: drop a tail
        Stream.resize(R.below(Stream.size() + 1));
        break;
      case 1: // corrupt one byte anywhere (magic, length, or payload)
        if (!Stream.empty()) {
          size_t At = R.below(Stream.size());
          Stream[At] = static_cast<char>(Stream[At] ^
                                         (1u << R.below(8)));
        }
        break;
      case 2: { // lying length: declare more than the bound allows
        uint32_t Lie = static_cast<uint32_t>(Opts.MaxPayloadBytes + 1 +
                                             R.below(1u << 20));
        size_t At = 4; // first frame's length field
        for (int B = 0; B < 4; ++B)
          Stream[At + static_cast<size_t>(B)] =
              static_cast<char>((Lie >> (8 * B)) & 0xff);
        break;
      }
      case 3: { // lying length: declare more than was sent (short read)
        uint32_t Lie = static_cast<uint32_t>(
            R.range(1, static_cast<int64_t>(Opts.MaxPayloadBytes)));
        for (int B = 0; B < 4; ++B)
          Stream[4 + static_cast<size_t>(B)] =
              static_cast<char>((Lie >> (8 * B)) & 0xff);
        Stream.resize(std::min(Stream.size(), size_t(8))); // header only
        break;
      }
      default: { // garbage injection at a random position
        size_t At = R.below(Stream.size() + 1);
        std::string G;
        for (uint64_t B = 0, N = 1 + R.below(16); B < N; ++B)
          G.push_back(static_cast<char>(R.below(256)));
        Stream.insert(At, G);
        break;
      }
      }
    } else {
      ++St.CleanStreams;
    }

    // Reference parse: all bytes in one feed.
    std::string BoundBug;
    ParseResult Ref = parseWith(
        Stream, Opts.MaxPayloadBytes, [&] { return Stream.size(); },
        &BoundBug);
    if (!BoundBug.empty()) {
      failCase(Seed, BoundBug);
      continue;
    }

    // Law 1: chunk-independence. One byte at a time...
    ParseResult OneByte = parseWith(
        Stream, Opts.MaxPayloadBytes, [] { return size_t(1); }, &BoundBug);
    if (!(OneByte == Ref)) {
      failCase(Seed, "1-byte chunking parsed differently from one feed");
      continue;
    }
    // ...and random chunking.
    fuzz::Rng CR(fuzz::mix64(Seed));
    ParseResult Chunked = parseWith(
        Stream, Opts.MaxPayloadBytes,
        [&] { return size_t(1 + CR.below(7)); }, &BoundBug);
    if (!(Chunked == Ref)) {
      failCase(Seed, "random chunking parsed differently from one feed");
      continue;
    }
    if (!BoundBug.empty()) {
      failCase(Seed, BoundBug);
      continue;
    }

    St.FramesParsed += Ref.Frames.size();
    if (Ref.Err != FrameReader::Error::None)
      ++St.Rejects;

    // Law 2: a clean stream round-trips exactly.
    if (!Mutated) {
      if (Ref.Err != FrameReader::Error::None) {
        failCase(Seed, "clean stream rejected: " +
                           std::string(FrameReader::errorName(Ref.Err)));
        continue;
      }
      if (Ref.MidFrame) {
        failCase(Seed, "clean stream left the parser mid-frame");
        continue;
      }
      if (Ref.Frames != Payloads) {
        failCase(Seed, "clean stream did not round-trip its payloads");
        continue;
      }
    }
    // Law 3 (mutated): no crash/hang (we got here), deterministic
    // verdict (chunk-independence above compares the verdicts), bounded
    // buffering (checked inside parseWith). Nothing else is promised:
    // a mutation may land in payload bytes and still parse.
  }
  return St;
}
