//===- serve/WireFuzz.h - Deterministic framing-parser fuzzing -----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The irlt-fuzz --wire mode (docs/SERVE.md): property-based fuzzing of
/// the serve framing parser (serve/Frame.h), fully deterministic from a
/// (seed, case index) pair like every other irlt-fuzz mode. Each case
/// builds a stream of valid frames, optionally mutates it (truncation,
/// corrupted magic, lying length prefixes, garbage injection, oversized
/// declarations), and checks the parser's contract:
///
///   round-trip     an unmutated stream parses back to exactly the
///                  encoded payloads, under *any* chunking of the bytes
///   chunk-
///   independence   feeding the same bytes 1-at-a-time, all-at-once, or
///                  in random chunks yields identical frames and errors
///   reject-
///   determinism    a mutated stream is accepted or rejected identically
///                  on every run, errors never carry payload bytes, and
///                  the parser never buffers beyond header + max payload
///   termination    next() always reaches NeedMore, Error, or end of
///                  input - no hang, no unbounded growth
///
/// A violation is returned as a failure report (case seed + phase), so
/// the fuzz driver can dump a reproducer exactly like nest-fuzz cases.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SERVE_WIREFUZZ_H
#define IRLT_SERVE_WIREFUZZ_H

#include <cstdint>
#include <string>

namespace irlt {
namespace serve {

struct WireFuzzOptions {
  uint64_t Seed = 1;
  uint64_t Cases = 1000;
  /// Parser payload bound for the run (small, so the oversized path is
  /// reachable with cheap cases).
  size_t MaxPayloadBytes = 1u << 16;
};

struct WireFuzzStats {
  uint64_t Cases = 0;
  uint64_t CleanStreams = 0;   ///< unmutated, must round-trip
  uint64_t MutatedStreams = 0; ///< mutated, must reject deterministically
  uint64_t FramesParsed = 0;
  uint64_t Rejects = 0; ///< parser errors observed (expected, counted)
  uint64_t Failures = 0;
  /// First failure's case seed and description (empty when none).
  uint64_t FirstFailureSeed = 0;
  std::string FirstFailure;
};

/// Runs the wire fuzzer. Deterministic: identical options produce
/// identical stats on every run and platform.
WireFuzzStats runWireFuzz(const WireFuzzOptions &Opts);

} // namespace serve
} // namespace irlt

#endif // IRLT_SERVE_WIREFUZZ_H
