//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal hand-rolled RTTI in the style of llvm/Support/Casting.h.
/// A class hierarchy opts in by providing a Kind discriminator and a
/// static `classof(const Base *)` predicate on each subclass.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_CASTING_H
#define IRLT_SUPPORT_CASTING_H

#include <cassert>
#include <memory>
#include <type_traits>

namespace irlt {

/// Returns true if \p Val is an instance of To (or a subclass of it).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From> bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that the dynamic type really is To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

/// Checking downcast: returns null when the dynamic type is not To.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// dyn_cast over shared_ptr: preserves ownership of the result.
template <typename To, typename From>
std::shared_ptr<const To> dyn_cast(const std::shared_ptr<const From> &Val) {
  if (Val && isa<To>(Val.get()))
    return std::static_pointer_cast<const To>(Val);
  return nullptr;
}

} // namespace irlt

#endif // IRLT_SUPPORT_CASTING_H
