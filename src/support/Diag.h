//===- support/Diag.h - Structured diagnostics ---------------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured diagnostic record. Every fallible layer of the framework
/// (script parsing, per-stage legality checking, the bounds pipeline)
/// attaches location information - a script line, a sequence stage index,
/// the kernel-template name - instead of baking it into the message text,
/// so tools (notably irlt-fuzz's reproducer reports) can sort, group, and
/// re-render failures.
///
/// A Diag with no location fields renders as its bare message, which keeps
/// the plain-string Failure("...") idiom working unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_DIAG_H
#define IRLT_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace irlt {

/// How bad a diagnostic is. Parsers may attach notes to an error; only
/// Error severities make an ErrorOr failed.
enum class DiagSeverity { Error, Warning, Note };

/// One structured diagnostic: severity, optional script line, optional
/// sequence stage, optional kernel-template name, and the message.
struct Diag {
  DiagSeverity Severity = DiagSeverity::Error;
  /// 1-based script line, 0 when not tied to a script.
  unsigned Line = 0;
  /// 1-based stage index within a transformation sequence, 0 when none.
  unsigned Stage = 0;
  /// Kernel-template or directive name ("Block", "interchange"), may be
  /// empty.
  std::string TemplateName;
  std::string Message;

  Diag() = default;
  explicit Diag(std::string Message) : Message(std::move(Message)) {}

  static Diag error(std::string Message) { return Diag(std::move(Message)); }
  static Diag note(std::string Message) {
    Diag D(std::move(Message));
    D.Severity = DiagSeverity::Note;
    return D;
  }

  Diag &atLine(unsigned L) {
    Line = L;
    return *this;
  }
  Diag &atStage(unsigned S) {
    Stage = S;
    return *this;
  }
  Diag &inTemplate(std::string Name) {
    TemplateName = std::move(Name);
    return *this;
  }

  /// Two diagnostics are equal when every field matches; renderDiags
  /// uses this to suppress exact duplicates.
  friend bool operator==(const Diag &A, const Diag &B) {
    return A.Severity == B.Severity && A.Line == B.Line &&
           A.Stage == B.Stage && A.TemplateName == B.TemplateName &&
           A.Message == B.Message;
  }
  friend bool operator!=(const Diag &A, const Diag &B) { return !(A == B); }

  /// Renders location prefixes only when set: "line 3 (block): msg",
  /// "stage 2 (Block): msg", or the bare message.
  std::string str() const {
    std::string Out;
    if (Line)
      Out += "line " + std::to_string(Line);
    else if (Stage)
      Out += "stage " + std::to_string(Stage);
    if (!TemplateName.empty())
      Out += (Out.empty() ? "(" : " (") + TemplateName + ")";
    if (!Out.empty())
      Out += ": ";
    Out += Message;
    return Out;
  }
};

/// Renders a diagnostic list one per line (no trailing newline).
/// Identical records - every field equal - render once, at their first
/// occurrence; layered failure paths (e.g. a stage check re-reported by
/// its caller) would otherwise show the same line twice.
inline std::string renderDiags(const std::vector<Diag> &Diags) {
  std::string Out;
  for (size_t I = 0; I < Diags.size(); ++I) {
    bool Seen = false;
    for (size_t J = 0; J < I && !Seen; ++J)
      Seen = Diags[J] == Diags[I];
    if (Seen)
      continue;
    if (!Out.empty())
      Out += '\n';
    Out += Diags[I].str();
  }
  return Out;
}

} // namespace irlt

#endif // IRLT_SUPPORT_DIAG_H
