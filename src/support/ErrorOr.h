//===- support/ErrorOr.h - Lightweight result-or-diagnostic type ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework never throws: fallible operations return ErrorOr<T>, a
/// value-or-diagnostic sum type in the spirit of llvm::Expected (but
/// diagnostic payloads are plain strings; this library has a single
/// category of recoverable error - "the transformation does not apply").
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_ERROROR_H
#define IRLT_SUPPORT_ERROROR_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace irlt {

/// A failure message. Wrapped in a struct so that ErrorOr<std::string>
/// remains unambiguous.
struct Failure {
  std::string Message;
  explicit Failure(std::string Message) : Message(std::move(Message)) {}
};

/// Either a T or a failure message. Check with operator bool before
/// dereferencing.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(Failure F) : Message(std::move(F.Message)) {}

  explicit operator bool() const { return Value.has_value(); }

  const T &operator*() const {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  T &operator*() {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  const T *operator->() const { return &operator*(); }
  T *operator->() { return &operator*(); }

  /// The failure message; only valid when the result failed.
  const std::string &message() const {
    assert(!Value && "asking failed-message of a successful result");
    return Message;
  }

  /// Moves the contained value out.
  T take() {
    assert(Value && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  std::string Message;
};

} // namespace irlt

#endif // IRLT_SUPPORT_ERROROR_H
