//===- support/ErrorOr.h - Lightweight result-or-diagnostic type ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework never throws: fallible operations return ErrorOr<T>, a
/// value-or-diagnostic sum type in the spirit of llvm::Expected. A failure
/// carries one or more structured Diag records (see support/Diag.h);
/// message() renders them as text for callers that only want a string,
/// while diags() exposes the structure (stage index, template name, script
/// line) to tools such as irlt-fuzz.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_ERROROR_H
#define IRLT_SUPPORT_ERROROR_H

#include "support/Diag.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace irlt {

/// A failure: one or more diagnostics. Wrapped in a struct so that
/// ErrorOr<std::string> remains unambiguous.
struct Failure {
  std::vector<Diag> Diags;

  explicit Failure(std::string Message) {
    Diags.emplace_back(std::move(Message));
  }
  explicit Failure(Diag D) { Diags.push_back(std::move(D)); }
  explicit Failure(std::vector<Diag> Ds) : Diags(std::move(Ds)) {
    assert(!Diags.empty() && "failure with no diagnostics");
  }
};

/// Either a T or a failure diagnostic list. Check with operator bool
/// before dereferencing.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Value(std::move(Value)) {}
  ErrorOr(Failure F)
      : Diags(std::move(F.Diags)), Rendered(renderDiags(Diags)) {}

  explicit operator bool() const { return Value.has_value(); }

  const T &operator*() const {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  T &operator*() {
    assert(Value && "dereferencing failed ErrorOr");
    return *Value;
  }
  const T *operator->() const { return &operator*(); }
  T *operator->() { return &operator*(); }

  /// The failure diagnostics rendered as text (one per line); only valid
  /// when the result failed.
  const std::string &message() const {
    assert(!Value && "asking failed-message of a successful result");
    return Rendered;
  }

  /// The structured failure diagnostics; only valid when the result
  /// failed.
  const std::vector<Diag> &diags() const {
    assert(!Value && "asking diagnostics of a successful result");
    return Diags;
  }

  /// Moves the diagnostics out, for propagating a failure into another
  /// ErrorOr without flattening it to text.
  std::vector<Diag> takeDiags() {
    assert(!Value && "taking diagnostics of a successful result");
    return std::move(Diags);
  }

  /// Moves the contained value out.
  T take() {
    assert(Value && "taking value of failed ErrorOr");
    return std::move(*Value);
  }

private:
  std::optional<T> Value;
  std::vector<Diag> Diags;
  std::string Rendered;
};

} // namespace irlt

#endif // IRLT_SUPPORT_ERROROR_H
