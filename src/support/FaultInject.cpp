//===- support/FaultInject.cpp - Deterministic fault-injection switches --===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cstdlib>

using namespace irlt;

namespace {

/// The one table the parser, the renderer, and faultKindNames() share:
/// adding a kind here is the whole registration.
struct KindEntry {
  const char *Name;
  bool FaultConfig::*Member;
};

const KindEntry Kinds[] = {
    {"short-read", &FaultConfig::ShortRead},
    {"truncated-frame", &FaultConfig::TruncatedFrame},
    {"oversized-record", &FaultConfig::OversizedRecord},
    {"lying-length", &FaultConfig::LyingLength},
    {"garbage-frame", &FaultConfig::GarbageFrame},
    {"slow-client", &FaultConfig::SlowClient},
    {"cache-corrupt", &FaultConfig::CacheCorrupt},
    {"dump-partial", &FaultConfig::DumpPartial},
    {"worker-throw", &FaultConfig::WorkerThrow},
    {"worker-kill", &FaultConfig::WorkerKill},
    {"worker-hang", &FaultConfig::WorkerHang},
    {"worker-slow-start", &FaultConfig::WorkerSlowStart},
};

} // namespace

const std::vector<std::string> &irlt::faultKindNames() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> V;
    for (const KindEntry &K : Kinds)
      V.emplace_back(K.Name);
    return V;
  }();
  return Names;
}

std::string irlt::renderFaultSpec(const FaultConfig &F) {
  std::string Spec;
  for (const KindEntry &K : Kinds) {
    if (!(F.*K.Member))
      continue;
    if (!Spec.empty())
      Spec += ',';
    Spec += K.Name;
  }
  return Spec;
}

ErrorOr<FaultConfig> irlt::parseFaultSpec(const std::string &Spec) {
  FaultConfig F;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Name = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Name.empty()) {
      if (Comma == Spec.size())
        break;
      continue; // tolerate "a,,b"
    }
    bool Known = false;
    for (const KindEntry &K : Kinds) {
      if (Name == K.Name) {
        F.*K.Member = true;
        Known = true;
        break;
      }
    }
    if (!Known) {
      std::string Valid;
      for (const std::string &N : faultKindNames()) {
        if (!Valid.empty())
          Valid += ", ";
        Valid += N;
      }
      return Failure(Diag::error("unknown fault '" + Name +
                                 "' (valid: " + Valid + ")"));
    }
  }
  return F;
}

FaultConfig irlt::faultsFromEnv(std::string *Err) {
  const char *Env = std::getenv("IRLT_FAULT");
  if (!Env || !*Env)
    return FaultConfig();
  ErrorOr<FaultConfig> F = parseFaultSpec(Env);
  if (!F) {
    if (Err)
      *Err = F.message();
    return FaultConfig();
  }
  return *F;
}
