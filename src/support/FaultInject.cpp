//===- support/FaultInject.cpp - Deterministic fault-injection switches --===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <cstdlib>

using namespace irlt;

ErrorOr<FaultConfig> irlt::parseFaultSpec(const std::string &Spec) {
  FaultConfig F;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Name = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Name.empty()) {
      if (Comma == Spec.size())
        break;
      continue; // tolerate "a,,b"
    }
    if (Name == "short-read")
      F.ShortRead = true;
    else if (Name == "truncated-frame")
      F.TruncatedFrame = true;
    else if (Name == "oversized-record")
      F.OversizedRecord = true;
    else if (Name == "lying-length")
      F.LyingLength = true;
    else if (Name == "garbage-frame")
      F.GarbageFrame = true;
    else if (Name == "slow-client")
      F.SlowClient = true;
    else if (Name == "cache-corrupt")
      F.CacheCorrupt = true;
    else if (Name == "dump-partial")
      F.DumpPartial = true;
    else if (Name == "worker-throw")
      F.WorkerThrow = true;
    else
      return Failure(Diag::error(
          "unknown fault '" + Name +
          "' (valid: short-read, truncated-frame, oversized-record, "
          "lying-length, garbage-frame, slow-client, cache-corrupt, "
          "dump-partial, worker-throw)"));
  }
  return F;
}

FaultConfig irlt::faultsFromEnv(std::string *Err) {
  const char *Env = std::getenv("IRLT_FAULT");
  if (!Env || !*Env)
    return FaultConfig();
  ErrorOr<FaultConfig> F = parseFaultSpec(Env);
  if (!F) {
    if (Err)
      *Err = F.message();
    return FaultConfig();
  }
  return *F;
}
