//===- support/FaultInject.h - Deterministic fault-injection switches ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic fault-injection harness shared by the serve
/// subsystem, the sharded front, the batch engine, and the client driver
/// (docs/SERVE.md, docs/FRONT.md). A FaultConfig is parsed from a
/// comma-separated spec - the IRLT_FAULT environment variable or an
/// explicit --fault flag - and threaded to the layer that owns each
/// failure mode:
///
///   short-read       server reads one byte per recv, exercising frame
///                    reassembly on maximally fragmented input
///   truncated-frame  client sends half a frame and closes
///   oversized-record client declares a payload above the frame cap
///   lying-length     client declares a length larger than it sends
///   garbage-frame    client sends bytes that are not a frame at all
///   slow-client      client stalls without reading its responses
///   cache-corrupt    journal loader flips one byte per entry line,
///                    exercising the discard-and-continue path
///   dump-partial     journal dump writes half the temp file and then
///                    _exit()s, simulating SIGKILL mid-dump (the rename
///                    never happens, so the previous dump survives)
///   worker-throw     the engine throws from a worker for requests whose
///                    id contains "boom", exercising the structured
///                    internal-error path
///   worker-kill      the serve worker dumps its journal and _exit(137)s
///                    right after *delivering* the response for requests
///                    whose id contains "kill" - a deterministic crash
///                    that takes every other in-flight request on that
///                    shard down with it (the front answers them with
///                    retryable "shard_down" records and restarts the
///                    worker warm from its journal)
///   worker-hang      the serve worker sleeps forever *before* processing
///                    requests whose id contains "hang" - a wedged worker
///                    the front's pending-age watchdog must SIGKILL
///   worker-slow-start irlt-serve sleeps ~1 s before binding its socket,
///                    exercising the front's bounded startup probing
///
/// Every fault is deterministic: no timers, no randomness - the same
/// traffic under the same spec fails the same way on every run, which is
/// what lets the integration tests assert exact structured errors.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_FAULTINJECT_H
#define IRLT_SUPPORT_FAULTINJECT_H

#include "support/ErrorOr.h"

#include <string>
#include <vector>

namespace irlt {

/// Which faults are armed. Default-constructed = no faults.
struct FaultConfig {
  bool ShortRead = false;
  bool TruncatedFrame = false;
  bool OversizedRecord = false;
  bool LyingLength = false;
  bool GarbageFrame = false;
  bool SlowClient = false;
  bool CacheCorrupt = false;
  bool DumpPartial = false;
  bool WorkerThrow = false;
  bool WorkerKill = false;
  bool WorkerHang = false;
  bool WorkerSlowStart = false;

  bool any() const {
    return ShortRead || TruncatedFrame || OversizedRecord || LyingLength ||
           GarbageFrame || SlowClient || CacheCorrupt || DumpPartial ||
           WorkerThrow || WorkerKill || WorkerHang || WorkerSlowStart;
  }
};

/// Parses a comma-separated fault spec ("worker-throw,dump-partial").
/// The empty string parses to no faults; an unknown name is an error
/// naming the valid kinds.
ErrorOr<FaultConfig> parseFaultSpec(const std::string &Spec);

/// parseFaultSpec(getenv("IRLT_FAULT")); an unset variable means no
/// faults, and a malformed value is reported through \p Err (the caller
/// decides whether that is fatal).
FaultConfig faultsFromEnv(std::string *Err = nullptr);

/// Every valid fault-kind name, in the canonical (documented) order.
/// Backs the tools' `--fault list` mode and keeps the parse error
/// message, the renderer, and the docs in sync from one table.
const std::vector<std::string> &faultKindNames();

/// Serializes \p F back into a parseFaultSpec-compatible comma-separated
/// spec; the empty string when no faults are armed. irlt-front uses this
/// to forward its own --fault spec to the worker processes it spawns.
std::string renderFaultSpec(const FaultConfig &F);

/// The substring of a request id that triggers worker-throw.
inline constexpr const char *WorkerThrowIdMarker = "boom";
/// The substring of a request id that triggers worker-kill.
inline constexpr const char *WorkerKillIdMarker = "kill";
/// The substring of a request id that triggers worker-hang.
inline constexpr const char *WorkerHangIdMarker = "hang";

} // namespace irlt

#endif // IRLT_SUPPORT_FAULTINJECT_H
