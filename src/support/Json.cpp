//===- support/Json.cpp - Shared JSON emitter and parser -----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace irlt;
using namespace irlt::json;

std::string json::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof(Hex), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Hex;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

void JsonWriter::separate() {
  if (Stack.empty())
    return;
  if (Stack.back() == 'v') {
    // A key was just written; the value follows with no comma.
    Stack.back() = 'o';
    return;
  }
  assert(Stack.back() == 'a' && "value inside an object needs a key first");
  if (!First.back())
    Buf += ',';
  First.back() = false;
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Buf += '{';
  Stack.push_back('o');
  First.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == 'o' && "unbalanced endObject");
  Buf += '}';
  Stack.pop_back();
  First.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Buf += '[';
  Stack.push_back('a');
  First.push_back(true);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == 'a' && "unbalanced endArray");
  Buf += ']';
  Stack.pop_back();
  First.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back() == 'o' && "key outside an object");
  if (!First.back())
    Buf += ',';
  First.back() = false;
  Buf += '"';
  Buf += escape(K);
  Buf += "\":";
  Stack.back() = 'v';
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  separate();
  Buf += '"';
  Buf += escape(V);
  Buf += '"';
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  separate();
  Buf += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  separate();
  Buf += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  separate();
  if (!std::isfinite(V)) {
    // JSON has no Inf/NaN; null is the least-surprising encoding.
    Buf += "null";
    return *this;
  }
  char Tmp[64];
  std::snprintf(Tmp, sizeof(Tmp), "%.17g", V);
  Buf += Tmp;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  separate();
  Buf += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  separate();
  Buf += "null";
  return *this;
}

JsonWriter &json::beginToolRecord(JsonWriter &W, std::string_view Tool) {
  W.beginObject();
  W.field("schema_version", static_cast<int64_t>(SchemaVersion));
  W.field("tool", Tool);
  return W;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace irlt {
namespace json {

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  ErrorOr<JsonValue> run() {
    JsonValue V;
    if (!parseValue(V))
      return Failure(Err);
    skipWs();
    if (Pos != Text.size())
      return Failure(at("trailing characters after JSON document"));
    return V;
  }

private:
  std::string at(const std::string &Msg) {
    return "json: " + Msg + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = at(Msg);
    return false;
  }

  bool consume(char C, const char *What) {
    skipWs();
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(std::string("expected ") + What);
    ++Pos;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.TheKind = JsonValue::Kind::String;
      return parseString(Out.Str);
    case 't':
      return parseLiteral("true", [&] {
        Out.TheKind = JsonValue::Kind::Bool;
        Out.Bool = true;
      });
    case 'f':
      return parseLiteral("false", [&] {
        Out.TheKind = JsonValue::Kind::Bool;
        Out.Bool = false;
      });
    case 'n':
      return parseLiteral("null", [&] { Out.TheKind = JsonValue::Kind::Null; });
    default:
      return parseNumber(Out);
    }
  }

  template <typename F> bool parseLiteral(const char *Lit, F Apply) {
    size_t N = std::string_view(Lit).size();
    if (Text.substr(Pos, N) != Lit)
      return fail(std::string("invalid literal, expected '") + Lit + "'");
    Pos += N;
    Apply();
    return true;
  }

  bool parseObject(JsonValue &Out) {
    Out.TheKind = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      std::string Key;
      if (!parseString(Key))
        return false;
      if (!consume(':', "':'"))
        return false;
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}', "'}' or ','");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.TheKind = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Elems.push_back(std::move(V));
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']', "']' or ','");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape digit");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are passed
        // through as two 3-byte sequences; the wire format never needs
        // astral characters).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    bool Digits = false;
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9') {
      ++Pos;
      Digits = true;
    }
    bool IsInt = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsInt = false;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsInt = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (!Digits)
      return fail("invalid number");
    std::string Lit(Text.substr(Start, Pos - Start));
    if (IsInt) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Lit.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out.TheKind = JsonValue::Kind::Int;
        Out.Int = V;
        return true;
      }
      // Fall through to double on int64 overflow.
    }
    Out.TheKind = JsonValue::Kind::Double;
    Out.Num = std::strtod(Lit.c_str(), nullptr);
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace json
} // namespace irlt

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (TheKind != Kind::Object)
    return nullptr;
  for (const auto &[K, V] : Members)
    if (K == Key)
      return &V;
  return nullptr;
}

std::string JsonValue::stringOr(std::string_view Key,
                                std::string Default) const {
  const JsonValue *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

int64_t JsonValue::intOr(std::string_view Key, int64_t Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V->asInt() : Default;
}

bool JsonValue::boolOr(std::string_view Key, bool Default) const {
  const JsonValue *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

ErrorOr<JsonValue> JsonValue::parse(std::string_view Text) {
  return Parser(Text).run();
}
