//===- support/Json.h - Shared JSON emitter and parser -------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one JSON surface of the project. Every machine-readable record the
/// tools emit - irlt-opt --json, irlt-search --json, irlt-batch result
/// lines, the batch engine's metrics block, and the fuzzer's reproducer
/// records - goes through JsonWriter, and every record starts with the
/// same versioned prologue ("schema_version", "tool"), so downstream
/// consumers can dispatch on one shape instead of three ad-hoc ones.
///
/// JsonValue is the matching reader, used by the batch engine's ndjson
/// wire format (docs/API.md). It is a deliberately small recursive-
/// descent parser: full JSON syntax, UTF-8 passed through verbatim,
/// numbers kept as int64 when they are exact integers.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_JSON_H
#define IRLT_SUPPORT_JSON_H

#include "support/ErrorOr.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace irlt {
namespace json {

/// Version of the unified tool-output schema. Bump when a field changes
/// meaning; adding fields is compatible and does not bump it.
inline constexpr int SchemaVersion = 1;

/// Escapes \p S for inclusion in a JSON string literal (no quotes added).
std::string escape(std::string_view S);

/// A streaming JSON writer with correct comma/nesting bookkeeping. All
/// methods return *this for chaining; misuse (value without a key inside
/// an object, unbalanced end) trips an assertion.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits an object key; must be directly inside an object.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(const std::string &V) {
    return value(std::string_view(V));
  }
  JsonWriter &value(int64_t V);
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int V) { return value(static_cast<int64_t>(V)); }
  JsonWriter &value(unsigned V) { return value(static_cast<uint64_t>(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);
  JsonWriter &null();

  /// key(K).value(V) in one call.
  template <typename T> JsonWriter &field(std::string_view K, T &&V) {
    key(K);
    return value(std::forward<T>(V));
  }
  JsonWriter &nullField(std::string_view K) {
    key(K);
    return null();
  }

  /// The accumulated text. Valid once every begin* has been balanced.
  const std::string &str() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  void separate();

  std::string Buf;
  /// Nesting stack: 'o' = object (expecting key), 'v' = object (expecting
  /// value), 'a' = array.
  std::vector<char> Stack;
  std::vector<bool> First;
};

/// Starts the standard record prologue shared by every tool:
/// {"schema_version": 1, "tool": "<tool>", ...  (object left open).
JsonWriter &beginToolRecord(JsonWriter &W, std::string_view Tool);

/// A parsed JSON document node.
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const {
    return TheKind == Kind::Int || TheKind == Kind::Double;
  }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool asBool() const { return Bool; }
  int64_t asInt() const {
    return TheKind == Kind::Int ? Int : static_cast<int64_t>(Num);
  }
  double asDouble() const {
    return TheKind == Kind::Int ? static_cast<double>(Int) : Num;
  }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Object lookup; nullptr when absent or this is not an object.
  const JsonValue *find(std::string_view Key) const;

  /// Convenience typed lookups with defaults, for flat wire records.
  std::string stringOr(std::string_view Key, std::string Default = "") const;
  int64_t intOr(std::string_view Key, int64_t Default) const;
  bool boolOr(std::string_view Key, bool Default) const;

  /// Parses one JSON document; trailing garbage is an error.
  static ErrorOr<JsonValue> parse(std::string_view Text);

private:
  friend class Parser;

  Kind TheKind = Kind::Null;
  bool Bool = false;
  int64_t Int = 0;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Elems;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

} // namespace json
} // namespace irlt

#endif // IRLT_SUPPORT_JSON_H
