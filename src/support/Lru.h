//===- support/Lru.h - Bounded LRU map with eviction accounting ----------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded least-recently-used map with deterministic eviction order
/// and explicit accounting, shared by the api::Pipeline memoization
/// caches (when a capacity is configured) and the serve subsystem's
/// cache journal. Not thread-safe by itself: callers that share an
/// LruMap across threads guard it with their own mutex, exactly like the
/// plain map it replaces.
///
/// Determinism contract: given the same sequence of lookup()/insert()
/// calls, the eviction order (and therefore the set of resident entries
/// and every counter) is identical on every run and platform - recency
/// is a pure function of the call sequence, never of time. The
/// reconciliation invariants the eviction tests pin:
///
///   inserts() - evictions() == size()
///   every lookup is counted exactly once as a hit or a miss upstream
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_LRU_H
#define IRLT_SUPPORT_LRU_H

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

namespace irlt {

/// Keyed map with LRU eviction once a capacity is set. Values are held
/// as shared_ptr<const V>, so an evicted entry stays valid for callers
/// still holding a reference (the Pipeline hands cache entries out this
/// way).
template <typename V> class LruMap {
public:
  /// \p Capacity 0 means unbounded (no eviction ever happens).
  explicit LruMap(size_t Capacity = 0) : Cap(Capacity) {}

  /// Returns the entry (refreshing its recency) or nullptr.
  std::shared_ptr<const V> lookup(const std::string &Key) {
    auto It = Index.find(Key);
    if (It == Index.end())
      return nullptr;
    Order.splice(Order.begin(), Order, It->second);
    return It->second->second;
  }

  /// Inserts \p Val unless \p Key is already present (in which case the
  /// existing entry is refreshed and returned, matching the insert-race
  /// semantics of the Pipeline caches). May evict the least-recently-used
  /// entry when over capacity.
  std::shared_ptr<const V> insert(const std::string &Key,
                                  std::shared_ptr<const V> Val) {
    auto It = Index.find(Key);
    if (It != Index.end()) {
      Order.splice(Order.begin(), Order, It->second);
      return It->second->second;
    }
    Order.emplace_front(Key, std::move(Val));
    Index.emplace(Key, Order.begin());
    ++Inserts;
    if (Cap && Order.size() > Cap) {
      Index.erase(Order.back().first);
      Order.pop_back();
      ++Evictions;
    }
    return Order.front().second;
  }

  size_t size() const { return Order.size(); }
  size_t capacity() const { return Cap; }
  uint64_t inserts() const { return Inserts; }
  uint64_t evictions() const { return Evictions; }

  void clear() {
    Order.clear();
    Index.clear();
  }

  /// Visits entries from least- to most-recently used (the order a dump
  /// wants: reloading in visit order reproduces the recency list).
  template <typename Fn> void forEachLruToMru(Fn &&F) const {
    for (auto It = Order.rbegin(); It != Order.rend(); ++It)
      F(It->first, *It->second);
  }

private:
  size_t Cap;
  /// Front = most recently used.
  std::list<std::pair<std::string, std::shared_ptr<const V>>> Order;
  std::unordered_map<std::string,
                     typename std::list<
                         std::pair<std::string, std::shared_ptr<const V>>>::
                         iterator>
      Index;
  uint64_t Inserts = 0;
  uint64_t Evictions = 0;
};

} // namespace irlt

#endif // IRLT_SUPPORT_LRU_H
