//===- support/MathUtils.h - Exact integer arithmetic helpers ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact integer helpers used throughout the framework: floor/ceil division
/// (division semantics in generated code follow Fortran-style flooring, see
/// DESIGN.md), gcd/lcm, sign, and checked multiplication.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_MATHUTILS_H
#define IRLT_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace irlt {

class OverflowGuard;

/// Sign of \p A as -1, 0, or +1.
inline int sign(int64_t A) { return (A > 0) - (A < 0); }

/// Magnitude of \p A as uint64, exact even for INT64_MIN.
inline uint64_t magnitude(int64_t A) {
  return A < 0 ? uint64_t(0) - static_cast<uint64_t>(A)
               : static_cast<uint64_t>(A);
}

inline int64_t negChecked(int64_t A);

/// Floor division: rounds the quotient toward negative infinity.
/// floorDiv(7, 2) == 3, floorDiv(-7, 2) == -4, floorDiv(7, -2) == -4.
inline int64_t floorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "floorDiv by zero");
  if (B == -1) // -INT64_MIN traps in hardware; negChecked saturates.
    return negChecked(A);
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Ceiling division: rounds the quotient toward positive infinity.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "ceilDiv by zero");
  if (B == -1)
    return negChecked(A);
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Floor modulus: result has the same sign as \p B (Fortran MODULO).
/// floorMod(-7, 2) == 1.
inline int64_t floorMod(int64_t A, int64_t B) {
  assert(B != 0 && "floorMod by zero");
  if (B == -1) // exactly zero for every A, including INT64_MIN
    return 0;
  return A - floorDiv(A, B) * B;
}

inline int64_t gcd(int64_t A, int64_t B);


/// Scoped overflow trap for coefficient arithmetic. While a guard is
/// alive on the current thread, addChecked/mulChecked record overflow
/// here and return a saturated value instead of asserting; the caller
/// checks triggered() at a clean boundary (a legality stage, a bounds
/// pipeline step) and degrades to a structured "arithmetic overflow"
/// rejection. Guards nest; the innermost one records. Without an active
/// guard the original assert fires, so invariant checking elsewhere in
/// the framework is unchanged.
class OverflowGuard {
public:
  OverflowGuard() : Prev(Active) { Active = this; }
  ~OverflowGuard() { Active = Prev; }
  OverflowGuard(const OverflowGuard &) = delete;
  OverflowGuard &operator=(const OverflowGuard &) = delete;

  bool triggered() const { return Triggered; }
  void reset() { Triggered = false; }

  /// The innermost live guard on this thread, or null.
  static OverflowGuard *active() { return Active; }

  /// Records an overflow on the innermost guard; \returns false when no
  /// guard is live (caller should assert).
  static bool record() {
    if (!Active)
      return false;
    Active->Triggered = true;
    return true;
  }

private:
  inline static thread_local OverflowGuard *Active = nullptr;
  OverflowGuard *Prev;
  bool Triggered = false;
};

/// Multiplies with overflow checking. Under an active OverflowGuard an
/// overflow is recorded and the result saturates to the int64 range;
/// otherwise the assert documents the framework's assumption that
/// coefficient arithmetic stays far from the boundary.
inline int64_t mulChecked(int64_t A, int64_t B) {
  int64_t R;
  bool Overflow = __builtin_mul_overflow(A, B, &R);
  if (Overflow) {
    [[maybe_unused]] bool Handled = OverflowGuard::record();
    assert(Handled && "integer overflow in coefficient arithmetic");
    return (A < 0) == (B < 0) ? INT64_MAX : INT64_MIN;
  }
  return R;
}

/// Adds with overflow checking; same guard/assert policy as mulChecked.
inline int64_t addChecked(int64_t A, int64_t B) {
  int64_t R;
  bool Overflow = __builtin_add_overflow(A, B, &R);
  if (Overflow) {
    [[maybe_unused]] bool Handled = OverflowGuard::record();
    assert(Handled && "integer overflow in coefficient arithmetic");
    return A > 0 ? INT64_MAX : INT64_MIN;
  }
  return R;
}

/// Negates with overflow checking (only -INT64_MIN overflows); same
/// guard/assert policy as mulChecked.
inline int64_t negChecked(int64_t A) {
  if (A == INT64_MIN) {
    [[maybe_unused]] bool Handled = OverflowGuard::record();
    assert(Handled && "integer overflow in coefficient arithmetic");
    return INT64_MAX;
  }
  return -A;
}

/// Greatest common divisor; gcd(0, 0) == 0, always non-negative. Runs on
/// uint64 magnitudes so INT64_MIN inputs (possible after checked-op
/// saturation) are exact; the one unrepresentable result, gcd == 2^63,
/// saturates under the usual guard/assert policy.
inline int64_t gcd(int64_t A, int64_t B) {
  uint64_t X = magnitude(A), Y = magnitude(B);
  while (Y != 0) {
    uint64_t T = X % Y;
    X = Y;
    Y = T;
  }
  if (X > static_cast<uint64_t>(INT64_MAX)) {
    [[maybe_unused]] bool Handled = OverflowGuard::record();
    assert(Handled && "integer overflow in coefficient arithmetic");
    return INT64_MAX;
  }
  return static_cast<int64_t>(X);
}

/// Least common multiple of the absolute values; lcm(0, x) == 0.
inline int64_t lcm(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd(A, B);
  return std::abs(A / G * B);
}

/// Extended gcd: returns g = gcd(A, B) and Bezout coefficients X, Y with
/// A*X + B*Y == g. Used by the exact SIV dependence test.
inline int64_t extendedGcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  if (B == 0) {
    X = (A < 0) ? -1 : 1;
    Y = 0;
    return std::abs(A);
  }
  int64_t X1, Y1;
  int64_t G = extendedGcd(B, A % B, X1, Y1);
  X = Y1;
  Y = X1 - (A / B) * Y1;
  return G;
}

} // namespace irlt

#endif // IRLT_SUPPORT_MATHUTILS_H
