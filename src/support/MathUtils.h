//===- support/MathUtils.h - Exact integer arithmetic helpers ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact integer helpers used throughout the framework: floor/ceil division
/// (division semantics in generated code follow Fortran-style flooring, see
/// DESIGN.md), gcd/lcm, sign, and checked multiplication.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_MATHUTILS_H
#define IRLT_SUPPORT_MATHUTILS_H

#include <cassert>
#include <cstdint>
#include <cstdlib>

namespace irlt {

/// Floor division: rounds the quotient toward negative infinity.
/// floorDiv(7, 2) == 3, floorDiv(-7, 2) == -4, floorDiv(7, -2) == -4.
inline int64_t floorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "floorDiv by zero");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Ceiling division: rounds the quotient toward positive infinity.
inline int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "ceilDiv by zero");
  int64_t Q = A / B;
  int64_t R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Floor modulus: result has the same sign as \p B (Fortran MODULO).
/// floorMod(-7, 2) == 1.
inline int64_t floorMod(int64_t A, int64_t B) {
  assert(B != 0 && "floorMod by zero");
  return A - floorDiv(A, B) * B;
}

/// Sign of \p A as -1, 0, or +1.
inline int sign(int64_t A) { return (A > 0) - (A < 0); }

/// Greatest common divisor; gcd(0, 0) == 0, always non-negative.
inline int64_t gcd(int64_t A, int64_t B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    int64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Least common multiple of the absolute values; lcm(0, x) == 0.
inline int64_t lcm(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd(A, B);
  return std::abs(A / G * B);
}

/// Multiplies with an assertion against signed overflow. All coefficient
/// arithmetic in the framework stays far from the int64 range in practice;
/// the assert documents the assumption.
inline int64_t mulChecked(int64_t A, int64_t B) {
  int64_t R;
  [[maybe_unused]] bool Overflow = __builtin_mul_overflow(A, B, &R);
  assert(!Overflow && "integer overflow in coefficient arithmetic");
  return R;
}

/// Adds with an assertion against signed overflow.
inline int64_t addChecked(int64_t A, int64_t B) {
  int64_t R;
  [[maybe_unused]] bool Overflow = __builtin_add_overflow(A, B, &R);
  assert(!Overflow && "integer overflow in coefficient arithmetic");
  return R;
}

/// Extended gcd: returns g = gcd(A, B) and Bezout coefficients X, Y with
/// A*X + B*Y == g. Used by the exact SIV dependence test.
inline int64_t extendedGcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  if (B == 0) {
    X = (A < 0) ? -1 : 1;
    Y = 0;
    return std::abs(A);
  }
  int64_t X1, Y1;
  int64_t G = extendedGcd(B, A % B, X1, Y1);
  X = Y1;
  Y = X1 - (A / B) * Y1;
  return G;
}

} // namespace irlt

#endif // IRLT_SUPPORT_MATHUTILS_H
