//===- support/Printing.cpp - String formatting helpers ------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "support/Printing.h"

#include <cstdio>

using namespace irlt;

std::string irlt::formatStr(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Len <= 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Out(static_cast<size_t>(Len), '\0');
  std::vsnprintf(Out.data(), static_cast<size_t>(Len) + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Out;
}

std::string irlt::join(const std::vector<std::string> &Parts,
                       const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

void IndentedWriter::line(const std::string &Text) {
  Buffer.append(static_cast<size_t>(Level) * IndentWidth, ' ');
  Buffer += Text;
  Buffer += '\n';
}
