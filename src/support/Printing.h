//===- support/Printing.h - String formatting helpers --------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string-building utilities: printf-style formatting into
/// std::string, joining ranges, and an indentation-tracking text writer
/// used by the loop-nest printers.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_PRINTING_H
#define IRLT_SUPPORT_PRINTING_H

#include <cstdarg>
#include <string>
#include <vector>

namespace irlt {

/// printf-style formatting into a std::string.
std::string formatStr(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// A line-oriented text writer that tracks the current indentation level.
/// Used by the loop-nest printer to emit nested `do`/`enddo` blocks.
class IndentedWriter {
public:
  explicit IndentedWriter(unsigned IndentWidth = 2)
      : IndentWidth(IndentWidth) {}

  /// Emits one line at the current indentation level.
  void line(const std::string &Text);

  /// Emits an empty line.
  void blank() { Buffer += '\n'; }

  void indent() { ++Level; }
  void outdent() {
    if (Level > 0)
      --Level;
  }

  const std::string &str() const { return Buffer; }

private:
  std::string Buffer;
  unsigned IndentWidth;
  unsigned Level = 0;
};

} // namespace irlt

#endif // IRLT_SUPPORT_PRINTING_H
