//===- support/Rational.h - Exact rational arithmetic --------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small exact rational number over int64, used by the Fourier-Motzkin
/// feasibility solver in the dependence analyzer and by the Banerjee bounds
/// test. Always kept in canonical form (positive denominator, reduced).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_SUPPORT_RATIONAL_H
#define IRLT_SUPPORT_RATIONAL_H

#include "support/MathUtils.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace irlt {

/// An exact rational Num/Den with Den > 0 and gcd(Num, Den) == 1.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t N) : Num(N), Den(1) {}
  Rational(int64_t N, int64_t D) : Num(N), Den(D) {
    assert(D != 0 && "rational with zero denominator");
    normalize();
  }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isInteger() const { return Den == 1; }
  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// Largest integer <= this.
  int64_t floor() const { return floorDiv(Num, Den); }
  /// Smallest integer >= this.
  int64_t ceil() const { return ceilDiv(Num, Den); }

  Rational operator-() const { return Rational(negChecked(Num), Den); }

  Rational operator+(const Rational &O) const {
    int64_t G = gcd(Den, O.Den);
    int64_t L = Den / G * O.Den;
    return Rational(addChecked(mulChecked(Num, L / Den),
                               mulChecked(O.Num, L / O.Den)),
                    L);
  }

  Rational operator-(const Rational &O) const { return *this + (-O); }

  Rational operator*(const Rational &O) const {
    // Cross-reduce before multiplying to keep magnitudes small.
    int64_t G1 = gcd(Num, O.Den);
    int64_t G2 = gcd(O.Num, Den);
    return Rational(mulChecked(Num / G1, O.Num / G2),
                    mulChecked(Den / G2, O.Den / G1));
  }

  Rational operator/(const Rational &O) const {
    assert(!O.isZero() && "rational division by zero");
    return *this * Rational(O.Den, O.Num);
  }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }

  bool operator<(const Rational &O) const {
    // Cross-multiply with positive denominators preserves the order.
    return mulChecked(Num, O.Den) < mulChecked(O.Num, Den);
  }
  bool operator<=(const Rational &O) const { return !(O < *this); }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return !(*this < O); }

  std::string str() const {
    if (Den == 1)
      return std::to_string(Num);
    return std::to_string(Num) + "/" + std::to_string(Den);
  }

private:
  void normalize() {
    if (Den < 0) {
      Num = negChecked(Num);
      Den = negChecked(Den);
    }
    int64_t G = gcd(Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
    if (Num == 0)
      Den = 1;
  }

  int64_t Num;
  int64_t Den;
};

} // namespace irlt

#endif // IRLT_SUPPORT_RATIONAL_H
