//===- transform/AutoPar.cpp - Search-based auto-parallelization ---------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/AutoPar.h"

#include "support/MathUtils.h"
#include "transform/Templates.h"
#include "transform/TypeState.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace irlt;

namespace {

/// Greedily parallelizes positions outside-in on the mapped dependence
/// set: position k is flagged when symmetrizing it (on top of already
/// chosen flags) keeps every vector lexicographically non-negative.
std::vector<bool> greedyParFlags(const DepSet &Mapped, unsigned N) {
  std::vector<bool> Flags(N, false);
  for (unsigned K = 0; K < N; ++K) {
    Flags[K] = true;
    if (!makeParallelize(N, Flags)
             ->mapDependences(Mapped)
             .allLexNonNegative())
      Flags[K] = false;
  }
  return Flags;
}

long scoreOf(const std::vector<unsigned> &ParallelLoops, unsigned N,
             bool CheapBase) {
  long S = 0;
  for (unsigned P : ParallelLoops)
    S += 1000 + 10 * static_cast<long>(N - P);
  if (CheapBase)
    S += 1; // Section 4.2 tie-break: prefer ReversePermute machinery
  return S;
}

/// Enumerates all permutations (and optional reversals) of N loops.
void forEachSignedPermutation(unsigned N, bool TryReversals,
                              const std::function<void(
                                  const std::vector<unsigned> &,
                                  const std::vector<bool> &)> &Fn) {
  std::vector<unsigned> Perm(N);
  for (unsigned K = 0; K < N; ++K)
    Perm[K] = K;
  do {
    unsigned RevCount = TryReversals ? (1u << N) : 1u;
    for (unsigned RevMask = 0; RevMask < RevCount; ++RevMask) {
      std::vector<bool> Rev(N);
      for (unsigned K = 0; K < N; ++K)
        Rev[K] = (RevMask >> K) & 1;
      Fn(Perm, Rev);
    }
  } while (std::next_permutation(Perm.begin(), Perm.end()));
}

/// Completes hyperplane row \p H (which must contain a +-1 entry) into a
/// unimodular matrix: H first, then unit rows for every position except
/// the pivot.
std::optional<UnimodularMatrix> completeWavefront(const std::vector<int64_t> &H) {
  unsigned N = static_cast<unsigned>(H.size());
  unsigned Pivot = N;
  for (unsigned K = 0; K < N; ++K)
    if (H[K] == 1 || H[K] == -1) {
      Pivot = K;
      break;
    }
  if (Pivot == N)
    return std::nullopt;
  UnimodularMatrix M(N);
  for (unsigned C = 0; C < N; ++C)
    M.set(0, C, H[C]);
  unsigned Row = 1;
  for (unsigned K = 0; K < N; ++K) {
    if (K == Pivot)
      continue;
    M.set(Row++, K, 1);
  }
  if (!M.isUnimodular())
    return std::nullopt;
  return M;
}

} // namespace

namespace {

/// How a search objective turns a mapped dependence set into the
/// Parallelize flags it wants (empty = candidate useless) and a score.
using FlagChooser = std::function<std::vector<bool>(const DepSet &Mapped,
                                                    unsigned OutN)>;

AutoParResult searchCandidates(const LoopNest &Nest, const DepSet &D,
                               const AutoParOptions &Options,
                               const FlagChooser &Choose) {
  AutoParResult Result;
  unsigned N = Nest.numLoops();
  if (N == 0)
    return Result;

  auto consider = [&](TemplateRef Base, bool CheapBase) {
    ++Result.Enumerated;
    DepSet Mapped = Base ? Base->mapDependences(D) : D;
    unsigned OutN = Base ? Base->outputSize() : N;
    std::vector<bool> Flags = Choose(Mapped, OutN);
    std::vector<unsigned> ParallelLoops;
    for (unsigned K = 0; K < OutN; ++K)
      if (K < Flags.size() && Flags[K])
        ParallelLoops.push_back(K);
    if (ParallelLoops.empty())
      return;

    TransformSequence Seq;
    if (Base)
      Seq.append(Base);
    Seq.append(makeParallelize(OutN, Flags));
    LegalityResult L = isLegalFast(Seq, Nest, D);
    if (!L.Legal)
      return;
    ++Result.Legal;
    AutoParCandidate C;
    C.Seq = std::move(Seq);
    C.ParallelLoops = std::move(ParallelLoops);
    C.Score = scoreOf(C.ParallelLoops, OutN, CheapBase);
    if (!Result.Best || C.Score > Result.Best->Score)
      Result.Best = std::move(C);
  };

  // 1. The identity (Parallelize alone), then signed permutations.
  consider(nullptr, true);
  forEachSignedPermutation(
      N, Options.TryReversals,
      [&](const std::vector<unsigned> &Perm, const std::vector<bool> &Rev) {
        bool Identity = !std::count(Rev.begin(), Rev.end(), true);
        for (unsigned K = 0; K < N && Identity; ++K)
          Identity = Perm[K] == K;
        if (Identity)
          return; // already considered
        consider(makeReversePermute(N, Rev, Perm), true);
      });

  // 2. Wavefront (hyperplane) candidates: y_1 = h . x with small
  //    non-negative h, at least two non-zero entries, some entry 1.
  if (Options.TryWavefronts && N >= 2) {
    std::vector<int64_t> H(N, 0);
    std::function<void(unsigned)> Recurse = [&](unsigned K) {
      if (K == N) {
        unsigned NonZero = 0;
        int64_t G = 0;
        for (int64_t V : H) {
          NonZero += V != 0;
          G = gcd(G, V);
        }
        if (NonZero < 2 || G != 1)
          return;
        std::optional<UnimodularMatrix> M = completeWavefront(H);
        if (M)
          consider(makeUnimodular(N, *M), false);
        return;
      }
      for (int64_t V = 0; V <= Options.MaxSkew; ++V) {
        H[K] = V;
        Recurse(K + 1);
      }
      H[K] = 0;
    };
    Recurse(0);
  }
  return Result;
}

} // namespace

AutoParResult irlt::autoParallelize(const LoopNest &Nest, const DepSet &D,
                                    const AutoParOptions &Options) {
  return searchCandidates(Nest, D, Options,
                          [](const DepSet &Mapped, unsigned OutN) {
                            return greedyParFlags(Mapped, OutN);
                          });
}

AutoParResult irlt::autoVectorize(const LoopNest &Nest, const DepSet &D,
                                  const AutoParOptions &Options) {
  // Vectorization wants exactly the *innermost* position dependence-free.
  return searchCandidates(
      Nest, D, Options, [](const DepSet &Mapped, unsigned OutN) {
        std::vector<bool> Flags(OutN, false);
        Flags[OutN - 1] = true;
        if (!makeParallelize(OutN, Flags)
                 ->mapDependences(Mapped)
                 .allLexNonNegative())
          Flags[OutN - 1] = false;
        return Flags;
      });
}
