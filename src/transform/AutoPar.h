//===- transform/AutoPar.h - Search-based auto-parallelization -----------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's stated purpose for the framework (Sections 5-6): an
/// automatic transformation system that "consider[s] several alternative
/// transformations for a loop nest ... the loop nest remains unchanged
/// while the transformation system considers the legality and
/// effectiveness of applying various alternative transformations".
///
/// This module is that optimizer in miniature, for the parallelization
/// objective: enumerate candidate iteration-reordering sequences -
/// signed permutations, wavefront (hyperplane) skews in the style of
/// Lamport [9], each followed by Parallelize - filter them with the
/// uniform (fast) legality test without ever touching the nest, rank the
/// survivors by how many loops run parallel and how far out they sit,
/// and return the best sequence. Ties prefer cheaper templates
/// (ReversePermute over Unimodular), per Section 4.2.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_AUTOPAR_H
#define IRLT_TRANSFORM_AUTOPAR_H

#include "transform/Sequence.h"

#include <optional>
#include <vector>

namespace irlt {

/// Knobs for the search.
struct AutoParOptions {
  /// Largest |skew factor| tried for wavefront candidates.
  int64_t MaxSkew = 2;
  /// Consider reversals in permutation candidates.
  bool TryReversals = true;
  /// Consider hyperplane (skew) candidates when plain permutations fail
  /// to parallelize the outer level.
  bool TryWavefronts = true;
};

/// One scored candidate.
struct AutoParCandidate {
  TransformSequence Seq;
  /// Parallel loops after the sequence (by output position, 0-based).
  std::vector<unsigned> ParallelLoops;
  /// Lexicographic score: number of parallel loops, then how outermost
  /// they are, then template cheapness. Higher is better.
  long Score = 0;
};

/// Result of a search.
struct AutoParResult {
  /// The best legal candidate, if any loop could be parallelized.
  std::optional<AutoParCandidate> Best;
  /// Number of candidates enumerated / found legal.
  unsigned Enumerated = 0;
  unsigned Legal = 0;
};

/// Searches for a legal sequence that parallelizes as much of \p Nest as
/// possible under dependence set \p D. Never mutates \p Nest; callers
/// apply the returned sequence themselves.
AutoParResult autoParallelize(const LoopNest &Nest, const DepSet &D,
                              const AutoParOptions &Options = {});

/// The vector-execution objective (the paper's other motivation): a loop
/// is vectorizable when, run innermost, it carries no dependence - i.e.
/// parallelizing *only* the innermost position stays legal. Searches the
/// same candidate space for a legal sequence whose innermost loop is
/// dependence-free; ties prefer cheaper templates.
AutoParResult autoVectorize(const LoopNest &Nest, const DepSet &D,
                            const AutoParOptions &Options = {});

} // namespace irlt

#endif // IRLT_TRANSFORM_AUTOPAR_H
