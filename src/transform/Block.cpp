//===- transform/Block.cpp - The Block (tiling) template ------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block(n, i, j, bsize) (Tables 1, 2, 4): tiles the contiguous loops
/// i..j. Blocking is strip-mining plus interchange: the output holds the
/// block loops (stride s_k * bsize[k]) at positions i..j followed by the
/// element loops (original strides, clamped to their block).
///
/// Dependence rule (Table 2): each entry d_k, i <= k <= j, fans out
/// through blockmap into (block-loop, element-loop) entry pairs:
///
///    blockmap(0)   = {(0, 0)}
///    blockmap(*)   = {(*, *)}
///    blockmap(+-1) = {(0, d), (d, *)}
///    blockmap(d)   = {(0, d), (dir(d), *)}    otherwise
///
/// so one input vector can map to up to 2^(j-i+1) output vectors - the
/// reason Block cannot be represented by a transformation matrix.
///
/// Bounds rule (Table 4): block loop k runs from l_k to u_k with inner
/// blocked variables x_h replaced by the extreme value of their block
/// (the xmin/xmax substitution); element loop k is clamped with max/min
/// against its block's range. This creates only tiles with some work on
/// trapezoidal iteration spaces - unlike rectangular bounding-box tiling
/// (the paper's comparison with [14], reproduced by bench_c2).
///
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Casting.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

BlockTemplate::BlockTemplate(unsigned N, unsigned I, unsigned J,
                             std::vector<ExprRef> BSize)
    : TransformTemplate(Kind::Block), N(N), I(I), J(J),
      BSize(std::move(BSize)) {
  assert(I >= 1 && I <= J && J <= N && "block range out of bounds");
  assert(this->BSize.size() == J - I + 1 && "bsize arity mismatch");
}

std::string BlockTemplate::paramStr() const {
  std::vector<std::string> Bs;
  for (const ExprRef &B : BSize)
    Bs.push_back(B->str());
  return formatStr("(n=%u, i=%u, j=%u, bsize=[%s])", N, I, J,
                   join(Bs, " ").c_str());
}

namespace {

/// blockmap of Table 2 (see file comment).
std::vector<std::pair<DepElem, DepElem>> blockmap(const DepElem &D) {
  if (D.isDistance() && D.dist() == 0)
    return {{DepElem::zero(), DepElem::zero()}};
  if (D == DepElem::any())
    return {{DepElem::any(), DepElem::any()}};
  if (D.isDistance() && (D.dist() == 1 || D.dist() == -1))
    return {{DepElem::zero(), D}, {D, DepElem::any()}};
  return {{DepElem::zero(), D}, {D.dirOnly(), DepElem::any()}};
}

} // namespace

DepSet BlockTemplate::mapDependences(const DepSet &D) const {
  unsigned Lo = I - 1, Hi = J - 1;
  unsigned Span = Hi - Lo + 1;
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    // Cartesian product of the per-entry pair choices.
    std::vector<std::vector<std::pair<DepElem, DepElem>>> Choices;
    Choices.reserve(Span);
    for (unsigned K = Lo; K <= Hi; ++K)
      Choices.push_back(blockmap(V[K]));
    std::vector<unsigned> Pick(Span, 0);
    while (true) {
      std::vector<DepElem> Elems;
      Elems.reserve(N + Span);
      for (unsigned K = 0; K < Lo; ++K)
        Elems.push_back(V[K]);
      for (unsigned K = 0; K < Span; ++K)
        Elems.push_back(Choices[K][Pick[K]].first); // block-loop entries
      for (unsigned K = 0; K < Span; ++K)
        Elems.push_back(Choices[K][Pick[K]].second); // element-loop entries
      for (unsigned K = Hi + 1; K < N; ++K)
        Elems.push_back(V[K]);
      Out.insert(DepVector(std::move(Elems)));
      // Advance the odometer.
      unsigned P = 0;
      while (P < Span && ++Pick[P] == Choices[P].size()) {
        Pick[P] = 0;
        ++P;
      }
      if (P == Span)
        break;
    }
  }
  return Out;
}

std::string BlockTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("Block: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  unsigned Lo = I - 1, Hi = J - 1;
  // Steps of the blocked loops must be non-zero compile-time constants
  // (Table 4's mapping branches on sgn(s_k)).
  for (unsigned K = Lo; K <= Hi; ++K) {
    std::optional<int64_t> S = Nest.Loops[K].Step->constValue();
    if (!S || *S == 0)
      return formatStr("Block: step of loop %u ('%s') is not a non-zero "
                       "compile-time constant",
                       K + 1, Nest.Loops[K].IndexVar.c_str());
  }
  // Strengthening over the published Table 4 (see DESIGN.md §5): a
  // blocked loop with |step| > 1 whose start bound varies with inner
  // blocked variables would misalign the element grid against the block
  // grid (the element clamp  max(x'', l_k)  only partitions correctly
  // when l_k is on x''_k's arithmetic grid). Require such starts to be
  // invariant in the blocked range.
  for (unsigned K = Lo; K <= Hi; ++K) {
    int64_t S = *Nest.Loops[K].Step->constValue();
    if (S == 1 || S == -1)
      continue;
    for (unsigned H = Lo; H < K; ++H) {
      const std::string &Xh = Nest.Loops[H].IndexVar;
      BoundType T = typeOf(Nest.Loops[K].Lower, Xh);
      if (!typeLE(T, BoundType::Invar))
        return formatStr(
            "Block: loop %u has stride %lld and a start bound varying in "
            "blocked variable '%s'; the element grid would misalign",
            K + 1, static_cast<long long>(S), Xh.c_str());
    }
  }
  // Table 4: for i <= k < m <= j, bounds of loop m linear in x_k.
  for (unsigned K = Lo; K <= Hi; ++K) {
    for (unsigned Mm = K + 1; Mm <= Hi; ++Mm) {
      const Loop &L = Nest.Loops[Mm];
      const std::string &Xk = Nest.Loops[K].IndexVar;
      int SSign = *L.Step->constValue() > 0 ? 1 : -1;
      BoundType TL = typeOfBound(L.Lower, Xk, BoundSide::Lower, SSign);
      if (!typeLE(TL, BoundType::Linear))
        return formatStr("Block: type(l_%u, %s) = %s exceeds linear", Mm + 1,
                         Xk.c_str(), typeName(TL));
      BoundType TU = typeOfBound(L.Upper, Xk, BoundSide::Upper, SSign);
      if (!typeLE(TU, BoundType::Linear))
        return formatStr("Block: type(u_%u, %s) = %s exceeds linear", Mm + 1,
                         Xk.c_str(), typeName(TU));
      BoundType TS = typeOf(L.Step, Xk);
      if (!typeLE(TS, BoundType::Const))
        return formatStr("Block: type(s_%u, %s) = %s exceeds const", Mm + 1,
                         Xk.c_str(), typeName(TS));
    }
  }
  return std::string();
}

namespace {

/// Splits a bound into inequality terms (max/min special case).
std::vector<ExprRef> boundTerms(const ExprRef &E, BoundSide Side, int SSign) {
  Expr::Kind Splittable = Expr::Kind::Call;
  if (SSign > 0)
    Splittable = Side == BoundSide::Lower ? Expr::Kind::Max : Expr::Kind::Min;
  else if (SSign < 0)
    Splittable = Side == BoundSide::Lower ? Expr::Kind::Min : Expr::Kind::Max;
  if (E->kind() == Splittable) {
    const auto *MM = cast<MinMaxExpr>(E.get());
    return std::vector<ExprRef>(MM->operands().begin(), MM->operands().end());
  }
  return {E};
}

} // namespace

ErrorOr<LoopNest> BlockTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  unsigned Lo = I - 1, Hi = J - 1;

  // Fresh block-variable names: doubled index names ("i" -> "ii").
  LoopNest NameScope = Nest;
  std::vector<std::string> BlockVar(N);
  for (unsigned K = Lo; K <= Hi; ++K) {
    BlockVar[K] =
        freshVarName(NameScope, Nest.Loops[K].IndexVar + Nest.Loops[K].IndexVar);
    NameScope.Loops.push_back(Loop(BlockVar[K], Expr::intConst(0),
                                   Expr::intConst(0), Expr::intConst(1)));
  }

  // Per blocked loop h: the two extreme index values inside one block:
  //   s_h > 0: min = x''_h,                      max = x''_h + s_h*(b_h - 1)
  //   s_h < 0: min = x''_h + s_h*(b_h - 1),      max = x''_h
  auto blockMin = [&](unsigned H) -> ExprRef {
    int64_t S = *Nest.Loops[H].Step->constValue();
    ExprRef Base = Expr::var(BlockVar[H]);
    if (S > 0)
      return Base;
    return simplify(Expr::add(
        Base, Expr::mul(Expr::intConst(S),
                        Expr::sub(BSize[H - Lo], Expr::intConst(1)))));
  };
  auto blockMax = [&](unsigned H) -> ExprRef {
    int64_t S = *Nest.Loops[H].Step->constValue();
    ExprRef Base = Expr::var(BlockVar[H]);
    if (S < 0)
      return Base;
    return simplify(Expr::add(
        Base, Expr::mul(Expr::intConst(S),
                        Expr::sub(BSize[H - Lo], Expr::intConst(1)))));
  };

  // Substitutes the blocked variables x_h (Lo <= h < K) in one inequality
  // term by the block extreme that extremizes the term: for a bound we
  // want to *minimize*, a positive coefficient takes the block minimum
  // and a negative coefficient the block maximum (and dually).
  auto substituteExtremes = [&](const ExprRef &Term, unsigned K,
                                bool Minimize) -> ExprRef {
    LinExpr L = LinExpr::fromExpr(Term);
    for (unsigned H = Lo; H < K; ++H) {
      const std::string &Xh = Nest.Loops[H].IndexVar;
      int64_t C = L.extractVar(Xh);
      if (C == 0)
        continue;
      bool TakeMin = (C > 0) == Minimize;
      ExprRef Rep = TakeMin ? blockMin(H) : blockMax(H);
      L = L + LinExpr::fromExpr(Rep).scaled(C);
    }
    return simplify(L.toExpr());
  };

  LoopNest Out = Nest;
  Out.Loops.clear();
  // Loops 1..i-1 unchanged.
  for (unsigned K = 0; K < Lo; ++K)
    Out.Loops.push_back(Nest.Loops[K]);

  // Block loops at positions i..j.
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    int64_t S = *L.Step->constValue();
    int SSign = S > 0 ? 1 : -1;
    // The loop *starts* at its lower expression; for coverage of every
    // element value, the start bound takes the extreme toward iteration
    // start and the end bound the extreme toward iteration end.
    bool StartIsMin = SSign > 0;
    std::vector<ExprRef> StartTerms, EndTerms;
    for (const ExprRef &T : boundTerms(L.Lower, BoundSide::Lower, SSign))
      StartTerms.push_back(substituteExtremes(T, K, /*Minimize=*/StartIsMin));
    for (const ExprRef &T : boundTerms(L.Upper, BoundSide::Upper, SSign))
      EndTerms.push_back(substituteExtremes(T, K, /*Minimize=*/!StartIsMin));
    ExprRef Start = SSign > 0 ? simplify(Expr::maxE(StartTerms))
                              : simplify(Expr::minE(StartTerms));
    ExprRef End = SSign > 0 ? simplify(Expr::minE(EndTerms))
                            : simplify(Expr::maxE(EndTerms));
    ExprRef BStep =
        simplify(Expr::mul(Expr::intConst(S), BSize[K - Lo]));
    Out.Loops.push_back(Loop(BlockVar[K], Start, End, BStep, L.Kind));
  }

  // Element loops right after, clamped to their block (Table 4).
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    int64_t S = *L.Step->constValue();
    ExprRef BlkEnd = simplify(Expr::add(
        Expr::var(BlockVar[K]),
        Expr::mul(Expr::intConst(S),
                  Expr::sub(BSize[K - Lo], Expr::intConst(1)))));
    ExprRef Lo2, Hi2;
    if (S > 0) {
      Lo2 = simplify(Expr::maxE({Expr::var(BlockVar[K]), L.Lower}));
      Hi2 = simplify(Expr::minE({BlkEnd, L.Upper}));
    } else {
      Lo2 = simplify(Expr::minE({Expr::var(BlockVar[K]), L.Lower}));
      Hi2 = simplify(Expr::maxE({BlkEnd, L.Upper}));
    }
    Out.Loops.push_back(Loop(L.IndexVar, Lo2, Hi2, L.Step, L.Kind));
  }

  // Remaining loops j+1..n unchanged.
  for (unsigned K = Hi + 1; K < N; ++K)
    Out.Loops.push_back(Nest.Loops[K]);

  // Element loops reuse the original index variables: no init statements.
  return Out;
}

TemplateRef irlt::makeBlock(unsigned N, unsigned I, unsigned J,
                            std::vector<ExprRef> BSize) {
  return std::make_shared<BlockTemplate>(N, I, J, std::move(BSize));
}
