//===- transform/Coalesce.cpp - The Coalesce template ---------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Coalesce(n, i, j) (Tables 1-3, citation [11] Polychronopoulos & Kuck):
/// collapses the contiguous loops i..j into one loop, normalized to lower
/// bound 1 and step 1, whose trip count is the product of the coalesced
/// trip counts. The coalesced loop is `pardo` only when *every* coalesced
/// loop was `pardo` (Table 3).
///
/// Preconditions: bounds and steps of the coalesced band are invariant in
/// the coalesced index variables (the band is rectangular relative to
/// itself; outer variables remain fine).
///
/// Initialization statements recover the original index variables with
/// div/mod arithmetic over the trip counts, exactly as in the matrix
/// multiply example (Figure 7):  x_k = l_k + ((q / P_{k+1}) mod N_k)*s_k
/// with q = x_c - 1, N_k the trip count of loop k and P_{k+1} the product
/// of the trip counts below k. Inner loops whose bounds mention a
/// coalesced variable get the recovery expression substituted in place.
///
/// Dependence rule (Table 2): the coalesced entry is
/// mergedirs(dir(d_i), ..., dir(d_j)), the pairwise merge where the first
/// operand's non-zero signs dominate (a non-zero outer difference swamps
/// any inner difference once trip counts are unknown): e.g.
/// mergedirs(+, -) = +.
///
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

CoalesceTemplate::CoalesceTemplate(unsigned N, unsigned I, unsigned J,
                                   std::optional<std::string> NewVarName)
    : TransformTemplate(Kind::Coalesce), N(N), I(I), J(J),
      NewVarName(std::move(NewVarName)) {
  assert(I >= 1 && I <= J && J <= N && "coalesce range out of bounds");
}

std::string CoalesceTemplate::paramStr() const {
  return formatStr("(n=%u, i=%u, j=%u)", N, I, J);
}

namespace {

/// Pairwise merge of direction entries for coalescing: the possible signs
/// of A*T + B for arbitrarily large trip count T with |B| < T: every
/// non-zero sign of A survives as itself; only when A can be zero do B's
/// signs contribute.
DepElem mergeTwoDirs(const DepElem &A, const DepElem &B) {
  uint8_t Mask = 0;
  if (A.canBeNegative())
    Mask |= DepElem::SignNeg;
  if (A.canBePositive())
    Mask |= DepElem::SignPos;
  if (A.canBeZero())
    Mask |= B.signMask();
  return DepElem::direction(Mask);
}

} // namespace

DepSet CoalesceTemplate::mapDependences(const DepSet &D) const {
  unsigned Lo = I - 1, Hi = J - 1;
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    std::vector<DepElem> Elems;
    Elems.reserve(N - (Hi - Lo));
    for (unsigned K = 0; K < Lo; ++K)
      Elems.push_back(V[K]);
    DepElem Merged = V[Lo].dirOnly();
    for (unsigned K = Lo + 1; K <= Hi; ++K)
      Merged = mergeTwoDirs(Merged, V[K].dirOnly());
    Elems.push_back(Merged);
    for (unsigned K = Hi + 1; K < N; ++K)
      Elems.push_back(V[K]);
    Out.insert(DepVector(std::move(Elems)));
  }
  return Out;
}

std::string CoalesceTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("Coalesce: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  unsigned Lo = I - 1, Hi = J - 1;
  // Table 3: type(expr_m, x_k) <= invar for i <= k < m <= j, expr_m in
  // {l_m, u_m, s_m}.
  for (unsigned K = Lo; K <= Hi; ++K) {
    const std::string &Xk = Nest.Loops[K].IndexVar;
    for (unsigned Mm = K + 1; Mm <= Hi; ++Mm) {
      const Loop &L = Nest.Loops[Mm];
      struct Item {
        const ExprRef *E;
        const char *What;
      } Items[] = {{&L.Lower, "l"}, {&L.Upper, "u"}, {&L.Step, "s"}};
      for (const Item &It : Items) {
        BoundType T = typeOf(*It.E, Xk);
        if (!typeLE(T, BoundType::Invar))
          return formatStr("Coalesce: type(%s_%u, %s) = %s exceeds invar",
                           It.What, Mm + 1, Xk.c_str(), typeName(T));
      }
    }
  }
  return std::string();
}

ErrorOr<LoopNest> CoalesceTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  unsigned Lo = I - 1, Hi = J - 1;

  // Trip counts N_k = floor((u_k - l_k) / s_k) + 1 (assumes non-empty
  // loops, as the paper does) and suffix products P_k.
  std::vector<ExprRef> Count(N), SuffixProd(N + 1);
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    Count[K] = simplify(Expr::add(
        Expr::floorDivE(Expr::sub(L.Upper, L.Lower), L.Step),
        Expr::intConst(1)));
  }
  SuffixProd[Hi + 1] = Expr::intConst(1);
  for (unsigned K = Hi + 1; K-- > Lo;)
    SuffixProd[K] = simplify(Expr::mul(Count[K], SuffixProd[K + 1]));

  // New loop variable.
  std::string CName;
  if (NewVarName) {
    CName = *NewVarName;
    assert(!Nest.bindsVar(CName) && "requested coalesced name is taken");
  } else {
    std::string Joined;
    for (unsigned K = Lo; K <= Hi; ++K)
      Joined += Nest.Loops[K].IndexVar;
    CName = freshVarName(Nest, Joined + "c");
  }

  // Recovery expressions: q = x_c - 1;
  //   x_k = l_k + ((q / P_{k+1}) mod N_k) * s_k   (mod dropped at k = i).
  ExprRef Q = Expr::sub(Expr::var(CName), Expr::intConst(1));
  std::map<std::string, ExprRef> Recover;
  std::vector<InitStmt> NewInits;
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    ExprRef Off = Q;
    std::optional<int64_t> PC = SuffixProd[K + 1]->constValue();
    if (!PC || *PC != 1)
      Off = Expr::floorDivE(Off, SuffixProd[K + 1]);
    if (K != Lo)
      Off = Expr::modE(Off, Count[K]);
    ExprRef Val = simplify(Expr::add(L.Lower, Expr::mul(Off, L.Step)));
    Recover.emplace(L.IndexVar, Val);
    NewInits.push_back(InitStmt{L.IndexVar, Val});
  }

  // Coalesced loop kind (Table 3): pardo iff all coalesced loops pardo.
  LoopKind CKind = LoopKind::ParDo;
  for (unsigned K = Lo; K <= Hi; ++K)
    if (Nest.Loops[K].Kind != LoopKind::ParDo)
      CKind = LoopKind::Do;

  LoopNest Out = Nest;
  Out.Loops.clear();
  for (unsigned K = 0; K < Lo; ++K)
    Out.Loops.push_back(Nest.Loops[K]);
  Out.Loops.push_back(Loop(CName, Expr::intConst(1), SuffixProd[Lo],
                           Expr::intConst(1), CKind));
  // Inner loops: substitute recovery expressions for coalesced variables
  // appearing in their bounds.
  for (unsigned K = Hi + 1; K < N; ++K) {
    Loop L = Nest.Loops[K];
    L.Lower = simplify(Expr::substitute(L.Lower, Recover));
    L.Upper = simplify(Expr::substitute(L.Upper, Recover));
    L.Step = simplify(Expr::substitute(L.Step, Recover));
    Out.Loops.push_back(std::move(L));
  }

  std::vector<InitStmt> AllInits = std::move(NewInits);
  AllInits.insert(AllInits.end(), Nest.Inits.begin(), Nest.Inits.end());
  Out.Inits = std::move(AllInits);
  return Out;
}

TemplateRef irlt::makeCoalesce(unsigned N, unsigned I, unsigned J,
                               std::optional<std::string> NewVarName) {
  return std::make_shared<CoalesceTemplate>(N, I, J, std::move(NewVarName));
}
