//===- transform/Interleave.cpp - The Interleave template -----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interleave(n, i, j, isize) (Tables 1-3): like Block, but a "block" is
/// the set of iterations sharing a phase modulo the interleave factor -
/// non-contiguous iterations of the original loop. Output (Table 3):
/// phase loops  x'_k = 0 .. isize[k]-1  at positions i..j, followed by
/// the original loops re-striding from  l_k + x'_k * s_k  by
/// isize[k] * s_k. Original index variables are reused; no
/// initialization statements.
///
/// Dependence rule (Table 2, "similar to Block, but use imap instead of
/// blockmap"). With o the original iteration number, phase p = o mod m
/// and element ordinal e = o div m, a difference d decomposes as
/// d = e'*m + p' with e' = floor-div difference and p' in (-m, m). For
/// d > 0 either e' = 0 (then p' = d > 0) or e' > 0 (p' of any sign):
///
///    imap(0)  = {(0, 0)}
///    imap(*)  = {(*, *)}
///    imap(+)  = {(+, 0), (*, +)}     and mirrored for -
///    imap(0+) = imap(0) u imap(+)    (summaries expand pointwise)
///
/// where the pair is (phase-loop entry, element-loop entry).
///
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

InterleaveTemplate::InterleaveTemplate(unsigned N, unsigned I, unsigned J,
                                       std::vector<ExprRef> ISize)
    : TransformTemplate(Kind::Interleave), N(N), I(I), J(J),
      ISize(std::move(ISize)) {
  assert(I >= 1 && I <= J && J <= N && "interleave range out of bounds");
  assert(this->ISize.size() == J - I + 1 && "isize arity mismatch");
}

std::string InterleaveTemplate::paramStr() const {
  std::vector<std::string> Is;
  for (const ExprRef &E : ISize)
    Is.push_back(E->str());
  return formatStr("(n=%u, i=%u, j=%u, isize=[%s])", N, I, J,
                   join(Is, " ").c_str());
}

namespace {

/// imap of Table 2 (see file comment): (phase, element) entry pairs.
std::vector<std::pair<DepElem, DepElem>> imap(const DepElem &D) {
  if (D.isDistance() && D.dist() == 0)
    return {{DepElem::zero(), DepElem::zero()}};
  if (D == DepElem::any())
    return {{DepElem::any(), DepElem::any()}};
  std::vector<std::pair<DepElem, DepElem>> Out;
  if (D.canBeZero())
    Out.push_back({DepElem::zero(), DepElem::zero()});
  if (D.canBePositive()) {
    // Same element ordinal: the phase difference is exactly d (kept as a
    // distance when d is one), else the ordinal moved by at least one.
    Out.push_back({D.isDistance() ? D : DepElem::pos(), DepElem::zero()});
    Out.push_back({DepElem::any(), DepElem::pos()});
  }
  if (D.canBeNegative()) {
    Out.push_back({D.isDistance() ? D : DepElem::neg(), DepElem::zero()});
    Out.push_back({DepElem::any(), DepElem::neg()});
  }
  return Out;
}

} // namespace

DepSet InterleaveTemplate::mapDependences(const DepSet &D) const {
  unsigned Lo = I - 1, Hi = J - 1;
  unsigned Span = Hi - Lo + 1;
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    std::vector<std::vector<std::pair<DepElem, DepElem>>> Choices;
    Choices.reserve(Span);
    for (unsigned K = Lo; K <= Hi; ++K)
      Choices.push_back(imap(V[K]));
    std::vector<unsigned> Pick(Span, 0);
    while (true) {
      std::vector<DepElem> Elems;
      Elems.reserve(N + Span);
      for (unsigned K = 0; K < Lo; ++K)
        Elems.push_back(V[K]);
      for (unsigned K = 0; K < Span; ++K)
        Elems.push_back(Choices[K][Pick[K]].first); // phase entries
      for (unsigned K = 0; K < Span; ++K)
        Elems.push_back(Choices[K][Pick[K]].second); // element entries
      for (unsigned K = Hi + 1; K < N; ++K)
        Elems.push_back(V[K]);
      Out.insert(DepVector(std::move(Elems)));
      unsigned P = 0;
      while (P < Span && ++Pick[P] == Choices[P].size()) {
        Pick[P] = 0;
        ++P;
      }
      if (P == Span)
        break;
    }
  }
  return Out;
}

std::string
InterleaveTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("Interleave: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  unsigned Lo = I - 1, Hi = J - 1;
  // Table 3: for i <= k < m <= j: l_m, u_m linear in x_k; s_m const.
  for (unsigned K = Lo; K <= Hi; ++K) {
    const std::string &Xk = Nest.Loops[K].IndexVar;
    for (unsigned Mm = K + 1; Mm <= Hi; ++Mm) {
      const Loop &L = Nest.Loops[Mm];
      std::optional<int64_t> SC = L.Step->constValue();
      int SSign = SC ? (*SC > 0 ? 1 : (*SC < 0 ? -1 : 0)) : 0;
      BoundType TL = typeOfBound(L.Lower, Xk, BoundSide::Lower, SSign);
      if (!typeLE(TL, BoundType::Linear))
        return formatStr("Interleave: type(l_%u, %s) = %s exceeds linear",
                         Mm + 1, Xk.c_str(), typeName(TL));
      BoundType TU = typeOfBound(L.Upper, Xk, BoundSide::Upper, SSign);
      if (!typeLE(TU, BoundType::Linear))
        return formatStr("Interleave: type(u_%u, %s) = %s exceeds linear",
                         Mm + 1, Xk.c_str(), typeName(TU));
      BoundType TS = typeOf(L.Step, Xk);
      if (!typeLE(TS, BoundType::Const))
        return formatStr("Interleave: type(s_%u, %s) = %s exceeds const",
                         Mm + 1, Xk.c_str(), typeName(TS));
    }
  }
  return std::string();
}

ErrorOr<LoopNest> InterleaveTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  unsigned Lo = I - 1, Hi = J - 1;

  // Fresh phase-variable names ("i" -> "ip").
  LoopNest NameScope = Nest;
  std::vector<std::string> PhaseVar(N);
  for (unsigned K = Lo; K <= Hi; ++K) {
    PhaseVar[K] = freshVarName(NameScope, Nest.Loops[K].IndexVar + "p");
    NameScope.Loops.push_back(Loop(PhaseVar[K], Expr::intConst(0),
                                   Expr::intConst(0), Expr::intConst(1)));
  }

  LoopNest Out = Nest;
  Out.Loops.clear();
  for (unsigned K = 0; K < Lo; ++K)
    Out.Loops.push_back(Nest.Loops[K]);

  // Phase loops: x'_k = 0, isize[k]-1, 1.
  for (unsigned K = Lo; K <= Hi; ++K) {
    ExprRef Hi2 = simplify(Expr::sub(ISize[K - Lo], Expr::intConst(1)));
    Out.Loops.push_back(Loop(PhaseVar[K], Expr::intConst(0), Hi2,
                             Expr::intConst(1), Nest.Loops[K].Kind));
  }

  // Element loops: x_k = l_k + x'_k * s_k, u_k, isize[k] * s_k.
  for (unsigned K = Lo; K <= Hi; ++K) {
    const Loop &L = Nest.Loops[K];
    ExprRef Lo2 = simplify(
        Expr::add(L.Lower, Expr::mul(Expr::var(PhaseVar[K]), L.Step)));
    ExprRef Step2 = simplify(Expr::mul(ISize[K - Lo], L.Step));
    Out.Loops.push_back(Loop(L.IndexVar, Lo2, L.Upper, Step2, L.Kind));
  }

  for (unsigned K = Hi + 1; K < N; ++K)
    Out.Loops.push_back(Nest.Loops[K]);

  // Original index variables are reused; no init statements (Table 3).
  return Out;
}

TemplateRef irlt::makeInterleave(unsigned N, unsigned I, unsigned J,
                                 std::vector<ExprRef> ISize) {
  return std::make_shared<InterleaveTemplate>(N, I, J, std::move(ISize));
}
