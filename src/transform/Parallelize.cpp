//===- transform/Parallelize.cpp - The Parallelize template --------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallelize(n, parflag) (Tables 1-3): loop k becomes `pardo` when
/// parflag[k]. There are no loop-bounds preconditions; bounds and index
/// variables are untouched. The dependence rule symmetrizes the entries
/// of parallelized loops (parmap of Table 2): iterations of a parallel
/// loop are unordered, so any non-zero difference can be observed with
/// either sign - which makes the uniform lexicographic legality test
/// reject exactly the dependences a parallel loop can no longer enforce.
/// This is how the framework treats Parallel "as just another
/// iteration-reordering transformation" (Section 6).
///
//===----------------------------------------------------------------------===//

#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

ParallelizeTemplate::ParallelizeTemplate(unsigned N, std::vector<bool> ParFlag)
    : TransformTemplate(Kind::Parallelize), N(N), ParFlag(std::move(ParFlag)) {
  assert(this->ParFlag.size() == N && "parameter arity mismatch");
}

std::string ParallelizeTemplate::paramStr() const {
  std::vector<std::string> Fs;
  for (unsigned K = 0; K < N; ++K)
    Fs.push_back(ParFlag[K] ? "1" : "0");
  return formatStr("(n=%u, parflag=[%s])", N, join(Fs, " ").c_str());
}

DepSet ParallelizeTemplate::mapDependences(const DepSet &D) const {
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    std::vector<DepElem> Elems;
    Elems.reserve(N);
    for (unsigned K = 0; K < N; ++K)
      Elems.push_back(ParFlag[K] ? V[K].parMapped() : V[K]);
    Out.insert(DepVector(std::move(Elems)));
  }
  return Out;
}

std::string
ParallelizeTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("Parallelize: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  return std::string(); // Table 3: "Preconditions: none"
}

ErrorOr<LoopNest> ParallelizeTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  LoopNest Out = Nest;
  for (unsigned K = 0; K < N; ++K)
    if (ParFlag[K])
      Out.Loops[K].Kind = LoopKind::ParDo;
  return Out;
}

TemplateRef irlt::makeParallelize(unsigned N, std::vector<bool> ParFlag) {
  return std::make_shared<ParallelizeTemplate>(N, std::move(ParFlag));
}
