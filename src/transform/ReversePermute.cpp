//===- transform/ReversePermute.cpp - The ReversePermute template --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ReversePermute(n, rev, perm) (Tables 1-3): reverse the loops with
/// rev[k] = true, then move loop k to position perm[k].
///
/// Preconditions: every bound expression is invariant in the index
/// variables (rectangular nest) - but steps need *not* be compile-time
/// constants. Where both ReversePermute and Unimodular apply, this
/// template is preferable (Section 4.2): steps are not normalized, index
/// variable names are reused with no initialization statements, and no
/// matrix arithmetic touches the dependence vectors.
///
/// A reversed loop  do x = l, u, s  becomes  do x = last, l, -s  where
/// last = l + floor((u - l) / s) * s  is the final iteration value (this
/// expression form is sign-agnostic, covering unknown symbolic strides).
///
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

ReversePermuteTemplate::ReversePermuteTemplate(unsigned N,
                                               std::vector<bool> Rev,
                                               std::vector<unsigned> Perm)
    : TransformTemplate(Kind::ReversePermute), N(N), Rev(std::move(Rev)),
      Perm(std::move(Perm)) {
  assert(this->Rev.size() == N && this->Perm.size() == N &&
         "parameter arity mismatch");
  std::vector<bool> Seen(N, false);
  for (unsigned P : this->Perm) {
    assert(P < N && !Seen[P] && "perm is not a bijection");
    Seen[P] = true;
  }
}

std::string ReversePermuteTemplate::paramStr() const {
  std::vector<std::string> Rs, Ps;
  for (unsigned K = 0; K < N; ++K) {
    Rs.push_back(Rev[K] ? "T" : "F");
    Ps.push_back(std::to_string(Perm[K] + 1));
  }
  return formatStr("(n=%u, rev=[%s], perm=[%s])", N, join(Rs, " ").c_str(),
                   join(Ps, " ").c_str());
}

DepSet ReversePermuteTemplate::mapDependences(const DepSet &D) const {
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    std::vector<DepElem> Elems(N);
    for (unsigned K = 0; K < N; ++K)
      Elems[Perm[K]] = Rev[K] ? V[K].reversed() : V[K];
    Out.insert(DepVector(std::move(Elems)));
  }
  return Out;
}

std::string
ReversePermuteTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("ReversePermute: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  // Table 3: type(expr_j, x_i) <= invar for every pair i < j whose
  // relative order the permutation reverses (perm[i] > perm[j]) - bounds
  // that keep their binder outside stay unconstrained, which is how
  // Figure 4(c)'s nonlinear sparse-matrix nest still admits moving loop i
  // innermost. A *reversed* loop additionally requires its own bounds to
  // be checked against nothing extra: reversal only rewrites l/u/s of
  // that loop in place.
  for (unsigned K = 0; K < N; ++K) {
    const Loop &L = Nest.Loops[K];
    struct Item {
      const ExprRef *E;
      const char *What;
    } Items[] = {{&L.Lower, "l"}, {&L.Upper, "u"}, {&L.Step, "s"}};
    for (unsigned I = 0; I < K; ++I) {
      if (Perm[I] < Perm[K])
        continue; // relative order preserved: no constraint
      const std::string &Xi = Nest.Loops[I].IndexVar;
      for (const Item &It : Items) {
        BoundType T = typeOf(*It.E, Xi);
        if (!typeLE(T, BoundType::Invar))
          return formatStr(
              "ReversePermute: loops %u and %u are reordered but "
              "type(%s_%u, %s) = %s exceeds invar",
              I + 1, K + 1, It.What, K + 1, Xi.c_str(), typeName(T));
      }
    }
  }
  return std::string();
}

ErrorOr<LoopNest> ReversePermuteTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  LoopNest Out = Nest;
  for (unsigned K = 0; K < N; ++K) {
    Loop L = Nest.Loops[K];
    if (Rev[K]) {
      // last = l + floor((u - l) / s) * s; reversed loop: last, l, -s.
      ExprRef Last = simplify(Expr::add(
          L.Lower,
          Expr::mul(Expr::floorDivE(Expr::sub(L.Upper, L.Lower), L.Step),
                    L.Step)));
      ExprRef NewStep = simplify(Expr::neg(L.Step));
      L.Upper = L.Lower;
      L.Lower = Last;
      L.Step = NewStep;
    }
    Out.Loops[Perm[K]] = std::move(L);
  }
  // Index names are reused; no initialization statements (Section 4.2).
  return Out;
}

TemplateRef irlt::makeReversePermute(unsigned N, std::vector<bool> Rev,
                                     std::vector<unsigned> Perm) {
  return std::make_shared<ReversePermuteTemplate>(N, std::move(Rev),
                                                  std::move(Perm));
}

TemplateRef irlt::makeInterchange(unsigned N, unsigned A, unsigned B) {
  assert(A < N && B < N && "interchange positions out of range");
  std::vector<bool> Rev(N, false);
  std::vector<unsigned> Perm(N);
  for (unsigned K = 0; K < N; ++K)
    Perm[K] = K;
  Perm[A] = B;
  Perm[B] = A;
  return makeReversePermute(N, std::move(Rev), std::move(Perm));
}
