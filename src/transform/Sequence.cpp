//===- transform/Sequence.cpp - Transformation sequences ------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/Sequence.h"

#include "support/Casting.h"
#include "support/MathUtils.h"
#include "support/Printing.h"
#include "transform/Templates.h"
#include "transform/TypeState.h"

#include <cassert>

using namespace irlt;

TransformSequence
TransformSequence::composedWith(const TransformSequence &U) const {
  std::vector<TemplateRef> All = Steps;
  All.insert(All.end(), U.Steps.begin(), U.Steps.end());
  return TransformSequence(std::move(All));
}

namespace {

/// The signed permutation matrix of a ReversePermute: loop k reversed
/// when rev[k] and moved to position perm[k] is exactly y[perm[k]] =
/// +-x[k], so an RP adjacent to a Unimodular fuses into one matrix.
UnimodularMatrix signedPermMatrix(const ReversePermuteTemplate &R) {
  unsigned N = R.inputSize();
  UnimodularMatrix M(N);
  for (unsigned K = 0; K < N; ++K)
    M.set(R.perm()[K], K, R.rev()[K] ? -1 : 1);
  return M;
}

/// Fuses \p A followed by \p B when both are instances of the same
/// fusable kind (or an RP/Unimodular mix); returns null when no fusion
/// applies.
TemplateRef fuseAdjacent(const TemplateRef &A, const TemplateRef &B) {
  // Mixed RP/Unimodular adjacency, either order.
  if (A->kind() == TransformTemplate::Kind::ReversePermute &&
      B->kind() == TransformTemplate::Kind::Unimodular) {
    const auto *RA = cast<ReversePermuteTemplate>(A.get());
    const auto *UB = cast<UnimodularTemplate>(B.get());
    if (RA->outputSize() != UB->inputSize())
      return nullptr;
    return makeUnimodular(RA->inputSize(),
                          UB->matrix() * signedPermMatrix(*RA));
  }
  if (A->kind() == TransformTemplate::Kind::Unimodular &&
      B->kind() == TransformTemplate::Kind::ReversePermute) {
    const auto *UA = cast<UnimodularTemplate>(A.get());
    const auto *RB = cast<ReversePermuteTemplate>(B.get());
    if (UA->outputSize() != RB->inputSize())
      return nullptr;
    return makeUnimodular(UA->inputSize(),
                          signedPermMatrix(*RB) * UA->matrix());
  }
  if (A->kind() != B->kind())
    return nullptr;
  switch (A->kind()) {
  case TransformTemplate::Kind::Unimodular: {
    const auto *UA = cast<UnimodularTemplate>(A.get());
    const auto *UB = cast<UnimodularTemplate>(B.get());
    if (UA->outputSize() != UB->inputSize())
      return nullptr;
    // Applying A first, then B: combined matrix is M_B * M_A.
    return makeUnimodular(UA->inputSize(), UB->matrix() * UA->matrix());
  }
  case TransformTemplate::Kind::ReversePermute: {
    const auto *RA = cast<ReversePermuteTemplate>(A.get());
    const auto *RB = cast<ReversePermuteTemplate>(B.get());
    unsigned N = RA->inputSize();
    if (RB->inputSize() != N)
      return nullptr;
    // A moves loop k to p1[k], reversing when r1[k]; B then moves the
    // loop at position q to p2[q], reversing when r2[q]. Combined:
    //   k -> p2[p1[k]],  reversed iff r1[k] xor r2[p1[k]].
    std::vector<unsigned> Perm(N);
    std::vector<bool> Rev(N);
    for (unsigned K = 0; K < N; ++K) {
      unsigned Mid = RA->perm()[K];
      Perm[K] = RB->perm()[Mid];
      Rev[K] = RA->rev()[K] != RB->rev()[Mid];
    }
    return makeReversePermute(N, std::move(Rev), std::move(Perm));
  }
  case TransformTemplate::Kind::Parallelize: {
    const auto *PA = cast<ParallelizeTemplate>(A.get());
    const auto *PB = cast<ParallelizeTemplate>(B.get());
    unsigned N = PA->inputSize();
    if (PB->inputSize() != N)
      return nullptr;
    std::vector<bool> Flags(N);
    for (unsigned K = 0; K < N; ++K)
      Flags[K] = PA->parFlag()[K] || PB->parFlag()[K];
    return makeParallelize(N, std::move(Flags));
  }
  default:
    return nullptr;
  }
}

} // namespace

TransformSequence TransformSequence::reduced() const {
  std::vector<TemplateRef> Out;
  for (const TemplateRef &T : Steps) {
    // Cascade: a fusion can enable another with the new predecessor
    // (e.g. RP;RP;Unimodular collapses right to left), so re-try until
    // the tail is stable - this is what makes reduced() idempotent.
    TemplateRef Cur = T;
    while (!Out.empty()) {
      TemplateRef Fused = fuseAdjacent(Out.back(), Cur);
      if (!Fused)
        break;
      Out.pop_back();
      Cur = std::move(Fused);
    }
    Out.push_back(std::move(Cur));
  }
  return TransformSequence(std::move(Out));
}

const char *irlt::rejectKindName(LegalityResult::RejectKind K) {
  switch (K) {
  case LegalityResult::RejectKind::None:
    return "none";
  case LegalityResult::RejectKind::BoundsPrecondition:
    return "bounds-precondition";
  case LegalityResult::RejectKind::DependencePrecondition:
    return "dependence-precondition";
  case LegalityResult::RejectKind::LexNegative:
    return "lex-negative";
  case LegalityResult::RejectKind::ApplyFailure:
    return "apply-failure";
  case LegalityResult::RejectKind::Overflow:
    return "overflow";
  }
  return "?";
}

std::string TransformSequence::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Steps.size());
  for (const TemplateRef &T : Steps)
    Parts.push_back(T->str());
  return "<" + join(Parts, ", ") + ">";
}

DepSet irlt::mapDependences(const TransformSequence &T, const DepSet &D) {
  DepSet Cur = D;
  for (const TemplateRef &Step : T.steps())
    Cur = Step->mapDependences(Cur);
  return Cur;
}

ErrorOr<LoopNest> irlt::applySequence(const TransformSequence &T,
                                      const LoopNest &Nest) {
  LoopNest Cur = Nest;
  unsigned Stage = 0;
  for (const TemplateRef &Step : T.steps()) {
    ++Stage;
    // Huge coefficients (fuzzer-sized skew factors, block sizes) can
    // overflow the bounds pipeline; degrade to a structured rejection.
    OverflowGuard Guard;
    ErrorOr<LoopNest> Next = Step->apply(Cur);
    if (Guard.triggered())
      return Failure(Diag::error("arithmetic overflow in the bounds pipeline")
                         .atStage(Stage)
                         .inTemplate(Step->str()));
    if (!Next)
      return Failure(Diag::error(Next.message())
                         .atStage(Stage)
                         .inTemplate(Step->str()));
    Cur = Next.take();
  }
  return Cur;
}

// isLegal() is defined in src/legality/IncrementalEngine.cpp as a shim
// over the prefix-memoized engine; the legacy stage-by-stage walk lives
// there verbatim as IncrementalEngine::reference(Mode::Full).
