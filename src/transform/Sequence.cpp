//===- transform/Sequence.cpp - Transformation sequences ------------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/Sequence.h"

#include "support/Casting.h"
#include "support/Printing.h"
#include "transform/Templates.h"
#include "transform/TypeState.h"

#include <cassert>

using namespace irlt;

TransformSequence
TransformSequence::composedWith(const TransformSequence &U) const {
  std::vector<TemplateRef> All = Steps;
  All.insert(All.end(), U.Steps.begin(), U.Steps.end());
  return TransformSequence(std::move(All));
}

namespace {

/// Fuses \p A followed by \p B when both are instances of the same
/// fusable kind; returns null when no fusion applies.
TemplateRef fuseAdjacent(const TemplateRef &A, const TemplateRef &B) {
  if (A->kind() != B->kind())
    return nullptr;
  switch (A->kind()) {
  case TransformTemplate::Kind::Unimodular: {
    const auto *UA = cast<UnimodularTemplate>(A.get());
    const auto *UB = cast<UnimodularTemplate>(B.get());
    if (UA->outputSize() != UB->inputSize())
      return nullptr;
    // Applying A first, then B: combined matrix is M_B * M_A.
    return makeUnimodular(UA->inputSize(), UB->matrix() * UA->matrix());
  }
  case TransformTemplate::Kind::ReversePermute: {
    const auto *RA = cast<ReversePermuteTemplate>(A.get());
    const auto *RB = cast<ReversePermuteTemplate>(B.get());
    unsigned N = RA->inputSize();
    if (RB->inputSize() != N)
      return nullptr;
    // A moves loop k to p1[k], reversing when r1[k]; B then moves the
    // loop at position q to p2[q], reversing when r2[q]. Combined:
    //   k -> p2[p1[k]],  reversed iff r1[k] xor r2[p1[k]].
    std::vector<unsigned> Perm(N);
    std::vector<bool> Rev(N);
    for (unsigned K = 0; K < N; ++K) {
      unsigned Mid = RA->perm()[K];
      Perm[K] = RB->perm()[Mid];
      Rev[K] = RA->rev()[K] != RB->rev()[Mid];
    }
    return makeReversePermute(N, std::move(Rev), std::move(Perm));
  }
  case TransformTemplate::Kind::Parallelize: {
    const auto *PA = cast<ParallelizeTemplate>(A.get());
    const auto *PB = cast<ParallelizeTemplate>(B.get());
    unsigned N = PA->inputSize();
    if (PB->inputSize() != N)
      return nullptr;
    std::vector<bool> Flags(N);
    for (unsigned K = 0; K < N; ++K)
      Flags[K] = PA->parFlag()[K] || PB->parFlag()[K];
    return makeParallelize(N, std::move(Flags));
  }
  default:
    return nullptr;
  }
}

} // namespace

TransformSequence TransformSequence::reduced() const {
  std::vector<TemplateRef> Out;
  for (const TemplateRef &T : Steps) {
    if (!Out.empty()) {
      if (TemplateRef Fused = fuseAdjacent(Out.back(), T)) {
        Out.back() = std::move(Fused);
        continue;
      }
    }
    Out.push_back(T);
  }
  return TransformSequence(std::move(Out));
}

std::string TransformSequence::str() const {
  std::vector<std::string> Parts;
  Parts.reserve(Steps.size());
  for (const TemplateRef &T : Steps)
    Parts.push_back(T->str());
  return "<" + join(Parts, ", ") + ">";
}

DepSet irlt::mapDependences(const TransformSequence &T, const DepSet &D) {
  DepSet Cur = D;
  for (const TemplateRef &Step : T.steps())
    Cur = Step->mapDependences(Cur);
  return Cur;
}

ErrorOr<LoopNest> irlt::applySequence(const TransformSequence &T,
                                      const LoopNest &Nest) {
  LoopNest Cur = Nest;
  unsigned Stage = 0;
  for (const TemplateRef &Step : T.steps()) {
    ++Stage;
    ErrorOr<LoopNest> Next = Step->apply(Cur);
    if (!Next)
      return Failure(formatStr("stage %u (%s): %s", Stage,
                               Step->str().c_str(), Next.message().c_str()));
    Cur = Next.take();
  }
  return Cur;
}

LegalityResult irlt::isLegal(const TransformSequence &T, const LoopNest &Nest,
                             const DepSet &D) {
  LegalityResult R;

  // Part (b): loop-bounds preconditions, stage by stage. Each stage's
  // preconditions are evaluated against the nest produced by the previous
  // stages, so the bounds pipeline runs alongside; the dependence set is
  // threaded along for the anchor-dependence side condition (see
  // checkAnchorDependence).
  LoopNest Cur = Nest;
  DepSet CurDeps = D;
  unsigned Stage = 0;
  for (const TemplateRef &Step : T.steps()) {
    ++Stage;
    if (std::string E = Step->checkPreconditions(Cur); !E.empty()) {
      R.Legal = false;
      R.Reason = formatStr("bounds precondition violated at stage %u: %s",
                           Stage, E.c_str());
      return R;
    }
    if (std::string E = checkAnchorDependence(
            *Step, NestTypeState::fromNest(Cur), CurDeps);
        !E.empty()) {
      R.Legal = false;
      R.Reason = formatStr(
          "dependence precondition violated at stage %u: %s", Stage,
          E.c_str());
      return R;
    }
    ErrorOr<LoopNest> Next = Step->apply(Cur);
    if (!Next) {
      R.Legal = false;
      R.Reason = formatStr("stage %u (%s): %s", Stage, Step->str().c_str(),
                           Next.message().c_str());
      return R;
    }
    Cur = Next.take();
    CurDeps = Step->mapDependences(CurDeps);
  }

  // Part (a): the dependence test on the *final* mapped set only -
  // intermediate sets may be lexicographically negative (Section 3.2).
  R.FinalDeps = std::move(CurDeps);
  for (const DepVector &V : R.FinalDeps.vectors()) {
    if (V.canBeLexNegative()) {
      R.Legal = false;
      R.Reason =
          "transformed dependence vector " + V.str() +
          " admits a lexicographically negative tuple";
      return R;
    }
  }
  R.Legal = true;
  return R;
}
