//===- transform/Sequence.h - Transformation sequences --------------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequence representation of Section 2: an iteration-reordering
/// transformation T = <t_1, ..., t_k> is a sequence of kernel template
/// instantiations. Composition is sequence concatenation (U after T is
/// <t_1..t_k, u_1..u_l>), which makes the system closed under
/// composition; reduce() shortens a sequence by fusing compatible
/// adjacent instantiations (e.g. two Unimodular steps multiply into one
/// matrix - the paper's efficiency note).
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_SEQUENCE_H
#define IRLT_TRANSFORM_SEQUENCE_H

#include "transform/Template.h"

#include <vector>

namespace irlt {

/// An immutable-ish ordered list of template instantiations.
class TransformSequence {
public:
  TransformSequence() = default;
  explicit TransformSequence(std::vector<TemplateRef> Steps)
      : Steps(std::move(Steps)) {}

  static TransformSequence of(std::initializer_list<TemplateRef> List) {
    return TransformSequence(std::vector<TemplateRef>(List));
  }

  void append(TemplateRef T) { Steps.push_back(std::move(T)); }

  const std::vector<TemplateRef> &steps() const { return Steps; }
  size_t size() const { return Steps.size(); }
  bool empty() const { return Steps.empty(); }

  /// Sequence concatenation: this, then \p U (Section 2's  U o T).
  TransformSequence composedWith(const TransformSequence &U) const;

  /// Fuses compatible adjacent steps:
  ///  - Unimodular(M1) ; Unimodular(M2)      -> Unimodular(M2 * M1)
  ///  - ReversePermute ; ReversePermute      -> one ReversePermute
  ///  - ReversePermute ; Unimodular (either
  ///    order; the RP is a signed permutation
  ///    matrix)                              -> one Unimodular
  ///  - Parallelize    ; Parallelize         -> flag-wise OR
  /// Repeats to a fixed point (each fusion re-tries against the new
  /// predecessor), so reduced() is idempotent - which makes
  /// reduced().str() usable as a canonical memoization key for
  /// peephole-equivalent sequences (the search engine's dedup relies on
  /// this; see src/search/).
  TransformSequence reduced() const;

  /// "<ReversePermute(...), Block(...)>".
  std::string str() const;

private:
  std::vector<TemplateRef> Steps;
};

/// Outcome of the uniform legality test (Section 2, item 3).
struct LegalityResult {
  /// Why a sequence was rejected - the structured counterpart of Reason,
  /// used by irlt-fuzz to bucket outcomes without string matching.
  enum class RejectKind {
    None,                   ///< legal
    BoundsPrecondition,     ///< a Table 3/4 precondition failed
    DependencePrecondition, ///< the anchor-dependence side condition
    LexNegative,            ///< final mapped set admits a negative tuple
    ApplyFailure,           ///< bounds pipeline failed mid-sequence
    Overflow,               ///< coefficient arithmetic left int64 range
  };

  bool Legal = false;
  RejectKind Kind = RejectKind::None;
  /// Human-readable reason when illegal: either the violated bounds
  /// precondition (with its stage), or the lexicographically negative
  /// final dependence vector.
  std::string Reason;
  /// Structured reason when illegal: stage index and template name of the
  /// failing step (stage 0 for whole-sequence failures such as the final
  /// lexicographic test).
  Diag Why;
  /// The dependence set after the whole sequence (valid when the bounds
  /// stages all succeeded).
  DepSet FinalDeps;

  /// Marks the result illegal with both the structured and rendered
  /// reason.
  void reject(RejectKind K, Diag D) {
    Legal = false;
    Kind = K;
    Why = std::move(D);
    Reason = Why.str();
  }
};

/// Stable name of a RejectKind, e.g. "lex-negative" - used by the tools
/// to report structured verdicts and by the fuzzer's buckets.
const char *rejectKindName(LegalityResult::RejectKind K);

/// The uniform legality test IsLegal(T, N): (a) map the dependence set
/// through every stage and reject when the final set admits a
/// lexicographically negative tuple - intermediate stages need not be
/// legal; (b) check each stage's loop-bounds preconditions in order.
/// A shim over the prefix-memoized engine (legality/IncrementalEngine.h):
/// repeated prefixes hit a process-wide cache, and the verdict is
/// byte-identical to the legacy whole-sequence walk (kept as
/// legality::IncrementalEngine::reference). Callers building sequences
/// one stage at a time should prefer legality::SequenceBuilder, which
/// pays only the last stage's cost per extension.
LegalityResult isLegal(const TransformSequence &T, const LoopNest &Nest,
                       const DepSet &D);

/// The uniform code generator: pipes the nest through every stage's
/// bounds-mapping and init-statement rules. Fails with the first violated
/// precondition. (Legality of the dependence part is *not* checked here -
/// callers run isLegal first, mirroring the paper's separation.)
ErrorOr<LoopNest> applySequence(const TransformSequence &T,
                                const LoopNest &Nest);

/// Maps a dependence set through the whole sequence (T(D) of Section 3.2).
DepSet mapDependences(const TransformSequence &T, const DepSet &D);

} // namespace irlt

#endif // IRLT_TRANSFORM_SEQUENCE_H
