//===- transform/StripMine.cpp - The StripMine extension template --------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// StripMine(n, k, size): splits loop k into a block loop (stride
/// s_k * size) immediately followed by its element loop. Not one of the
/// paper's Table 1 templates, but Table 1 defines Block as "a combination
/// of strip mining and interchanging [15]" - this template makes that
/// decomposition executable: tests verify that
///
///    Block(n, i, j, bsize)
///  ==  StripMine(i) ; StripMine(i+2) ; ... ; ReversePermute(collect)
///
/// produce equivalent code, and it demonstrates (together with the
/// RectangularTile baseline) how the "small but extensible kernel set"
/// (Section 2) grows: a new template only supplies the three rule sets.
///
/// Dependence rule: blockmap at position k (a strip-mined pair is a
/// 1-loop Block). Bounds rule: the k-th rows of Table 4 with an empty
/// substitution range.
///
//===----------------------------------------------------------------------===//

#include "bounds/TypeLattice.h"
#include "ir/LinExpr.h"
#include "support/Printing.h"
#include "transform/Templates.h"

#include <cassert>

using namespace irlt;

StripMineTemplate::StripMineTemplate(unsigned N, unsigned K, ExprRef Size)
    : TransformTemplate(Kind::Custom), N(N), K(K), Size(std::move(Size)) {
  assert(K >= 1 && K <= N && "strip-mine position out of bounds");
}

std::string StripMineTemplate::paramStr() const {
  return formatStr("(n=%u, k=%u, size=%s)", N, K, Size->str().c_str());
}

DepSet StripMineTemplate::mapDependences(const DepSet &D) const {
  unsigned Pos = K - 1;
  DepSet Out;
  for (const DepVector &V : D.vectors()) {
    assert(V.size() == N && "dependence vector arity mismatch");
    // blockmap fan-out for the single strip-mined entry.
    const DepElem &E = V[Pos];
    std::vector<std::pair<DepElem, DepElem>> Pairs;
    if (E.isDistance() && E.dist() == 0)
      Pairs = {{DepElem::zero(), DepElem::zero()}};
    else if (E == DepElem::any())
      Pairs = {{DepElem::any(), DepElem::any()}};
    else if (E.isDistance() && (E.dist() == 1 || E.dist() == -1))
      Pairs = {{DepElem::zero(), E}, {E, DepElem::any()}};
    else
      Pairs = {{DepElem::zero(), E}, {E.dirOnly(), DepElem::any()}};
    for (const auto &[Outer, Inner] : Pairs) {
      std::vector<DepElem> Elems;
      Elems.reserve(N + 1);
      for (unsigned I = 0; I < Pos; ++I)
        Elems.push_back(V[I]);
      Elems.push_back(Outer);
      Elems.push_back(Inner);
      for (unsigned I = Pos + 1; I < N; ++I)
        Elems.push_back(V[I]);
      Out.insert(DepVector(std::move(Elems)));
    }
  }
  return Out;
}

std::string StripMineTemplate::checkPreconditions(const LoopNest &Nest) const {
  if (Nest.numLoops() != N)
    return formatStr("StripMine: nest has %u loops, template expects %u",
                     Nest.numLoops(), N);
  std::optional<int64_t> S = Nest.Loops[K - 1].Step->constValue();
  if (!S || *S == 0)
    return formatStr("StripMine: step of loop %u is not a non-zero "
                     "compile-time constant",
                     K);
  return std::string();
}

ErrorOr<LoopNest> StripMineTemplate::apply(const LoopNest &Nest) const {
  if (std::string E = checkPreconditions(Nest); !E.empty())
    return Failure(E);
  unsigned Pos = K - 1;
  const Loop &L = Nest.Loops[Pos];
  int64_t S = *L.Step->constValue();

  LoopNest NameScope = Nest;
  std::string BlockVar = freshVarName(NameScope, L.IndexVar + L.IndexVar);

  // Block loop: original bounds, stride s * size.
  ExprRef BStep = simplify(Expr::mul(Expr::intConst(S), Size));
  Loop BlockLoop(BlockVar, L.Lower, L.Upper, BStep, L.Kind);

  // Element loop: clamped to the strip (Table 4's k-th rows without any
  // xmin/xmax substitution - the strip range is contiguous).
  ExprRef StripEnd = simplify(Expr::add(
      Expr::var(BlockVar),
      Expr::mul(Expr::intConst(S), Expr::sub(Size, Expr::intConst(1)))));
  ExprRef Lo2, Hi2;
  if (S > 0) {
    Lo2 = Expr::var(BlockVar);
    Hi2 = simplify(Expr::minE({StripEnd, L.Upper}));
  } else {
    Lo2 = Expr::var(BlockVar);
    Hi2 = simplify(Expr::maxE({StripEnd, L.Upper}));
  }
  Loop ElemLoop(L.IndexVar, Lo2, Hi2, L.Step, L.Kind);

  LoopNest Out = Nest;
  Out.Loops.clear();
  for (unsigned I = 0; I < Pos; ++I)
    Out.Loops.push_back(Nest.Loops[I]);
  Out.Loops.push_back(std::move(BlockLoop));
  Out.Loops.push_back(std::move(ElemLoop));
  for (unsigned I = Pos + 1; I < N; ++I)
    Out.Loops.push_back(Nest.Loops[I]);
  // The element loop reuses the index variable: no init statements, and
  // since the block loop starts exactly at l_k the element lower clamp is
  // just the strip start.
  return Out;
}

TemplateRef irlt::makeStripMine(unsigned N, unsigned K, ExprRef Size) {
  return std::make_shared<StripMineTemplate>(N, K, std::move(Size));
}
