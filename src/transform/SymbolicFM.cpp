//===- transform/SymbolicFM.cpp - Symbolic Fourier-Motzkin bounds gen ----===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/SymbolicFM.h"

#include "dependence/FMSolver.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace irlt;

void SymbolicFM::normalizeRow(Row &R) {
  // Divide through by the gcd of the index coefficients when it also
  // divides every symbolic coefficient exactly.
  int64_t G = 0;
  for (int64_t C : R.Coef)
    G = gcd(G, C);
  if (G <= 1)
    return;
  if (R.Sym.constant() % G != 0)
    return;
  for (const auto &[Key, T] : R.Sym.terms())
    if (T.Coef % G != 0)
      return;
  for (int64_t &C : R.Coef)
    C /= G;
  LinExpr NewSym;
  NewSym.addConst(R.Sym.constant() / G);
  for (const auto &[Key, T] : R.Sym.terms())
    NewSym.addAtom(T.Atom, T.Coef / G);
  R.Sym = std::move(NewSym);
}

void SymbolicFM::addLE(std::vector<int64_t> Coef, LinExpr Sym) {
  assert(Coef.size() == NumVars && "coefficient arity mismatch");
  Row R{std::move(Coef), std::move(Sym)};
  normalizeRow(R);
  Rows.push_back(std::move(R));
}

void SymbolicFM::addGE(std::vector<int64_t> Coef, const LinExpr &Sym) {
  for (int64_t &C : Coef)
    C = negChecked(C);
  addLE(std::move(Coef), Sym.scaled(-1));
}

namespace {

/// Redundancy oracle over the full row set: row \p Candidate is redundant
/// when {all rows except Candidate} && {Candidate violated by 1} is
/// infeasible over rationals, with every symbolic atom treated as a free
/// variable (so the implication holds for all parameter values; integer
/// variables make the +1 violation margin exact).
class RedundancyOracle {
public:
  RedundancyOracle(unsigned NumY,
                   const std::vector<std::vector<int64_t>> &Coefs,
                   const std::vector<LinExpr> &Syms)
      : NumY(NumY), Coefs(Coefs), Syms(Syms) {
    // Assign a variable slot to every distinct atom.
    for (const LinExpr &S : Syms)
      for (const auto &[Key, T] : S.terms())
        if (!AtomSlot.count(Key))
          AtomSlot.emplace(Key, NumY + AtomSlot.size());
  }

  bool isRedundant(size_t Candidate) const {
    unsigned Total = NumY + static_cast<unsigned>(AtomSlot.size());
    FMSystem Sys(Total);
    for (size_t I = 0; I < Coefs.size(); ++I) {
      std::vector<int64_t> Row = fullRow(I, Total);
      if (I == Candidate) {
        // Violate: sum coef*y - sym >= 1.
        Sys.addGE(std::move(Row), addChecked(Syms[I].constant(), 1));
      } else {
        Sys.addLE(std::move(Row), Syms[I].constant());
      }
    }
    return !Sys.feasible();
  }

private:
  /// The row as  sum coef*y + sum (-atomCoef)*atom <= const.
  std::vector<int64_t> fullRow(size_t I, unsigned Total) const {
    std::vector<int64_t> Row(Total, 0);
    for (unsigned C = 0; C < NumY; ++C)
      Row[C] = Coefs[I][C];
    for (const auto &[Key, T] : Syms[I].terms())
      Row[AtomSlot.at(Key)] = negChecked(T.Coef);
    return Row;
  }

  unsigned NumY;
  const std::vector<std::vector<int64_t>> &Coefs;
  const std::vector<LinExpr> &Syms;
  std::map<std::string, unsigned> AtomSlot;
};

} // namespace

std::vector<GeneratedBounds>
SymbolicFM::generateBounds(const std::vector<std::string> &YNames,
                           bool EliminateRedundant) const {
  assert(YNames.size() == NumVars && "name arity mismatch");
  std::vector<GeneratedBounds> Out(NumVars);
  std::vector<Row> Work = Rows;

  // Bound rows collected per level, all in "Coef . y <= Sym" form, in
  // emission order; rendered (after optional redundancy filtering) below.
  struct BoundRecord {
    unsigned Level;
    bool IsUpper;
    std::vector<int64_t> Coef;
    LinExpr Sym;
  };
  std::vector<BoundRecord> Bounds;

  for (unsigned K = NumVars; K-- > 0;) {
    std::vector<Row> Lower, Upper, Rest;
    for (Row &R : Work) {
      // Rows may only involve y_0..y_K at this point.
      for (unsigned C = K + 1; C < NumVars; ++C)
        assert(R.Coef[C] == 0 && "row involves an eliminated variable");
      if (R.Coef[K] > 0)
        Upper.push_back(std::move(R));
      else if (R.Coef[K] < 0)
        Lower.push_back(std::move(R));
      else
        Rest.push_back(std::move(R));
    }

    for (const Row &R : Lower)
      Bounds.push_back(BoundRecord{K, false, R.Coef, R.Sym});
    for (const Row &R : Upper)
      Bounds.push_back(BoundRecord{K, true, R.Coef, R.Sym});

    // Eliminate y_K for the remaining system.
    Work = std::move(Rest);
    for (const Row &L : Lower) {
      for (const Row &U : Upper) {
        int64_t FL = U.Coef[K];            // > 0
        int64_t FU = negChecked(L.Coef[K]); // > 0
        Row Nw;
        Nw.Coef.resize(NumVars, 0);
        bool AnyVar = false;
        for (unsigned Cc = 0; Cc < NumVars; ++Cc) {
          Nw.Coef[Cc] = addChecked(mulChecked(FL, L.Coef[Cc]),
                                   mulChecked(FU, U.Coef[Cc]));
          AnyVar |= Nw.Coef[Cc] != 0;
        }
        if (Nw.Coef[K] != 0) {
          // FL*L[K] + FU*U[K] is identically zero in exact arithmetic; a
          // residue means the checked ops saturated under an
          // OverflowGuard. Record it (the caller's stage guard turns the
          // whole transformation into a clean overflow rejection) and
          // zero the slot so elimination stays well-formed.
          bool Guarded = OverflowGuard::record();
          assert(Guarded && "variable survived elimination");
          (void)Guarded;
          Nw.Coef[K] = 0;
        }
        if (!AnyVar)
          continue; // pure symbolic condition: implied by nest non-emptiness
        Nw.Sym = L.Sym.scaled(FL) + U.Sym.scaled(FU);
        normalizeRow(Nw);
        Work.push_back(std::move(Nw));
      }
    }
    // Deduplicate (FM blowup control + cleaner generated bounds).
    std::map<std::string, bool> Seen;
    std::vector<Row> Dedup;
    for (Row &R : Work) {
      std::string Key;
      for (int64_t C : R.Coef)
        Key += std::to_string(C) + ",";
      Key += "|" + R.Sym.str();
      if (Seen.emplace(std::move(Key), true).second)
        Dedup.push_back(std::move(R));
    }
    Work = std::move(Dedup);
  }

  // Optional redundancy filtering: greedily drop any bound the surviving
  // set still implies (universally over the symbolic atoms). Lower/upper
  // counts per level are protected from dropping to zero.
  std::vector<bool> Keep(Bounds.size(), true);
  // The oracle runs full Fourier-Motzkin per candidate: worthwhile for
  // human-scale outputs, skipped for large systems where the quadratic
  // sweep (with exponential-ish inner feasibility checks) would dominate.
  constexpr size_t RedundancySweepCap = 24;
  if (EliminateRedundant && Bounds.size() > 1 &&
      Bounds.size() <= RedundancySweepCap) {
    for (size_t I = 0; I < Bounds.size(); ++I) {
      // Never drop a level's only bound of its kind.
      unsigned SameKind = 0;
      for (size_t J = 0; J < Bounds.size(); ++J)
        if (Keep[J] && Bounds[J].Level == Bounds[I].Level &&
            Bounds[J].IsUpper == Bounds[I].IsUpper)
          ++SameKind;
      if (SameKind <= 1)
        continue;
      std::vector<std::vector<int64_t>> Coefs;
      std::vector<LinExpr> Syms;
      size_t CandidateIdx = 0;
      for (size_t J = 0; J < Bounds.size(); ++J) {
        if (!Keep[J] && J != I)
          continue;
        if (J == I)
          CandidateIdx = Coefs.size();
        Coefs.push_back(Bounds[J].Coef);
        Syms.push_back(Bounds[J].Sym);
      }
      RedundancyOracle Oracle(NumVars, Coefs, Syms);
      if (Oracle.isRedundant(CandidateIdx))
        Keep[I] = false;
    }
  }

  // Render the surviving rows.
  for (size_t I = 0; I < Bounds.size(); ++I) {
    if (!Keep[I])
      continue;
    const BoundRecord &B = Bounds[I];
    unsigned K = B.Level;
    int64_t C = B.Coef[K];
    LinExpr Num = B.Sym; // Sym - sum_{r<K} Coef[r]*y_r
    for (unsigned Rr = 0; Rr < K; ++Rr)
      if (B.Coef[Rr] != 0)
        Num.addVar(YNames[Rr], negChecked(B.Coef[Rr]));
    if (B.IsUpper) {
      assert(C > 0);
      // y_K <= floor(Num / C).
      ExprRef E = Num.toExpr();
      Out[K].Uppers.push_back(C == 1 ? E
                                     : Expr::floorDivE(E, Expr::intConst(C)));
    } else {
      assert(C < 0);
      // y_K >= ceil((-Num) / (-C)).
      Out[K].Lowers.push_back(
          Expr::ceilDivByConst(Num.scaled(-1).toExpr(), negChecked(C)));
    }
  }
  return Out;
}
