//===- transform/SymbolicFM.h - Symbolic Fourier-Motzkin bounds gen ------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-bounds generation for the Unimodular template, following the
/// hyperplane-method code generation the paper cites ([7] Irigoin, [14]
/// Wolf & Lam): Fourier-Motzkin elimination over the transformed
/// iteration-space inequalities. Coefficients of the (new) index
/// variables are integers; the loop-invariant parts are symbolic LinExprs
/// (so `n`, `b`, `colstr(0)` ride along as opaque atoms). Eliminating
/// variables only ever multiplies by positive integer constants, so the
/// symbolic parts stay linear and exact.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_SYMBOLICFM_H
#define IRLT_TRANSFORM_SYMBOLICFM_H

#include "ir/LinExpr.h"

#include <string>
#include <vector>

namespace irlt {

/// Per-loop generated bounds: lower terms combine with max(), upper terms
/// with min(); all steps are 1.
struct GeneratedBounds {
  std::vector<ExprRef> Lowers;
  std::vector<ExprRef> Uppers;
};

/// A conjunction of constraints  sum_k Coef[k] * y_k <= Sym  over the new
/// index variables y_0..y_{n-1}.
class SymbolicFM {
public:
  explicit SymbolicFM(unsigned NumVars) : NumVars(NumVars) {}

  /// Adds sum Coef[k]*y_k <= Sym.
  void addLE(std::vector<int64_t> Coef, LinExpr Sym);

  /// Adds sum Coef[k]*y_k >= Sym.
  void addGE(std::vector<int64_t> Coef, const LinExpr &Sym);

  /// Generates loop bounds for y_{n-1} .. y_0 by repeated projection.
  /// \p YNames renders references to outer y variables inside bounds.
  /// \returns one GeneratedBounds per variable (index 0 = outermost).
  /// Bounds with an empty Lowers or Uppers list mean the input system
  /// left the variable unbounded (the caller reports an error).
  ///
  /// With \p EliminateRedundant, a bound term is dropped when the rest of
  /// the system provably implies it for *every* value of the symbolic
  /// atoms (the atoms join the variables of a rational feasibility check,
  /// so implication holds universally) - this recovers e.g. Figure 4(b)'s
  /// `do i = 1, j` where plain projection emits `min(n, j)`.
  std::vector<GeneratedBounds>
  generateBounds(const std::vector<std::string> &YNames,
                 bool EliminateRedundant = true) const;

private:
  struct Row {
    std::vector<int64_t> Coef;
    LinExpr Sym;
  };

  static void normalizeRow(Row &R);

  unsigned NumVars;
  std::vector<Row> Rows;
};

} // namespace irlt

#endif // IRLT_TRANSFORM_SYMBOLICFM_H
