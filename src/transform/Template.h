//===- transform/Template.h - Kernel transformation templates ------------===//
//
// Part of the IRLT project: a reproduction of Sarkar & Thekkath,
// "A General Framework for Iteration-Reordering Loop Transformations"
// (PLDI 1992). MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation-template abstraction of Section 2. A template is
/// defined by three rule sets:
///
///   1. dependence-vector mapping rules (Table 2)  -> mapDependences();
///   2. loop-bounds mapping rules and their preconditions (Tables 3, 4)
///      -> checkPreconditions() / apply();
///   3. initialization-statement creation rules    -> part of apply(),
///      which *prepends* its INIT statements so a sequence t_1..t_k emits
///      them in the paper's INIT_k ... INIT_1 order.
///
/// An iteration-reordering transformation is a sequence of template
/// instantiations; the kernel set is extensible - any subclass that
/// honors the consistency requirement of Definition 3.4 plugs into the
/// same uniform legality test and code generator.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_TEMPLATE_H
#define IRLT_TRANSFORM_TEMPLATE_H

#include "dependence/DepVector.h"
#include "ir/LoopNest.h"
#include "support/ErrorOr.h"

#include <memory>
#include <string>

namespace irlt {

/// Abstract kernel transformation template instantiation. Instances are
/// immutable and independent of any loop nest (Section 5: templates "may
/// be created, instantiated, composed, and destroyed, without being tied
/// to a particular loop nest").
class TransformTemplate {
public:
  /// Discriminator for the kernel set of Table 1 (extensible: Custom).
  enum class Kind {
    Unimodular,
    ReversePermute,
    Parallelize,
    Block,
    Coalesce,
    Interleave,
    Custom
  };

  virtual ~TransformTemplate();

  Kind kind() const { return TheKind; }

  /// Template name as in Table 1, e.g. "Block".
  virtual std::string name() const = 0;

  /// Rendering of the instantiation parameters, e.g. "(n=3, i=1, j=3,
  /// bsize=[bj, bk, bi])".
  virtual std::string paramStr() const = 0;

  /// Input loop-nest size n this instantiation applies to.
  virtual unsigned inputSize() const = 0;

  /// Output loop-nest size n' (Tables 3/4: may differ from n).
  virtual unsigned outputSize() const = 0;

  /// Table 2: maps a dependence-vector set through this transformation.
  /// Every rule is *consistent* (Definition 3.4): the mapped set covers
  /// every transformed instance pair - verified by property tests.
  virtual DepSet mapDependences(const DepSet &D) const = 0;

  /// Loop-bounds preconditions (first column of Tables 3/4) against the
  /// current (possibly intermediate) nest. \returns empty string when
  /// satisfied, else a diagnostic.
  virtual std::string checkPreconditions(const LoopNest &Nest) const = 0;

  /// Applies the bounds-mapping and init-statement rules, producing the
  /// transformed nest. Fails (with the precondition diagnostic) when the
  /// preconditions are violated.
  virtual ErrorOr<LoopNest> apply(const LoopNest &Nest) const = 0;

  std::string str() const { return name() + paramStr(); }

protected:
  explicit TransformTemplate(Kind K) : TheKind(K) {}

private:
  Kind TheKind;
};

using TemplateRef = std::shared_ptr<const TransformTemplate>;

/// Picks a loop-variable name not already live anywhere in \p Nest
/// (loop variables, init-statement targets, body/bound/array names):
/// tries \p Preferred, then appends underscores.
std::string freshVarName(const LoopNest &Nest, const std::string &Preferred);

} // namespace irlt

#endif // IRLT_TRANSFORM_TEMPLATE_H
