//===- transform/TemplateCommon.cpp - Shared template helpers ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/Template.h"

using namespace irlt;

TransformTemplate::~TransformTemplate() = default;

std::string irlt::freshVarName(const LoopNest &Nest,
                               const std::string &Preferred) {
  std::string Name = Preferred;
  while (Nest.bindsVar(Name))
    Name += "_";
  return Name;
}
