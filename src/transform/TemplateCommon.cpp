//===- transform/TemplateCommon.cpp - Shared template helpers ------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//

#include "transform/Template.h"

#include <set>

using namespace irlt;

TransformTemplate::~TransformTemplate() = default;

std::string irlt::freshVarName(const LoopNest &Nest,
                               const std::string &Preferred) {
  // A fresh name must not collide with *any* name live in the nest, not
  // just the loop variables: initialization statements of an already-
  // transformed nest target recovered index variables that no loop binds
  // any more, and reusing one of those names for a new loop variable
  // would make the init clobber the live counter mid-iteration.
  std::set<std::string> Taken;
  for (const Loop &L : Nest.Loops) {
    Taken.insert(L.IndexVar);
    L.Lower->collectVars(Taken);
    L.Upper->collectVars(Taken);
    L.Step->collectVars(Taken);
  }
  for (const InitStmt &I : Nest.Inits) {
    Taken.insert(I.Var);
    I.Value->collectVars(Taken);
  }
  for (const std::string &V : Nest.BodyIndexVars)
    Taken.insert(V);
  for (const std::string &A : Nest.ArrayNames)
    Taken.insert(A);
  for (const AssignStmt &S : Nest.Body) {
    Taken.insert(S.LHS.Array);
    for (const ExprRef &Sub : S.LHS.Subscripts)
      Sub->collectVars(Taken);
    S.RHS->collectVars(Taken);
  }

  std::string Name = Preferred;
  while (Taken.count(Name))
    Name += "_";
  return Name;
}
