//===- transform/Templates.h - The kernel set of Table 1 -----------------===//
//
// Part of the IRLT project (PLDI'92 iteration-reordering framework repro).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete template classes for the paper's kernel set (Table 1):
/// Unimodular, ReversePermute, Parallelize, Block, Coalesce, Interleave.
/// Loop ranges (i, j) and positions follow the paper's 1-based
/// convention in parameter lists but are stored 0-based.
///
//===----------------------------------------------------------------------===//

#ifndef IRLT_TRANSFORM_TEMPLATES_H
#define IRLT_TRANSFORM_TEMPLATES_H

#include "transform/Template.h"
#include "transform/UnimodularMatrix.h"

#include <optional>
#include <vector>

namespace irlt {

/// Unimodular(n, M): y = M x. Preconditions (Table 3): bounds linear with
/// constant-coefficient terms, steps compile-time constants (normalized
/// to 1 before the mapping); all loops sequential. Bounds generation uses
/// symbolic Fourier-Motzkin elimination (the "[7, 14]" citation).
class UnimodularTemplate : public TransformTemplate {
public:
  UnimodularTemplate(unsigned N, UnimodularMatrix M);

  const UnimodularMatrix &matrix() const { return M; }

  std::string name() const override { return "Unimodular"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N; }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Unimodular;
  }

private:
  unsigned N;
  UnimodularMatrix M;
};

/// ReversePermute(n, rev, perm): loop k is reversed when rev[k], then
/// moved to position perm[k]. Preconditions: rectangular bounds (all
/// bound expressions invariant in the index variables); steps need *not*
/// be constant. Reuses index variable names and creates no
/// initialization statements - the cheap special case Section 5 touts.
class ReversePermuteTemplate : public TransformTemplate {
public:
  ReversePermuteTemplate(unsigned N, std::vector<bool> Rev,
                         std::vector<unsigned> Perm);

  const std::vector<bool> &rev() const { return Rev; }
  const std::vector<unsigned> &perm() const { return Perm; }

  std::string name() const override { return "ReversePermute"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N; }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::ReversePermute;
  }

private:
  unsigned N;
  std::vector<bool> Rev;
  std::vector<unsigned> Perm;
};

/// Parallelize(n, parflag): loop k becomes `pardo` when parflag[k]. No
/// preconditions; the dependence mapping symmetrizes entries of
/// parallelized loops so the uniform lexicographic test rejects
/// parallelization of dependence-carrying loops.
class ParallelizeTemplate : public TransformTemplate {
public:
  ParallelizeTemplate(unsigned N, std::vector<bool> ParFlag);

  const std::vector<bool> &parFlag() const { return ParFlag; }

  std::string name() const override { return "Parallelize"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N; }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Parallelize;
  }

private:
  unsigned N;
  std::vector<bool> ParFlag;
};

/// Block(n, i, j, bsize): tiles the contiguous loops i..j (1-based,
/// inclusive) with block sizes bsize. Output has j-i+1 extra loops: the
/// block loops at positions i..j, then the element loops. The bounds
/// rules of Table 4 create only tiles with work on trapezoidal iteration
/// spaces (the xmin/xmax substitution).
class BlockTemplate : public TransformTemplate {
public:
  BlockTemplate(unsigned N, unsigned I, unsigned J, std::vector<ExprRef> BSize);

  unsigned rangeBegin() const { return I; } ///< 1-based i
  unsigned rangeEnd() const { return J; }   ///< 1-based j
  const std::vector<ExprRef> &bsize() const { return BSize; }

  std::string name() const override { return "Block"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N + (J - I + 1); }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Block;
  }

private:
  unsigned N, I, J;          // I, J are 1-based inclusive
  std::vector<ExprRef> BSize; // size J-I+1, for loops I..J
};

/// Coalesce(n, i, j): collapses the contiguous loops i..j into a single
/// normalized loop (lower bound 1, step 1). Preconditions: bounds and
/// steps of loops (i, j] invariant in the coalesced index variables.
/// Creates initialization statements recovering the original index
/// variables with div/mod of the trip counts.
class CoalesceTemplate : public TransformTemplate {
public:
  CoalesceTemplate(unsigned N, unsigned I, unsigned J,
                   std::optional<std::string> NewVarName = std::nullopt);

  unsigned rangeBegin() const { return I; }
  unsigned rangeEnd() const { return J; }

  std::string name() const override { return "Coalesce"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N - (J - I); }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Coalesce;
  }

private:
  unsigned N, I, J;
  std::optional<std::string> NewVarName;
};

/// Interleave(n, i, j, isize): like Block, but a "block" consists of
/// non-contiguous iterations with the same phase modulo the interleave
/// factor. Output: phase loops (0 .. isize[k]-1) at positions i..j, then
/// the original loops striding by isize[k]*s_k.
class InterleaveTemplate : public TransformTemplate {
public:
  InterleaveTemplate(unsigned N, unsigned I, unsigned J,
                     std::vector<ExprRef> ISize);

  unsigned rangeBegin() const { return I; }
  unsigned rangeEnd() const { return J; }
  const std::vector<ExprRef> &isize() const { return ISize; }

  std::string name() const override { return "Interleave"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N + (J - I + 1); }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Interleave;
  }

private:
  unsigned N, I, J;
  std::vector<ExprRef> ISize;
};

/// StripMine(n, k, size): splits loop k (1-based) into a block loop of
/// stride s_k*size immediately followed by its element loop. An
/// *extension* template (not in Table 1): Table 1 defines Block as
/// "a combination of strip mining and interchanging", and this template
/// makes that decomposition executable (see transform/StripMine.cpp).
class StripMineTemplate : public TransformTemplate {
public:
  StripMineTemplate(unsigned N, unsigned K, ExprRef Size);

  unsigned position() const { return K; } ///< 1-based loop position
  const ExprRef &size() const { return Size; }

  std::string name() const override { return "StripMine"; }
  std::string paramStr() const override;
  unsigned inputSize() const override { return N; }
  unsigned outputSize() const override { return N + 1; }
  DepSet mapDependences(const DepSet &D) const override;
  std::string checkPreconditions(const LoopNest &Nest) const override;
  ErrorOr<LoopNest> apply(const LoopNest &Nest) const override;

  static bool classof(const TransformTemplate *T) {
    return T->kind() == Kind::Custom;
  }

private:
  unsigned N, K;
  ExprRef Size;
};

//===--- Convenience factories ---------------------------------------------===

TemplateRef makeUnimodular(unsigned N, UnimodularMatrix M);
TemplateRef makeReversePermute(unsigned N, std::vector<bool> Rev,
                               std::vector<unsigned> Perm);
TemplateRef makeInterchange(unsigned N, unsigned A, unsigned B); ///< via RP
TemplateRef makeParallelize(unsigned N, std::vector<bool> ParFlag);
TemplateRef makeBlock(unsigned N, unsigned I, unsigned J,
                      std::vector<ExprRef> BSize);
TemplateRef makeCoalesce(unsigned N, unsigned I, unsigned J,
                         std::optional<std::string> NewVarName = std::nullopt);
TemplateRef makeInterleave(unsigned N, unsigned I, unsigned J,
                           std::vector<ExprRef> ISize);
TemplateRef makeStripMine(unsigned N, unsigned K, ExprRef Size);

} // namespace irlt

#endif // IRLT_TRANSFORM_TEMPLATES_H
